#!/usr/bin/env python3
"""Perf regression guard for the BENCH_*.json trajectories.

Compares a freshly generated bench JSON against the committed baseline and
fails (exit 1) when a comparable row regressed beyond tolerance.

Rows are matched on the experiment knobs (data size, query size fraction,
fetch model, thread count); rows present in only one file — e.g. the full
baseline's sizes that a --quick CI run skips — are ignored, so the
committed baselines can come from full runs while CI smokes the quick
subset.

Two tolerance regimes, because the two quantity classes behave differently
across machines:
  * counters (candidates, geometry loads, redundant validations) are
    deterministic given the seeds and must stay within --counter-tol of
    the baseline (default 35%, covering the rep-count difference between
    quick and full runs of the same seeded query stream);
  * wall-clock times vary with the host, so only a slowdown beyond
    --time-tol x baseline (default 3x) fails — the guard catches
    structural regressions (an O(n) slip, a dropped fast path), not CI
    machine jitter.

Usage: check_bench_regression.py BASELINE NEW [--time-tol X] [--counter-tol F]
"""

import argparse
import json
import sys

KEY_FIELDS = (
    "data_size",
    "query_size_fraction",
    "simulated_fetch_ns",
    "blocking_fetch",
    "num_threads",
    "num_shards",
    "backend",
)
# Knobs added after a baseline was committed default to the value the old
# code implied, so pre-knob baselines keep matching post-knob runs.
KEY_DEFAULTS = {"backend": "memory"}
COUNTER_FIELDS = ("candidates", "geometry_loads", "redundant")
TIME_FIELDS = ("time_ms",)
METHODS = ("traditional", "voronoi")
# Failure-domain counters must be *exactly* zero in the no-fault perf
# rows the benches emit: a nonzero value means a retry/quarantine/
# degraded-mode hook fired on the happy path, which is a correctness bug
# regardless of how small the count is (no drift tolerance applies).
# Absent keys pass, so baselines predating the fields keep working.
FAULT_ZERO_FIELDS = ("io_retries", "pages_quarantined", "shards_failed",
                     "degraded")

# Planner gates (BENCH_planner.json). Within-run ratios, not cross-run
# times: the bench already divides the planned path's time by the best
# and worst static method measured in the same process, which cancels
# host speed entirely — so the bound can be much tighter than --time-tol.
# auto may pay planning overhead and greedy-exploration wobble but must
# never pick badly enough to exceed PLANNER_MAX_VS_BEST of the best
# static choice. The strict "beats the worst static" gate only fires on
# crossover cells where the statics measurably diverged in the current
# run (gap >= PLANNER_MIN_STATIC_GAP): below that gap the two statics
# are within machine noise of each other and "worst" is not meaningful.
PLANNER_MAX_VS_BEST = 1.8
PLANNER_MIN_STATIC_GAP = 1.5

# The pread-mode warm/cold throughput ratio of the out-of-core scan bench
# must stay above this floor: warm hits read a cache frame, cold misses pay
# a syscall, and the gap collapsing means the cache stopped working. The
# measured gap is ~100x; 3x absorbs CI jitter while still catching a
# hit-path regression.
OOC_MIN_WARM_COLD_RATIO = 3.0


def row_key(row):
    return tuple(row.get(k, KEY_DEFAULTS.get(k)) for k in KEY_FIELDS)


def describe(key):
    return ", ".join(f"{k}={v}" for k, v in zip(KEY_FIELDS, key))


def check_micro_flood(baseline, new, time_tol, counter_tol, failures):
    """BENCH_micro_flood.json rows: flat, keyed by query size."""
    base_by_key = {(r["data_size"], r["query_size_fraction"]): r
                   for r in baseline}
    compared = 0
    for row in new:
        key = (row["data_size"], row["query_size_fraction"])
        base = base_by_key.get(key)
        if base is None:
            continue
        compared += 1
        for field in ("candidates", "results", "neighbor_expansions"):
            check_counter(f"flood[{key}].{field}", base[field], row[field],
                          counter_tol, failures)
        check_time(f"flood[{key}].time_ms", base["time_ms"], row["time_ms"],
                   time_tol, failures)
    return compared


def check_classify(baseline, new, time_tol, failures):
    """BENCH_classify.json rows: batch classification kernels, keyed by
    (polygon, arm, batch). The arm is part of the key, so avx2 rows simply
    do not match on hosts whose run produced only scalar rows. Mismatches
    (vector vs scalar verdicts) and kernel-kind selection are exact gates;
    per-batch time gets the usual slowdown tolerance."""
    base_by_key = {(r["polygon"], r["arm"], r["batch"]): r for r in baseline}
    compared = 0
    for row in new:
        key = (row["polygon"], row["arm"], row["batch"])
        base = base_by_key.get(key)
        if base is None:
            continue
        compared += 1
        where = f"classify[{row['polygon']}/{row['arm']}/{row['batch']}]"
        if row.get("mismatches", 0) != 0:
            failures.append(
                f"{where}: {row['mismatches']} vector-vs-scalar verdict "
                f"mismatch(es) — exactness contract broken")
        if row.get("kernel_kind") != base.get("kernel_kind"):
            failures.append(
                f"{where}: kernel_kind {row.get('kernel_kind')} != baseline "
                f"{base.get('kernel_kind')} — kernel selection changed")
        check_time(f"{where}.time_ms", base["time_ms"], row["time_ms"],
                   time_tol, failures)
    return compared


def check_ooc_scan(baseline, new, time_tol, counter_tol, failures):
    """BENCH_ooc.json rows: page-cache scan, keyed by cache geometry."""
    def key(r):
        return (r["miss_mode"], r["points"], r["page_size"], r["cache_pages"])
    base_by_key = {key(r): r for r in baseline}
    compared = 0
    for row in new:
        base = base_by_key.get(key(row))
        if base is None:
            continue
        compared += 1
        where = f"ooc[{row['miss_mode']}]"
        # Hit/miss counts are exact given the scan pattern and geometry.
        for field in ("num_pages", "cold_hits", "cold_misses", "warm_hits",
                      "warm_misses"):
            check_counter(f"{where}.{field}", base[field], row[field],
                          counter_tol, failures)
        for field in ("cold_ms", "warm_ms"):
            check_time(f"{where}.{field}", base[field], row[field], time_tol,
                       failures)
        if (row["miss_mode"] == "pread" and
                row["warm_cold_ratio"] < OOC_MIN_WARM_COLD_RATIO):
            failures.append(
                f"{where}: warm/cold ratio {row['warm_cold_ratio']:.2f} "
                f"below floor {OOC_MIN_WARM_COLD_RATIO:.1f}")
    return compared


def check_planner(baseline, new, failures, max_vs_best=None,
                  min_static_gap=PLANNER_MIN_STATIC_GAP):
    """BENCH_planner.json rows: the adaptive planner's acceptance gates.

    Grid rows (keyed by data size, query size, backend) gate on
    *within-run* ratios — auto vs the statics measured in the same
    process — so host speed cancels and the bounds stay tight:
      * mismatches must be 0 (the planned path is differential-exact
        against the traditional method on every repetition);
      * auto_vs_best_static <= max_vs_best;
      * on crossover cells (the winning static flips between backends)
        where the statics measurably diverged in the current run, auto
        must beat the worst static outright — a static method pick is
        wrong on one side of the flip by construction.
    The cache row gates exactly: hit/miss counters are deterministic by
    construction (rounds x polygons each) and must equal the baseline;
    any cached-vs-fresh mismatch is a correctness failure.
    """
    if max_vs_best is None:
        max_vs_best = PLANNER_MAX_VS_BEST

    def grid_key(r):
        return (r["data_size"], r["query_size_fraction"], r["backend"])

    base_grid = {grid_key(r): r for r in baseline if r["cell"] == "grid"}
    base_cache = [r for r in baseline if r["cell"] == "cache"]
    compared = 0
    for row in new:
        if row.get("cell") == "grid":
            if grid_key(row) not in base_grid:
                continue
            compared += 1
            where = "planner[{}/{:g}/{}]".format(*grid_key(row))
            if row.get("mismatches", 0) != 0:
                failures.append(
                    f"{where}: {row['mismatches']} auto-vs-traditional "
                    f"result mismatch(es) — planned path broke exactness")
            ratio = row["auto_vs_best_static"]
            if ratio > max_vs_best:
                failures.append(
                    f"{where}: auto_vs_best_static {ratio:.2f} > bound "
                    f"{max_vs_best:.2f} — the planner picked badly")
            static_gap = (row["auto_vs_best_static"] /
                          row["auto_vs_worst_static"]
                          if row["auto_vs_worst_static"] > 0 else 1.0)
            if (row.get("crossover") and static_gap >= min_static_gap and
                    row["auto_vs_worst_static"] >= 1.0):
                failures.append(
                    f"{where}: crossover cell with a {static_gap:.2f}x "
                    f"static gap but auto_vs_worst_static "
                    f"{row['auto_vs_worst_static']:.2f} >= 1 — auto lost "
                    f"to a method a static pick gets wrong by construction")
        elif row.get("cell") == "cache":
            for base in base_cache:
                compared += 1
                for field in ("result_cache_hits", "result_cache_misses"):
                    if row.get(field) != base.get(field):
                        failures.append(
                            f"planner[cache].{field}: {row.get(field)} != "
                            f"baseline {base.get(field)} — deterministic "
                            f"cache counters drifted")
                if row.get("mismatches", 0) != 0:
                    failures.append(
                        f"planner[cache]: {row['mismatches']} cached-vs-"
                        f"fresh mismatch(es) — cache served a wrong result")
    return compared


def check_server(baseline, new, time_tol, failures):
    """BENCH_server.json rows: loopback TCP QPS, keyed by (cell, clients).

    Exact gates first — they are correctness contracts, not perf:
      * mismatches must be 0 (every networked response is checked against
        the in-process planned query before timing);
      * errors must be 0 (a typed server error during a clean loopback
        bench means the happy path broke);
      * shed must be 0 (the bench sizes the engine queue so admission
        control never fires; a shed here means backpressure triggered on
        an unloaded queue).
    Throughput gates with the usual host-speed tolerance: qps may not
    drop below baseline/time_tol, and the p99 latency gets the standard
    slowdown bound. Rows in only one file (a --quick run's subset) are
    skipped, same as every other bench branch.
    """
    base_by_key = {(r["cell"], r["clients"]): r for r in baseline}
    compared = 0
    for row in new:
        key = (row["cell"], row["clients"])
        base = base_by_key.get(key)
        if base is None:
            continue
        compared += 1
        where = f"server[{row['cell']}/c{row['clients']}]"
        if row.get("mismatches", 0) != 0:
            failures.append(
                f"{where}: {row['mismatches']} networked-vs-oracle result "
                f"mismatch(es) — the wire path broke exactness")
        if row.get("errors", 0) != 0:
            failures.append(
                f"{where}: {row['errors']} typed server error(s) during a "
                f"clean loopback run")
        if row.get("shed", 0) != 0:
            failures.append(
                f"{where}: {row['shed']} request(s) shed — admission "
                f"control fired on an unloaded queue")
        if base["qps"] > 0.0 and row["qps"] < base["qps"] / time_tol:
            failures.append(
                f"{where}: qps {row['qps']:.0f} vs baseline "
                f"{base['qps']:.0f} (> {time_tol:.1f}x slower)")
        check_time(f"{where}.latency_p99_ms", base["latency_p99_ms"],
                   row["latency_p99_ms"], time_tol, failures)
    return compared


def check_counter(label, base, new, tol, failures, abs_floor=4.0):
    """Relative-drift gate with a sane zero-baseline regime.

    A zero baseline makes relative drift undefined (the old code divided
    by an epsilon, reporting absurd "5e14%" drifts for any nonzero new
    value), so zero baselines gate on an absolute floor instead: small
    absolute counts appearing where the baseline had none (a new stats
    field, a prune counter that was 0 on this row) pass; a counter class
    materialising out of nowhere fails.
    """
    if base == new:
        return
    if base == 0:
        if abs(new) > abs_floor:
            failures.append(
                f"{label}: baseline 0 but new value {new} "
                f"(> absolute floor {abs_floor:g})")
        return
    drift = abs(new - base) / abs(base)
    if drift > tol:
        failures.append(
            f"{label}: counter drifted {drift * 100.0:.1f}% "
            f"(baseline {base}, new {new}, tol {tol * 100.0:.0f}%)")


def check_time(label, base, new, tol, failures):
    if base <= 0.0:
        return
    if new > base * tol:
        failures.append(
            f"{label}: {new:.4f} ms vs baseline {base:.4f} ms "
            f"(> {tol:.1f}x slower)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--time-tol", type=float, default=3.0)
    parser.add_argument("--counter-tol", type=float, default=0.35)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    failures = []
    if baseline and baseline[0].get("bench") == "classify":
        compared = check_classify(baseline, new, args.time_tol, failures)
    elif baseline and baseline[0].get("bench") == "ooc_scan":
        compared = check_ooc_scan(baseline, new, args.time_tol,
                                  args.counter_tol, failures)
    elif baseline and baseline[0].get("bench") == "server":
        compared = check_server(baseline, new, args.time_tol, failures)
    elif baseline and baseline[0].get("bench") == "planner":
        # Must dispatch before the micro-flood heuristic: planner grid
        # rows do carry a "traditional" key, but their gates are
        # within-run ratios, not cross-run times.
        compared = check_planner(baseline, new, failures)
    elif baseline and "traditional" not in baseline[0]:
        compared = check_micro_flood(baseline, new, args.time_tol,
                                     args.counter_tol, failures)
    else:
        base_by_key = {row_key(r): r for r in baseline}
        compared = 0
        for row in new:
            base = base_by_key.get(row_key(row))
            if base is None:
                continue
            compared += 1
            where = describe(row_key(row))
            for method in METHODS:
                for field in COUNTER_FIELDS:
                    check_counter(f"[{where}] {method}.{field}",
                                  base[method][field], row[method][field],
                                  args.counter_tol, failures)
                for field in TIME_FIELDS:
                    check_time(f"[{where}] {method}.{field}",
                               base[method][field], row[method][field],
                               args.time_tol, failures)
                for field in FAULT_ZERO_FIELDS:
                    value = row[method].get(field, 0)
                    if value != 0:
                        failures.append(
                            f"[{where}] {method}.{field}: {value} != 0 — "
                            f"fault-path hook fired in a no-fault perf row")
            if row.get("mismatches", 0) != 0:
                failures.append(f"[{where}] result-set mismatches: "
                                f"{row['mismatches']}")

    name = args.baseline
    if compared == 0:
        print(f"{name}: no comparable rows (different knob grid) - skipped")
        return 0
    if failures:
        print(f"{name}: {len(failures)} regression(s) over {compared} "
              f"compared row(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"{name}: OK ({compared} row(s) within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
