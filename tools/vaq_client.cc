// vaq_client: one-shot CLI client for a running vaq_server.
//
// Usage:
//   vaq_client --port P query "POLYGON ((...))" [--method M] [--no-cache]
//              [--deadline-ms D] [--ids]
//   vaq_client --port P insert X Y
//   vaq_client --port P erase ID
//   vaq_client --port P compact
//   vaq_client --port P stats
//   vaq_client --port P ping
//
//   --method M       Force a method: voronoi | traditional | grid-sweep |
//                    brute (default: the planner chooses).
//   --no-cache       Bypass the server's result cache for this query.
//   --deadline-ms D  Per-query deadline (server may cap it).
//   --ids            Print every result id (default: count + stats only).
//
// Exit codes (see README):
//   0  success
//   2  bad usage
//   3  connection failure (server not running / wrong port)
//   4  typed server error (the code name is printed, e.g. RETRY_LATER)
//   5  transport/protocol failure mid-conversation

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

int Usage() {
  std::cerr << "usage: vaq_client --port P "
               "(query WKT [--method M] [--no-cache] [--deadline-ms D] "
               "[--ids] | insert X Y | erase ID | compact | stats | ping)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;

  std::uint16_t port = 0;
  std::string command;
  std::vector<std::string> operands;
  WireQueryRequest query;
  bool print_ids = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(Usage());
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--method") {
      const std::string m = value();
      if (m == "voronoi") query.force_method = DynamicMethod::kVoronoi;
      else if (m == "traditional")
        query.force_method = DynamicMethod::kTraditional;
      else if (m == "grid-sweep") query.force_method = DynamicMethod::kGridSweep;
      else if (m == "brute") query.force_method = DynamicMethod::kBruteForce;
      else return Usage();
    } else if (arg == "--no-cache") {
      query.use_cache = false;
    } else if (arg == "--deadline-ms") {
      query.deadline_ms = std::strtod(value(), nullptr);
    } else if (arg == "--ids") {
      print_ids = true;
    } else if (command.empty()) {
      command = arg;
    } else {
      operands.push_back(arg);
    }
  }
  if (port == 0 || command.empty()) return Usage();

  try {
    QueryClient client(port);
    if (command == "query") {
      if (operands.size() != 1) return Usage();
      query.wkt = operands[0];
      const QueryClient::QueryOutcome outcome = client.Query(query);
      std::cout << "results: " << outcome.ids.size()
                << "  candidates: " << outcome.stats.candidates
                << "  plan_method: 0x" << std::hex
                << outcome.stats.plan_method << "  plan_reason: 0x"
                << outcome.stats.plan_reason << std::dec
                << "  cache: " << outcome.stats.result_cache_hits << "h/"
                << outcome.stats.result_cache_misses << "m"
                << "  elapsed_ms: " << outcome.stats.elapsed_ms << "\n";
      if (print_ids) {
        for (const PointId id : outcome.ids) std::cout << id << "\n";
      }
    } else if (command == "insert") {
      if (operands.size() != 2) return Usage();
      const WireMutationResult r =
          client.Insert(std::strtod(operands[0].c_str(), nullptr),
                        std::strtod(operands[1].c_str(), nullptr));
      if (r.ok) {
        std::cout << "inserted id " << r.value << "\n";
      } else {
        std::cout << "rejected (duplicate or invalid point)\n";
      }
    } else if (command == "erase") {
      if (operands.size() != 1) return Usage();
      const WireMutationResult r = client.Erase(static_cast<PointId>(
          std::strtoul(operands[0].c_str(), nullptr, 10)));
      std::cout << (r.ok ? "erased\n" : "no such live id\n");
    } else if (command == "compact") {
      client.Compact();
      std::cout << "compacted\n";
    } else if (command == "stats") {
      const WireServerStats s = client.Stats();
      std::cout << "queries_completed: " << s.queries_completed
                << "\nthroughput_qps: " << s.throughput_qps
                << "\nlatency_p50_ms: " << s.latency_p50_ms
                << "\nlatency_p95_ms: " << s.latency_p95_ms
                << "\nlatency_p99_ms: " << s.latency_p99_ms
                << "\nconnections: " << s.connections_active << " active / "
                << s.connections_total << " total"
                << "\nrequests_total: " << s.requests_total
                << "\nqueries: " << s.queries_ok << " ok, " << s.queries_shed
                << " shed, " << s.queries_rejected << " rejected, "
                << s.queries_aborted << " aborted"
                << "\nmutations_total: " << s.mutations_total
                << "\ndrains_completed: " << s.drains_completed
                << "\nthis_connection: " << s.client_requests << " requests, "
                << s.client_errors << " errors\n";
    } else if (command == "ping") {
      if (!client.Ping()) {
        std::cerr << "vaq_client: pong payload mismatch\n";
        return 5;
      }
      std::cout << "pong\n";
    } else {
      return Usage();
    }
  } catch (const ServerError& e) {
    std::cerr << "vaq_client: server error " << WireErrorCodeName(e.code())
              << ": " << e.what() << "\n";
    return 4;
  } catch (const std::system_error& e) {
    std::cerr << "vaq_client: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "vaq_client: " << e.what() << "\n";
    return 5;
  }
  return 0;
}
