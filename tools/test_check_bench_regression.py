#!/usr/bin/env python3
"""Self-test for the perf-regression gate's matcher and tolerance logic.

Plain unittest (stdlib only) so CI needs no extra packages; the test_*
naming also makes it discoverable by pytest. Run from the repo root:

    python3 -m unittest discover -s tools -p 'test_*.py'
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate


class CounterToleranceTest(unittest.TestCase):
    def check(self, base, new, tol=0.35, **kwargs):
        failures = []
        gate.check_counter("x", base, new, tol, failures, **kwargs)
        return failures

    def test_equal_passes(self):
        self.assertEqual(self.check(100, 100), [])

    def test_drift_within_tolerance_passes(self):
        self.assertEqual(self.check(100, 134), [])
        self.assertEqual(self.check(100, 67), [])

    def test_drift_beyond_tolerance_fails(self):
        self.assertEqual(len(self.check(100, 136)), 1)
        self.assertEqual(len(self.check(100, 10)), 1)

    def test_zero_baseline_zero_new_passes(self):
        self.assertEqual(self.check(0, 0), [])

    def test_zero_baseline_small_new_passes(self):
        # The divide-by-zero regime: a counter that was 0 in the committed
        # baseline (new stats field, prune count of 0 on that row) must
        # not explode into an absurd relative drift.
        self.assertEqual(self.check(0, 3), [])

    def test_zero_baseline_large_new_fails(self):
        failures = self.check(0, 5000)
        self.assertEqual(len(failures), 1)
        self.assertIn("baseline 0", failures[0])

    def test_zero_baseline_custom_floor(self):
        self.assertEqual(self.check(0, 10, abs_floor=10), [])
        self.assertEqual(len(self.check(0, 11, abs_floor=10)), 1)


class TimeToleranceTest(unittest.TestCase):
    def check(self, base, new, tol=3.0):
        failures = []
        gate.check_time("t", base, new, tol, failures)
        return failures

    def test_speedup_and_mild_slowdown_pass(self):
        self.assertEqual(self.check(10.0, 1.0), [])
        self.assertEqual(self.check(10.0, 29.9), [])

    def test_gross_slowdown_fails(self):
        self.assertEqual(len(self.check(10.0, 31.0)), 1)

    def test_zero_baseline_time_is_skipped(self):
        self.assertEqual(self.check(0.0, 100.0), [])


class RowMatchingTest(unittest.TestCase):
    def row(self, **overrides):
        row = {
            "data_size": 100000,
            "query_size_fraction": 0.01,
            "simulated_fetch_ns": 0.0,
            "blocking_fetch": False,
            "num_threads": 1,
            "mismatches": 0,
            "traditional": {"candidates": 100, "geometry_loads": 100,
                            "redundant": 50, "time_ms": 1.0},
            "voronoi": {"candidates": 60, "geometry_loads": 60,
                        "redundant": 10, "time_ms": 0.5},
        }
        for key, value in overrides.items():
            row[key] = value
        return row

    def run_gate(self, baseline, new, extra_args=()):
        """End-to-end through main(), the way CI invokes it."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            new_path = os.path.join(tmp, "new.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(new_path, "w") as f:
                json.dump(new, f)
            script = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "check_bench_regression.py")
            return subprocess.run(
                [sys.executable, script, base_path, new_path, *extra_args],
                capture_output=True, text=True)

    def test_identical_rows_pass(self):
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_unmatched_knob_grid_is_skipped(self):
        result = self.run_gate([self.row()],
                               [self.row(data_size=999)])
        self.assertEqual(result.returncode, 0)
        self.assertIn("no comparable rows", result.stdout)

    def test_sharded_rows_key_on_num_shards(self):
        # Two rows differing only in num_shards must not be confused; a
        # regression in the K=4 row is reported against the K=4 baseline.
        k1 = self.row(num_shards=1)
        k4 = self.row(num_shards=4)
        k4_bad = self.row(num_shards=4)
        k4_bad["traditional"] = dict(k4["traditional"], candidates=1000)
        result = self.run_gate([k1, k4], [k1, k4_bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("num_shards=4", result.stdout)
        self.assertNotIn("num_shards=1]", result.stdout)

    def test_legacy_rows_without_num_shards_still_match(self):
        # Committed baselines predate the num_shards key; both sides
        # resolve it to None and keep matching.
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0)
        self.assertIn("within tolerance", result.stdout)

    def test_result_set_mismatches_fail(self):
        result = self.run_gate([self.row()], [self.row(mismatches=2)])
        self.assertEqual(result.returncode, 1)
        self.assertIn("mismatches", result.stdout)

    def test_counter_regression_fails_and_names_the_row(self):
        bad = self.row()
        bad["voronoi"] = dict(bad["voronoi"], candidates=200)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1)
        self.assertIn("voronoi.candidates", result.stdout)

    def test_micro_flood_shape(self):
        base = [{"data_size": 1000, "query_size_fraction": 0.01,
                 "candidates": 50, "results": 40,
                 "neighbor_expansions": 60, "time_ms": 1.0}]
        good = [dict(base[0], time_ms=1.5)]
        self.assertEqual(self.run_gate(base, good).returncode, 0)
        bad = [dict(base[0], candidates=500)]
        self.assertEqual(self.run_gate(base, bad).returncode, 1)

    def test_backend_key_separates_rows(self):
        # An mmap row must compare against the mmap baseline, not the
        # in-memory one with the same data size.
        mem = self.row(backend="memory")
        mmap_row = self.row(backend="mmap")
        mmap_bad = self.row(backend="mmap")
        mmap_bad["voronoi"] = dict(mmap_bad["voronoi"], candidates=600)
        result = self.run_gate([mem, mmap_row], [mem, mmap_bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("backend=mmap", result.stdout)
        self.assertNotIn("backend=memory]", result.stdout)

    def test_legacy_rows_without_backend_match_memory_rows(self):
        # Baselines committed before the backend knob carry no "backend"
        # key; they must keep gating runs that now write the default.
        result = self.run_gate([self.row()], [self.row(backend="memory")])
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("within tolerance", result.stdout)

    def test_fault_counters_zero_passes(self):
        # Explicit zeros in the failure-domain columns are the expected
        # no-fault shape and must pass against any baseline.
        clean = self.row()
        clean["voronoi"] = dict(clean["voronoi"], io_retries=0,
                                pages_quarantined=0, shards_failed=0,
                                degraded=0)
        result = self.run_gate([self.row()], [clean])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_fault_counters_nonzero_fail_exactly(self):
        # No drift tolerance: even io_retries=1 in a no-fault perf row
        # means a retry hook fired on the happy path.
        for field in ("io_retries", "pages_quarantined", "shards_failed",
                      "degraded"):
            bad = self.row()
            bad["traditional"] = dict(bad["traditional"], **{field: 1})
            result = self.run_gate([self.row()], [bad])
            self.assertEqual(result.returncode, 1, (field, result.stdout))
            self.assertIn(f"traditional.{field}", result.stdout)
            self.assertIn("no-fault perf row", result.stdout)

    def test_fault_counters_absent_pass(self):
        # Runs produced before the failure-domain fields existed carry no
        # such keys; absence means zero, not a failure.
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)


class ClassifyTest(unittest.TestCase):
    def row(self, **overrides):
        row = {
            "bench": "classify", "polygon": "convex16", "arm": "avx2",
            "kind": "convex_half_plane", "kernel_kind": 10, "batch": 4096,
            "points": 1048576, "time_ms": 0.011, "mpoints_per_sec": 370.0,
            "mismatches": 0,
        }
        row.update(overrides)
        return row

    run_gate = RowMatchingTest.run_gate

    def test_identical_rows_pass(self):
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_any_mismatch_fails(self):
        # A single diverging lane is an exactness-contract violation, not a
        # tolerance question.
        result = self.run_gate([self.row()], [self.row(mismatches=1)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("exactness", result.stdout)

    def test_kernel_selection_change_fails(self):
        # The convex polygon silently falling back to the generic grid path
        # is a perf regression the time gate might miss on a fast host.
        bad = self.row(kernel_kind=9, kind="grid_residual")
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("kernel selection changed", result.stdout)

    def test_gross_slowdown_fails(self):
        result = self.run_gate([self.row()], [self.row(time_ms=0.2)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("time_ms", result.stdout)

    def test_missing_avx2_rows_are_skipped(self):
        # A non-AVX2 host produces only scalar rows; the avx2 baseline rows
        # must not fail the run, they just go uncompared.
        scalar = self.row(arm="scalar", kind="grid_residual", kernel_kind=1)
        result = self.run_gate([scalar, self.row()], [scalar])
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 row(s) within tolerance", result.stdout)


class OocScanTest(unittest.TestCase):
    def row(self, **overrides):
        row = {
            "bench": "ooc_scan", "miss_mode": "pread", "points": 500000,
            "page_size": 4096, "cache_pages": 256, "num_pages": 1954,
            "cold_ms": 3.0, "warm_ms": 0.05, "cold_pages_per_sec": 650000.0,
            "warm_pages_per_sec": 39000000.0, "warm_cold_ratio": 60.0,
            "cold_hits": 0, "cold_misses": 1954, "warm_hits": 3908,
            "warm_misses": 0,
        }
        row.update(overrides)
        return row

    run_gate = RowMatchingTest.run_gate

    def test_identical_rows_pass(self):
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_hit_count_regression_fails(self):
        # Warm touches turning into misses is exactly the cache breaking.
        bad = self.row(warm_hits=0, warm_misses=3908)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("warm_hits", result.stdout)

    def test_ratio_floor_fails_collapsed_cache(self):
        bad = self.row(warm_cold_ratio=1.2)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("warm/cold ratio", result.stdout)

    def test_ratio_floor_ignores_mmap_copy_mode(self):
        # The floor encodes the syscall-vs-frame-read gap, which only the
        # pread mode exhibits reliably.
        base = self.row(miss_mode="mmap_copy")
        new = self.row(miss_mode="mmap_copy", warm_cold_ratio=1.2)
        result = self.run_gate([base], [new])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_gross_cold_slowdown_fails(self):
        bad = self.row(cold_ms=30.0)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("cold_ms", result.stdout)


class PlannerTest(unittest.TestCase):
    def grid_row(self, **overrides):
        row = {
            "bench": "planner", "cell": "grid", "data_size": 100000,
            "query_size_fraction": 0.08, "backend": "memory",
            "simulated_fetch_ns": 0.0, "reps": 12, "crossover": True,
            "mismatches": 0,
            "auto": {"time_ms": 1.0, "plan_method": 2, "plan_reason": 1,
                     "result_cache_hits": 0.0, "result_cache_misses": 12.0},
            "traditional": {"time_ms": 1.0}, "voronoi": {"time_ms": 2.0},
            "auto_vs_best_static": 1.0, "auto_vs_worst_static": 0.5,
        }
        row.update(overrides)
        return row

    def cache_row(self, **overrides):
        row = {
            "bench": "planner", "cell": "cache", "rounds": 4, "polygons": 8,
            "result_cache_hits": 32, "result_cache_misses": 32,
            "mismatches": 0,
        }
        row.update(overrides)
        return row

    run_gate = RowMatchingTest.run_gate

    def test_identical_rows_pass(self):
        rows = [self.grid_row(), self.cache_row()]
        result = self.run_gate(rows, rows)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("2 row(s) within tolerance", result.stdout)

    def test_dispatches_to_planner_branch_not_tables(self):
        # Planner grid rows carry a "traditional" key, so the tables
        # branch would happily try (and crash on) them — the explicit
        # bench=="planner" dispatch must win. A within-run ratio far
        # beyond --time-tol's reach proves the planner gates ran.
        bad = self.grid_row(auto_vs_best_static=5.0)
        result = self.run_gate([self.grid_row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("picked badly", result.stdout)

    def test_host_speed_shift_passes(self):
        # A uniformly 4x slower host changes every absolute time but no
        # within-run ratio; the planner gates must not care.
        slow = self.grid_row()
        slow["auto"] = dict(slow["auto"], time_ms=4.0)
        slow["traditional"] = {"time_ms": 4.0}
        slow["voronoi"] = {"time_ms": 8.0}
        result = self.run_gate([self.grid_row()], [slow])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_mismatch_fails(self):
        result = self.run_gate([self.grid_row()],
                               [self.grid_row(mismatches=1)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("exactness", result.stdout)

    def test_crossover_with_diverged_statics_must_beat_worst(self):
        # best/worst gap here is 2.0x (>= the 1.5x floor) and the row is
        # a crossover cell, so auto losing to the worst static fails.
        bad = self.grid_row(auto_vs_best_static=1.7,
                            auto_vs_worst_static=1.1)
        # Recompute so the implied gap stays >= the floor: 1.7/1.1 ≈ 1.55.
        result = self.run_gate([self.grid_row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("auto lost", result.stdout)

    def test_crossover_within_noise_gap_is_not_gated(self):
        # Statics only 1.2x apart: "worst" is machine noise, the strict
        # gate must stand down even on a crossover cell.
        noisy = self.grid_row(auto_vs_best_static=1.3,
                              auto_vs_worst_static=1.08)
        result = self.run_gate([self.grid_row()], [noisy])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_non_crossover_cell_skips_worst_static_gate(self):
        flat = self.grid_row(crossover=False, auto_vs_best_static=1.7,
                             auto_vs_worst_static=1.1)
        base = self.grid_row(crossover=False)
        result = self.run_gate([base], [flat])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_cache_counter_drift_fails_exactly(self):
        # Hits/misses are rounds x polygons by construction; a single
        # stray hit means the invalidation keying broke.
        bad = self.cache_row(result_cache_hits=33)
        result = self.run_gate([self.cache_row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("cache counters drifted", result.stdout)

    def test_cache_mismatch_fails(self):
        bad = self.cache_row(mismatches=1)
        result = self.run_gate([self.cache_row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("wrong result", result.stdout)

    def test_unmatched_grid_cells_are_skipped(self):
        result = self.run_gate([self.grid_row()],
                               [self.grid_row(data_size=999)])
        self.assertEqual(result.returncode, 0)
        self.assertIn("no comparable rows", result.stdout)

    def test_committed_baseline_passes_against_itself(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_planner.json")
        if not os.path.exists(path):
            self.skipTest("no committed BENCH_planner.json")
        with open(path) as f:
            rows = json.load(f)
        result = self.run_gate(rows, rows)
        self.assertEqual(result.returncode, 0, result.stdout)


class ServerTest(unittest.TestCase):
    def row(self, **overrides):
        row = {
            "bench": "server", "cell": "uncached", "clients": 4,
            "data_size": 50000, "query_size_fraction": 0.01, "reps": 400,
            "mismatches": 0, "errors": 0, "shed": 0, "wall_ms": 90.0,
            "qps": 18000.0, "latency_p50_ms": 0.2, "latency_p95_ms": 0.4,
            "latency_p99_ms": 0.6,
        }
        row.update(overrides)
        return row

    run_gate = RowMatchingTest.run_gate

    def test_identical_rows_pass(self):
        result = self.run_gate([self.row()], [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_mismatch_fails_exactly(self):
        # Every networked answer is checked against the in-process oracle
        # before timing; a single divergence is a wire-path correctness bug.
        result = self.run_gate([self.row()], [self.row(mismatches=1)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("exactness", result.stdout)

    def test_error_fails_exactly(self):
        result = self.run_gate([self.row()], [self.row(errors=2)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("server error", result.stdout)

    def test_shed_fails_exactly(self):
        # The bench sizes the queue so admission control never fires; a
        # shed on an unloaded queue means backpressure triggered wrongly.
        result = self.run_gate([self.row()], [self.row(shed=1)])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("admission", result.stdout)

    def test_qps_within_host_tolerance_passes(self):
        # A 2.5x slower CI host stays inside the default 3x time-tol.
        slow = self.row(qps=18000.0 / 2.5, latency_p99_ms=1.5)
        result = self.run_gate([self.row()], [slow])
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_qps_collapse_fails(self):
        bad = self.row(qps=18000.0 / 4.0)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("qps", result.stdout)

    def test_p99_blowup_fails(self):
        bad = self.row(latency_p99_ms=6.0)
        result = self.run_gate([self.row()], [bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("latency_p99_ms", result.stdout)

    def test_rows_key_on_cell_and_clients(self):
        # A cached/8-client regression is reported against its own
        # baseline row, never confused with the uncached/4 row.
        cached8 = self.row(cell="cached", clients=8, qps=55000.0)
        cached8_bad = self.row(cell="cached", clients=8, qps=1000.0)
        result = self.run_gate([self.row(), cached8],
                               [self.row(), cached8_bad])
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("cached/c8", result.stdout)
        self.assertNotIn("uncached/c4", result.stdout)

    def test_quick_subset_skips_unmatched_baseline_rows(self):
        # CI's --quick run may emit fewer client counts than the committed
        # full baseline; the extra baseline rows just go uncompared.
        result = self.run_gate([self.row(), self.row(clients=16)],
                               [self.row()])
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 row(s) within tolerance", result.stdout)

    def test_committed_baseline_passes_against_itself(self):
        path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, "BENCH_server.json")
        if not os.path.exists(path):
            self.skipTest("no committed BENCH_server.json")
        with open(path) as f:
            rows = json.load(f)
        result = self.run_gate(rows, rows)
        self.assertEqual(result.returncode, 0, result.stdout)


if __name__ == "__main__":
    unittest.main()
