// vaq_pack — build, inspect, and verify the on-disk page files (".vpag")
// that back out-of-core storage (see src/storage/page_format.h).
//
//   vaq_pack pack <points.vaqp|points.csv> <out.vpag> [--page-size=4096]
//       Load a point dataset (binary VAQP or CSV), permute it into
//       Hilbert-curve order — the clustering PointDatabase applies, so
//       page locality equals spatial locality — and write a page file.
//   vaq_pack inspect <file.vpag>
//       Validate and print the header (no payload read).
//   vaq_pack verify <file.vpag>
//       Full validation including the payload checksum.
//
// Exit status (distinct per failure domain, so scripts can branch):
//   0  success
//   1  usage error
//   2  malformed page file (typed PageFileError: bad magic, truncation,
//      checksum mismatch, ... — the kind is named in the message)
//   3  page read failure (typed PageReadError: a page of a structurally
//      valid file could not be served — IO fault or quarantined page)
//   4  any other error (filesystem, bad dataset, ...)

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "delaunay/hilbert.h"
#include "storage/page_format.h"
#include "storage/page_store.h"
#include "workload/dataset_io.h"

namespace {

int Usage() {
  std::cerr << "usage: vaq_pack pack <points.vaqp|points.csv> <out.vpag>"
               " [--page-size=4096]\n"
               "       vaq_pack inspect <file.vpag>\n"
               "       vaq_pack verify <file.vpag>\n";
  return 1;
}

const char* KindName(vaq::PageFileError::Kind kind) {
  switch (kind) {
    case vaq::PageFileError::Kind::kIo: return "io";
    case vaq::PageFileError::Kind::kTruncated: return "truncated";
    case vaq::PageFileError::Kind::kBadMagic: return "bad-magic";
    case vaq::PageFileError::Kind::kBadVersion: return "bad-version";
    case vaq::PageFileError::Kind::kBadPageSize: return "bad-page-size";
    case vaq::PageFileError::Kind::kPageSizeMismatch:
      return "page-size-mismatch";
    case vaq::PageFileError::Kind::kChecksumMismatch:
      return "checksum-mismatch";
  }
  return "unknown";
}

bool LoadPoints(const std::string& path, std::vector<vaq::Point>* points) {
  // Try the exact binary format first, fall back to CSV; both loaders
  // reject malformed input and leave *points empty.
  return vaq::LoadPointsBinary(path, points) ||
         vaq::LoadPointsCsv(path, points);
}

int Pack(const std::string& in, const std::string& out,
         std::uint32_t page_size) {
  std::vector<vaq::Point> points;
  if (!LoadPoints(in, &points)) {
    std::cerr << "vaq_pack: cannot load points from " << in
              << " (not a VAQP binary or x,y CSV file)\n";
    return 4;
  }
  const std::vector<vaq::PointId> to_original = vaq::HilbertOrder(points);
  std::vector<double> xs(points.size()), ys(points.size());
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    xs[i] = points[to_original[i]].x;
    ys[i] = points[to_original[i]].y;
  }
  vaq::WritePageFile(out, xs.data(), ys.data(), points.size(), page_size);
  const vaq::PageFileHeader header = vaq::ReadPageFileHeader(out);
  std::cout << "packed " << header.point_count << " points into "
            << header.NumPages() << " pages of " << header.page_size_bytes
            << " bytes (" << header.PointsPerPage() << " points/page) -> "
            << out << "\n";
  return 0;
}

int Inspect(const std::string& path) {
  const vaq::PageFileHeader header = vaq::ReadPageFileHeader(path);
  std::cout << "file:            " << path << "\n"
            << "format:          VPAG v" << vaq::kPageFileVersion << "\n"
            << "page_size_bytes: " << header.page_size_bytes << "\n"
            << "points_per_page: " << header.PointsPerPage() << "\n"
            << "point_count:     " << header.point_count << "\n"
            << "num_pages:       " << header.NumPages() << "\n"
            << "payload_bytes:   " << header.PayloadBytes() << "\n"
            << "checksum:        0x" << std::hex << header.payload_checksum
            << std::dec << "\n";
  return 0;
}

int Verify(const std::string& path) {
  vaq::PageStore::Options options;
  options.cache_pages = 1;  // Verification needs no cache to speak of.
  options.verify_checksum = true;
  std::unique_ptr<vaq::PageStore> store = vaq::PageStore::Open(path, options);
  std::cout << "ok: " << store->point_count() << " points, "
            << store->num_pages() << " pages, checksum verified\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "pack") {
      if (argc < 4) return Usage();
      std::uint32_t page_size = 4096;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--page-size=";
        if (arg.rfind(prefix, 0) == 0) {
          page_size =
              static_cast<std::uint32_t>(std::stoul(arg.substr(prefix.size())));
        } else {
          return Usage();
        }
      }
      return Pack(argv[2], argv[3], page_size);
    }
    if (cmd == "inspect") return Inspect(argv[2]);
    if (cmd == "verify") return Verify(argv[2]);
  } catch (const vaq::PageFileError& e) {
    std::cerr << "vaq_pack: " << KindName(e.kind()) << ": " << e.what()
              << "\n";
    return 2;
  } catch (const vaq::PageReadError& e) {
    std::cerr << "vaq_pack: page " << e.page() << " unreadable: " << e.what()
              << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "vaq_pack: " << e.what() << "\n";
    return 4;
  }
  return Usage();
}
