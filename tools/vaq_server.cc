// vaq_server: serve a point database over the VQRY protocol (loopback).
//
// Usage:
//   vaq_server [--port P] [--points N | --load FILE] [--seed S]
//              [--threads T] [--queue-capacity Q] [--max-deadline-ms D]
//
//   --port P             TCP port on 127.0.0.1 (default 0 = ephemeral;
//                        the bound port is printed either way).
//   --points N           Serve N uniform points in the unit square
//                        (default 100000).
//   --load FILE          Serve points from FILE instead (binary .vqp via
//                        SavePointsBinary, or CSV "x,y" lines — format
//                        sniffed by extension: .csv = CSV, else binary).
//   --seed S             Generator seed for --points (default 42).
//   --threads T          Engine worker threads (default 0 = hardware).
//   --queue-capacity Q   Engine admission bound (default 256). A full
//                        queue sheds with RETRY_LATER.
//   --max-deadline-ms D  Ceiling on client-requested deadlines (default
//                        0 = none).
//
// The server runs until SIGINT/SIGTERM, then drains and exits.
//
// Exit codes (see README):
//   0  clean shutdown on SIGINT/SIGTERM
//   2  bad usage (unknown flag, malformed value)
//   3  bind/listen failure (port taken, permissions)
//   4  dataset failure (file unreadable/malformed, or invalid point set)

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/query_server.h"
#include "workload/dataset_io.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseUint(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;

  QueryServer::Options options;
  std::uint64_t num_points = 100000;
  std::uint64_t seed = 42;
  std::string load_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "vaq_server: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--port") {
      if (!ParseUint(value(), &n) || n > 65535) std::exit(2);
      options.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--points") {
      if (!ParseUint(value(), &n) || n == 0) std::exit(2);
      num_points = n;
    } else if (arg == "--load") {
      load_path = value();
    } else if (arg == "--seed") {
      if (!ParseUint(value(), &n)) std::exit(2);
      seed = n;
    } else if (arg == "--threads") {
      if (!ParseUint(value(), &n) || n > 1024) std::exit(2);
      options.engine_threads = static_cast<int>(n);
    } else if (arg == "--queue-capacity") {
      if (!ParseUint(value(), &n) || n == 0) std::exit(2);
      options.engine_queue_capacity = n;
    } else if (arg == "--max-deadline-ms") {
      options.max_deadline_ms = std::strtod(value(), nullptr);
    } else {
      std::cerr << "vaq_server: unknown flag " << arg << "\n";
      return 2;
    }
  }

  std::vector<Point> points;
  if (!load_path.empty()) {
    const bool csv = load_path.size() > 4 &&
                     load_path.compare(load_path.size() - 4, 4, ".csv") == 0;
    const bool ok = csv ? LoadPointsCsv(load_path, &points)
                        : LoadPointsBinary(load_path, &points);
    if (!ok || points.empty()) {
      std::cerr << "vaq_server: failed to load points from " << load_path
                << "\n";
      return 4;
    }
  } else {
    Rng rng(seed);
    points = GenerateUniformPoints(num_points, Box{{0.0, 0.0}, {1.0, 1.0}},
                                   &rng);
  }

  std::unique_ptr<DynamicPointDatabase> db;
  try {
    db = std::make_unique<DynamicPointDatabase>(std::move(points));
  } catch (const std::exception& e) {
    std::cerr << "vaq_server: invalid point set: " << e.what() << "\n";
    return 4;
  }

  std::unique_ptr<QueryServer> server;
  try {
    server = std::make_unique<QueryServer>(db.get(), options);
  } catch (const std::system_error& e) {
    std::cerr << "vaq_server: " << e.what() << "\n";
    return 3;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  server->Start();
  std::cout << "vaq_server: serving " << db->Size() << " points on 127.0.0.1:"
            << server->port() << std::endl;

  while (!g_stop) {
    timespec ts{0, 100 * 1000 * 1000};  // 100 ms between signal polls.
    nanosleep(&ts, nullptr);
  }

  std::cout << "vaq_server: draining and shutting down\n";
  server->Stop();
  const QueryServer::Counters c = server->counters();
  std::cout << "vaq_server: served " << c.requests_total << " requests ("
            << c.queries_ok << " queries ok, " << c.queries_shed << " shed, "
            << c.queries_rejected << " rejected, " << c.queries_aborted
            << " aborted, " << c.mutations_total << " mutations)\n";
  return 0;
}
