// Logistics scenario: a delivery company repeatedly evaluates irregular
// delivery zones (drawn by planners, almost never rectangles) against a
// large customer database. This example sweeps a morning's worth of zone
// queries and totals the work both area-query implementations perform —
// the aggregate view of the paper's Table II.

#include <cstdio>
#include <vector>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;
  const Box region{{0.0, 0.0}, {1.0, 1.0}};

  // 300k customers, mildly clustered (suburbs + downtown).
  Rng rng(77);
  PointDatabase db(GenerateClusteredPoints(300000, region, /*clusters=*/40,
                                           /*sigma_fraction=*/0.05, &rng));
  // Model per-customer record IO: 500ns per geometry fetch (a warm page
  // cache; see DESIGN.md on the simulated IO cost model).
  db.set_simulated_fetch_ns(500);

  TraditionalAreaQuery traditional(&db);
  VoronoiAreaQuery voronoi(&db);

  // 150 planner-drawn zones of mixed size (0.5% .. 8% of the region MBR).
  Rng qrng(78);
  std::vector<Polygon> zones;
  for (int i = 0; i < 150; ++i) {
    PolygonSpec spec;
    spec.vertices = 12;
    spec.query_size_fraction = qrng.Uniform(0.005, 0.08);
    zones.push_back(GenerateQueryPolygon(spec, region, &qrng));
  }

  QueryStats total_trad, total_vaq, stats;
  std::size_t customers_total = 0;
  int disagreements = 0;
  for (const Polygon& zone : zones) {
    const auto tr = traditional.Run(zone, &stats);
    total_trad += stats;
    const auto vr = voronoi.Run(zone, &stats);
    total_vaq += stats;
    customers_total += vr.size();
    if (tr != vr) ++disagreements;
  }

  std::printf("delivery-zone sweep: %zu zones over %zu customers\n",
              zones.size(), db.size());
  std::printf("customers matched in total: %zu (disagreements: %d)\n\n",
              customers_total, disagreements);
  std::printf("%-13s %14s %14s %14s %12s\n", "method", "candidates",
              "redundant", "record IOs", "time(ms)");
  std::printf("%-13s %14llu %14llu %14llu %12.1f\n", "traditional",
              static_cast<unsigned long long>(total_trad.candidates),
              static_cast<unsigned long long>(total_trad.RedundantValidations()),
              static_cast<unsigned long long>(total_trad.geometry_loads),
              total_trad.elapsed_ms);
  std::printf("%-13s %14llu %14llu %14llu %12.1f\n", "voronoi",
              static_cast<unsigned long long>(total_vaq.candidates),
              static_cast<unsigned long long>(total_vaq.RedundantValidations()),
              static_cast<unsigned long long>(total_vaq.geometry_loads),
              total_vaq.elapsed_ms);
  std::printf("\nsaved by the Voronoi method: %.1f%% of record IOs, %.1f%% of time\n",
              100.0 * (1.0 - static_cast<double>(total_vaq.geometry_loads) /
                                 static_cast<double>(total_trad.geometry_loads)),
              100.0 * (1.0 - total_vaq.elapsed_ms / total_trad.elapsed_ms));
  return disagreements == 0 ? 0 : 1;
}
