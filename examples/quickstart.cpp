// Quickstart: build a point database, run an area query both ways, compare.
//
// This is the 60-second tour of the library: generate points, wrap them in
// a PointDatabase (R-tree + Delaunay), define a concave query polygon, and
// run the traditional filter-refine query next to the paper's
// Voronoi-based incremental query.

#include <cstdio>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;

  // 1. A database of 50,000 uniform random points in the unit square.
  Rng rng(7);
  const Box domain{{0.0, 0.0}, {1.0, 1.0}};
  PointDatabase db(GenerateUniformPoints(50000, domain, &rng));
  std::printf("database: %zu points, R-tree height %d, %zu Delaunay triangles\n",
              db.size(), db.rtree().Height(), db.delaunay().num_triangles());

  // 2. A concave 10-vertex query area covering ~2%% of the domain's MBR.
  PolygonSpec spec;
  spec.query_size_fraction = 0.02;
  const Polygon area = GenerateQueryPolygon(spec, domain, &rng);
  std::printf("query area: %d vertices, area=%.4f, MBR area=%.4f (ratio %.2f)\n",
              static_cast<int>(area.size()), area.Area(),
              area.Bounds().Area(), area.Area() / area.Bounds().Area());

  // 3. Run both implementations.
  TraditionalAreaQuery traditional(&db);
  VoronoiAreaQuery voronoi(&db);
  QueryStats trad_stats, vaq_stats;
  const auto trad_result = traditional.Run(area, &trad_stats);
  const auto vaq_result = voronoi.Run(area, &vaq_stats);

  std::printf("\n%-14s %10s %12s %12s %10s\n", "method", "results",
              "candidates", "redundant", "time(ms)");
  std::printf("%-14s %10zu %12llu %12llu %10.3f\n", "traditional",
              trad_result.size(),
              static_cast<unsigned long long>(trad_stats.candidates),
              static_cast<unsigned long long>(trad_stats.RedundantValidations()),
              trad_stats.elapsed_ms);
  std::printf("%-14s %10zu %12llu %12llu %10.3f\n", "voronoi",
              vaq_result.size(),
              static_cast<unsigned long long>(vaq_stats.candidates),
              static_cast<unsigned long long>(vaq_stats.RedundantValidations()),
              vaq_stats.elapsed_ms);

  std::printf("\nresults identical: %s\n",
              trad_result == vaq_result ? "yes" : "NO (bug!)");
  return trad_result == vaq_result ? 0 : 1;
}
