// Quickstart: build a point database, run an area query both ways, compare,
// then push a batch through the multi-threaded QueryEngine.
//
// This is the 60-second tour of the library: generate points, wrap them in
// a PointDatabase (R-tree + Delaunay), define a concave query polygon, and
// run the traditional filter-refine query next to the paper's
// Voronoi-based incremental query — first directly, then as a parallel
// batch through the engine.

#include <cstdio>
#include <vector>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "engine/query_engine.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;

  // 1. A database of 50,000 uniform random points in the unit square.
  Rng rng(7);
  const Box domain{{0.0, 0.0}, {1.0, 1.0}};
  PointDatabase db(GenerateUniformPoints(50000, domain, &rng));
  std::printf("database: %zu points, R-tree height %d, %zu Delaunay triangles\n",
              db.size(), db.rtree().Height(), db.delaunay().num_triangles());

  // 2. A concave 10-vertex query area covering ~2%% of the domain's MBR.
  PolygonSpec spec;
  spec.query_size_fraction = 0.02;
  const Polygon area = GenerateQueryPolygon(spec, domain, &rng);
  std::printf("query area: %d vertices, area=%.4f, MBR area=%.4f (ratio %.2f)\n",
              static_cast<int>(area.size()), area.Area(),
              area.Bounds().Area(), area.Area() / area.Bounds().Area());

  // 3. Run both implementations.
  TraditionalAreaQuery traditional(&db);
  VoronoiAreaQuery voronoi(&db);
  QueryStats trad_stats, vaq_stats;
  const auto trad_result = traditional.Run(area, &trad_stats);
  const auto vaq_result = voronoi.Run(area, &vaq_stats);

  std::printf("\n%-14s %10s %12s %12s %10s\n", "method", "results",
              "candidates", "redundant", "time(ms)");
  std::printf("%-14s %10zu %12llu %12llu %10.3f\n", "traditional",
              trad_result.size(),
              static_cast<unsigned long long>(trad_stats.candidates),
              static_cast<unsigned long long>(trad_stats.RedundantValidations()),
              trad_stats.elapsed_ms);
  std::printf("%-14s %10zu %12llu %12llu %10.3f\n", "voronoi",
              vaq_result.size(),
              static_cast<unsigned long long>(vaq_stats.candidates),
              static_cast<unsigned long long>(vaq_stats.RedundantValidations()),
              vaq_stats.elapsed_ms);

  std::printf("\nresults identical: %s\n",
              trad_result == vaq_result ? "yes" : "NO (bug!)");
  if (trad_result != vaq_result) return 1;

  // 4. The same comparison as a parallel batch: query objects are
  // stateless, so one engine serves both methods from a 4-thread pool.
  QueryEngine engine({.num_threads = 4});
  const int trad_id = engine.RegisterMethod(&traditional);
  const int vaq_id = engine.RegisterMethod(&voronoi);

  std::vector<Polygon> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(GenerateQueryPolygon(spec, domain, &rng));
  }
  const auto trad_batch = engine.RunBatch(batch, trad_id);
  const auto vaq_batch = engine.RunBatch(batch, vaq_id);
  int batch_mismatches = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (trad_batch[i].ids != vaq_batch[i].ids) ++batch_mismatches;
  }

  const EngineStats es = engine.Stats();
  std::printf("\nengine: %d threads, %llu queries, %.0f q/s, "
              "latency p50/p95/p99 = %.3f/%.3f/%.3f ms\n",
              engine.num_threads(),
              static_cast<unsigned long long>(es.queries_completed),
              es.throughput_qps, es.latency_p50_ms, es.latency_p95_ms,
              es.latency_p99_ms);
  for (const MethodEngineStats& m : es.methods) {
    std::printf("  %-14s %6llu queries %12llu candidates %10llu loads\n",
                m.name.c_str(), static_cast<unsigned long long>(m.queries),
                static_cast<unsigned long long>(m.totals.candidates),
                static_cast<unsigned long long>(m.totals.geometry_loads));
  }
  std::printf("batch mismatches across %zu polygons: %d\n", batch.size(),
              batch_mismatches);
  return batch_mismatches == 0 ? 0 : 1;
}
