// City points-of-interest scenario (the paper's GIS motivation): a city of
// clustered POIs (shops, stations, facilities concentrate in districts),
// queried with an irregular concave "district boundary" polygon — the case
// where window-filtering wastes the most work.
//
// Demonstrates: clustered data, a hand-drawn concave district, per-method
// cost accounting, and the explicit Voronoi diagram for a
// nearest-facility lookup.

#include <cstdio>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "delaunay/voronoi.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;
  const Box city{{0.0, 0.0}, {10.0, 10.0}};  // 10km x 10km.

  // 1. 120k POIs concentrated around 25 district centres.
  Rng rng(2020);
  PointDatabase db(
      GenerateClusteredPoints(120000, city, /*clusters=*/25,
                              /*sigma_fraction=*/0.03, &rng));
  std::printf("city database: %zu POIs, bounds [%.1f,%.1f]x[%.1f,%.1f]\n",
              db.size(), db.bounds().min.x, db.bounds().max.x,
              db.bounds().min.y, db.bounds().max.y);

  // 2. A concave riverside district: a bent strip along a diagonal.
  const Polygon district({{1.0, 1.0},
                          {4.0, 1.5},
                          {6.5, 3.5},
                          {9.0, 4.0},
                          {9.0, 5.5},
                          {6.0, 5.0},
                          {3.5, 3.0},
                          {1.0, 2.5}});
  std::printf(
      "district: area %.2f km^2, MBR %.2f km^2 (only %.0f%% of its MBR)\n",
      district.Area(), district.Bounds().Area(),
      100.0 * district.Area() / district.Bounds().Area());

  // 3. Count POIs in the district both ways.
  TraditionalAreaQuery traditional(&db);
  VoronoiAreaQuery voronoi(&db);
  QueryStats ts, vs;
  const auto trad_result = traditional.Run(district, &ts);
  const auto vaq_result = voronoi.Run(district, &vs);

  std::printf("\nPOIs in district: %zu (methods agree: %s)\n",
              trad_result.size(), trad_result == vaq_result ? "yes" : "NO");
  std::printf("  traditional: %llu candidates, %llu redundant, %llu index pages\n",
              static_cast<unsigned long long>(ts.candidates),
              static_cast<unsigned long long>(ts.RedundantValidations()),
              static_cast<unsigned long long>(ts.index_node_accesses));
  std::printf("  voronoi    : %llu candidates, %llu redundant, %llu index pages\n",
              static_cast<unsigned long long>(vs.candidates),
              static_cast<unsigned long long>(vs.RedundantValidations()),
              static_cast<unsigned long long>(vs.index_node_accesses));
  std::printf("  candidate savings: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(vs.candidates) /
                                 static_cast<double>(ts.candidates)));

  // 4. Bonus: service area of the POI nearest to the city centre, straight
  // from the Voronoi diagram (paper Property 3: its cell is exactly the
  // region it serves).
  const PointId central = db.rtree().NearestNeighbor(city.Center());
  const VoronoiDiagram& vd = db.voronoi();
  std::printf(
      "\nPOI nearest to city centre: #%u at (%.3f, %.3f); its service cell "
      "covers %.4f km^2 across %zu corners\n",
      central, db.points()[central].x, db.points()[central].y,
      vd.CellArea(central), vd.cell(central).size());
  return trad_result == vaq_result ? 0 : 1;
}
