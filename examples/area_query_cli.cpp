// File-driven area-query CLI: load a point dataset and a query polygon
// from disk, run the chosen implementation, print result ids and cost
// counters. This is the adoption path for external data (e.g. a public
// POI extract exported to CSV).
//
// Usage:
//   area_query_cli <points.{vaqp|csv}> <polygon.csv> [method] [--ids]
//                  [--backend=memory|mmap|mmap_uring]
//                  [--cache-pages=N] [--page-size=B]
//     method: voronoi (default) | traditional | grid-sweep | brute |
//       auto | all. `auto` routes through the adaptive planner
//       (src/planner): the cost model picks the method per query and the
//       CLI prints the choice and its reasons before the stats line.
//     --ids : print the matching point ids (one per line) after the stats
//     --backend: what serves the point geometry — in-memory arrays
//       (default) or an mmap page file behind an LRU cache of N pages of
//       B bytes (see src/storage/page_store.h); out-of-core when N pages
//       hold less than the dataset. Results are backend-invariant; the
//       page columns of the stats line are live only on mmap backends.
//
// Point files: binary (VAQP magic, see workload/dataset_io.h) by ".vaqp"
// extension, otherwise CSV "x,y" lines. Polygon files: CSV ring.
//
// Exit status — the one authoritative table, printed by the usage text
// too so scripts can branch without reading the source (failure domains
// in DESIGN.md §12):
//   0  success
//   1  bad input data (unreadable/empty points, bad polygon, duplicates)
//   2  usage error (unknown flag, backend or method)
//   3  malformed page file (corrupt header/truncation, PageFileError)
//   4  page read failure (IO fault / quarantined page, PageReadError)
//   5  query aborted (deadline or cancellation, QueryAbortedError)
//   6  engine unavailable (stopped or overloaded admission-rejection,
//      EngineStoppedError / EngineOverloadedError — see
//      src/engine/errors.h)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/cancel.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "engine/errors.h"
#include "planner/planned_area_query.h"
#include "storage/page_format.h"
#include "storage/page_store.h"
#include "workload/dataset_io.h"

namespace {

using namespace vaq;

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string PlanReasonString(std::uint64_t reason) {
  static constexpr struct {
    std::uint64_t bit;
    const char* name;
  } kBits[] = {
      {plan_reason::kSeedModel, "seed-model"},
      {plan_reason::kLearnedModel, "learned-model"},
      {plan_reason::kForced, "forced"},
      {plan_reason::kCacheHit, "cache-hit"},
      {plan_reason::kIoBound, "io-bound"},
      {plan_reason::kTinyData, "tiny-data"},
      {plan_reason::kScatter, "scatter"},
      {plan_reason::kInline, "inline"},
  };
  std::string s;
  for (const auto& b : kBits) {
    if ((reason & b.bit) == 0) continue;
    if (!s.empty()) s += ",";
    s += b.name;
  }
  return s.empty() ? "none" : s;
}

void RunOne(const PointDatabase& db, const AreaQuery& query,
            const Polygon& area, bool print_ids) {
  QueryStats stats;
  const std::vector<PointId> result = query.Run(area, &stats);
  std::printf("%-12s results=%zu candidates=%llu redundant=%llu "
              "fetches=%llu index_pages=%llu time=%.3fms\n",
              std::string(query.Name()).c_str(), result.size(),
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.RedundantValidations()),
              static_cast<unsigned long long>(stats.geometry_loads),
              static_cast<unsigned long long>(stats.index_node_accesses),
              stats.elapsed_ms);
  if (db.storage_backend() != StorageBackend::kInMemory) {
    std::printf("%-12s pages=%llu cache_hits=%llu cache_misses=%llu\n", "",
                static_cast<unsigned long long>(stats.pages_touched),
                static_cast<unsigned long long>(stats.page_cache_hits),
                static_cast<unsigned long long>(stats.page_cache_misses));
  }
  if (print_ids) {
    // Ids are printed in the caller's frame of reference: the database
    // stores points Hilbert-relabelled, so map each internal id back to
    // its position in the input file — and print ascending, as before
    // the relabelling.
    std::vector<PointId> original;
    original.reserve(result.size());
    for (const PointId id : result) original.push_back(db.OriginalId(id));
    std::sort(original.begin(), original.end());
    for (const PointId id : original) std::printf("%u\n", id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <points.{vaqp|csv}> <polygon.csv> "
                 "[voronoi|traditional|grid-sweep|brute|auto|all] [--ids]\n"
                 "       [--backend=memory|mmap|mmap_uring] "
                 "[--cache-pages=N] [--page-size=B]\n"
                 "  auto: adaptive planner picks the method per query "
                 "(choice and reasons are printed)\n"
                 "exit codes: 0 success; 1 bad input data; 2 usage error; "
                 "3 malformed page file;\n"
                 "  4 page read failure; 5 query aborted "
                 "(deadline/cancellation); 6 engine unavailable\n"
                 "  (stopped/overloaded)\n",
                 argv[0]);
    return 2;
  }
  const std::string points_path = argv[1];
  const std::string polygon_path = argv[2];
  std::string method = "voronoi";
  bool print_ids = false;
  PointDatabase::Options db_options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ids") {
      print_ids = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string backend = arg.substr(10);
      if (backend == "memory") {
        db_options.storage.backend = StorageBackend::kInMemory;
      } else if (backend == "mmap") {
        db_options.storage.backend = StorageBackend::kMmap;
      } else if (backend == "mmap_uring") {
        db_options.storage.backend = StorageBackend::kMmapUring;
      } else {
        std::fprintf(stderr, "error: unknown backend '%s'\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg.rfind("--cache-pages=", 0) == 0) {
      db_options.storage.cache_pages = std::stoull(arg.substr(14));
    } else if (arg.rfind("--page-size=", 0) == 0) {
      db_options.storage.page_size_bytes =
          static_cast<std::uint32_t>(std::stoul(arg.substr(12)));
    } else {
      method = arg;
    }
  }

  std::vector<Point> points;
  const bool loaded = EndsWith(points_path, ".vaqp")
                          ? LoadPointsBinary(points_path, &points)
                          : LoadPointsCsv(points_path, &points);
  if (!loaded || points.empty()) {
    std::fprintf(stderr, "error: cannot load points from %s\n",
                 points_path.c_str());
    return 1;
  }
  Polygon area;
  if (!LoadPolygonCsv(polygon_path, &area)) {
    std::fprintf(stderr, "error: cannot load polygon from %s\n",
                 polygon_path.c_str());
    return 1;
  }
  if (!area.IsSimple()) {
    std::fprintf(stderr, "error: polygon ring is self-intersecting\n");
    return 1;
  }

  std::printf("# %zu points, %zu-vertex query area (%.4g of its MBR)\n",
              points.size(), area.size(), area.Area() / area.Bounds().Area());
  // The database enforces pairwise distinctness (the Delaunay builder's
  // precondition); report the offending rows in the caller's frame — the
  // point order of the input file (comment/blank lines excluded).
  // Failure exits map 1:1 to the exception types caught below; the
  // code table lives in the header comment (and the usage text) only.
  std::unique_ptr<PointDatabase> db_holder;
  try {
    db_holder = std::make_unique<PointDatabase>(std::move(points), db_options);

    const PointDatabase& db = *db_holder;
    if (method == "voronoi" || method == "all") {
      RunOne(db, VoronoiAreaQuery(&db), area, print_ids && method != "all");
    }
    if (method == "traditional" || method == "all") {
      RunOne(db, TraditionalAreaQuery(&db), area,
             print_ids && method != "all");
    }
    if (method == "grid-sweep" || method == "all") {
      RunOne(db, GridSweepAreaQuery(&db), area, print_ids && method != "all");
    }
    if (method == "brute" || method == "all") {
      RunOne(db, BruteForceAreaQuery(&db), area, print_ids && method != "all");
    }
    if (method == "auto" || method == "all") {
      const PlannedAreaQuery planned(&db);
      const QueryPlan plan = planned.PlanFor(area);
      std::printf(
          "# planner: method=%s reason=%s predicted_candidates=%.0f "
          "predicted_cost=%.3fms\n",
          std::string(MethodName(plan.method)).c_str(),
          PlanReasonString(plan.reason).c_str(), plan.predicted_candidates,
          plan.predicted_cost_ns / 1e6);
      RunOne(db, planned, area, print_ids && method != "all");
    }
  } catch (const DuplicatePointError& e) {
    std::fprintf(stderr,
                 "error: %s: duplicate point (%.17g, %.17g) at input rows "
                 "%zu and %zu (0-based, comment/blank lines excluded)\n",
                 points_path.c_str(), e.point().x, e.point().y,
                 e.first_index(), e.second_index());
    return 1;
  } catch (const PageFileError& e) {
    std::fprintf(stderr, "error: malformed page file: %s\n", e.what());
    return 3;
  } catch (const PageReadError& e) {
    std::fprintf(stderr, "error: page read failed: %s\n", e.what());
    return 4;
  } catch (const QueryAbortedError& e) {
    std::fprintf(stderr, "error: query aborted: %s\n", e.what());
    return 5;
  } catch (const EngineStoppedError& e) {
    std::fprintf(stderr, "error: engine unavailable: %s\n", e.what());
    return 6;
  } catch (const EngineOverloadedError& e) {
    std::fprintf(stderr, "error: engine unavailable: %s\n", e.what());
    return 6;
  }
  if (method != "voronoi" && method != "traditional" &&
      method != "grid-sweep" && method != "brute" && method != "auto" &&
      method != "all") {
    std::fprintf(stderr, "error: unknown method '%s'\n", method.c_str());
    return 2;
  }
  return 0;
}
