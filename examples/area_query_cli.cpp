// File-driven area-query CLI: load a point dataset and a query polygon
// from disk, run the chosen implementation, print result ids and cost
// counters. This is the adoption path for external data (e.g. a public
// POI extract exported to CSV).
//
// Usage:
//   area_query_cli <points.{vaqp|csv}> <polygon.csv> [method] [--ids]
//                  [--backend=memory|mmap|mmap_uring]
//                  [--cache-pages=N] [--page-size=B]
//     method: voronoi (default) | traditional | grid-sweep | brute | all
//     --ids : print the matching point ids (one per line) after the stats
//     --backend: what serves the point geometry — in-memory arrays
//       (default) or an mmap page file behind an LRU cache of N pages of
//       B bytes (see src/storage/page_store.h); out-of-core when N pages
//       hold less than the dataset. Results are backend-invariant; the
//       page columns of the stats line are live only on mmap backends.
//
// Point files: binary (VAQP magic, see workload/dataset_io.h) by ".vaqp"
// extension, otherwise CSV "x,y" lines. Polygon files: CSV ring.
//
// Exit status: 0 success; 1 bad input data; 2 usage error; 3 malformed
// page file; 4 page read failure (IO fault / quarantined page); 5 query
// aborted (deadline/cancellation). See DESIGN.md §12.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/cancel.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "storage/page_format.h"
#include "storage/page_store.h"
#include "workload/dataset_io.h"

namespace {

using namespace vaq;

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void RunOne(const PointDatabase& db, const AreaQuery& query,
            const Polygon& area, bool print_ids) {
  QueryStats stats;
  const std::vector<PointId> result = query.Run(area, &stats);
  std::printf("%-12s results=%zu candidates=%llu redundant=%llu "
              "fetches=%llu index_pages=%llu time=%.3fms\n",
              std::string(query.Name()).c_str(), result.size(),
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.RedundantValidations()),
              static_cast<unsigned long long>(stats.geometry_loads),
              static_cast<unsigned long long>(stats.index_node_accesses),
              stats.elapsed_ms);
  if (db.storage_backend() != StorageBackend::kInMemory) {
    std::printf("%-12s pages=%llu cache_hits=%llu cache_misses=%llu\n", "",
                static_cast<unsigned long long>(stats.pages_touched),
                static_cast<unsigned long long>(stats.page_cache_hits),
                static_cast<unsigned long long>(stats.page_cache_misses));
  }
  if (print_ids) {
    // Ids are printed in the caller's frame of reference: the database
    // stores points Hilbert-relabelled, so map each internal id back to
    // its position in the input file — and print ascending, as before
    // the relabelling.
    std::vector<PointId> original;
    original.reserve(result.size());
    for (const PointId id : result) original.push_back(db.OriginalId(id));
    std::sort(original.begin(), original.end());
    for (const PointId id : original) std::printf("%u\n", id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <points.{vaqp|csv}> <polygon.csv> "
                 "[voronoi|traditional|grid-sweep|brute|all] [--ids]\n"
                 "       [--backend=memory|mmap|mmap_uring] "
                 "[--cache-pages=N] [--page-size=B]\n",
                 argv[0]);
    return 2;
  }
  const std::string points_path = argv[1];
  const std::string polygon_path = argv[2];
  std::string method = "voronoi";
  bool print_ids = false;
  PointDatabase::Options db_options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ids") {
      print_ids = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string backend = arg.substr(10);
      if (backend == "memory") {
        db_options.storage.backend = StorageBackend::kInMemory;
      } else if (backend == "mmap") {
        db_options.storage.backend = StorageBackend::kMmap;
      } else if (backend == "mmap_uring") {
        db_options.storage.backend = StorageBackend::kMmapUring;
      } else {
        std::fprintf(stderr, "error: unknown backend '%s'\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg.rfind("--cache-pages=", 0) == 0) {
      db_options.storage.cache_pages = std::stoull(arg.substr(14));
    } else if (arg.rfind("--page-size=", 0) == 0) {
      db_options.storage.page_size_bytes =
          static_cast<std::uint32_t>(std::stoul(arg.substr(12)));
    } else {
      method = arg;
    }
  }

  std::vector<Point> points;
  const bool loaded = EndsWith(points_path, ".vaqp")
                          ? LoadPointsBinary(points_path, &points)
                          : LoadPointsCsv(points_path, &points);
  if (!loaded || points.empty()) {
    std::fprintf(stderr, "error: cannot load points from %s\n",
                 points_path.c_str());
    return 1;
  }
  Polygon area;
  if (!LoadPolygonCsv(polygon_path, &area)) {
    std::fprintf(stderr, "error: cannot load polygon from %s\n",
                 polygon_path.c_str());
    return 1;
  }
  if (!area.IsSimple()) {
    std::fprintf(stderr, "error: polygon ring is self-intersecting\n");
    return 1;
  }

  std::printf("# %zu points, %zu-vertex query area (%.4g of its MBR)\n",
              points.size(), area.size(), area.Area() / area.Bounds().Area());
  // The database enforces pairwise distinctness (the Delaunay builder's
  // precondition); report the offending rows in the caller's frame — the
  // point order of the input file (comment/blank lines excluded).
  // Failure-domain exit codes (DESIGN.md §12), distinct so scripts can
  // branch: 3 = malformed page file, 4 = page read failure (IO fault /
  // quarantined page — e.g. under a VAQ_FAULT_SPEC soak), 5 = query
  // aborted by deadline or cancellation.
  std::unique_ptr<PointDatabase> db_holder;
  try {
    db_holder = std::make_unique<PointDatabase>(std::move(points), db_options);

    const PointDatabase& db = *db_holder;
    if (method == "voronoi" || method == "all") {
      RunOne(db, VoronoiAreaQuery(&db), area, print_ids && method != "all");
    }
    if (method == "traditional" || method == "all") {
      RunOne(db, TraditionalAreaQuery(&db), area,
             print_ids && method != "all");
    }
    if (method == "grid-sweep" || method == "all") {
      RunOne(db, GridSweepAreaQuery(&db), area, print_ids && method != "all");
    }
    if (method == "brute" || method == "all") {
      RunOne(db, BruteForceAreaQuery(&db), area, print_ids && method != "all");
    }
  } catch (const DuplicatePointError& e) {
    std::fprintf(stderr,
                 "error: %s: duplicate point (%.17g, %.17g) at input rows "
                 "%zu and %zu (0-based, comment/blank lines excluded)\n",
                 points_path.c_str(), e.point().x, e.point().y,
                 e.first_index(), e.second_index());
    return 1;
  } catch (const PageFileError& e) {
    std::fprintf(stderr, "error: malformed page file: %s\n", e.what());
    return 3;
  } catch (const PageReadError& e) {
    std::fprintf(stderr, "error: page read failed: %s\n", e.what());
    return 4;
  } catch (const QueryAbortedError& e) {
    std::fprintf(stderr, "error: query aborted: %s\n", e.what());
    return 5;
  }
  if (method != "voronoi" && method != "traditional" &&
      method != "grid-sweep" && method != "brute" && method != "all") {
    std::fprintf(stderr, "error: unknown method '%s'\n", method.c_str());
    return 2;
  }
  return 0;
}
