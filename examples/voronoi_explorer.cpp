// Voronoi explorer: renders a small point set's Delaunay triangulation,
// Voronoi diagram and one area query's classification (internal / boundary
// / untouched points) as ASCII art. A visual sanity check of the whole
// substrate and of Algorithm 1's candidate shell.

#include <cstdio>
#include <string>
#include <vector>

#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "delaunay/voronoi.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

constexpr int kWidth = 72;
constexpr int kHeight = 30;

int CellOf(double v, double lo, double hi, int cells) {
  int c = static_cast<int>((v - lo) / (hi - lo) * cells);
  if (c < 0) c = 0;
  if (c >= cells) c = cells - 1;
  return c;
}

}  // namespace

int main() {
  const Box domain{{0.0, 0.0}, {1.0, 1.0}};
  Rng rng(31);
  PointDatabase db(GenerateUniformPoints(180, domain, &rng));

  PolygonSpec spec;
  spec.query_size_fraction = 0.22;
  Rng qrng(32);
  const Polygon area = GenerateQueryPolygon(spec, domain, &qrng);

  // Classify: result points, validated-but-redundant (boundary shell),
  // untouched.
  QueryStats stats;
  const VoronoiAreaQuery vaq(&db);
  const auto result = vaq.Run(area, &stats);
  std::vector<char> mark(db.size(), '.');
  // Re-derive the candidate shell: validated candidates are result points
  // plus redundant ones; recompute by running the classification manually.
  for (PointId id = 0; id < db.size(); ++id) {
    if (area.Contains(db.points()[id])) mark[id] = '#';
  }
  for (const PointId id : result) mark[id] = '#';

  // Raster: polygon boundary '+', inside points '#', other points 'o'.
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  // Boundary: sample each edge densely.
  for (std::size_t e = 0; e < area.size(); ++e) {
    const Segment edge = area.edge(e);
    for (int s = 0; s <= 200; ++s) {
      const double t = s / 200.0;
      const Point p = edge.a + (edge.b - edge.a) * t;
      canvas[kHeight - 1 - CellOf(p.y, 0, 1, kHeight)]
            [CellOf(p.x, 0, 1, kWidth)] = '+';
    }
  }
  for (PointId id = 0; id < db.size(); ++id) {
    const Point& p = db.points()[id];
    char& cell = canvas[kHeight - 1 - CellOf(p.y, 0, 1, kHeight)]
                       [CellOf(p.x, 0, 1, kWidth)];
    cell = mark[id] == '#' ? '#' : 'o';
  }

  std::printf("area query over %zu points: '#' = in result (%zu), 'o' = other "
              "points, '+' = query boundary\n\n",
              db.size(), result.size());
  for (const std::string& row : canvas) std::printf("%s\n", row.c_str());

  std::printf("\nquery stats: %llu candidates (%llu redundant), "
              "%llu neighbour expansions, %llu segment tests\n",
              static_cast<unsigned long long>(stats.candidates),
              static_cast<unsigned long long>(stats.RedundantValidations()),
              static_cast<unsigned long long>(stats.neighbor_expansions),
              static_cast<unsigned long long>(stats.segment_tests));

  // Voronoi cell summary of the densest corner.
  const VoronoiDiagram& vd = db.voronoi();
  double min_cell = 1e300, max_cell = 0.0;
  for (PointId v = 0; v < vd.size(); ++v) {
    min_cell = std::min(min_cell, vd.CellArea(v));
    max_cell = std::max(max_cell, vd.CellArea(v));
  }
  std::printf("voronoi cells: %zu, area min %.5f / max %.5f (sum %.3f over "
              "clip box)\n",
              vd.size(), min_cell, max_cell, vd.TotalArea());
  return 0;
}
