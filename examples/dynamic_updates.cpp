// Dynamic updates walkthrough: insert and delete points while area
// queries keep answering — including concurrently, through a QueryEngine —
// and watch the delta buffer fold into the base at compaction.

#include <cstdio>
#include <thread>
#include <vector>

#include "core/dynamic_area_query.h"
#include "core/dynamic_point_database.h"
#include "engine/query_engine.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

using namespace vaq;

int main() {
  const Box domain{{0.0, 0.0}, {1.0, 1.0}};
  Rng rng(7);

  // A mutable database seeded with 20k points. Inserts go to a delta
  // buffer, deletes to a tombstone set; at the threshold the base is
  // rebuilt. Queries always see base ∪ delta − tombstones.
  DynamicPointDatabase::Options options;
  options.compact_threshold = 4096;
  DynamicPointDatabase db(GenerateUniformPoints(20000, domain, &rng),
                          options);

  const DynamicAreaQuery voronoi(&db, DynamicMethod::kVoronoi);
  const DynamicAreaQuery brute(&db, DynamicMethod::kBruteForce);

  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  const Polygon area = GenerateQueryPolygon(spec, domain, &rng);

  QueryStats stats;
  std::printf("initially: %zu results in the area\n",
              voronoi.Run(area, &stats).size());

  // Mutate: 6000 inserts, 2000 deletes. Each insert returns a stable id
  // that survives compaction; duplicates would be rejected (nullopt).
  std::vector<PointId> inserted;
  for (int i = 0; i < 6000; ++i) {
    const auto id = db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    if (id.has_value()) inserted.push_back(*id);
  }
  for (int i = 0; i < 2000; ++i) {
    db.Erase(inserted[static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(inserted.size()) - 1))]);
  }
  std::printf("after churn: size=%zu delta=%zu compactions=%llu\n",
              db.Size(), db.DeltaSize(),
              static_cast<unsigned long long>(db.Compactions()));

  const std::vector<PointId> now = voronoi.Run(area, &stats);
  std::printf("now: %zu results, %llu of %llu candidates from the delta "
              "buffer\n",
              now.size(),
              static_cast<unsigned long long>(stats.delta_candidates),
              static_cast<unsigned long long>(stats.candidates));
  if (voronoi.Run(area, &stats) != brute.Run(area, &stats)) {
    std::printf("ERROR: methods disagree\n");
    return 1;
  }

  // Snapshot consistency under concurrency: engine workers keep running
  // queries on the versions they pinned while a writer mutates. Explicit
  // Compact() mid-stream is safe too — in-flight queries finish on the
  // old base.
  QueryEngine engine({.num_threads = 2});
  const int method = engine.RegisterMethod(&voronoi);
  const std::uint64_t writer_seed = rng.Next();
  std::thread writer([&db, writer_seed] {
    Rng wrng(writer_seed);
    for (int i = 0; i < 2000; ++i) {
      db.Insert({wrng.Uniform(0, 1), wrng.Uniform(0, 1)});
      if (i % 512 == 0) db.Compact();
    }
  });
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 200; ++i) futures.push_back(engine.Submit(area, method));
  std::size_t total = 0;
  for (auto& f : futures) total += f.get().ids.size();
  writer.join();
  std::printf("200 concurrent queries returned %zu ids; final size=%zu, "
              "compactions=%llu\n",
              total, db.Size(),
              static_cast<unsigned long long>(db.Compactions()));
  return 0;
}
