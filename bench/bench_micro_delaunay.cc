// google-benchmark micro-benchmarks of the Delaunay/Voronoi substrate:
// construction throughput, neighbour iteration and diagram extraction.

#include <benchmark/benchmark.h>

#include "delaunay/triangulation.h"
#include "delaunay/voronoi.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

std::vector<Point> BenchPoints(std::size_t n, PointDistribution d) {
  Rng rng(2024);
  return GeneratePoints(n, kUnit, d, &rng);
}

void BM_DelaunayBuildUniform(benchmark::State& state) {
  const auto points = BenchPoints(static_cast<std::size_t>(state.range(0)),
                                  PointDistribution::kUniform);
  for (auto _ : state) {
    DelaunayTriangulation dt(points);
    benchmark::DoNotOptimize(dt.num_triangles());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_DelaunayBuildUniform)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_DelaunayBuildClustered(benchmark::State& state) {
  const auto points = BenchPoints(100000, PointDistribution::kClustered);
  for (auto _ : state) {
    DelaunayTriangulation dt(points);
    benchmark::DoNotOptimize(dt.num_triangles());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_DelaunayBuildClustered)->Unit(benchmark::kMillisecond);

void BM_NeighborIteration(benchmark::State& state) {
  const auto points = BenchPoints(100000, PointDistribution::kUniform);
  DelaunayTriangulation dt(points);
  PointId v = 0;
  for (auto _ : state) {
    std::size_t degree_sum = 0;
    for (const PointId u : dt.NeighborsOf(v)) degree_sum += u;
    benchmark::DoNotOptimize(degree_sum);
    v = (v + 1) % static_cast<PointId>(points.size());
  }
}
BENCHMARK(BM_NeighborIteration);

void BM_VoronoiExtraction(benchmark::State& state) {
  const auto points = BenchPoints(static_cast<std::size_t>(state.range(0)),
                                  PointDistribution::kUniform);
  DelaunayTriangulation dt(points);
  for (auto _ : state) {
    VoronoiDiagram vd(dt, kUnit);
    benchmark::DoNotOptimize(vd.TotalArea());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_VoronoiExtraction)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vaq

BENCHMARK_MAIN();
