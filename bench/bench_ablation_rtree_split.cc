// Ablation: R-tree node-split strategy (quadratic vs linear) and bulk load
// (STR) vs dynamic insertion. Reports build time and window-query node
// accesses — the classic quality-vs-build-cost trade-off of Guttman's two
// split algorithms, plus how much STR bulk loading beats both.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

double QueryNodeAccesses(RTree& tree, int reps) {
  Rng rng(5);
  IndexStats stats;
  std::vector<PointId> out;
  for (int i = 0; i < reps; ++i) {
    const double x = rng.Uniform(0.0, 0.9);
    const double y = rng.Uniform(0.0, 0.9);
    out.clear();
    tree.WindowQuery(Box::FromExtents(x, y, x + 0.1, y + 0.1), &out, &stats);
  }
  return static_cast<double>(stats.node_accesses) / reps;
}

}  // namespace

int main() {
  constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};
  constexpr std::size_t kN = 200000;
  constexpr int kQueryReps = 200;

  Rng rng(1);
  const auto points = GenerateUniformPoints(kN, kUnit, &rng);

  std::cout << "=== R-tree construction ablation (2E5 points, 10% windows, "
            << kQueryReps << " query reps) ===\n";
  std::cout << std::left << std::setw(26) << "variant" << std::right
            << std::setw(14) << "build ms" << std::setw(16) << "height"
            << std::setw(18) << "nodes/query" << "\n";

  struct Case {
    const char* name;
    RTree::SplitStrategy split;
    bool bulk;
  };
  const Case cases[] = {
      {"STR bulk load", RTree::SplitStrategy::kQuadratic, true},
      {"insert + quadratic split", RTree::SplitStrategy::kQuadratic, false},
      {"insert + linear split", RTree::SplitStrategy::kLinear, false},
  };
  for (const Case& c : cases) {
    RTree tree(16, 6, c.split);
    const auto t0 = std::chrono::steady_clock::now();
    if (c.bulk) {
      tree.Build(points);
    } else {
      tree.Build({});
      for (std::size_t i = 0; i < points.size(); ++i) {
        tree.Insert(points[i], static_cast<PointId>(i));
      }
    }
    const double build_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    std::cout << std::left << std::setw(26) << c.name << std::right
              << std::fixed << std::setprecision(1) << std::setw(14)
              << build_ms << std::setw(16) << tree.Height() << std::setw(18)
              << std::setprecision(2) << QueryNodeAccesses(tree, kQueryReps)
              << "\n";
  }
  return 0;
}
