// Ablation: Algorithm 1's expansion rule (paper, segment-intersects-A)
// versus the provably complete cell-overlap rule (see
// VoronoiAreaQuery::ExpansionRule). Reports candidates, time and result
// agreement on the paper's workload and on adversarial comb queries.

#include <iomanip>
#include <iostream>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

void RunCase(const char* label, PointDatabase& db,
             const std::vector<Polygon>& queries) {
  const VoronoiAreaQuery paper_q(&db);
  VoronoiAreaQuery::Options safe_options;
  safe_options.expansion = VoronoiAreaQuery::ExpansionRule::kCellOverlap;
  const VoronoiAreaQuery safe_q(&db, safe_options);
  const BruteForceAreaQuery brute(&db);

  double paper_ms = 0, safe_ms = 0, paper_cand = 0, safe_cand = 0;
  int paper_incomplete = 0, safe_incomplete = 0;
  QueryStats stats;
  for (const Polygon& area : queries) {
    const auto truth = brute.Run(area, nullptr);
    const auto pr = paper_q.Run(area, &stats);
    paper_ms += stats.elapsed_ms;
    paper_cand += static_cast<double>(stats.candidates);
    if (pr != truth) ++paper_incomplete;
    const auto sr = safe_q.Run(area, &stats);
    safe_ms += stats.elapsed_ms;
    safe_cand += static_cast<double>(stats.candidates);
    if (sr != truth) ++safe_incomplete;
  }
  const double n = static_cast<double>(queries.size());
  std::cout << std::left << std::setw(26) << label << std::right << std::fixed
            << std::setprecision(3) << "  segment: " << std::setw(9)
            << paper_ms / n << " ms " << std::setprecision(1) << std::setw(9)
            << paper_cand / n << " cand " << paper_incomplete
            << " incomplete   |  cell-overlap: " << std::setprecision(3)
            << std::setw(9) << safe_ms / n << " ms " << std::setprecision(1)
            << std::setw(9) << safe_cand / n << " cand " << safe_incomplete
            << " incomplete\n";
}

}  // namespace

int main() {
  constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};
  std::cout << "=== Expansion-rule ablation (5E4 uniform points) ===\n";
  Rng rng(7);
  PointDatabase db(GenerateUniformPoints(50000, kUnit, &rng));

  // Paper workload: random star decagons.
  for (const double qs : {0.01, 0.08, 0.32}) {
    PolygonSpec spec;
    spec.query_size_fraction = qs;
    Rng qrng(1000 + static_cast<std::uint64_t>(qs * 1000));
    std::vector<Polygon> queries;
    for (int i = 0; i < 50; ++i) {
      queries.push_back(GenerateQueryPolygon(spec, kUnit, &qrng));
    }
    const std::string label =
        "star decagons, qs=" + std::to_string(static_cast<int>(qs * 100)) + "%";
    RunCase(label.c_str(), db, queries);
  }

  // Adversarial comb queries (thin prongs, point-free notches).
  std::vector<Polygon> combs;
  for (int teeth = 2; teeth <= 8; ++teeth) {
    combs.push_back(
        GenerateCombPolygon(Box::FromExtents(0.2, 0.2, 0.8, 0.8), teeth));
  }
  RunCase("combs 2..8 teeth", db, combs);

  std::cout << "\n(\"incomplete\" counts queries whose result set differed "
               "from brute force; the paper rule can be incomplete only "
               "across point-free corridors, dense data keeps it exact.)\n";
  return 0;
}
