// Churn bench: the dynamic-update workload — interleaved insert/delete/
// query streams against a DynamicPointDatabase — at a few database sizes
// and operation mixes. Reports mutation and query rates, compaction
// counts and (always) cross-method mismatches, which must be zero.
//
// Usage: bench_churn [--quick]

#include <cstdio>
#include <cstring>
#include <sstream>

#include "workload/churn.h"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::size_t sizes[] = {quick ? std::size_t{5000} : std::size_t{20000},
                               quick ? std::size_t{20000}
                                     : std::size_t{100000}};
  int failures = 0;
  for (const std::size_t n : sizes) {
    // A mutation-heavy mix and a query-heavy mix per size.
    for (const double query_share : {0.3, 0.7}) {
      vaq::ChurnConfig config;
      config.initial_size = n;
      config.operations = quick ? 2000 : 20000;
      config.insert_fraction = (1.0 - query_share) * 0.55;
      config.erase_fraction = (1.0 - query_share) * 0.45;
      config.verify_every = quick ? 500 : 2000;
      config.seed = 42 + n;
      const vaq::ChurnReport report = vaq::RunChurnExperiment(config);
      std::ostringstream os;
      vaq::PrintChurnReport(config, report, os);
      std::fputs(os.str().c_str(), stdout);
      if (report.mismatches != 0) ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d churn cells reported mismatches\n",
                 failures);
    return 1;
  }
  return 0;
}
