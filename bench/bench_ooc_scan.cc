// Out-of-core page cache bench: cold sequential scan vs warm (cache
// resident) re-scan of a page file larger than the LRU cache, reported in
// pages/second with exact hit/miss accounting (see src/storage/page_store.h).
//
// The scan is page-granular — one point read per page — so each timed
// access is one cache touch: the cold pass (sequential, dataset larger
// than cache, so LRU never helps) pays one miss per page, and the warm
// pass loops over a hot window half the cache size, where every touch is
// a hit. The cold/warm ratio is the measured cost gap between a page
// fault (pread syscall or mmap copy, per --miss-mode rows) and a cache
// frame read — the gap the prefetch hints in the query kernels exist to
// hide.
//
// Usage: bench_ooc_scan [--quick] [--json]
//                       [--points=N] [--page-size=B] [--cache-pages=C]
//   --quick: smaller dataset for CI smoke (cache still smaller than data).
//   --json:  write rows to BENCH_ooc.json for the regression gate.

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "storage/page_format.h"
#include "storage/page_store.h"

namespace {

struct Row {
  const char* miss_mode;
  std::size_t points, page_size, cache_pages, num_pages;
  double cold_ms, warm_ms;
  double cold_pages_per_sec, warm_pages_per_sec, warm_cold_ratio;
  std::uint64_t cold_hits, cold_misses, warm_hits, warm_misses;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Row RunScan(const std::string& path, vaq::PageMissMode mode,
            const char* mode_name, std::size_t cache_pages) {
  vaq::PageStore::Options options;
  options.cache_pages = cache_pages;
  options.miss_mode = mode;
  options.verify_checksum = false;  // Open cost is not what this measures.
  std::unique_ptr<vaq::PageStore> store = vaq::PageStore::Open(path, options);

  const std::size_t num_pages = store->num_pages();
  const std::size_t ppp = store->points_per_page();
  double sink = 0.0;  // Consumed below so the reads cannot be elided.

  // Cold: one touch per page, sequentially, dataset larger than cache —
  // every touch is a capacity miss.
  store->ResetCounters();
  const auto t_cold = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < num_pages; ++p) {
    sink += store->GetPoint(static_cast<vaq::PointId>(p * ppp), nullptr).x;
  }
  const double cold_ms = MsSince(t_cold);
  const vaq::PageIoCounters cold = store->counters();

  // Warm: loop over a hot window half the cache, so it stays resident.
  // One untimed priming pass faults the window in; the timed passes are
  // pure cache-frame reads.
  const std::size_t hot_pages = std::max<std::size_t>(1, cache_pages / 2);
  const std::size_t warm_reps = std::max<std::size_t>(1, num_pages / hot_pages);
  for (std::size_t p = 0; p < hot_pages; ++p) {
    sink += store->GetPoint(static_cast<vaq::PointId>(p * ppp), nullptr).y;
  }
  store->ResetCounters();
  const auto t_warm = std::chrono::steady_clock::now();
  for (std::size_t rep = 0; rep < warm_reps; ++rep) {
    for (std::size_t p = 0; p < hot_pages; ++p) {
      sink += store->GetPoint(static_cast<vaq::PointId>(p * ppp), nullptr).x;
    }
  }
  const double warm_ms = MsSince(t_warm);
  const vaq::PageIoCounters warm = store->counters();

  Row row;
  row.miss_mode = mode_name;
  row.points = store->point_count();
  row.page_size = store->page_size_bytes();
  row.cache_pages = cache_pages;
  row.num_pages = num_pages;
  row.cold_ms = cold_ms;
  row.warm_ms = warm_ms;
  row.cold_pages_per_sec =
      cold_ms > 0.0 ? static_cast<double>(num_pages) / (cold_ms / 1000.0) : 0.0;
  const std::size_t warm_touches = warm_reps * hot_pages;
  row.warm_pages_per_sec =
      warm_ms > 0.0 ? static_cast<double>(warm_touches) / (warm_ms / 1000.0)
                    : 0.0;
  row.warm_cold_ratio = row.cold_pages_per_sec > 0.0
                            ? row.warm_pages_per_sec / row.cold_pages_per_sec
                            : 0.0;
  row.cold_hits = cold.cache_hits;
  row.cold_misses = cold.cache_misses;
  row.warm_hits = warm.cache_hits;
  row.warm_misses = warm.cache_misses;
  if (sink == 42.125) std::cout << "";  // Keep `sink` (and the reads) live.
  return row;
}

void PrintRow(const Row& r) {
  const double hit_rate =
      r.warm_hits + r.warm_misses > 0
          ? static_cast<double>(r.warm_hits) /
                static_cast<double>(r.warm_hits + r.warm_misses)
          : 0.0;
  std::cout << "miss_mode=" << r.miss_mode << "  pages=" << r.num_pages
            << "  cache=" << r.cache_pages << "\n"
            << "  cold: " << r.cold_ms << " ms  ("
            << static_cast<std::uint64_t>(r.cold_pages_per_sec)
            << " pages/s, " << r.cold_misses << " misses / " << r.cold_hits
            << " hits)\n"
            << "  warm: " << r.warm_ms << " ms  ("
            << static_cast<std::uint64_t>(r.warm_pages_per_sec)
            << " pages/s, hit rate " << hit_rate * 100.0 << "%)\n"
            << "  warm/cold throughput ratio: " << r.warm_cold_ratio << "x\n";
}

void WriteJson(const std::vector<Row>& rows, std::ostream& os) {
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "  {\"bench\": \"ooc_scan\", \"miss_mode\": \"" << r.miss_mode
       << "\", \"points\": " << r.points << ", \"page_size\": " << r.page_size
       << ", \"cache_pages\": " << r.cache_pages
       << ", \"num_pages\": " << r.num_pages << ",\n   \"cold_ms\": "
       << r.cold_ms << ", \"warm_ms\": " << r.warm_ms
       << ", \"cold_pages_per_sec\": " << r.cold_pages_per_sec
       << ", \"warm_pages_per_sec\": " << r.warm_pages_per_sec
       << ", \"warm_cold_ratio\": " << r.warm_cold_ratio
       << ",\n   \"cold_hits\": " << r.cold_hits << ", \"cold_misses\": "
       << r.cold_misses << ", \"warm_hits\": " << r.warm_hits
       << ", \"warm_misses\": " << r.warm_misses << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  std::size_t points = 4000000;
  std::size_t page_size = 4096;
  std::size_t cache_pages = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--points=", 0) == 0) {
      points = std::stoull(arg.substr(9));
    } else if (arg.rfind("--page-size=", 0) == 0) {
      page_size = std::stoull(arg.substr(12));
    } else if (arg.rfind("--cache-pages=", 0) == 0) {
      cache_pages = std::stoull(arg.substr(14));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }
  if (quick) {
    points = 500000;
    cache_pages = 256;
  }

  // Synthetic coordinate streams: the scan measures the IO path, not
  // geometry, so the values only need to be readable and distinct.
  std::vector<double> xs(points), ys(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = static_cast<double>(i);
    ys[i] = -static_cast<double>(i);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("vaq-bench-ooc-" + std::to_string(::getpid()) + ".vpag"))
          .string();
  vaq::WritePageFile(path, xs.data(), ys.data(), points,
                     static_cast<std::uint32_t>(page_size));

  std::vector<Row> rows;
  std::cout << "=== out-of-core page scan: " << points << " points, "
            << page_size << " B pages, cache " << cache_pages
            << " pages ===\n";
  for (const auto& [mode, name] :
       {std::pair{vaq::PageMissMode::kPread, "pread"},
        std::pair{vaq::PageMissMode::kMmapCopy, "mmap_copy"}}) {
    rows.push_back(RunScan(path, mode, name, cache_pages));
    PrintRow(rows.back());
  }
  ::unlink(path.c_str());

  if (json) {
    std::ofstream out("BENCH_ooc.json");
    WriteJson(rows, out);
    std::cout << "wrote BENCH_ooc.json (" << rows.size() << " rows)\n";
  }
  return 0;
}
