// Ablation: all four area-query strategies side by side —
//   brute force (no index), traditional (R-tree window filter + refine),
//   grid-sweep (raster classification, interior cells accepted wholesale),
//   Voronoi (the paper's Algorithm 1).
// Reports validations, redundant validations, record fetches and time for
// the paper's workload at three query sizes, raw and under the 1us IO
// model.

#include <iomanip>
#include <iostream>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;
  constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};
  constexpr int kReps = 50;

  Rng rng(2468);
  PointDatabase db(GenerateUniformPoints(100000, kUnit, &rng));
  const BruteForceAreaQuery brute(&db);
  const TraditionalAreaQuery trad(&db);
  const GridSweepAreaQuery sweep(&db);
  const VoronoiAreaQuery vaq(&db);
  const AreaQuery* methods[] = {&brute, &trad, &sweep, &vaq};

  for (const double fetch_ns : {0.0, 1000.0}) {
    db.set_simulated_fetch_ns(fetch_ns);
    std::cout << "\n=== Method ablation (1E5 uniform points, " << kReps
              << " reps, "
              << (fetch_ns > 0 ? "IO MODEL 1us/fetch" : "RAW") << ") ===\n";
    for (const double qs : {0.01, 0.08, 0.32}) {
      PolygonSpec spec;
      spec.query_size_fraction = qs;
      std::cout << "\n-- query size " << qs * 100 << "% --\n";
      std::cout << std::left << std::setw(14) << "method" << std::right
                << std::setw(12) << "validated" << std::setw(12) << "redund"
                << std::setw(12) << "fetches" << std::setw(12) << "time(ms)"
                << "\n";
      for (const AreaQuery* method : methods) {
        Rng qrng(13579);  // Same queries for every method.
        QueryStats total, stats;
        std::size_t results = 0;
        for (int rep = 0; rep < kReps; ++rep) {
          const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
          results += method->Run(area, &stats).size();
          total += stats;
        }
        std::cout << std::left << std::setw(14) << method->Name()
                  << std::right << std::fixed << std::setprecision(1)
                  << std::setw(12)
                  << static_cast<double>(total.candidates) / kReps
                  << std::setw(12)
                  << static_cast<double>(total.RedundantValidations()) / kReps
                  << std::setw(12)
                  << static_cast<double>(total.geometry_loads) / kReps
                  << std::setw(12) << std::setprecision(3)
                  << total.elapsed_ms / kReps << "   (avg results "
                  << std::setprecision(1)
                  << static_cast<double>(results) / kReps << ")\n";
      }
    }
  }
  return 0;
}
