// Micro benchmark isolating the batch classification kernels: prepares a
// PolygonKernel per polygon class x dispatch arm and streams random SoA
// point batches through ContainsBatch, reporting points/sec per kernel.
// Every vector-arm run is cross-checked against the scalar arm on the same
// batch (the "mismatches" column must read 0 — it is the exactness
// contract measured, not assumed). This is the number to watch when
// touching src/geometry/simd/; the table benches mix it with index filter,
// IO charging and engine dispatch costs.
//
// Usage: bench_micro_classify [--quick] [--json]
//   --json: additionally write one row per (polygon, arm, batch) to
//   BENCH_classify.json in the working directory, for trajectory tracking
//   via tools/check_bench_regression.py.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/prepared_area.h"
#include "geometry/simd/polygon_kernel.h"
#include "geometry/simd/simd_dispatch.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using vaq::Box;
using vaq::Point;
using vaq::Polygon;
using vaq::PolygonKernel;
using vaq::PreparedArea;
using vaq::Rng;

struct ClassifyRow {
  std::string polygon;   // Polygon-class label (stable row key).
  std::string arm;       // "scalar" / "avx2" (stable row key).
  std::string kind;      // Selected kernel kind (informational).
  std::uint64_t kernel_kind = 0;  // stats_mask() bits, exact-match gated.
  std::size_t batch = 0;
  std::size_t points = 0;         // Total points classified.
  double time_ms = 0.0;           // Mean per batch.
  double mpoints_per_sec = 0.0;
  std::size_t mismatches = 0;     // vs the scalar arm on identical batches.
};

/// The three specialisation classes the kernel selector distinguishes.
struct BenchPolygon {
  const char* label;
  Polygon poly;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  // One polygon per kernel kind: a convex 16-gon (half-plane chain), a
  // concave dart quad (small-m edge loop), and a 16-tooth comb (generic
  // grid-residual path with a busy boundary band).
  std::vector<BenchPolygon> polygons;
  polygons.push_back(
      {"convex16", Polygon::RegularNGon({0.5, 0.5}, 0.35, 16)});
  polygons.push_back(
      {"dart4",
       Polygon({{0.1, 0.1}, {0.9, 0.5}, {0.1, 0.9}, {0.35, 0.5}})});
  polygons.push_back(
      {"comb16", GenerateCombPolygon(Box{{0.1, 0.2}, {0.9, 0.8}}, 16)});

  // The quick grid is a subset of the full grid so a --quick CI run still
  // matches rows in a committed full-run baseline.
  const std::vector<std::size_t> batches =
      quick ? std::vector<std::size_t>{256, 4096}
            : std::vector<std::size_t>{64, 256, 4096, 16384};
  // Sized so each (polygon, arm, batch) cell classifies the same total
  // point count regardless of batch size.
  const std::size_t total_points = quick ? 1u << 20 : 1u << 23;

  std::vector<ClassifyRow> rows;
  for (const BenchPolygon& bp : polygons) {
    const PreparedArea prep(bp.poly);
    std::vector<simd::Arm> arms = {simd::Arm::kScalar};
    if (simd::Avx2Available()) arms.push_back(simd::Arm::kAvx2);

    for (const std::size_t batch : batches) {
      // Same seeded batch for every arm: points uniform over the polygon
      // MBR — exactly the refine workload, since the R-tree candidate set
      // IS the MBR window. The stream mixes inside cells, outside cells
      // and boundary-band lanes, with no free out-of-bounds rejects.
      Rng rng(31415 + static_cast<std::uint64_t>(batch));
      const Box& b = bp.poly.Bounds();
      std::vector<double> xs(batch), ys(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        xs[i] = b.min.x + rng.Uniform(0.0, 1.0) * b.Width();
        ys[i] = b.min.y + rng.Uniform(0.0, 1.0) * b.Height();
      }
      std::vector<bool> oracle;  // Scalar-arm verdicts for this batch.

      for (const simd::Arm arm : arms) {
        PolygonKernel kernel;
        kernel.Prepare(prep, arm);
        std::vector<char> inside(batch);
        bool* flags = reinterpret_cast<bool*>(inside.data());
        static_assert(sizeof(bool) == sizeof(char), "flag buffer");

        const std::size_t reps =
            std::max<std::size_t>(1, total_points / batch);
        kernel.ContainsBatch(xs.data(), ys.data(), batch, flags);  // warm
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r) {
          kernel.ContainsBatch(xs.data(), ys.data(), batch, flags);
        }
        const double sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();

        ClassifyRow row;
        row.polygon = bp.label;
        row.arm = simd::ArmName(arm);
        row.kind = PolygonKernel::KindName(kernel.kind());
        row.kernel_kind = kernel.stats_mask();
        row.batch = batch;
        row.points = reps * batch;
        row.time_ms = sec * 1000.0 / static_cast<double>(reps);
        row.mpoints_per_sec =
            sec > 0.0 ? static_cast<double>(row.points) / sec / 1e6 : 0.0;
        if (arm == simd::Arm::kScalar) {
          oracle.assign(batch, false);
          for (std::size_t i = 0; i < batch; ++i) oracle[i] = flags[i];
        } else {
          for (std::size_t i = 0; i < batch; ++i) {
            if (flags[i] != oracle[i]) ++row.mismatches;
          }
        }
        rows.push_back(row);
      }
    }
  }

  std::cout << "=== Batch classification micro bench: "
            << (quick ? "quick" : "full") << ", "
            << total_points / 1000000.0 << "M points/cell ===\n";
  std::cout << "polygon     arm     kind               batch    Mpts/s  "
               "us/batch  mismatches\n";
  for (const ClassifyRow& r : rows) {
    std::cout << std::left << std::setw(12) << r.polygon << std::setw(8)
              << r.arm << std::setw(19) << r.kind << std::right
              << std::setw(6) << r.batch << std::fixed << std::setw(10)
              << std::setprecision(1) << r.mpoints_per_sec << std::setw(10)
              << std::setprecision(2) << r.time_ms * 1000.0 << std::setw(12)
              << r.mismatches << "\n";
  }

  if (json) {
    std::ofstream out("BENCH_classify.json");
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ClassifyRow& r = rows[i];
      out << "  {\"bench\": \"classify\", \"polygon\": \"" << r.polygon
          << "\", \"arm\": \"" << r.arm << "\", \"kind\": \"" << r.kind
          << "\", \"kernel_kind\": " << r.kernel_kind
          << ", \"batch\": " << r.batch << ", \"points\": " << r.points
          << ", \"time_ms\": " << r.time_ms
          << ", \"mpoints_per_sec\": " << r.mpoints_per_sec
          << ", \"mismatches\": " << r.mismatches << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "\nwrote BENCH_classify.json (" << rows.size()
              << " rows)\n";
  }

  // Hard self-check: the exactness contract is part of the bench's exit
  // status so a plain CI run (no gate script) still fails on divergence.
  for (const ClassifyRow& r : rows) {
    if (r.mismatches != 0) {
      std::cerr << "FAIL: " << r.polygon << "/" << r.arm << " batch "
                << r.batch << " diverged from scalar in " << r.mismatches
                << " lanes\n";
      return 1;
    }
  }
  return 0;
}
