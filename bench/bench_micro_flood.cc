// Micro benchmark isolating the Voronoi flood's frontier expansion: runs
// the flood directly through a QueryContext (no engine, no simulated IO)
// across query selectivities and reports the graph-side rates — visited
// candidates, accepted results, edges enqueued, exact segment tests — as
// edges/sec and visited/accepted ratios. This is the number to watch when
// touching the storage layout or the flood kernel; the table benches mix
// it with index filter and engine dispatch costs.
//
// Usage: bench_micro_flood [--quick] [--json]
//   --json: additionally write one row per selectivity to
//   BENCH_micro_flood.json in the working directory, for trajectory
//   tracking alongside the table benches' JSONs.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/point_database.h"
#include "core/voronoi_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

constexpr vaq::Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

struct FloodRow {
  double query_size_fraction = 0.0;
  int repetitions = 0;
  double time_ms = 0.0;            // Mean per query.
  double candidates = 0.0;         // Visited & validated points.
  double results = 0.0;            // Accepted points.
  double visited_rejected = 0.0;   // The boundary shell.
  double neighbor_expansions = 0.0;  // Edges that enqueued a candidate.
  double segment_tests = 0.0;        // Exact boundary-crossing tests.
  double edges_per_sec = 0.0;        // Expansions / flood second.
  double visited_accepted_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const std::vector<double> query_sizes =
      quick ? std::vector<double>{0.01, 0.08, 0.32}
            : std::vector<double>{0.01, 0.02, 0.04, 0.08, 0.16, 0.32};
  const int reps = quick ? 30 : 200;
  constexpr std::size_t kDataSize = 100000;

  Rng data_rng(20200202);
  PointDatabase db(GenerateUniformPoints(kDataSize, kUnit, &data_rng));
  const VoronoiAreaQuery flood(&db);
  QueryContext ctx;

  std::vector<FloodRow> rows;
  for (const double qs : query_sizes) {
    Rng qrng(777);
    PolygonSpec spec;
    spec.query_size_fraction = qs;
    std::vector<Polygon> areas;
    areas.reserve(reps);
    for (int rep = 0; rep < reps; ++rep) {
      areas.push_back(GenerateQueryPolygon(spec, kUnit, &qrng));
    }
    // Warm the scratch arenas outside the timed runs.
    flood.Run(areas[0], ctx);

    FloodRow row;
    row.query_size_fraction = qs;
    row.repetitions = reps;
    for (const Polygon& area : areas) {
      flood.Run(area, ctx);
      const QueryStats& s = ctx.stats;
      row.time_ms += s.elapsed_ms;
      row.candidates += static_cast<double>(s.candidates);
      row.results += static_cast<double>(s.results);
      row.visited_rejected += static_cast<double>(s.visited_rejected);
      row.neighbor_expansions += static_cast<double>(s.neighbor_expansions);
      row.segment_tests += static_cast<double>(s.segment_tests);
    }
    const double total_sec = row.time_ms / 1000.0;
    row.edges_per_sec =
        total_sec > 0.0 ? row.neighbor_expansions / total_sec : 0.0;
    row.time_ms /= reps;
    row.candidates /= reps;
    row.results /= reps;
    row.visited_rejected /= reps;
    row.neighbor_expansions /= reps;
    row.segment_tests /= reps;
    row.visited_accepted_ratio =
        row.results > 0.0 ? row.candidates / row.results : 0.0;
    rows.push_back(row);
  }

  std::cout << "=== Voronoi flood micro bench: 1E5 points, " << reps
            << " reps/row (RAW, no simulated IO) ===\n";
  std::cout << "qsize%   ms/query  candidates    results  rejected  "
               "expansions  seg_tests  visited/accepted  Medges/s\n";
  for (const FloodRow& r : rows) {
    std::cout << std::fixed << std::setw(6) << std::setprecision(0)
              << r.query_size_fraction * 100.0 << std::setw(11)
              << std::setprecision(4) << r.time_ms << std::setw(12)
              << std::setprecision(1) << r.candidates << std::setw(11)
              << r.results << std::setw(10) << r.visited_rejected
              << std::setw(12) << r.neighbor_expansions << std::setw(11)
              << r.segment_tests << std::setw(18) << std::setprecision(4)
              << r.visited_accepted_ratio << std::setw(10)
              << std::setprecision(2) << r.edges_per_sec / 1e6 << "\n";
  }

  if (json) {
    std::ofstream out("BENCH_micro_flood.json");
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const FloodRow& r = rows[i];
      out << "  {\"data_size\": " << kDataSize
          << ", \"query_size_fraction\": " << r.query_size_fraction
          << ", \"repetitions\": " << r.repetitions
          << ", \"time_ms\": " << r.time_ms
          << ", \"candidates\": " << r.candidates
          << ", \"results\": " << r.results
          << ", \"visited_rejected\": " << r.visited_rejected
          << ", \"neighbor_expansions\": " << r.neighbor_expansions
          << ", \"segment_tests\": " << r.segment_tests
          << ", \"edges_per_sec\": " << r.edges_per_sec
          << ", \"visited_accepted_ratio\": " << r.visited_accepted_ratio
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "\nwrote BENCH_micro_flood.json (" << rows.size()
              << " rows)\n";
  }
  return 0;
}
