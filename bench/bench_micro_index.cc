// google-benchmark micro-benchmarks of the four spatial indexes:
// build, window query and nearest-neighbour throughput.

#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

std::unique_ptr<SpatialIndex> MakeIndex(int kind) {
  switch (kind) {
    case 0: return std::make_unique<RTree>();
    case 1: return std::make_unique<KDTree>();
    case 2: return std::make_unique<Quadtree>();
    default: return std::make_unique<GridIndex>();
  }
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "rtree";
    case 1: return "kdtree";
    case 2: return "quadtree";
    default: return "grid";
  }
}

const std::vector<Point>& SharedPoints(std::size_t n) {
  static auto* cache = new std::map<std::size_t, std::vector<Point>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(4242);
    it = cache->emplace(n, GenerateUniformPoints(n, kUnit, &rng)).first;
  }
  return it->second;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& points = SharedPoints(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto index = MakeIndex(static_cast<int>(state.range(0)));
    index->Build(points);
    benchmark::DoNotOptimize(index->size());
  }
  state.SetLabel(KindName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_IndexBuild)
    ->ArgsProduct({{0, 1, 2, 3}, {100000}})
    ->Unit(benchmark::kMillisecond);

void BM_IndexWindowQuery(benchmark::State& state) {
  const auto& points = SharedPoints(200000);
  auto index = MakeIndex(static_cast<int>(state.range(0)));
  index->Build(points);
  Rng rng(1);
  std::vector<PointId> out;
  for (auto _ : state) {
    const double x = rng.Uniform(0.0, 0.9);
    const double y = rng.Uniform(0.0, 0.9);
    out.clear();
    index->WindowQuery(Box::FromExtents(x, y, x + 0.1, y + 0.1), &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(KindName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_IndexWindowQuery)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_IndexNearestNeighbor(benchmark::State& state) {
  const auto& points = SharedPoints(200000);
  auto index = MakeIndex(static_cast<int>(state.range(0)));
  index->Build(points);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->NearestNeighbor({rng.Uniform(0, 1), rng.Uniform(0, 1)}));
  }
  state.SetLabel(KindName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_IndexNearestNeighbor)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_RTreeDynamicInsert(benchmark::State& state) {
  const auto& points = SharedPoints(50000);
  for (auto _ : state) {
    RTree tree;
    tree.Build({});
    for (std::size_t i = 0; i < points.size(); ++i) {
      tree.Insert(points[i], static_cast<PointId>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_RTreeDynamicInsert)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vaq

BENCHMARK_MAIN();
