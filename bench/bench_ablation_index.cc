// Ablation: which spatial index should serve the two methods?
//  * traditional filter-refine with each index as the window filter;
//  * Voronoi query with each index as the seed NN provider.
// The paper fixes both to an R-tree "for fairness"; this bench quantifies
// how little the seed-index choice matters for the Voronoi method (one NN
// lookup per query) versus how much the filter index matters for the
// traditional method.

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

int main() {
  using namespace vaq;
  constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};
  constexpr std::size_t kDataSize = 200000;
  constexpr int kReps = 100;

  Rng rng(99);
  PointDatabase db(GenerateUniformPoints(kDataSize, kUnit, &rng));

  std::vector<std::unique_ptr<SpatialIndex>> indexes;
  indexes.push_back(std::make_unique<RTree>());
  indexes.push_back(std::make_unique<KDTree>());
  indexes.push_back(std::make_unique<Quadtree>());
  indexes.push_back(std::make_unique<GridIndex>());
  for (auto& index : indexes) index->Build(db.points());

  PolygonSpec spec;
  spec.query_size_fraction = 0.04;

  std::cout << "=== Index ablation: 2E5 uniform points, 4% query size, "
            << kReps << " reps ===\n";
  std::cout << std::left << std::setw(10) << "index" << std::right
            << std::setw(14) << "trad ms" << std::setw(16) << "trad nodes"
            << std::setw(14) << "vaq ms" << std::setw(16) << "vaq nodes"
            << "\n";

  for (const auto& index : indexes) {
    const TraditionalAreaQuery trad(&db, index.get());
    const VoronoiAreaQuery vaq(&db, VoronoiAreaQuery::Options{}, index.get());
    Rng qrng(555);
    double trad_ms = 0, vaq_ms = 0, trad_nodes = 0, vaq_nodes = 0;
    QueryStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      trad.Run(area, &stats);
      trad_ms += stats.elapsed_ms;
      trad_nodes += static_cast<double>(stats.index_node_accesses);
      vaq.Run(area, &stats);
      vaq_ms += stats.elapsed_ms;
      vaq_nodes += static_cast<double>(stats.index_node_accesses);
    }
    std::cout << std::left << std::setw(10) << index->Name() << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << trad_ms / kReps << std::setw(16) << std::setprecision(1)
              << trad_nodes / kReps << std::setw(14) << std::setprecision(3)
              << vaq_ms / kReps << std::setw(16) << std::setprecision(1)
              << vaq_nodes / kReps << "\n";
  }
  std::cout << "\n(vaq nodes = pages touched by the single seed NN lookup; "
               "the Voronoi method is insensitive to the index choice.)\n";

  // Polygon-aware filtering ablation: the same traditional query with
  // `SpatialIndex::PolygonQuery` as the filter — outside subtrees pruned,
  // inside subtrees bulk-accepted — versus the MBR window filter above.
  std::cout << "\n=== Polygon-aware filter (PolygonQuery) vs window filter "
               "===\n";
  std::cout << std::left << std::setw(10) << "index" << std::right
            << std::setw(14) << "poly ms" << std::setw(16) << "poly nodes"
            << std::setw(16) << "candidates" << std::setw(16)
            << "bulk accepted"
            << "\n";
  for (const auto& index : indexes) {
    TraditionalAreaQuery::Options options;
    options.filter = TraditionalAreaQuery::Filter::kPolygonIndex;
    const TraditionalAreaQuery poly(&db, index.get(), options);
    Rng qrng(555);
    double ms = 0, nodes = 0, candidates = 0, bulk = 0;
    QueryStats stats;
    for (int rep = 0; rep < kReps; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      poly.Run(area, &stats);
      ms += stats.elapsed_ms;
      nodes += static_cast<double>(stats.index_node_accesses);
      candidates += static_cast<double>(stats.candidates);
      bulk += static_cast<double>(stats.bulk_accepted);
    }
    std::cout << std::left << std::setw(10) << index->Name() << std::right
              << std::fixed << std::setprecision(3) << std::setw(14)
              << ms / kReps << std::setw(16) << std::setprecision(1)
              << nodes / kReps << std::setw(16) << candidates / kReps
              << std::setw(16) << bulk / kReps << "\n";
  }
  std::cout << "\n(candidates == results here: the polygon filter never "
               "reports a point outside A,\n and bulk-accepted points were "
               "never individually validated.)\n";
  return 0;
}
