// Reproduces Table I, Fig. 4 and Fig. 5 of the paper: traditional vs
// Voronoi-based area query as the data size grows from 1E5 to 1E6 points
// (query size fixed at 1%).
//
// Two timing models are reported:
//  * RAW        — pure in-memory C++ wall-clock;
//  * IO MODEL   — every candidate geometry fetch charged 1us, restoring the
//                 paper's cost regime (disk-framed, interpreted stack); see
//                 DESIGN.md "Substitutions".
// Candidate / redundant-validation counts are identical across models and
// are the paper's primary effect (Fig. 5).
//
// Usage: bench_table1_data_size [--quick] [--threads] [--json]
//   --quick: 3 data sizes, 20 repetitions (CI smoke run). Default: the
//   paper's full 10 sizes at 100 repetitions.
//   --threads: additionally re-run every row through the QueryEngine at
//   1/2/4/8 worker threads and print a thread-scaling table per row
//   (blocking IO model, so the scaling is visible on any core count).
//   --json: additionally write every row (RAW + IO model) to
//   BENCH_table1.json in the working directory, for trajectory tracking.

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool threads = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0) threads = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  std::vector<std::size_t> data_sizes;
  if (quick) {
    data_sizes = {100000, 300000, 500000};
  } else {
    for (int i = 1; i <= 10; ++i) data_sizes.push_back(100000u * i);
  }
  const int reps = quick ? 20 : 100;

  std::vector<ExperimentRow> all_rows;
  for (const double fetch_ns : {0.0, 1000.0}) {
    std::vector<ExperimentRow> rows;
    for (const std::size_t n : data_sizes) {
      ExperimentConfig config;
      config.data_size = n;
      config.query_size_fraction = 0.01;  // Paper: fixed at 1%.
      config.repetitions = reps;
      config.seed = 20200101;
      config.simulated_fetch_ns = fetch_ns;
      rows.push_back(RunExperiment(config));
    }
    std::cout << "\n=== Table I (" << (fetch_ns > 0 ? "IO MODEL, 1us/fetch" : "RAW")
              << "): query size 1%, " << reps << " reps/row ===\n";
    PrintPaperTable(rows, /*vary_query_size=*/false, std::cout);
    std::cout << "\n--- Fig. 4 (time) & Fig. 5 (redundant validations) series ---\n";
    PrintFigureSeries(rows, /*vary_query_size=*/false, std::cout);
    int mismatches = 0;
    for (const ExperimentRow& r : rows) mismatches += r.mismatches;
    std::cout << "result-set mismatches between methods: " << mismatches
              << "\n";
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  if (json) {
    std::ofstream out("BENCH_table1.json");
    WriteRowsJson(all_rows, out);
    std::cout << "\nwrote BENCH_table1.json (" << all_rows.size()
              << " rows)\n";
  }

  if (threads) {
    for (const std::size_t n : data_sizes) {
      ExperimentConfig config;
      config.data_size = n;
      config.query_size_fraction = 0.01;
      config.repetitions = reps;
      config.seed = 20200101;
      config.simulated_fetch_ns = 20000.0;
      config.blocking_fetch = true;
      std::cout << "\n=== Table I thread scaling: data size " << n
                << " (blocking IO, 20us/fetch) ===\n";
      PrintThreadScalingTable(RunThreadSweep(config, {1, 2, 4, 8}),
                              std::cout);
    }
  }
  return 0;
}
