// Reproduces Table I, Fig. 4 and Fig. 5 of the paper: traditional vs
// Voronoi-based area query as the data size grows from 1E5 to 1E6 points
// (query size fixed at 1%).
//
// Two timing models are reported:
//  * RAW        — pure in-memory C++ wall-clock;
//  * IO MODEL   — every candidate geometry fetch charged 1us, restoring the
//                 paper's cost regime (disk-framed, interpreted stack); see
//                 DESIGN.md "Substitutions".
// Candidate / redundant-validation counts are identical across models and
// are the paper's primary effect (Fig. 5).
//
// Usage: bench_table1_data_size [--quick] [--threads] [--json]
//                               [--data-size=N] [--reps=R]
//                               [--backend=memory|mmap|mmap_uring]
//                               [--cache-pages=C]
//   --quick: 3 data sizes, 20 repetitions (CI smoke run). Default: the
//   paper's full 10 sizes at 100 repetitions.
//   --threads: additionally re-run every row through the QueryEngine at
//   1/2/4/8 worker threads and print a thread-scaling table per row
//   (blocking IO model, so the scaling is visible on any core count).
//   --json: additionally write every row (RAW + IO model) to
//   BENCH_table1.json in the working directory, for trajectory tracking.
//   --data-size=N: run a single row at N points instead of the size grid
//   (e.g. the 1E7 out-of-core row in README.md); --reps overrides the
//   repetition count for such large runs.
//   --backend/--cache-pages: serve geometry from an mmap page file behind
//   an LRU cache of C 4-KiB pages instead of in-memory arrays (see
//   src/storage/page_store.h) — with C pages smaller than the dataset
//   this is the genuinely out-of-core regime. Candidate/result counts
//   are backend-invariant; the page hit/miss columns become live.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool threads = false;
  bool json = false;
  std::size_t single_data_size = 0;
  int reps_override = 0;
  StorageBackend backend = StorageBackend::kInMemory;
  std::size_t cache_pages = 4096;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--threads") threads = true;
    if (arg == "--json") json = true;
    if (arg.rfind("--data-size=", 0) == 0) {
      single_data_size = std::stoull(arg.substr(12));
    }
    if (arg.rfind("--reps=", 0) == 0) reps_override = std::stoi(arg.substr(7));
    if (arg.rfind("--cache-pages=", 0) == 0) {
      cache_pages = std::stoull(arg.substr(14));
    }
    if (arg.rfind("--backend=", 0) == 0) {
      const std::string name = arg.substr(10);
      if (name == "memory") backend = StorageBackend::kInMemory;
      else if (name == "mmap") backend = StorageBackend::kMmap;
      else if (name == "mmap_uring") backend = StorageBackend::kMmapUring;
      else {
        std::cerr << "unknown backend: " << name << "\n";
        return 1;
      }
    }
  }

  std::vector<std::size_t> data_sizes;
  if (single_data_size > 0) {
    data_sizes = {single_data_size};
  } else if (quick) {
    data_sizes = {100000, 300000, 500000};
  } else {
    for (int i = 1; i <= 10; ++i) data_sizes.push_back(100000u * i);
  }
  const int reps = reps_override > 0 ? reps_override : (quick ? 20 : 100);

  std::vector<ExperimentRow> all_rows;
  for (const double fetch_ns : {0.0, 1000.0}) {
    std::vector<ExperimentRow> rows;
    for (const std::size_t n : data_sizes) {
      ExperimentConfig config;
      config.data_size = n;
      config.query_size_fraction = 0.01;  // Paper: fixed at 1%.
      config.repetitions = reps;
      config.seed = 20200101;
      config.simulated_fetch_ns = fetch_ns;
      config.storage_backend = backend;
      config.page_cache_pages = cache_pages;
      rows.push_back(RunExperiment(config));
    }
    std::cout << "\n=== Table I (" << (fetch_ns > 0 ? "IO MODEL, 1us/fetch" : "RAW")
              << "): query size 1%, " << reps << " reps/row, backend "
              << StorageBackendName(backend) << " ===\n";
    PrintPaperTable(rows, /*vary_query_size=*/false, std::cout);
    std::cout << "\n--- Fig. 4 (time) & Fig. 5 (redundant validations) series ---\n";
    PrintFigureSeries(rows, /*vary_query_size=*/false, std::cout);
    int mismatches = 0;
    for (const ExperimentRow& r : rows) mismatches += r.mismatches;
    std::cout << "result-set mismatches between methods: " << mismatches
              << "\n";
    if (backend != StorageBackend::kInMemory) {
      std::cout << "--- page cache traffic per query (cache "
                << cache_pages << " pages) ---\n"
                << "data_size  trad: touched  hits  misses  |  "
                   "voronoi: touched  hits  misses\n";
      for (const ExperimentRow& r : rows) {
        std::cout << r.config.data_size << "  " << r.traditional.pages_touched
                  << "  " << r.traditional.page_cache_hits << "  "
                  << r.traditional.page_cache_misses << "  |  "
                  << r.voronoi.pages_touched << "  "
                  << r.voronoi.page_cache_hits << "  "
                  << r.voronoi.page_cache_misses << "\n";
      }
    }
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  if (json) {
    std::ofstream out("BENCH_table1.json");
    WriteRowsJson(all_rows, out);
    std::cout << "\nwrote BENCH_table1.json (" << all_rows.size()
              << " rows)\n";
  }

  if (threads) {
    for (const std::size_t n : data_sizes) {
      ExperimentConfig config;
      config.data_size = n;
      config.query_size_fraction = 0.01;
      config.repetitions = reps;
      config.seed = 20200101;
      config.simulated_fetch_ns = 20000.0;
      config.blocking_fetch = true;
      config.storage_backend = backend;
      config.page_cache_pages = cache_pages;
      std::cout << "\n=== Table I thread scaling: data size " << n
                << " (blocking IO, 20us/fetch) ===\n";
      PrintThreadScalingTable(RunThreadSweep(config, {1, 2, 4, 8}),
                              std::cout);
    }
  }
  return 0;
}
