// Ablation: point distribution. The paper evaluates on uniform points;
// this bench repeats the Table II sweep on clustered (city-like) and
// jittered-grid data to show the candidate savings persist — the Voronoi
// method's advantage is a function of query-area shape, not of the data
// distribution.

#include <iostream>
#include <vector>

#include "workload/experiment.h"

int main() {
  using namespace vaq;
  for (const PointDistribution distribution :
       {PointDistribution::kUniform, PointDistribution::kClustered,
        PointDistribution::kGrid}) {
    std::vector<ExperimentRow> rows;
    for (const double qs : {0.01, 0.04, 0.16}) {
      ExperimentConfig config;
      config.data_size = 100000;
      config.query_size_fraction = qs;
      config.repetitions = 50;
      config.seed = 31415;
      config.distribution = distribution;
      rows.push_back(RunExperiment(config));
    }
    std::cout << "\n=== Distribution ablation: "
              << PointDistributionName(distribution)
              << " (1E5 points, 50 reps) ===\n";
    PrintPaperTable(rows, /*vary_query_size=*/true, std::cout);
    int mismatches = 0;
    for (const ExperimentRow& r : rows) mismatches += r.mismatches;
    std::cout << "result-set mismatches between methods: " << mismatches
              << "\n";
  }
  return 0;
}
