// Tail latency under storage faults: what per-query deadlines buy.
//
// The fault layer marks 1% of the page file's pages persistently slow
// (spike_ms extra latency per cache miss — a degraded disk region), and
// the bench runs the same random query stream closed-loop through a
// QueryEngine twice: once without deadlines, where an unlucky query that
// misses several slow pages accumulates every spike into its latency, and
// once with a per-query deadline, where the cancellation poll at the next
// block boundary converts the straggler into a fast typed abort
// (`QueryAbortedError`). The comparison is the failure-domain story in
// one table: deadlines cap the accumulated-stall tail at roughly one
// spike + the deadline, at the price of an explicit abort rate —
// unbounded waiting traded for typed, retryable failures.
//
// Usage: bench_fault_tail [--quick] [--json] [--check]
//   --quick: fewer queries (CI smoke run).
//   --json: write BENCH_fault_tail.json in the working directory.
//   --check: exit nonzero unless the deadline run (a) aborted at least
//   one query and (b) did not worsen the completed-stream p99 — the
//   self-validating mode the CI fault leg runs.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/cancel.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "engine/query_engine.h"
#include "fault/fault.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

constexpr vaq::Box kUnit = vaq::Box{{0.0, 0.0}, {1.0, 1.0}};

struct ArmResult {
  double deadline_ms = 0.0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t io_retries = 0;
};

/// Runs the query stream closed-loop (one in flight: the measured
/// latency is the client-observed wait, queueing excluded) and returns
/// the latency distribution over *all* outcomes — an aborted query's
/// wait ends at its abort, which is exactly the point of a deadline.
ArmResult RunArm(vaq::QueryEngine& engine, int method,
                 const std::vector<vaq::Polygon>& areas, double deadline_ms) {
  ArmResult arm;
  arm.deadline_ms = deadline_ms;
  std::vector<double> latencies;
  latencies.reserve(areas.size());
  for (const vaq::Polygon& area : areas) {
    vaq::SubmitOptions opts;
    opts.deadline_ms = deadline_ms;
    const auto t0 = std::chrono::steady_clock::now();
    std::future<vaq::QueryResult> f = engine.Submit(area, method, opts);
    try {
      const vaq::QueryResult r = f.get();
      ++arm.completed;
      arm.io_retries += r.stats.io_retries;
    } catch (const vaq::QueryAbortedError&) {
      ++arm.aborted;
    }
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  }
  std::sort(latencies.begin(), latencies.end());
  arm.p50_ms = vaq::NearestRankPercentile(latencies, 0.50);
  arm.p95_ms = vaq::NearestRankPercentile(latencies, 0.95);
  arm.p99_ms = vaq::NearestRankPercentile(latencies, 0.99);
  arm.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return arm;
}

void PrintArm(const ArmResult& arm) {
  std::cout << std::fixed << std::setprecision(3) << "  deadline=";
  if (arm.deadline_ms > 0.0) {
    std::cout << std::setw(6) << arm.deadline_ms << " ms";
  } else {
    std::cout << "  none   ";
  }
  std::cout << "  p50=" << std::setw(8) << arm.p50_ms
            << "  p95=" << std::setw(8) << arm.p95_ms
            << "  p99=" << std::setw(8) << arm.p99_ms
            << "  max=" << std::setw(8) << arm.max_ms
            << "  completed=" << arm.completed
            << "  aborted=" << arm.aborted << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  // 100k points at 1 KiB pages = ~1500 pages; 1% slow at 10 ms/spike and
  // ~10-60 pages per query gives most queries zero spikes, a visible
  // single-spike p95-p99, and a multi-spike max — the tail shape
  // deadlines exist for.
  constexpr std::size_t kPoints = 100000;
  constexpr double kSpikeMs = 10.0;
  constexpr double kDeadlineMs = 5.0;
  const std::size_t num_queries = quick ? 600 : 3000;

  Rng rng(20260807);
  PointDatabase::Options options;
  options.storage.backend = StorageBackend::kMmap;
  options.storage.page_size_bytes = 1024;
  options.storage.cache_pages = 64;  // Far under ~1500 pages: real misses.
  options.storage.fault = FaultSpec::Parse(
      "seed=1,slow=0.01,spike_ms=" + std::to_string(kSpikeMs));
  const PointDatabase db(GenerateUniformPoints(kPoints, kUnit, &rng),
                         options);
  const TraditionalAreaQuery query(&db);

  std::vector<Polygon> areas;
  areas.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    PolygonSpec spec;
    spec.query_size_fraction = rng.Uniform(0.002, 0.03);
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }

  QueryEngine engine({.num_threads = 1});
  const int method = engine.RegisterMethod(&query);

  std::cout << "=== Fault tail: " << num_queries << " queries, 1% slow "
            << "pages at +" << kSpikeMs << " ms/miss (closed loop) ===\n";
  const ArmResult no_deadline = RunArm(engine, method, areas, 0.0);
  PrintArm(no_deadline);
  const ArmResult with_deadline =
      RunArm(engine, method, areas, kDeadlineMs);
  PrintArm(with_deadline);
  std::cout << "(aborted queries' latencies are counted at their abort — "
               "the deadline's cap on client wait.)\n";

  if (json) {
    std::ofstream out("BENCH_fault_tail.json");
    out << "[\n";
    const ArmResult* arms[] = {&no_deadline, &with_deadline};
    for (int i = 0; i < 2; ++i) {
      const ArmResult& a = *arms[i];
      out << "  {\"bench\": \"fault_tail\", \"deadline_ms\": "
          << a.deadline_ms << ", \"p50_ms\": " << a.p50_ms
          << ", \"p95_ms\": " << a.p95_ms << ", \"p99_ms\": " << a.p99_ms
          << ", \"max_ms\": " << a.max_ms << ", \"completed\": "
          << a.completed << ", \"aborted\": " << a.aborted
          << ", \"io_retries\": " << a.io_retries << "}"
          << (i == 0 ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "wrote BENCH_fault_tail.json\n";
  }

  if (check) {
    int violations = 0;
    if (with_deadline.aborted == 0) {
      std::cout << "CHECK FAIL: deadline run aborted no queries — the "
                   "deadline never fired against injected slow pages\n";
      ++violations;
    }
    if (no_deadline.aborted != 0) {
      std::cout << "CHECK FAIL: deadline-free run aborted queries\n";
      ++violations;
    }
    // The no-deadline max accumulates every spike an unlucky query hits;
    // the deadline arm must cap the worst wait below it (one spike's
    // overshoot past the deadline, vs several spikes back to back).
    if (with_deadline.max_ms > no_deadline.max_ms) {
      std::cout << "CHECK FAIL: deadline worsened the worst-case wait ("
                << with_deadline.max_ms << " ms > " << no_deadline.max_ms
                << " ms)\n";
      ++violations;
    }
    if (violations > 0) return 1;
    std::cout << "CHECK OK: deadlines fired (" << with_deadline.aborted
              << " aborts) and capped the tail\n";
  }
  return 0;
}
