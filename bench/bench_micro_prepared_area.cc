// google-benchmark micro-benchmarks of the PreparedArea accelerator:
// prepared vs naive polygon tests across polygon complexity, the one-time
// preprocessing cost, and the build-plus-validate crossover that decides
// when preparing a query polygon amortises (DESIGN.md §6).

#include <benchmark/benchmark.h>

#include "geometry/polygon.h"
#include "geometry/prepared_area.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

Polygon BenchPolygon(int vertices) {
  Rng rng(7);
  PolygonSpec spec;
  spec.vertices = vertices;
  spec.query_size_fraction = 0.25;
  return GenerateQueryPolygon(spec, kUnit, &rng);
}

std::vector<Point> BenchPoints(std::size_t n) {
  Rng rng(42);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return points;
}

void BM_NaiveContains(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const auto pts = BenchPoints(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(pts[i++ & 1023]));
  }
}
BENCHMARK(BM_NaiveContains)->Arg(10)->Arg(40)->Arg(160)->Arg(640);

void BM_PreparedContains(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const PreparedArea prep(poly);
  const auto pts = BenchPoints(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prep.Contains(pts[i++ & 1023]));
  }
}
BENCHMARK(BM_PreparedContains)->Arg(10)->Arg(40)->Arg(160)->Arg(640);

void BM_PreparedBuild(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  PreparedArea prep;
  for (auto _ : state) {
    prep.Prepare(poly);
    benchmark::DoNotOptimize(prep.boundary_cell_count());
  }
}
BENCHMARK(BM_PreparedBuild)->Arg(10)->Arg(40)->Arg(160)->Arg(640);

void BM_NaiveBoundaryIntersects(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const auto pts = BenchPoints(2048);
  std::size_t i = 0;
  for (auto _ : state) {
    // Short segments, like the Delaunay edges the Voronoi flood tests.
    const Point& a = pts[i & 1023];
    const Segment s{a, {a.x + 0.01, a.y + 0.01}};
    benchmark::DoNotOptimize(poly.BoundaryIntersects(s));
    ++i;
  }
}
BENCHMARK(BM_NaiveBoundaryIntersects)->Arg(10)->Arg(160);

void BM_PreparedBoundaryIntersects(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const PreparedArea prep(poly);
  const auto pts = BenchPoints(2048);
  std::size_t i = 0;
  for (auto _ : state) {
    const Point& a = pts[i & 1023];
    const Segment s{a, {a.x + 0.01, a.y + 0.01}};
    benchmark::DoNotOptimize(prep.BoundaryIntersects(s));
    ++i;
  }
}
BENCHMARK(BM_PreparedBoundaryIntersects)->Arg(10)->Arg(160);

void BM_PreparedClassifyBox(benchmark::State& state) {
  const Polygon poly = BenchPolygon(40);
  const PreparedArea prep(poly);
  const auto pts = BenchPoints(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const Point& a = pts[i & 1023];
    const Box box{a, {a.x + 0.03, a.y + 0.03}};
    benchmark::DoNotOptimize(prep.ClassifyBox(box));
    ++i;
  }
}
BENCHMARK(BM_PreparedClassifyBox);

/// The whole-query crossover: validate `range(1)` candidates against an
/// `range(0)`-gon, naive scan vs build-the-grid-then-batch. Shows where the
/// one-time Prepare cost amortises (a few hundred candidates for the
/// paper's decagons; earlier for complex polygons).
void BM_ValidateNaive(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const auto pts = BenchPoints(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const Point& p : pts) hits += poly.Contains(p) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ValidateNaive)
    ->Args({10, 100})
    ->Args({10, 1000})
    ->Args({10, 10000})
    ->Args({160, 1000});

void BM_ValidatePrepared(benchmark::State& state) {
  const Polygon poly = BenchPolygon(static_cast<int>(state.range(0)));
  const auto pts = BenchPoints(static_cast<std::size_t>(state.range(1)));
  PreparedArea prep;
  for (auto _ : state) {
    prep.Prepare(poly);  // Charged per batch, as a query would pay it.
    std::size_t hits = 0;
    for (const Point& p : pts) hits += prep.Contains(p) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ValidatePrepared)
    ->Args({10, 100})
    ->Args({10, 1000})
    ->Args({10, 10000})
    ->Args({160, 1000});

}  // namespace
}  // namespace vaq

BENCHMARK_MAIN();
