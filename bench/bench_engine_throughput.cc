// Engine throughput: queries/second versus worker-thread count.
//
// The workload models the paper's cost regime — every candidate fetch is
// one object IO — with *blocking* simulated IO (the worker sleeps instead
// of spinning), so worker threads overlap their IO waits exactly like a
// disk- or network-backed engine would. Throughput therefore scales with
// the thread count even on a single core; the RAW (in-memory, CPU-bound)
// sweep is also printed for contrast and only scales with physical cores.
//
// Usage: bench_engine_throughput [--quick] [--json]
//   --quick: smaller database and fewer queries (CI smoke run).
//   --json: additionally write both sweeps to BENCH_engine.json in the
//   working directory, for trajectory tracking.

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  ExperimentConfig config;
  // Quick mode trims repetitions but keeps the knob grid (data size,
  // thread counts, fetch models) identical to the full run, so its JSON
  // rows key-match the committed BENCH_engine.json baseline and the CI
  // regression diff actually compares something.
  config.data_size = 200000;
  config.query_size_fraction = 0.01;
  config.repetitions = quick ? 64 : 256;
  config.seed = 20200101;

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<ExperimentRow> all_rows;

  std::cout << "=== Engine throughput: IO MODEL (blocking, 20us/fetch) ===\n";
  config.simulated_fetch_ns = 20000.0;
  config.blocking_fetch = true;
  {
    const std::vector<ExperimentRow> rows =
        RunThreadSweep(config, thread_counts);
    PrintThreadScalingTable(rows, std::cout);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  std::cout << "\n=== Engine throughput: RAW (in-memory, CPU-bound) ===\n";
  config.simulated_fetch_ns = 0.0;
  config.blocking_fetch = false;
  {
    const std::vector<ExperimentRow> rows =
        RunThreadSweep(config, thread_counts);
    PrintThreadScalingTable(rows, std::cout);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  if (json) {
    std::ofstream out("BENCH_engine.json");
    WriteRowsJson(all_rows, out);
    std::cout << "\nwrote BENCH_engine.json (" << all_rows.size()
              << " rows)\n";
  }

  std::cout << "\n(IO-model rows are the paper-faithful regime; expect "
               "near-linear scaling.\n RAW rows are bounded by physical "
               "cores.)\n";
  return 0;
}
