// Adaptive planner benchmark: proves `--method auto` earns its keep.
//
// Two parts, one committed baseline (BENCH_planner.json):
//
//  * **Grid cells** — {data size} x {query size} x {backend} where backend
//    is raw in-memory timing vs the paper's simulated disk (1us per
//    object fetch, busy-wait model). In memory the traditional
//    filter-refine method wins every cell; under IO the Voronoi method's
//    smaller candidate set wins every cell (the paper's crossover). The
//    planner sees only the backend configuration and the query polygon,
//    so these cells measure whether the cost model lands on the right
//    side of the crossover *without* being told. Each cell reports
//    `auto_vs_best_static` (planned time / best static method's time;
//    gated <= a bound in CI — auto may pay planning overhead but must
//    never pick badly) and `auto_vs_worst_static` (must stay well below 1
//    on cells where the statics genuinely diverge). Every planned result
//    is compared id-for-id against the traditional run (mismatches gate
//    to 0).
//
//  * **Cache cell** — a `DynamicPointDatabase` queried with a fixed set
//    of polygons, each twice per round, across rounds separated by an
//    Insert / Erase / Compact (each bumps the snapshot version, so every
//    round re-misses: COW publication *is* the invalidation). Second-hit
//    admission shapes round 0: a first-seen polygon's first execution is
//    declined (hash recorded, ids dropped) and its second execution is
//    stored, so round 0 is 2 misses/polygon with no hits; later rounds
//    are 1 miss (new version, admitted immediately — the hash is known)
//    + 1 hit per polygon. Counters are exact by construction —
//    (rounds + 1) x polygons misses, (rounds - 1) x polygons hits — and
//    gated exactly in CI; every answer (cached or not) is compared
//    against an uncached run of the same planned path.
//
// Usage: bench_planner [--quick] [--json] [--check]
//   --quick: fewer repetitions, same cell grid (rows key-match the
//     committed BENCH_planner.json baseline).
//   --json: write BENCH_planner.json in the working directory.
//   --check: exit 1 on any mismatch or off-by-construction cache counter
//     (the differential gate without needing the baseline file).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <vector>

#include "core/dynamic_point_database.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "planner/planned_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};
constexpr std::uint64_t kSeed = 20260807;

struct GridRow {
  std::size_t data_size = 0;
  double query_size = 0.0;
  const char* backend = "memory";
  double fetch_ns = 0.0;
  double auto_ms = 0.0;
  double trad_ms = 0.0;
  double vor_ms = 0.0;
  std::uint64_t plan_method = 0;
  std::uint64_t plan_reason = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  int mismatches = 0;
  bool crossover = false;  // Filled after both backends of the cell ran.

  double BestStatic() const { return std::min(trad_ms, vor_ms); }
  double WorstStatic() const { return std::max(trad_ms, vor_ms); }
};

std::vector<Polygon> QueryStream(double query_size, int reps) {
  Rng rng(kSeed ^ 0x9E3779B97F4A7C15ULL);
  PolygonSpec spec;
  spec.query_size_fraction = query_size;
  std::vector<Polygon> areas;
  areas.reserve(reps);
  for (int rep = 0; rep < reps; ++rep) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  return areas;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  const int reps = quick ? 12 : 40;
  const std::size_t data_sizes[] = {100000, 250000};
  const double query_sizes[] = {0.01, 0.08, 0.32};
  // Raw in-memory vs the paper's disk-resident regime. 1us per fetch is
  // the crossover study's smallest simulated latency — the hardest IO
  // cell for the planner to call (larger latencies only widen the gap).
  const double fetch_grid[] = {0.0, 1000.0};

  std::vector<GridRow> rows;
  int total_mismatches = 0;

  std::cout << "=== Planner grid: auto vs static methods, " << reps
            << " reps/cell ===\n";
  for (const std::size_t n : data_sizes) {
    Rng data_rng(kSeed);
    PointDatabase db(GenerateUniformPoints(n, kUnit, &data_rng));
    const TraditionalAreaQuery traditional(&db);
    const VoronoiAreaQuery voronoi(&db);

    for (const double fetch_ns : fetch_grid) {
      db.set_simulated_fetch_ns(fetch_ns);
      // A fresh planner per cell: every cell measures the cold seed
      // model plus whatever the EWMAs learn inside the cell itself.
      const PlannedAreaQuery planned(&db);

      for (const double query_size : query_sizes) {
        const std::vector<Polygon> areas = QueryStream(query_size, reps);
        GridRow row;
        row.data_size = n;
        row.query_size = query_size;
        row.backend = fetch_ns > 0.0 ? "sim_io" : "memory";
        row.fetch_ns = fetch_ns;

        QueryContext ctx;
        std::vector<std::vector<PointId>> truth;
        truth.reserve(areas.size());
        const auto run =
            [&](const AreaQuery& q, double* total_ms, bool planned_run) {
              double ms = 0.0;
              for (std::size_t i = 0; i < areas.size(); ++i) {
                std::vector<PointId> ids = q.Run(areas[i], ctx);
                ms += ctx.stats.elapsed_ms;
                if (planned_run) {
                  row.plan_method |= ctx.stats.plan_method;
                  row.plan_reason |= ctx.stats.plan_reason;
                  row.cache_hits += ctx.stats.result_cache_hits;
                  row.cache_misses += ctx.stats.result_cache_misses;
                  if (ids != truth[i]) ++row.mismatches;
                } else if (truth.size() <= i) {
                  truth.push_back(std::move(ids));
                }
              }
              *total_ms = ms;
            };
        run(traditional, &row.trad_ms, false);
        run(voronoi, &row.vor_ms, false);
        run(planned, &row.auto_ms, true);
        total_mismatches += row.mismatches;
        rows.push_back(row);

        std::cout << std::fixed << "n=" << n << " @" << std::setprecision(0)
                  << query_size * 100.0 << "% " << std::setw(6)
                  << row.backend << "  auto " << std::setprecision(3)
                  << row.auto_ms / reps << " ms/q  trad "
                  << row.trad_ms / reps << "  vor " << row.vor_ms / reps
                  << "  auto/best " << std::setprecision(2)
                  << row.auto_ms / row.BestStatic() << "  mismatches "
                  << row.mismatches << "\n";
      }
    }
  }

  // A cell is a crossover cell when the winning static method flips
  // between its memory and sim_io rows — the regime boundary the planner
  // exists for. On those rows auto must beat the *worst* static: a
  // static pick is wrong on one side of the flip by construction.
  for (GridRow& a : rows) {
    for (const GridRow& b : rows) {
      if (a.data_size == b.data_size && a.query_size == b.query_size &&
          std::strcmp(a.backend, b.backend) != 0) {
        a.crossover = (a.trad_ms < a.vor_ms) != (b.trad_ms < b.vor_ms);
      }
    }
  }

  // --- Cache cell: exact counters + differential under churn. ---------
  const int kCachePolygons = 8;
  Rng cache_data_rng(kSeed + 1);
  DynamicPointDatabase cache_db(
      GenerateUniformPoints(20000, kUnit, &cache_data_rng));
  const std::vector<Polygon> cache_areas = QueryStream(0.05, kCachePolygons);

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  int cache_mismatches = 0;
  std::optional<PointId> churn_id;
  QueryContext cctx;
  PlanHints uncached;
  uncached.use_cache = false;
  // Rounds separated by each mutation kind; every mutation publishes a
  // new snapshot version, so every round must re-miss once per polygon.
  // Round 3 inserts before compacting: compaction of an unchanged live
  // set is a no-op that (correctly) publishes nothing — same version,
  // same answers, cache hits stay valid — so an effective compaction
  // needs a non-empty delta.
  for (int round = 0; round < 4; ++round) {
    if (round == 1) churn_id = cache_db.Insert({1.5, 1.5});
    if (round == 2 && churn_id.has_value()) cache_db.Erase(*churn_id);
    if (round == 3) {
      cache_db.Insert({2.5, 2.5});
      cache_db.Compact();
    }
    for (const Polygon& area : cache_areas) {
      const std::vector<PointId> first = cache_db.Query(area, cctx);
      cache_hits += cctx.stats.result_cache_hits;
      cache_misses += cctx.stats.result_cache_misses;
      const std::vector<PointId> second = cache_db.Query(area, cctx);
      cache_hits += cctx.stats.result_cache_hits;
      cache_misses += cctx.stats.result_cache_misses;
      const std::vector<PointId> fresh =
          cache_db.Query(area, cctx, uncached);
      if (first != fresh || second != fresh) ++cache_mismatches;
    }
  }
  // 4 rounds x 2 executions: round 0 is miss+miss (second-hit admission
  // declines the first-seen execution), rounds 1-3 are miss+hit each.
  const std::uint64_t expected_hits = 3ull * kCachePolygons;
  const std::uint64_t expected_misses = 5ull * kCachePolygons;
  std::cout << "cache: hits " << cache_hits << "/" << expected_hits
            << "  misses " << cache_misses << "/" << expected_misses
            << "  mismatches " << cache_mismatches << "\n";
  total_mismatches += cache_mismatches;

  if (json) {
    std::ofstream out("BENCH_planner.json");
    out << "[\n";
    for (const GridRow& row : rows) {
      out << "  {\"bench\": \"planner\", \"cell\": \"grid\""
          << ", \"data_size\": " << row.data_size
          << ", \"query_size_fraction\": " << row.query_size
          << ", \"backend\": \"" << row.backend << "\""
          << ", \"simulated_fetch_ns\": " << row.fetch_ns
          << ", \"reps\": " << reps
          << ", \"crossover\": " << (row.crossover ? "true" : "false")
          << ", \"mismatches\": " << row.mismatches
          << ",\n   \"auto\": {\"time_ms\": " << row.auto_ms / reps
          << ", \"plan_method\": " << row.plan_method
          << ", \"plan_reason\": " << row.plan_reason
          << ", \"result_cache_hits\": "
          << static_cast<double>(row.cache_hits)
          << ", \"result_cache_misses\": "
          << static_cast<double>(row.cache_misses) << "}"
          << ",\n   \"traditional\": {\"time_ms\": " << row.trad_ms / reps
          << "}, \"voronoi\": {\"time_ms\": " << row.vor_ms / reps << "}"
          << ", \"auto_vs_best_static\": " << row.auto_ms / row.BestStatic()
          << ", \"auto_vs_worst_static\": "
          << row.auto_ms / row.WorstStatic() << "},\n";
    }
    out << "  {\"bench\": \"planner\", \"cell\": \"cache\""
        << ", \"rounds\": 4, \"polygons\": " << kCachePolygons
        << ", \"result_cache_hits\": " << cache_hits
        << ", \"result_cache_misses\": " << cache_misses
        << ", \"mismatches\": " << cache_mismatches << "}\n"
        << "]\n";
    std::cout << "wrote BENCH_planner.json (" << rows.size() + 1
              << " rows)\n";
  }

  if (check) {
    if (total_mismatches > 0 || cache_hits != expected_hits ||
        cache_misses != expected_misses) {
      std::cerr << "CHECK FAILED: mismatches=" << total_mismatches
                << " cache_hits=" << cache_hits << " (expected "
                << expected_hits << ") cache_misses=" << cache_misses
                << " (expected " << expected_misses << ")\n";
      return 1;
    }
    std::cout << "check passed\n";
  }
  return 0;
}
