// Reproduces Table II, Fig. 6 and Fig. 7 of the paper: traditional vs
// Voronoi-based area query as the query size grows from 1% to 32% of the
// domain (data size fixed at 1E5 points). See bench_table1_data_size.cc
// for the two timing models.
//
// Usage: bench_table2_query_size [--quick]

#include <cstring>
#include <iostream>
#include <vector>

#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace vaq;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::vector<double> query_sizes =
      quick ? std::vector<double>{0.01, 0.08, 0.32}
            : std::vector<double>{0.01, 0.02, 0.04, 0.08, 0.16, 0.32};
  const int reps = quick ? 20 : 100;

  for (const double fetch_ns : {0.0, 1000.0}) {
    std::vector<ExperimentRow> rows;
    for (const double qs : query_sizes) {
      ExperimentConfig config;
      config.data_size = 100000;  // Paper: fixed at 1E5.
      config.query_size_fraction = qs;
      config.repetitions = reps;
      config.seed = 20200202;
      config.simulated_fetch_ns = fetch_ns;
      rows.push_back(RunExperiment(config));
    }
    std::cout << "\n=== Table II (" << (fetch_ns > 0 ? "IO MODEL, 1us/fetch" : "RAW")
              << "): data size 1E5, " << reps << " reps/row ===\n";
    PrintPaperTable(rows, /*vary_query_size=*/true, std::cout);
    std::cout << "\n--- Fig. 6 (time) & Fig. 7 (redundant validations) series ---\n";
    PrintFigureSeries(rows, /*vary_query_size=*/true, std::cout);
    int mismatches = 0;
    for (const ExperimentRow& r : rows) mismatches += r.mismatches;
    std::cout << "result-set mismatches between methods: " << mismatches
              << "\n";
  }
  return 0;
}
