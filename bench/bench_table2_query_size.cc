// Reproduces Table II, Fig. 6 and Fig. 7 of the paper: traditional vs
// Voronoi-based area query as the query size grows from 1% to 32% of the
// domain (data size fixed at 1E5 points). See bench_table1_data_size.cc
// for the two timing models.
//
// Usage: bench_table2_query_size [--quick] [--threads] [--json] [--auto]
//   --threads: additionally re-run every row through the QueryEngine at
//   1/2/4/8 worker threads and print a thread-scaling table per row
//   (blocking IO model, so the scaling is visible on any core count).
//   --json: additionally write every row (RAW + IO model) to
//   BENCH_table2.json in the working directory, for trajectory tracking.
//   --auto: additionally run every row through the adaptive planner
//   (`--method auto`); each row prints the planner's per-query time next
//   to the statics and the JSON gains an "auto" object with the
//   plan_method / plan_reason masks (see bench_planner for the gated
//   planner study — this flag is for eyeballing Table II itself).

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "workload/experiment.h"

int main(int argc, char** argv) {
  using namespace vaq;
  bool quick = false;
  bool threads = false;
  bool json = false;
  bool run_auto = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--threads") == 0) threads = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--auto") == 0) run_auto = true;
  }
  const std::vector<double> query_sizes =
      quick ? std::vector<double>{0.01, 0.08, 0.32}
            : std::vector<double>{0.01, 0.02, 0.04, 0.08, 0.16, 0.32};
  const int reps = quick ? 20 : 100;

  std::vector<ExperimentRow> all_rows;
  for (const double fetch_ns : {0.0, 1000.0}) {
    std::vector<ExperimentRow> rows;
    for (const double qs : query_sizes) {
      ExperimentConfig config;
      config.data_size = 100000;  // Paper: fixed at 1E5.
      config.query_size_fraction = qs;
      config.repetitions = reps;
      config.seed = 20200202;
      config.simulated_fetch_ns = fetch_ns;
      config.run_auto = run_auto;
      rows.push_back(RunExperiment(config));
    }
    std::cout << "\n=== Table II (" << (fetch_ns > 0 ? "IO MODEL, 1us/fetch" : "RAW")
              << "): data size 1E5, " << reps << " reps/row ===\n";
    PrintPaperTable(rows, /*vary_query_size=*/true, std::cout);
    if (run_auto) {
      std::cout << "\n--- planner (--method auto) per-query time ---\n";
      for (const ExperimentRow& r : rows) {
        std::cout << "  " << r.config.query_size_fraction * 100.0
                  << "%: auto " << r.auto_planned.time_ms
                  << " ms (trad " << r.traditional.time_ms << ", vor "
                  << r.voronoi.time_ms << ")  plan_method=0x" << std::hex
                  << r.auto_planned.plan_method << " plan_reason=0x"
                  << r.auto_planned.plan_reason << std::dec << "\n";
      }
    }
    std::cout << "\n--- Fig. 6 (time) & Fig. 7 (redundant validations) series ---\n";
    PrintFigureSeries(rows, /*vary_query_size=*/true, std::cout);
    int mismatches = 0;
    for (const ExperimentRow& r : rows) mismatches += r.mismatches;
    std::cout << "result-set mismatches between methods: " << mismatches
              << "\n";
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  if (json) {
    std::ofstream out("BENCH_table2.json");
    WriteRowsJson(all_rows, out);
    std::cout << "\nwrote BENCH_table2.json (" << all_rows.size()
              << " rows)\n";
  }

  if (threads) {
    for (const double qs : query_sizes) {
      ExperimentConfig config;
      config.data_size = 100000;
      config.query_size_fraction = qs;
      config.repetitions = reps;
      config.seed = 20200202;
      config.simulated_fetch_ns = 20000.0;
      config.blocking_fetch = true;
      std::cout << "\n=== Table II thread scaling: query size " << qs * 100.0
                << "% (blocking IO, 20us/fetch) ===\n";
      PrintThreadScalingTable(RunThreadSweep(config, {1, 2, 4, 8}),
                              std::cout);
    }
  }
  return 0;
}
