// Server throughput: queries/second through the full network stack —
// WKT encode, loopback TCP, frame parse, engine submission, planned
// execution, id streaming — versus concurrent client count.
//
// Two cells per client count:
//  * uncached: distinct-per-round polygons with use_cache=false, so every
//    query executes its planned method — the steady-state cost of a
//    cache-hostile workload;
//  * cached: one fixed polygon warmed past second-hit admission, so every
//    timed query is a result-cache hit — the protocol + dispatch floor.
//
// Every polygon's networked answer is differentially checked against the
// in-process planned query before timing (the `mismatches` column; CI
// gates it at zero).
//
// Usage: bench_server_qps [--quick] [--json]
//   --quick: fewer repetitions (CI smoke); the knob grid stays identical
//   to the full run so JSON rows key-match the committed baseline.
//   --json: write rows to BENCH_server.json in the working directory.

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_point_database.h"
#include "geometry/wkt.h"
#include "server/client.h"
#include "server/query_server.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

constexpr std::size_t kDataSize = 50000;
constexpr double kQuerySizeFraction = 0.01;
constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

struct Row {
  int clients = 0;
  bool cached = false;
  int reps = 0;  // Queries per client.
  std::uint64_t mismatches = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

Row RunCell(QueryServer& server, const std::vector<std::string>& wkts,
            bool cached, int clients, int reps) {
  Row row;
  row.clients = clients;
  row.cached = cached;
  row.reps = reps;

  const QueryServer::Counters before = server.counters();
  server.ResetEngineStats();

  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      try {
        QueryClient client(server.port());
        WireQueryRequest req;
        req.use_cache = cached;
        for (int i = 0; i < reps; ++i) {
          req.wkt = cached ? wkts[0] : wkts[(t + i) % wkts.size()];
          client.Query(req);
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  row.errors = errors.load();
  row.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  row.qps = static_cast<double>(clients) * reps / (row.wall_ms / 1000.0);
  const EngineStats es = server.engine_stats();
  row.latency_p50_ms = es.latency_p50_ms;
  row.latency_p95_ms = es.latency_p95_ms;
  row.latency_p99_ms = es.latency_p99_ms;
  row.shed = server.counters().queries_shed - before.queries_shed;
  return row;
}

void WriteJson(const std::vector<Row>& rows, std::ostream& out) {
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << " {\n"
        << "  \"bench\": \"server\",\n"
        << "  \"cell\": \"" << (r.cached ? "cached" : "uncached") << "\",\n"
        << "  \"clients\": " << r.clients << ",\n"
        << "  \"data_size\": " << kDataSize << ",\n"
        << "  \"query_size_fraction\": " << kQuerySizeFraction << ",\n"
        << "  \"reps\": " << r.reps << ",\n"
        << "  \"mismatches\": " << r.mismatches << ",\n"
        << "  \"errors\": " << r.errors << ",\n"
        << "  \"shed\": " << r.shed << ",\n"
        << "  \"wall_ms\": " << r.wall_ms << ",\n"
        << "  \"qps\": " << r.qps << ",\n"
        << "  \"latency_p50_ms\": " << r.latency_p50_ms << ",\n"
        << "  \"latency_p95_ms\": " << r.latency_p95_ms << ",\n"
        << "  \"latency_p99_ms\": " << r.latency_p99_ms << "\n"
        << " }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  Rng rng(20200101);
  DynamicPointDatabase db(GenerateUniformPoints(kDataSize, kUnit, &rng));
  QueryServer server(&db, QueryServer::Options{});
  server.Start();

  // The fixed polygon set, shared by all cells (wkts[0] is the cached
  // cell's hot polygon).
  PolygonSpec spec;
  spec.query_size_fraction = kQuerySizeFraction;
  Rng prng(17);
  std::vector<std::string> wkts;
  std::vector<Polygon> areas;
  for (int i = 0; i < 16; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &prng));
    wkts.push_back(ToWkt(areas.back()));
  }

  // Differential check (counted once, reported on every row): each
  // polygon's networked answer equals the in-process planned query.
  std::uint64_t mismatches = 0;
  {
    QueryClient client(server.port());
    QueryContext ctx;
    PlanHints uncached;
    uncached.use_cache = false;
    for (std::size_t i = 0; i < areas.size(); ++i) {
      WireQueryRequest req;
      req.wkt = wkts[i];
      req.use_cache = false;
      if (client.Query(req).ids != db.Query(areas[i], ctx, uncached)) {
        ++mismatches;
      }
    }
    // Warm the hot polygon past second-hit admission so the cached cell
    // measures hits from its first timed query.
    WireQueryRequest warm;
    warm.wkt = wkts[0];
    client.Query(warm);
    client.Query(warm);
  }

  const int reps = quick ? 100 : 400;
  std::vector<Row> rows;
  std::cout << "=== Server QPS over loopback (" << kDataSize
            << " points, q=" << kQuerySizeFraction << ") ===\n";
  std::cout << "cell      clients  reps    qps        p50_ms    p99_ms\n";
  for (const bool cached : {false, true}) {
    for (const int clients : {1, 4, 8}) {
      Row row = RunCell(server, wkts, cached, clients, reps);
      row.mismatches = mismatches;
      rows.push_back(row);
      std::cout << std::left << std::setw(10)
                << (cached ? "cached" : "uncached") << std::setw(9)
                << clients << std::setw(8) << reps << std::setw(11)
                << std::fixed << std::setprecision(0) << row.qps
                << std::setw(10) << std::setprecision(4)
                << row.latency_p50_ms << std::setprecision(4)
                << row.latency_p99_ms << "\n";
    }
  }

  server.Stop();

  if (mismatches != 0) {
    std::cout << "FAIL: " << mismatches
              << " networked-vs-oracle mismatch(es)\n";
    return 1;
  }
  if (json) {
    std::ofstream out("BENCH_server.json");
    WriteJson(rows, out);
    std::cout << "\nwrote BENCH_server.json (" << rows.size() << " rows)\n";
  }
  return 0;
}
