// Shard scaling: sharded scatter-gather throughput versus shard count
// under the paper-faithful blocking IO model (every candidate fetch is one
// 20us object IO the worker sleeps through).
//
// The client issues queries sequentially; each query pins one cross-shard
// snapshot, prunes shards by MBR and scatters the survivors onto a fixed
// 4-worker pool. The two query sizes probe the two ways sharding pays:
//
//  * 2% queries land inside one or two shard MBRs — most shards prune,
//    so the win is *less work*, not parallelism (speedup is modest but
//    pruned counts are high);
//  * 48% queries overlap every shard with near-balanced shares — the
//    legs overlap their IO waits, so per-query latency (and therefore
//    the sequential client's throughput) improves toward the thread
//    count. This is the acceptance row: >2x at 4 shards / 4 threads,
//    bounded in theory by the largest single-shard share of the query
//    (~0.37 expected for half-domain MBRs over quadrant-shaped shards).
//
// Every repetition also cross-checks voronoi against traditional, so the
// bench doubles as a differential smoke test in CI — it is what caught
// the shard-amplified incompleteness of the paper's segment-expansion
// rule (see DESIGN.md §9).
//
// Usage: bench_shard_scaling [--quick] [--json]
//   --quick: fewer repetitions, same knob grid (rows key-match the
//   committed BENCH_shard.json baseline).
//   --json: write BENCH_shard.json in the working directory.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "engine/query_engine.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace {

using namespace vaq;

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

struct MethodNumbers {
  QueryStats sum;  // Additive counters over all repetitions.
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
};

struct ShardRow {
  double query_size = 0.0;
  std::size_t num_shards = 0;
  MethodNumbers voronoi;
  MethodNumbers traditional;
  int mismatches = 0;
};

void WriteMethodJson(const MethodNumbers& m, int reps, std::ostream& os) {
  const double n = reps;
  os << "{\"candidates\": " << static_cast<double>(m.sum.candidates) / n
     << ", \"redundant\": " << static_cast<double>(m.sum.visited_rejected) / n
     << ", \"geometry_loads\": "
     << static_cast<double>(m.sum.geometry_loads) / n
     << ", \"shards_hit\": " << static_cast<double>(m.sum.shards_hit) / n
     << ", \"shards_pruned\": "
     << static_cast<double>(m.sum.shards_pruned) / n
     << ", \"time_ms\": " << m.sum.elapsed_ms / n
     << ", \"throughput_qps\": " << m.throughput_qps << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  constexpr std::size_t kDataSize = 200000;
  constexpr double kFetchNs = 20000.0;
  constexpr int kScatterThreads = 4;
  const int reps = quick ? 16 : 32;
  const double query_sizes[] = {0.02, 0.48};
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  Rng data_rng(20260730);
  const std::vector<Point> points =
      GenerateUniformPoints(kDataSize, kUnit, &data_rng);

  QueryEngine scatter({.num_threads = kScatterThreads});
  std::vector<ShardRow> rows;

  std::cout << "=== Shard scaling: blocking IO model (20us/fetch), "
            << kScatterThreads << "-thread scatter pool, " << kDataSize
            << " points ===\n";
  for (const std::size_t k : shard_counts) {
    ShardedDatabase::Options options;
    options.num_shards = k;
    options.shard.simulated_fetch_ns = kFetchNs;
    options.shard.fetch_latency_model =
        PointDatabase::FetchLatencyModel::kSleep;
    const ShardedDatabase db(points, options);

    const ShardedAreaQuery voronoi(&db, DynamicMethod::kVoronoi, &scatter);
    const ShardedAreaQuery traditional(&db, DynamicMethod::kTraditional,
                                       &scatter);

    for (const double query_size : query_sizes) {
      // The polygon stream is regenerated identically for every K, so
      // rows of one query size differ only in sharding.
      Rng query_rng(20260730 ^ 0x9E3779B97F4A7C15ULL);
      PolygonSpec spec;
      spec.query_size_fraction = query_size;
      std::vector<Polygon> areas;
      areas.reserve(reps);
      for (int rep = 0; rep < reps; ++rep) {
        areas.push_back(GenerateQueryPolygon(spec, kUnit, &query_rng));
      }

      ShardRow row;
      row.query_size = query_size;
      row.num_shards = k;
      QueryContext ctx;
      const auto run_method =
          [&](const ShardedAreaQuery& query, MethodNumbers* numbers,
              std::vector<std::vector<PointId>>* results) {
            const auto t0 = std::chrono::steady_clock::now();
            for (const Polygon& area : areas) {
              results->push_back(query.Run(area, ctx));
              numbers->sum += ctx.stats;
            }
            numbers->wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
            numbers->throughput_qps = reps / (numbers->wall_ms / 1000.0);
          };
      std::vector<std::vector<PointId>> voronoi_results;
      std::vector<std::vector<PointId>> traditional_results;
      run_method(voronoi, &row.voronoi, &voronoi_results);
      run_method(traditional, &row.traditional, &traditional_results);
      for (int rep = 0; rep < reps; ++rep) {
        if (voronoi_results[rep] != traditional_results[rep]) {
          ++row.mismatches;
        }
      }
      rows.push_back(row);

      std::cout << std::fixed << std::setprecision(0) << "K=" << k << " @"
                << query_size * 100.0 << "%  voronoi "
                << std::setprecision(1) << row.voronoi.throughput_qps
                << " qps (" << std::setprecision(2)
                << row.voronoi.sum.elapsed_ms / reps
                << " ms/q)  traditional " << std::setprecision(1)
                << row.traditional.throughput_qps << " qps ("
                << std::setprecision(2)
                << row.traditional.sum.elapsed_ms / reps << " ms/q)  pruned "
                << std::setprecision(1)
                << static_cast<double>(row.traditional.sum.shards_pruned) /
                       reps
                << "/" << k << "  mismatches " << row.mismatches << "\n";
    }
  }

  for (const double query_size : query_sizes) {
    std::cout << "\nSpeedup vs 1 shard at " << std::fixed
              << std::setprecision(0) << query_size * 100.0
              << "% query size:\n";
    const ShardRow* base = nullptr;
    for (const ShardRow& row : rows) {
      if (row.query_size != query_size) continue;
      if (base == nullptr) base = &row;
      std::cout << std::fixed << std::setprecision(2) << "K="
                << row.num_shards << "  voronoi "
                << row.voronoi.throughput_qps / base->voronoi.throughput_qps
                << "x  traditional "
                << row.traditional.throughput_qps /
                       base->traditional.throughput_qps
                << "x\n";
    }
  }

  if (json) {
    std::ofstream out("BENCH_shard.json");
    out << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ShardRow& row = rows[i];
      out << "  {\"data_size\": " << kDataSize
          << ", \"query_size_fraction\": " << row.query_size
          << ", \"simulated_fetch_ns\": " << kFetchNs
          << ", \"blocking_fetch\": true"
          << ", \"num_threads\": " << kScatterThreads
          << ", \"num_shards\": " << row.num_shards
          << ", \"mismatches\": " << row.mismatches << ",\n   \"voronoi\": ";
      WriteMethodJson(row.voronoi, reps, out);
      out << ",\n   \"traditional\": ";
      WriteMethodJson(row.traditional, reps, out);
      out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "\nwrote BENCH_shard.json (" << rows.size() << " rows)\n";
  }
  return 0;
}
