// google-benchmark micro-benchmarks of the geometry kernel: the predicates
// and polygon tests that dominate both area-query implementations.

#include <benchmark/benchmark.h>

#include "geometry/polygon.h"
#include "geometry/predicates.h"
#include "geometry/segment.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

std::vector<Point> BenchPoints(std::size_t n) {
  Rng rng(42);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return points;
}

void BM_Orient2D_Generic(benchmark::State& state) {
  const auto pts = BenchPoints(3000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Orient2D(pts[i % 1000], pts[1000 + i % 1000], pts[2000 + i % 1000]));
    ++i;
  }
}
BENCHMARK(BM_Orient2D_Generic);

void BM_Orient2D_NearDegenerate(benchmark::State& state) {
  // Forces the exact-arithmetic fallback every iteration.
  const Point a{0.5, 0.5};
  const Point b{12.0, 12.0};
  const Point c{24.0, 24.0 + 1e-14};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Orient2D(a, b, c));
  }
}
BENCHMARK(BM_Orient2D_NearDegenerate);

void BM_InCircle_Generic(benchmark::State& state) {
  const auto pts = BenchPoints(4000);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InCircle(pts[i % 1000], pts[1000 + i % 1000],
                                      pts[2000 + i % 1000],
                                      pts[3000 + i % 1000]));
    ++i;
  }
}
BENCHMARK(BM_InCircle_Generic);

void BM_InCircle_NearCocircular(benchmark::State& state) {
  const Point a{0.5, 0.0}, b{1.0, 0.5}, c{0.5, 1.0};
  const Point d{1e-17, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(InCircle(a, b, c, d));
  }
}
BENCHMARK(BM_InCircle_NearCocircular);

void BM_PolygonContains(benchmark::State& state) {
  Rng rng(7);
  PolygonSpec spec;
  spec.vertices = static_cast<int>(state.range(0));
  spec.query_size_fraction = 0.25;
  const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
  const auto pts = BenchPoints(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(pts[i++ & 1023]));
  }
}
BENCHMARK(BM_PolygonContains)->Arg(4)->Arg(10)->Arg(40);

void BM_PolygonIntersectsSegment(benchmark::State& state) {
  Rng rng(8);
  PolygonSpec spec;
  spec.query_size_fraction = 0.25;
  const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
  const auto pts = BenchPoints(2048);
  std::size_t i = 0;
  for (auto _ : state) {
    const Segment s{pts[i & 1023], pts[1024 + (i & 1023)]};
    benchmark::DoNotOptimize(poly.Intersects(s));
    ++i;
  }
}
BENCHMARK(BM_PolygonIntersectsSegment);

void BM_SegmentsIntersect(benchmark::State& state) {
  const auto pts = BenchPoints(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    const Segment s{pts[i & 1023], pts[1024 + (i & 1023)]};
    const Segment t{pts[2048 + (i & 1023)], pts[3072 + (i & 1023)]};
    benchmark::DoNotOptimize(SegmentsIntersect(s, t));
    ++i;
  }
}
BENCHMARK(BM_SegmentsIntersect);

void BM_InteriorPoint(benchmark::State& state) {
  Rng rng(9);
  PolygonSpec spec;
  spec.query_size_fraction = 0.1;
  const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.InteriorPoint());
  }
}
BENCHMARK(BM_InteriorPoint);

}  // namespace
}  // namespace vaq

BENCHMARK_MAIN();
