#include "delaunay/hilbert.h"

#include <algorithm>

namespace vaq {

std::uint64_t HilbertD(std::uint32_t order, std::uint32_t x, std::uint32_t y) {
  std::uint64_t rx, ry, d = 0;
  for (std::uint64_t s = 1ULL << (order - 1); s > 0; s >>= 1) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s - 1 - x);
        y = static_cast<std::uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

std::uint64_t HilbertKeyInBox(const Box& domain, const Point& p) {
  constexpr std::uint32_t kOrder = 16;
  constexpr double kCells = 65535.0;  // 2^16 - 1.
  const double w = std::max(domain.Width(), 1e-300);
  const double h = std::max(domain.Height(), 1e-300);
  const double fx = std::clamp((p.x - domain.min.x) / w, 0.0, 1.0);
  const double fy = std::clamp((p.y - domain.min.y) / h, 0.0, 1.0);
  return HilbertD(kOrder, static_cast<std::uint32_t>(fx * kCells),
                  static_cast<std::uint32_t>(fy * kCells));
}

std::vector<std::uint32_t> HilbertOrder(const std::vector<Point>& points) {
  Box bounds;
  for (const Point& p : points) bounds.ExpandToInclude(p);

  std::vector<std::uint64_t> keys(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    keys[i] = HilbertKeyInBox(bounds, points[i]);
  }
  std::vector<std::uint32_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return keys[a] < keys[b] || (keys[a] == keys[b] && a < b);
  });
  return order;
}

}  // namespace vaq
