#ifndef VAQ_DELAUNAY_TRIANGULATION_H_
#define VAQ_DELAUNAY_TRIANGULATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "index/spatial_index.h"

namespace vaq {

/// Incremental Delaunay triangulation (Bowyer–Watson) of a set of distinct
/// points in the plane.
///
/// This is the substrate of the paper's contribution: by Delaunay/Voronoi
/// duality (paper Property 4), the *Voronoi neighbours* `VN(P, p)` consumed
/// by Algorithm 1 are exactly the Delaunay-adjacent vertices of `p`, which
/// this class exposes as a CSR adjacency structure (`NeighborsOf`).
///
/// Implementation notes:
/// * points are inserted in Hilbert-curve order (BRIO-like), so locating
///   each insertion by walking from the previously modified triangle is
///   O(1) amortised — construction is O(n log n) in practice;
/// * all predicates (walk orientation, cavity in-circle) are the exact
///   filtered predicates of geometry/predicates.h, so the structure never
///   corrupts on degenerate input (collinear / cocircular points);
/// * construction happens inside a large *finite* super-triangle whose
///   vertices are far outside the data bounding box. The final structure is
///   exactly Delaunay for the n+3 point set; restricted to real points this
///   differs from the true Delaunay triangulation only in hull-adjacent
///   slivers whose circumcircle reaches the super vertices — immaterial for
///   area queries and excluded from user-visible triangles.
///
/// Precondition: input points are pairwise distinct (checked in debug).
class DelaunayTriangulation {
 public:
  /// A triangle of real (non-super) vertices, counter-clockwise.
  struct Triangle {
    PointId a, b, c;
  };

  /// Builds the triangulation of `points`. O(n log n) expected.
  /// Pass `hilbert_sorted = true` when the caller already ordered the
  /// points along a Hilbert curve (e.g. `PointDatabase`'s clustered
  /// storage): insertions then run in input order and the BRIO reorder —
  /// an O(n log n) sort plus a full copy of the point set — is skipped.
  explicit DelaunayTriangulation(std::vector<Point> points,
                                 bool hilbert_sorted = false);

  /// Number of real points.
  std::size_t num_points() const { return num_real_; }

  /// The coordinates of point `v`. Precondition: `v < num_points()`.
  const Point& point(PointId v) const { return points_[v]; }

  /// The Voronoi neighbours of `v` (= Delaunay-adjacent vertices), i.e.
  /// `VN(P, p)` of the paper. Super vertices are excluded. The spans stay
  /// valid for the lifetime of the triangulation.
  std::span<const PointId> NeighborsOf(PointId v) const;

  /// All triangles whose three corners are real points, CCW.
  std::vector<Triangle> Triangles() const;

  /// Number of real triangles (what `Triangles()` returns).
  std::size_t num_triangles() const;

  /// One incident triangle id per vertex, for fan circulation via
  /// `CirculateCell`. Internal triangle ids are stable after construction.
  std::uint32_t IncidentTriangle(PointId v) const {
    return incident_triangle_[v];
  }

  /// Circulates counter-clockwise around vertex `v`, invoking
  /// `fn(triangle_id)` once per incident triangle (including triangles
  /// touching super vertices, which close the fan for hull vertices).
  template <typename Fn>
  void CirculateCell(PointId v, Fn&& fn) const;

  /// Corner vertices of internal triangle `t` (may include super-vertex
  /// ids `>= num_points()`).
  std::span<const std::uint32_t, 3> TriangleVertices(std::uint32_t t) const;

  /// True if triangle `t` has only real vertices.
  bool IsRealTriangle(std::uint32_t t) const;

  /// Structural self-check (neighbour symmetry, positive orientation,
  /// vertex cover). Used by tests; O(n). Returns false with a message on
  /// failure.
  bool CheckStructure(std::string* why) const;

  /// Empty-circumcircle check of every real triangle against every real
  /// point — O(n * t), tests only.
  bool CheckDelaunay(std::string* why) const;

 private:
  struct Tri {
    std::uint32_t v[3];   // CCW vertex ids.
    std::int32_t nbr[3];  // nbr[i] is across the edge opposite v[i]; -1 on
                          // the outer boundary of the super triangle.
    bool alive = true;
  };

  std::uint32_t Locate(const Point& p, std::uint32_t hint) const;
  void InsertPoint(std::uint32_t vid, std::uint32_t hint);
  int IndexOfVertex(const Tri& t, std::uint32_t v) const;
  bool InCavity(const Tri& t, const Point& p) const;
  void BuildAdjacency();

  std::vector<Point> points_;  // Real points then 3 super vertices.
  std::size_t num_real_ = 0;
  std::vector<Tri> tris_;
  std::vector<std::uint32_t> free_tris_;
  std::uint32_t last_triangle_ = 0;  // Walk hint.

  // CSR adjacency over real vertices (built once after construction).
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<PointId> adj_;
  std::vector<std::uint32_t> incident_triangle_;

  // Scratch buffers reused across insertions.
  std::vector<std::uint32_t> cavity_;
  std::vector<std::uint8_t> in_cavity_mark_;
};

template <typename Fn>
void DelaunayTriangulation::CirculateCell(PointId v, Fn&& fn) const {
  const std::uint32_t start = incident_triangle_[v];
  std::uint32_t t = start;
  do {
    fn(t);
    const Tri& tri = tris_[t];
    const int i = IndexOfVertex(tri, v);
    const std::int32_t next = tri.nbr[(i + 1) % 3];
    if (next < 0) break;  // Cannot happen for real vertices (enclosed).
    t = static_cast<std::uint32_t>(next);
  } while (t != start);
}

}  // namespace vaq

#endif  // VAQ_DELAUNAY_TRIANGULATION_H_
