#include "delaunay/triangulation.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "delaunay/hilbert.h"
#include "geometry/box.h"
#include "geometry/predicates.h"

namespace vaq {
namespace {

// Tiny xorshift for the stochastic walk's edge-order choice (avoids cycling
// on degenerate configurations without any global state).
inline std::uint32_t NextRand(std::uint32_t* state) {
  std::uint32_t x = *state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return *state = x;
}

}  // namespace

DelaunayTriangulation::DelaunayTriangulation(std::vector<Point> points,
                                             bool hilbert_sorted)
    : points_(std::move(points)), num_real_(points_.size()) {
  // Super-triangle far outside the data bounding box (see class comment).
  Box bounds;
  for (const Point& p : points_) bounds.ExpandToInclude(p);
  if (bounds.Empty()) bounds = Box{{0, 0}, {1, 1}};
  const Point c = bounds.Center();
  const double d =
      std::max({bounds.Width(), bounds.Height(), 1e-6}) * 1e5;
  points_.push_back({c.x - 3.0 * d, c.y - d});
  points_.push_back({c.x + 3.0 * d, c.y - d});
  points_.push_back({c.x, c.y + 3.0 * d});

  const auto s0 = static_cast<std::uint32_t>(num_real_);
  tris_.push_back(Tri{{s0, s0 + 1, s0 + 2}, {-1, -1, -1}, true});
  last_triangle_ = 0;

  if (hilbert_sorted) {
    // Input order is already spatially coherent: insert as-is.
    for (std::uint32_t vid = 0; vid < num_real_; ++vid) {
      InsertPoint(vid, last_triangle_);
    }
  } else {
    const std::vector<std::uint32_t> order = HilbertOrder(
        std::vector<Point>(points_.begin(), points_.begin() + num_real_));
    for (const std::uint32_t vid : order) {
      InsertPoint(vid, last_triangle_);
    }
  }
  BuildAdjacency();
}

int DelaunayTriangulation::IndexOfVertex(const Tri& t, std::uint32_t v) const {
  if (t.v[0] == v) return 0;
  if (t.v[1] == v) return 1;
  if (t.v[2] == v) return 2;
  return -1;
}

std::uint32_t DelaunayTriangulation::Locate(const Point& p,
                                            std::uint32_t hint) const {
  std::uint32_t t = hint;
  std::uint32_t rng = 0x9E3779B9u ^ hint;
  while (true) {
    const Tri& tri = tris_[t];
    bool moved = false;
    const std::uint32_t start = NextRand(&rng) % 3;
    for (int k = 0; k < 3; ++k) {
      const int i = static_cast<int>((start + k) % 3);
      const Point& a = points_[tri.v[(i + 1) % 3]];
      const Point& b = points_[tri.v[(i + 2) % 3]];
      if (Orient2DSign(a, b, p) < 0) {
        assert(tri.nbr[i] >= 0 && "walk left the super triangle");
        t = static_cast<std::uint32_t>(tri.nbr[i]);
        moved = true;
        break;
      }
    }
    if (!moved) return t;
  }
}

bool DelaunayTriangulation::InCavity(const Tri& t, const Point& p) const {
  return InCircleSign(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]], p) >
         0;
}

void DelaunayTriangulation::InsertPoint(std::uint32_t vid,
                                        std::uint32_t hint) {
  const Point& p = points_[vid];
  const std::uint32_t t0 = Locate(p, hint);

#ifndef NDEBUG
  for (int i = 0; i < 3; ++i) {
    assert(points_[tris_[t0].v[i]] != p &&
           "duplicate point inserted into DelaunayTriangulation");
  }
#endif

  in_cavity_mark_.resize(tris_.size(), 0);
  cavity_.clear();
  auto seed = [&](std::uint32_t t) {
    if (!in_cavity_mark_[t]) {
      in_cavity_mark_[t] = 1;
      cavity_.push_back(t);
    }
  };
  seed(t0);
  // If p lies exactly on an edge of t0, the triangle across that edge has p
  // on its circumcircle (in-circle == 0) and must be in the cavity too, or
  // retriangulation would create a degenerate zero-area triangle.
  for (int i = 0; i < 3; ++i) {
    const Tri& tri = tris_[t0];
    const Point& a = points_[tri.v[(i + 1) % 3]];
    const Point& b = points_[tri.v[(i + 2) % 3]];
    if (tri.nbr[i] >= 0 && Orient2DSign(a, b, p) == 0) {
      seed(static_cast<std::uint32_t>(tri.nbr[i]));
    }
  }
  // Grow the cavity over neighbours whose circumcircle contains p.
  for (std::size_t head = 0; head < cavity_.size(); ++head) {
    const Tri tri = tris_[cavity_[head]];
    for (int i = 0; i < 3; ++i) {
      const std::int32_t nb = tri.nbr[i];
      if (nb >= 0 && !in_cavity_mark_[nb] &&
          InCavity(tris_[nb], p)) {
        seed(static_cast<std::uint32_t>(nb));
      }
    }
  }

  // Collect the boundary edges (CCW around the cavity) with their outer
  // neighbours.
  struct BoundaryEdge {
    std::uint32_t a, b;
    std::int32_t outer;
  };
  std::vector<BoundaryEdge> boundary;
  boundary.reserve(cavity_.size() + 2);
  for (const std::uint32_t t : cavity_) {
    const Tri& tri = tris_[t];
    for (int i = 0; i < 3; ++i) {
      const std::int32_t nb = tri.nbr[i];
      if (nb < 0 || !in_cavity_mark_[nb]) {
        boundary.push_back(
            BoundaryEdge{tri.v[(i + 1) % 3], tri.v[(i + 2) % 3], nb});
      }
    }
  }

  // Retire the cavity triangles.
  for (const std::uint32_t t : cavity_) {
    tris_[t].alive = false;
    in_cavity_mark_[t] = 0;
    free_tris_.push_back(t);
  }

  // Create one new triangle (a, b, vid) per boundary edge.
  std::unordered_map<std::uint32_t, std::uint32_t> start_of;  // a -> tri
  std::unordered_map<std::uint32_t, std::uint32_t> end_of;    // b -> tri
  start_of.reserve(boundary.size() * 2);
  end_of.reserve(boundary.size() * 2);
  std::vector<std::uint32_t> new_tris;
  new_tris.reserve(boundary.size());
  for (const BoundaryEdge& e : boundary) {
    std::uint32_t nt;
    if (!free_tris_.empty()) {
      nt = free_tris_.back();
      free_tris_.pop_back();
      tris_[nt] = Tri{{e.a, e.b, vid}, {-1, -1, -1}, true};
    } else {
      nt = static_cast<std::uint32_t>(tris_.size());
      tris_.push_back(Tri{{e.a, e.b, vid}, {-1, -1, -1}, true});
    }
    // Neighbour across (a, b) — opposite vid which is at index 2.
    tris_[nt].nbr[2] = e.outer;
    if (e.outer >= 0) {
      Tri& out = tris_[e.outer];
      for (int j = 0; j < 3; ++j) {
        if (out.v[(j + 1) % 3] == e.b && out.v[(j + 2) % 3] == e.a) {
          out.nbr[j] = static_cast<std::int32_t>(nt);
          break;
        }
      }
    }
    start_of[e.a] = nt;
    end_of[e.b] = nt;
    new_tris.push_back(nt);
  }
  // Ring-link the new fan: triangle (a, b, vid) meets (b, c, vid) across
  // edge (b, vid) (opposite a = index 0) and meets (z, a, vid) across edge
  // (vid, a) (opposite b = index 1).
  for (const std::uint32_t nt : new_tris) {
    Tri& tri = tris_[nt];
    tri.nbr[0] = static_cast<std::int32_t>(start_of.at(tri.v[1]));
    tri.nbr[1] = static_cast<std::int32_t>(end_of.at(tri.v[0]));
  }
  in_cavity_mark_.resize(tris_.size(), 0);
  last_triangle_ = new_tris.front();
}

void DelaunayTriangulation::BuildAdjacency() {
  std::vector<std::uint32_t> degree(num_real_, 0);
  incident_triangle_.assign(num_real_, 0);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    const Tri& tri = tris_[t];
    if (!tri.alive) continue;
    for (int i = 0; i < 3; ++i) {
      if (tri.v[i] < num_real_) {
        incident_triangle_[tri.v[i]] = static_cast<std::uint32_t>(t);
      }
      const std::uint32_t a = tri.v[(i + 1) % 3];
      const std::uint32_t b = tri.v[(i + 2) % 3];
      if (a >= num_real_ || b >= num_real_) continue;
      // Count each undirected edge once: from the triangle with the smaller
      // id (or boundary).
      const std::int32_t nb = tri.nbr[i];
      if (nb < 0 || static_cast<std::uint32_t>(nb) > t) {
        ++degree[a];
        ++degree[b];
      }
    }
  }
  adj_offsets_.assign(num_real_ + 1, 0);
  for (std::size_t v = 0; v < num_real_; ++v) {
    adj_offsets_[v + 1] = adj_offsets_[v] + degree[v];
  }
  adj_.assign(adj_offsets_[num_real_], 0);
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    const Tri& tri = tris_[t];
    if (!tri.alive) continue;
    for (int i = 0; i < 3; ++i) {
      const std::uint32_t a = tri.v[(i + 1) % 3];
      const std::uint32_t b = tri.v[(i + 2) % 3];
      if (a >= num_real_ || b >= num_real_) continue;
      const std::int32_t nb = tri.nbr[i];
      if (nb < 0 || static_cast<std::uint32_t>(nb) > t) {
        adj_[cursor[a]++] = b;
        adj_[cursor[b]++] = a;
      }
    }
  }
}

std::span<const PointId> DelaunayTriangulation::NeighborsOf(PointId v) const {
  return {adj_.data() + adj_offsets_[v],
          adj_.data() + adj_offsets_[v + 1]};
}

std::vector<DelaunayTriangulation::Triangle>
DelaunayTriangulation::Triangles() const {
  std::vector<Triangle> out;
  for (const Tri& tri : tris_) {
    if (!tri.alive) continue;
    if (tri.v[0] >= num_real_ || tri.v[1] >= num_real_ ||
        tri.v[2] >= num_real_) {
      continue;
    }
    out.push_back(Triangle{tri.v[0], tri.v[1], tri.v[2]});
  }
  return out;
}

std::size_t DelaunayTriangulation::num_triangles() const {
  std::size_t n = 0;
  for (const Tri& tri : tris_) {
    if (tri.alive && tri.v[0] < num_real_ && tri.v[1] < num_real_ &&
        tri.v[2] < num_real_) {
      ++n;
    }
  }
  return n;
}

std::span<const std::uint32_t, 3> DelaunayTriangulation::TriangleVertices(
    std::uint32_t t) const {
  return std::span<const std::uint32_t, 3>(tris_[t].v, 3);
}

bool DelaunayTriangulation::IsRealTriangle(std::uint32_t t) const {
  const Tri& tri = tris_[t];
  return tri.alive && tri.v[0] < num_real_ && tri.v[1] < num_real_ &&
         tri.v[2] < num_real_;
}

bool DelaunayTriangulation::CheckStructure(std::string* why) const {
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    const Tri& tri = tris_[t];
    if (!tri.alive) continue;
    if (Orient2DSign(points_[tri.v[0]], points_[tri.v[1]],
                     points_[tri.v[2]]) <= 0) {
      *why = "non-CCW triangle";
      return false;
    }
    for (int i = 0; i < 3; ++i) {
      const std::int32_t nb = tri.nbr[i];
      if (nb < 0) continue;
      const Tri& other = tris_[nb];
      if (!other.alive) {
        *why = "neighbour pointer to dead triangle";
        return false;
      }
      const std::uint32_t a = tri.v[(i + 1) % 3];
      const std::uint32_t b = tri.v[(i + 2) % 3];
      bool linked = false;
      for (int j = 0; j < 3; ++j) {
        if (other.nbr[j] == static_cast<std::int32_t>(t)) {
          if (other.v[(j + 1) % 3] == b && other.v[(j + 2) % 3] == a) {
            linked = true;
          }
        }
      }
      if (!linked) {
        *why = "asymmetric neighbour link";
        return false;
      }
    }
  }
  return true;
}

bool DelaunayTriangulation::CheckDelaunay(std::string* why) const {
  const std::vector<Triangle> triangles = Triangles();
  for (const Triangle& tr : triangles) {
    const Point& a = points_[tr.a];
    const Point& b = points_[tr.b];
    const Point& c = points_[tr.c];
    for (std::size_t v = 0; v < num_real_; ++v) {
      if (v == tr.a || v == tr.b || v == tr.c) continue;
      if (InCircleSign(a, b, c, points_[v]) > 0) {
        *why = "empty-circumcircle violation";
        return false;
      }
    }
  }
  return true;
}

}  // namespace vaq
