#ifndef VAQ_DELAUNAY_HILBERT_H_
#define VAQ_DELAUNAY_HILBERT_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

/// Hilbert space-filling-curve utilities used to order Delaunay insertions
/// (a simple BRIO substitute): inserting spatially coherent points keeps the
/// walk-based point location O(1) amortised.

/// Distance along a Hilbert curve of order `order` (grid of 2^order x
/// 2^order cells) for integer cell coordinates (x, y).
std::uint64_t HilbertD(std::uint32_t order, std::uint32_t x, std::uint32_t y);

/// Curve distance of `p` on the order-16 grid over `domain` — the key
/// `HilbertOrder` sorts by, exposed so callers that partition by curve
/// ranges (the sharding layer) can route points with the exact arithmetic
/// the ordering used. Coordinates outside `domain` are clamped to the
/// border cells, so every point has a key and routing stays total.
std::uint64_t HilbertKeyInBox(const Box& domain, const Point& p);

/// Returns the permutation of `[0, points.size())` that orders `points`
/// along a Hilbert curve over their bounding box (order-16 grid).
std::vector<std::uint32_t> HilbertOrder(const std::vector<Point>& points);

}  // namespace vaq

#endif  // VAQ_DELAUNAY_HILBERT_H_
