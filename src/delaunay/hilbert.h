#ifndef VAQ_DELAUNAY_HILBERT_H_
#define VAQ_DELAUNAY_HILBERT_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

/// Hilbert space-filling-curve utilities used to order Delaunay insertions
/// (a simple BRIO substitute): inserting spatially coherent points keeps the
/// walk-based point location O(1) amortised.

/// Distance along a Hilbert curve of order `order` (grid of 2^order x
/// 2^order cells) for integer cell coordinates (x, y).
std::uint64_t HilbertD(std::uint32_t order, std::uint32_t x, std::uint32_t y);

/// Returns the permutation of `[0, points.size())` that orders `points`
/// along a Hilbert curve over their bounding box (order-16 grid).
std::vector<std::uint32_t> HilbertOrder(const std::vector<Point>& points);

}  // namespace vaq

#endif  // VAQ_DELAUNAY_HILBERT_H_
