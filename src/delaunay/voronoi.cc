#include "delaunay/voronoi.h"

#include <algorithm>

#include "geometry/clip.h"
#include "geometry/predicates.h"

namespace vaq {

VoronoiDiagram::VoronoiDiagram(const DelaunayTriangulation& dt,
                               const Box& clip_box)
    : clip_box_(clip_box) {
  const std::size_t n = dt.num_points();
  generators_.reserve(n);
  cells_.resize(n);
  clipped_.assign(n, 0);
  for (PointId v = 0; v < n; ++v) {
    generators_.push_back(dt.point(v));
    std::vector<Point> ring;
    dt.CirculateCell(v, [&](std::uint32_t t) {
      const auto verts = dt.TriangleVertices(t);
      ring.push_back(Circumcenter(dt.point(verts[0]), dt.point(verts[1]),
                                  dt.point(verts[2])));
    });
    // A raw circumcenter outside the box means the true cell reaches
    // beyond it (hull cells via the far super-triangle circumcenters,
    // interior cells via sliver-triangle circumcenters), so the clip
    // below trims it. Recorded before clipping destroys the evidence.
    for (const Point& c : ring) {
      if (!clip_box.Contains(c)) {
        clipped_[v] = 1;
        break;
      }
    }
    // CirculateCell yields triangles in CCW order around the generator, so
    // the circumcenters already form a CCW convex ring.
    cells_[v] = ClipRingToBox(ring, clip_box);
  }
}

double VoronoiDiagram::CellArea(PointId v) const {
  const std::vector<Point>& ring = cells_[v];
  if (ring.size() < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    twice += ring[i].Cross(ring[(i + 1) % ring.size()]);
  }
  return std::abs(twice) * 0.5;
}

bool VoronoiDiagram::CellContains(PointId v, const Point& q) const {
  const std::vector<Point>& ring = cells_[v];
  if (ring.size() < 3) return false;
  // Convex containment: q must not be strictly right of any CCW edge.
  // (Cell rings are convex; clipping preserves convexity.)
  int expected = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const int s =
        Orient2DSign(ring[i], ring[(i + 1) % ring.size()], q);
    if (s == 0) continue;
    if (expected == 0) {
      expected = s;
    } else if (s != expected) {
      return false;
    }
  }
  return true;
}

double VoronoiDiagram::TotalArea() const {
  double total = 0.0;
  for (PointId v = 0; v < cells_.size(); ++v) total += CellArea(v);
  return total;
}

}  // namespace vaq
