#ifndef VAQ_DELAUNAY_VORONOI_H_
#define VAQ_DELAUNAY_VORONOI_H_

#include <vector>

#include "delaunay/triangulation.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace vaq {

/// Explicit Voronoi diagram, extracted from a Delaunay triangulation by
/// duality (paper Property 4): the Voronoi cell of generator `p` is the
/// polygon of circumcenters of the triangles incident to `p`, in CCW fan
/// order. Cells of hull generators are unbounded in theory; here every cell
/// is clipped to a caller-provided box (typically the data domain), which
/// also trims the far circumcenters introduced by the finite super-triangle.
///
/// Algorithm 1 itself never materialises cells — it only walks Voronoi
/// neighbours (see `DelaunayTriangulation::NeighborsOf`) — but the diagram
/// is part of the library's public surface and lets tests verify the
/// paper's Properties 1-3 directly.
class VoronoiDiagram {
 public:
  /// Builds the diagram of `dt`'s points, cells clipped to `clip_box`.
  VoronoiDiagram(const DelaunayTriangulation& dt, const Box& clip_box);

  /// Number of generators (== dt.num_points()).
  std::size_t size() const { return cells_.size(); }

  /// The generator point of cell `v`.
  const Point& generator(PointId v) const { return generators_[v]; }

  /// The clipped Voronoi cell of generator `v` as a CCW vertex ring.
  /// May be empty if the cell lies entirely outside the clip box.
  const std::vector<Point>& cell(PointId v) const { return cells_[v]; }

  /// The box every cell was clipped to.
  const Box& clip_box() const { return clip_box_; }

  /// True if clipping trimmed cell `v`: the true (possibly unbounded)
  /// cell extends beyond `clip_box()`. Consumers reasoning about regions
  /// outside the clip box — the cell-overlap expansion rule, whose
  /// completeness argument needs cells that *tile the plane*, not just
  /// the box — must treat a clipped cell as potentially covering any
  /// outside region (see `VoronoiAreaQuery::ExpansionRule::kCellOverlap`).
  bool CellWasClipped(PointId v) const { return clipped_[v] != 0; }

  /// Area of cell `v` after clipping.
  double CellArea(PointId v) const;

  /// True if `q` lies in the (clipped) cell of `v` — i.e. `v` is the
  /// nearest generator to `q` (paper Property 3), provided `q` is inside
  /// the clip box.
  bool CellContains(PointId v, const Point& q) const;

  /// Sum of all clipped cell areas; equals the clip-box area when the box
  /// is contained in the diagram's coverage (used as a mass-conservation
  /// property test).
  double TotalArea() const;

 private:
  Box clip_box_;
  std::vector<Point> generators_;
  std::vector<std::vector<Point>> cells_;
  std::vector<char> clipped_;
};

}  // namespace vaq

#endif  // VAQ_DELAUNAY_VORONOI_H_
