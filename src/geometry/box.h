#ifndef VAQ_GEOMETRY_BOX_H_
#define VAQ_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geometry/point.h"

namespace vaq {

/// An axis-aligned rectangle, the minimum bounding rectangle (MBR) used by
/// spatial indexes and by the traditional filter step of area queries.
///
/// An `Empty()` box (the default) contains nothing and unions as identity.
struct Box {
  Point min{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  Point max{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

  constexpr Box() = default;
  constexpr Box(const Point& mn, const Point& mx) : min(mn), max(mx) {}
  /// The degenerate box covering a single point.
  constexpr explicit Box(const Point& p) : min(p), max(p) {}

  /// A box given its four extents. Precondition: `xmin <= xmax && ymin <= ymax`.
  static constexpr Box FromExtents(double xmin, double ymin, double xmax,
                                   double ymax) {
    return Box{{xmin, ymin}, {xmax, ymax}};
  }

  /// True if this box contains no point (never produced by valid geometry).
  constexpr bool Empty() const { return min.x > max.x || min.y > max.y; }

  constexpr double Width() const { return max.x - min.x; }
  constexpr double Height() const { return max.y - min.y; }
  constexpr double Area() const { return Empty() ? 0.0 : Width() * Height(); }
  /// Half perimeter ("margin"), used by R-tree split heuristics.
  constexpr double Margin() const { return Empty() ? 0.0 : Width() + Height(); }
  constexpr Point Center() const { return Midpoint(min, max); }

  /// True if `p` lies inside or on the border.
  constexpr bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True if `o` is fully inside (or equal to) this box.
  constexpr bool Contains(const Box& o) const {
    return o.min.x >= min.x && o.max.x <= max.x && o.min.y >= min.y &&
           o.max.y <= max.y;
  }

  /// True if the two boxes share at least one point (borders touch counts).
  constexpr bool Intersects(const Box& o) const {
    return !(o.min.x > max.x || o.max.x < min.x || o.min.y > max.y ||
             o.max.y < min.y);
  }

  /// Grows this box (in place) to cover `p`.
  void ExpandToInclude(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grows this box (in place) to cover `o`.
  void ExpandToInclude(const Box& o) {
    if (o.Empty()) return;
    ExpandToInclude(o.min);
    ExpandToInclude(o.max);
  }

  /// The smallest box covering both `a` and `b`.
  static Box Union(const Box& a, const Box& b) {
    Box r = a;
    r.ExpandToInclude(b);
    return r;
  }

  /// The overlap of `a` and `b`; `Empty()` if they are disjoint.
  static Box Intersection(const Box& a, const Box& b) {
    Box r{{std::max(a.min.x, b.min.x), std::max(a.min.y, b.min.y)},
          {std::min(a.max.x, b.max.x), std::min(a.max.y, b.max.y)}};
    return r;
  }

  /// Squared distance from `p` to the closest point of this box (0 inside).
  /// This is the MINDIST metric of best-first nearest-neighbour search.
  constexpr double SquaredDistanceTo(const Point& p) const {
    const double dx = p.x < min.x ? min.x - p.x : (p.x > max.x ? p.x - max.x : 0.0);
    const double dy = p.y < min.y ? min.y - p.y : (p.y > max.y ? p.y - max.y : 0.0);
    return dx * dx + dy * dy;
  }

  constexpr bool operator==(const Box& o) const {
    return min == o.min && max == o.max;
  }
  constexpr bool operator!=(const Box& o) const { return !(*this == o); }
};

inline std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << "[" << b.min << " - " << b.max << "]";
}

}  // namespace vaq

#endif  // VAQ_GEOMETRY_BOX_H_
