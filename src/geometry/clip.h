#ifndef VAQ_GEOMETRY_CLIP_H_
#define VAQ_GEOMETRY_CLIP_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

/// Clips the convex-or-concave ring `ring` (CCW order) against the
/// axis-aligned box `clip` using Sutherland–Hodgman. Returns the clipped
/// ring (possibly empty). For concave subjects the result can degenerate
/// into a ring with coincident edges; Voronoi cells — the use case here —
/// are convex, for which the algorithm is exact.
std::vector<Point> ClipRingToBox(const std::vector<Point>& ring,
                                 const Box& clip);

}  // namespace vaq

#endif  // VAQ_GEOMETRY_CLIP_H_
