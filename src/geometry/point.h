#ifndef VAQ_GEOMETRY_POINT_H_
#define VAQ_GEOMETRY_POINT_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace vaq {

/// A point (or 2-D vector) in the Euclidean plane.
///
/// `Point` is a trivially copyable value type used throughout the library:
/// as database objects, polygon vertices, Voronoi generators and query
/// positions. Arithmetic operators treat it as a vector where that is
/// meaningful.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  /// Vector addition.
  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  /// Vector subtraction.
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  /// Scalar multiplication.
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  /// Scalar division. Precondition: `s != 0`.
  constexpr Point operator/(double s) const { return {x / s, y / s}; }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }

  /// Lexicographic (x, then y) order; used for deterministic sorting.
  constexpr bool operator<(const Point& o) const {
    return x < o.x || (x == o.x && y < o.y);
  }

  /// Dot product of this and `o` viewed as vectors.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// Z-component of the cross product of this and `o` viewed as vectors.
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm. Prefer this over `Norm()` for comparisons.
  constexpr double SquaredNorm() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(SquaredNorm()); }
};

/// Squared Euclidean distance between `a` and `b`.
constexpr double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between `a` and `b`.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Midpoint of segment (a, b).
constexpr Point Midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Hash functor so `Point` can key unordered containers in tests/tools.
struct PointHash {
  std::size_t operator()(const Point& p) const {
    const std::size_t hx = std::hash<double>{}(p.x);
    const std::size_t hy = std::hash<double>{}(p.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};

}  // namespace vaq

#endif  // VAQ_GEOMETRY_POINT_H_
