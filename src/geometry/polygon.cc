#include "geometry/polygon.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geometry/predicates.h"

namespace vaq {

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  assert(vertices_.size() >= 3 && "a polygon needs at least 3 vertices");
  for (const Point& v : vertices_) bounds_.ExpandToInclude(v);
  edge_bounds_.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    Box eb(vertices_[i]);
    eb.ExpandToInclude(vertices_[(i + 1) % vertices_.size()]);
    edge_bounds_.push_back(eb);
  }
}

double Polygon::SignedArea() const {
  double twice_area = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice_area += a.Cross(b);
  }
  return 0.5 * twice_area;
}

double Polygon::Area() const { return std::fabs(SignedArea()); }

double Polygon::Perimeter() const {
  double len = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) len += edge(i).Length();
  return len;
}

Point Polygon::Centroid() const {
  const std::size_t n = vertices_.size();
  double cx = 0.0, cy = 0.0, twice_area = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const double cross = a.Cross(b);
    twice_area += cross;
    cx += (a.x + b.x) * cross;
    cy += (a.y + b.y) * cross;
  }
  if (twice_area == 0.0) return bounds_.Center();
  return {cx / (3.0 * twice_area), cy / (3.0 * twice_area)};
}

bool Polygon::OnBoundary(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (OnSegment(edge(i), p)) return true;
  }
  return false;
}

bool Polygon::Contains(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  // Robust crossing-parity test: count proper crossings of the upward ray
  // from p, deciding sides with the exact orientation predicate. Points on
  // the boundary count as contained. The per-edge MBR gate keeps the
  // expensive on-boundary check off the hot path: it can only trigger when
  // p is inside the edge's own bounding box.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if (edge_bounds_[i].Contains(p) && Orient2DSign(a, b, p) == 0) {
      return true;  // Exactly on this edge.
    }
    if (a.y <= p.y) {
      if (b.y > p.y && Orient2DSign(a, b, p) > 0) inside = !inside;
    } else {
      if (b.y <= p.y && Orient2DSign(a, b, p) < 0) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::BoundaryIntersects(const Segment& s) const {
  const Box sb = s.Bounds();
  if (!bounds_.Intersects(sb)) return false;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (!edge_bounds_[i].Intersects(sb)) continue;
    if (SegmentsIntersect(edge(i), s)) return true;
  }
  return false;
}

bool Polygon::Intersects(const Segment& s) const {
  if (!bounds_.Intersects(s.Bounds())) return false;
  // If the segment crosses the ring we are done; otherwise both endpoints
  // are on the same side of the boundary, so testing one suffices.
  if (BoundaryIntersects(s)) return true;
  return Contains(s.a);
}

bool Polygon::ContainsBox(const Box& box) const {
  if (!bounds_.Contains(box)) return false;
  // All four corners inside...
  const Point corners[4] = {box.min,
                            {box.max.x, box.min.y},
                            box.max,
                            {box.min.x, box.max.y}};
  for (const Point& c : corners) {
    if (!Contains(c)) return false;
  }
  // ...and no boundary edge entering the box (a simple polygon's boundary
  // passing through the box implies part of the box is outside).
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (edge_bounds_[i].Intersects(box)) {
      const Segment e = edge(i);
      if (box.Contains(e.a) || box.Contains(e.b)) return false;
      const Segment box_edges[4] = {{corners[0], corners[1]},
                                    {corners[1], corners[2]},
                                    {corners[2], corners[3]},
                                    {corners[3], corners[0]}};
      for (const Segment& be : box_edges) {
        if (SegmentsIntersect(e, be)) return false;
      }
    }
  }
  return true;
}

bool Polygon::IntersectsBox(const Box& box) const {
  if (!bounds_.Intersects(box)) return false;
  // A polygon vertex inside the box, a box corner inside the polygon, or
  // crossing boundaries.
  for (const Point& v : vertices_) {
    if (box.Contains(v)) return true;
  }
  const Point corners[4] = {box.min,
                            {box.max.x, box.min.y},
                            box.max,
                            {box.min.x, box.max.y}};
  if (Contains(corners[0])) return true;
  const Segment box_edges[4] = {{corners[0], corners[1]},
                                {corners[1], corners[2]},
                                {corners[2], corners[3]},
                                {corners[3], corners[0]}};
  for (const Segment& be : box_edges) {
    if (BoundaryIntersects(be)) return true;
  }
  return false;
}

Point Polygon::InteriorPoint() const {
  assert(vertices_.size() >= 3);
  // Try horizontal scanlines at a sequence of heights; at each height,
  // collect proper edge crossings, pair them up and take the midpoint of
  // the widest span. Heights follow a low-discrepancy sequence so a handful
  // of attempts covers the polygon even for awkward shapes.
  const double h = bounds_.Height();
  const std::size_t n = vertices_.size();
  double frac = 0.5;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double y = bounds_.min.y + frac * h;
    std::vector<double> xs;
    bool degenerate = false;
    for (std::size_t i = 0; i < n && !degenerate; ++i) {
      const Point& a = vertices_[i];
      const Point& b = vertices_[(i + 1) % n];
      if (a.y == y || b.y == y) {
        degenerate = true;  // Vertex on scanline; pick another height.
        break;
      }
      if ((a.y < y) != (b.y < y)) {
        const double t = (y - a.y) / (b.y - a.y);
        xs.push_back(a.x + t * (b.x - a.x));
      }
    }
    if (!degenerate && xs.size() >= 2) {
      std::sort(xs.begin(), xs.end());
      double best_width = -1.0;
      Point best{};
      for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
        const double width = xs[i + 1] - xs[i];
        if (width > best_width) {
          best_width = width;
          best = Point{(xs[i] + xs[i + 1]) * 0.5, y};
        }
      }
      if (best_width > 0.0 && Contains(best)) return best;
    }
    // Golden-ratio low-discrepancy walk over (0, 1).
    frac += 0.6180339887498949;
    if (frac >= 1.0) frac -= 1.0;
  }
  // Extremely degenerate ring; fall back to the centroid.
  return Centroid();
}

bool Polygon::IsSimple() const {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool adjacent = (j == i + 1) || (i == 0 && j == n - 1);
      if (adjacent) continue;
      if (SegmentsIntersect(edge(i), edge(j))) return false;
    }
  }
  // Adjacent edges must not fold back onto each other.
  for (std::size_t i = 0; i < n; ++i) {
    const Segment e = edge(i);
    const Point& next = vertices_[(i + 2) % n];
    if (Orient2DSign(e.a, e.b, next) == 0 && OnSegment(e, next)) return false;
  }
  return true;
}

Polygon Polygon::Reversed() const {
  std::vector<Point> rev(vertices_.rbegin(), vertices_.rend());
  return Polygon(std::move(rev));
}

Polygon Polygon::FromBox(const Box& box) {
  return Polygon({box.min,
                  {box.max.x, box.min.y},
                  box.max,
                  {box.min.x, box.max.y}});
}

Polygon Polygon::RegularNGon(const Point& center, double radius, int n) {
  assert(n >= 3);
  std::vector<Point> vs;
  vs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    vs.push_back(
        {center.x + radius * std::cos(angle), center.y + radius * std::sin(angle)});
  }
  return Polygon(std::move(vs));
}

std::ostream& operator<<(std::ostream& os, const Polygon& poly) {
  os << "Polygon[";
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (i) os << ", ";
    os << poly.vertex(i);
  }
  return os << "]";
}

}  // namespace vaq
