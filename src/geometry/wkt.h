#ifndef VAQ_GEOMETRY_WKT_H_
#define VAQ_GEOMETRY_WKT_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "geometry/polygon.h"

namespace vaq {

/// Thrown by `ParseWktPolygon` on any malformed input. WKT arrives over
/// the network from untrusted clients (see `src/server/`), so — like the
/// `.vpag` reader's `PageFileError` — every failure mode carries a typed
/// kind: the server maps kinds to wire error codes, tests assert the
/// exact kind per corpus case, and nothing string-matches messages.
class WktParseError : public std::runtime_error {
 public:
  enum class Kind {
    kBadGeometryType,  // Tag is not POLYGON (POINT, LINESTRING, junk, ...)
    kTruncated,        // Input ended mid-geometry (missing ring, paren,
                       // coordinate, or closing parenthesis)
    kBadNumber,        // A coordinate token failed to parse as a double
    kNonFinite,        // A coordinate parsed to NaN or +/-Inf
    kUnclosedRing,     // Last vertex of the ring != first vertex
    kTooFewVertices,   // Ring holds < 3 distinct vertices
    kTooManyVertices,  // Ring exceeds the caller's vertex bound — checked
                       // per token, *before* any proportional allocation
    kInnerRings,       // POLYGON with holes; this library's areas are
                       // single simple rings
    kTrailingGarbage,  // Valid polygon followed by non-space bytes
  };

  WktParseError(Kind kind, std::size_t offset, const std::string& what);

  Kind kind() const { return kind_; }
  /// Byte offset into the input where the violation was detected; points
  /// the client at its own bug without echoing attacker bytes back.
  std::size_t offset() const { return offset_; }

 private:
  Kind kind_;
  std::size_t offset_;
};

/// Stable lowercase name of `k` for logs and error responses.
std::string_view WktErrorKindName(WktParseError::Kind k);

/// Default `max_vertices` bound of `ParseWktPolygon`: generous for any
/// real query area, small enough that a hostile ring can never drive a
/// proportional allocation (64k vertices = 1 MiB of coordinates).
inline constexpr std::size_t kDefaultMaxWktVertices = 1 << 16;

/// Parses a WKT `POLYGON ((x y, x y, ...))` into a `Polygon`.
///
/// Defensive by construction — the input is untrusted:
///  * the vertex count is bounded per parsed token, so memory use is
///    O(min(input, max_vertices)) before validation ever completes;
///  * coordinates must be finite (a NaN vertex could otherwise crash the
///    query stack far from the parse site);
///  * the WKT closing convention is enforced (first vertex repeated as
///    the last) and the repeated vertex is dropped — `Polygon` stores an
///    open ring with an implicit closing edge;
///  * inner rings (holes) and non-POLYGON tags are rejected with their
///    own kinds, as is any trailing non-whitespace after the geometry.
///
/// The tag match is case-insensitive and `EMPTY` polygons are rejected
/// (`kTooFewVertices` — an area query over nothing is a client bug, not
/// a degenerate success). Ring simplicity is NOT validated here (it is
/// O(m^2); `Polygon::IsSimple` exists for callers that must check).
Polygon ParseWktPolygon(std::string_view wkt,
                        std::size_t max_vertices = kDefaultMaxWktVertices);

/// Formats `area` as `POLYGON ((x y, ..., x y))` with round-trip-exact
/// coordinates (max_digits10): `ParseWktPolygon(ToWkt(p))` reproduces
/// every vertex bit for bit, which is what lets the client CLI and the
/// loopback tests speak WKT without perturbing cache keys.
std::string ToWkt(const Polygon& area);

}  // namespace vaq

#endif  // VAQ_GEOMETRY_WKT_H_
