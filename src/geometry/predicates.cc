#include "geometry/predicates.h"

#include <cfloat>
#include <cmath>

#include "geometry/exact_arithmetic.h"

namespace vaq {
namespace {

// Static filter constants (Shewchuk 1997). DBL_EPSILON here is 2^-52, i.e.
// twice Shewchuk's "epsilon" (he uses the rounding unit 2^-53).
constexpr double kEps = DBL_EPSILON / 2.0;
constexpr double kCcwErrBound = (3.0 + 16.0 * kEps) * kEps;
constexpr double kIccErrBound = (10.0 + 96.0 * kEps) * kEps;

using Exp16 = Expansion<16>;
using Exp2k = Expansion<2048>;

}  // namespace

namespace predicates_internal {

double Orient2DExact(const Point& a, const Point& b, const Point& c) {
  // det = (ax - cx)(by - cy) - (ay - cy)(bx - cx), all exact.
  const Exp16 acx = ExactDiff<16>(a.x, c.x);
  const Exp16 bcy = ExactDiff<16>(b.y, c.y);
  const Exp16 acy = ExactDiff<16>(a.y, c.y);
  const Exp16 bcx = ExactDiff<16>(b.x, c.x);
  const Exp16 left = acx.Multiply(bcy);
  const Exp16 right = acy.Multiply(bcx);
  return left.Subtract(right).MostSignificant();
}

double InCircleExact(const Point& a, const Point& b, const Point& c,
                     const Point& d) {
  // Translate by d, then compute the 3x3 lifted determinant exactly:
  //   | adx  ady  adx^2+ady^2 |
  //   | bdx  bdy  bdx^2+bdy^2 |
  //   | cdx  cdy  cdx^2+cdy^2 |
  const Exp2k adx = ExactDiff<2048>(a.x, d.x);
  const Exp2k ady = ExactDiff<2048>(a.y, d.y);
  const Exp2k bdx = ExactDiff<2048>(b.x, d.x);
  const Exp2k bdy = ExactDiff<2048>(b.y, d.y);
  const Exp2k cdx = ExactDiff<2048>(c.x, d.x);
  const Exp2k cdy = ExactDiff<2048>(c.y, d.y);

  const Exp2k alift = adx.Multiply(adx).Add(ady.Multiply(ady));
  const Exp2k blift = bdx.Multiply(bdx).Add(bdy.Multiply(bdy));
  const Exp2k clift = cdx.Multiply(cdx).Add(cdy.Multiply(cdy));

  const Exp2k bxcy = bdx.Multiply(cdy);
  const Exp2k cxby = cdx.Multiply(bdy);
  const Exp2k cxay = cdx.Multiply(ady);
  const Exp2k axcy = adx.Multiply(cdy);
  const Exp2k axby = adx.Multiply(bdy);
  const Exp2k bxay = bdx.Multiply(ady);

  const Exp2k det = alift.Multiply(bxcy.Subtract(cxby))
                        .Add(blift.Multiply(cxay.Subtract(axcy)))
                        .Add(clift.Multiply(axby.Subtract(bxay)));
  return det.MostSignificant();
}

}  // namespace predicates_internal

double Orient2D(const Point& a, const Point& b, const Point& c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double errbound = kCcwErrBound * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return predicates_internal::Orient2DExact(a, b, c);
}

int Orient2DSign(const Point& a, const Point& b, const Point& c) {
  const double d = Orient2D(a, b, c);
  return d > 0.0 ? 1 : (d < 0.0 ? -1 : 0);
}

double InCircle(const Point& a, const Point& b, const Point& c,
                const Point& d) {
  const double adx = a.x - d.x;
  const double bdx = b.x - d.x;
  const double cdx = c.x - d.x;
  const double ady = a.y - d.y;
  const double bdy = b.y - d.y;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent =
      (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
      (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
      (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBound * permanent;
  if (det > errbound || -det > errbound) return det;
  return predicates_internal::InCircleExact(a, b, c, d);
}

int InCircleSign(const Point& a, const Point& b, const Point& c,
                 const Point& d) {
  const double v = InCircle(a, b, c, d);
  return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0);
}

Point Circumcenter(const Point& a, const Point& b, const Point& c) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double acx = c.x - a.x;
  const double acy = c.y - a.y;
  const double d = 2.0 * (abx * acy - aby * acx);
  const double ab2 = abx * abx + aby * aby;
  const double ac2 = acx * acx + acy * acy;
  const double ux = (acy * ab2 - aby * ac2) / d;
  const double uy = (abx * ac2 - acx * ab2) / d;
  return {a.x + ux, a.y + uy};
}

}  // namespace vaq
