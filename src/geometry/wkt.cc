#include "geometry/wkt.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace vaq {

namespace {

/// Cursor over the WKT input; every helper reports positions for error
/// offsets and never reads past `size()`.
struct Cursor {
  std::string_view in;
  std::size_t at = 0;

  bool Done() const { return at >= in.size(); }
  char Peek() const { return in[at]; }
  void SkipSpace() {
    while (at < in.size() &&
           std::isspace(static_cast<unsigned char>(in[at]))) {
      ++at;
    }
  }
  bool Consume(char c) {
    if (at < in.size() && in[at] == c) {
      ++at;
      return true;
    }
    return false;
  }
};

[[noreturn]] void Fail(WktParseError::Kind kind, std::size_t offset,
                       const std::string& what) {
  throw WktParseError(kind, offset, what);
}

/// Parses one double token at the cursor. `std::from_chars` accepts the
/// WKT numeric grammar (fixed or scientific, optional sign) and nothing
/// else — no locale, no hex floats via the default chars_format, no
/// leading whitespace — so the token boundary is exact.
double ParseCoordinate(Cursor& c, const char* axis) {
  c.SkipSpace();
  if (c.Done()) {
    Fail(WktParseError::Kind::kTruncated, c.at,
         std::string("input ended where a ") + axis +
             " coordinate was expected");
  }
  double value = 0.0;
  const char* first = c.in.data() + c.at;
  const char* last = c.in.data() + c.in.size();
  const std::from_chars_result r = std::from_chars(first, last, value);
  if (r.ec == std::errc::result_out_of_range) {
    // Well-formed number, value outside double range (e.g. 1e999): the
    // client meant a number, it just is not representable finitely.
    Fail(WktParseError::Kind::kNonFinite, c.at,
         std::string(axis) + " coordinate overflows a double");
  }
  if (r.ec != std::errc{} || r.ptr == first) {
    Fail(WktParseError::Kind::kBadNumber, c.at,
         std::string("malformed ") + axis + " coordinate");
  }
  if (!std::isfinite(value)) {
    Fail(WktParseError::Kind::kNonFinite, c.at,
         std::string(axis) + " coordinate is not finite");
  }
  c.at = static_cast<std::size_t>(r.ptr - c.in.data());
  return value;
}

/// Case-insensitive keyword match at the cursor, consuming it on success.
bool ConsumeKeyword(Cursor& c, std::string_view keyword) {
  c.SkipSpace();
  if (c.in.size() - c.at < keyword.size()) return false;
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(c.in[c.at + i])) !=
        keyword[i]) {
      return false;
    }
  }
  c.at += keyword.size();
  return true;
}

}  // namespace

WktParseError::WktParseError(Kind kind, std::size_t offset,
                             const std::string& what)
    : std::runtime_error("WKT parse error at byte " + std::to_string(offset) +
                         " (" + std::string(WktErrorKindName(kind)) + "): " +
                         what),
      kind_(kind),
      offset_(offset) {}

std::string_view WktErrorKindName(WktParseError::Kind k) {
  switch (k) {
    case WktParseError::Kind::kBadGeometryType:
      return "bad-geometry-type";
    case WktParseError::Kind::kTruncated:
      return "truncated";
    case WktParseError::Kind::kBadNumber:
      return "bad-number";
    case WktParseError::Kind::kNonFinite:
      return "non-finite";
    case WktParseError::Kind::kUnclosedRing:
      return "unclosed-ring";
    case WktParseError::Kind::kTooFewVertices:
      return "too-few-vertices";
    case WktParseError::Kind::kTooManyVertices:
      return "too-many-vertices";
    case WktParseError::Kind::kInnerRings:
      return "inner-rings";
    case WktParseError::Kind::kTrailingGarbage:
      break;
  }
  return "trailing-garbage";
}

Polygon ParseWktPolygon(std::string_view wkt, std::size_t max_vertices) {
  Cursor c{wkt};
  if (!ConsumeKeyword(c, "POLYGON")) {
    Fail(WktParseError::Kind::kBadGeometryType, c.at,
         "expected a POLYGON geometry tag");
  }
  c.SkipSpace();
  if (ConsumeKeyword(c, "EMPTY")) {
    Fail(WktParseError::Kind::kTooFewVertices, c.at,
         "POLYGON EMPTY holds no query area");
  }
  if (!c.Consume('(')) {
    Fail(c.Done() ? WktParseError::Kind::kTruncated
                  : WktParseError::Kind::kBadGeometryType,
         c.at, "expected '(' opening the ring list");
  }
  c.SkipSpace();
  if (!c.Consume('(')) {
    Fail(c.Done() ? WktParseError::Kind::kTruncated
                  : WktParseError::Kind::kBadGeometryType,
         c.at, "expected '(' opening the outer ring");
  }

  // One ring of "x y" pairs separated by commas. The bound is enforced
  // as each vertex is parsed — before it is appended — so a hostile
  // vertex count can never drive the reserve/push_back growth past
  // max_vertices + 1 entries, however long the input claims to be.
  std::vector<Point> ring;
  while (true) {
    if (ring.size() > max_vertices) {
      Fail(WktParseError::Kind::kTooManyVertices, c.at,
           "ring exceeds the " + std::to_string(max_vertices) +
               "-vertex bound");
    }
    const double x = ParseCoordinate(c, "x");
    const double y = ParseCoordinate(c, "y");
    ring.push_back(Point{x, y});
    c.SkipSpace();
    if (c.Consume(',')) continue;
    if (c.Consume(')')) break;
    Fail(c.Done() ? WktParseError::Kind::kTruncated
                  : WktParseError::Kind::kBadNumber,
         c.at, "expected ',' or ')' after a vertex");
  }

  // WKT closes rings explicitly: the last vertex repeats the first. The
  // repeat is required (kUnclosedRing otherwise) and then dropped —
  // `Polygon` stores the open ring with an implicit closing edge.
  if (ring.size() < 2 || ring.front() != ring.back()) {
    Fail(WktParseError::Kind::kUnclosedRing, c.at,
         "ring does not repeat its first vertex last");
  }
  ring.pop_back();
  if (ring.size() < 3) {
    Fail(WktParseError::Kind::kTooFewVertices, c.at,
         "ring holds fewer than 3 distinct vertices");
  }

  c.SkipSpace();
  if (c.Consume(',')) {
    Fail(WktParseError::Kind::kInnerRings, c.at,
         "POLYGON holds inner rings; query areas are single simple rings");
  }
  if (!c.Consume(')')) {
    Fail(WktParseError::Kind::kTruncated, c.at,
         "expected ')' closing the ring list");
  }
  c.SkipSpace();
  if (!c.Done()) {
    Fail(WktParseError::Kind::kTrailingGarbage, c.at,
         "unexpected bytes after the geometry");
  }
  return Polygon{std::move(ring)};
}

std::string ToWkt(const Polygon& area) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "POLYGON ((";
  for (std::size_t i = 0; i < area.size(); ++i) {
    out << area.vertex(i).x << ' ' << area.vertex(i).y << ", ";
  }
  // Close the ring per the WKT convention: first vertex repeated last.
  out << area.vertex(0).x << ' ' << area.vertex(0).y << "))";
  return out.str();
}

}  // namespace vaq
