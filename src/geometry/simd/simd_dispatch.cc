#include "geometry/simd/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace vaq::simd {

namespace {

bool ForceScalarFromEnv() {
  const char* v = std::getenv("VAQ_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

Arm ComputeDispatchArm() {
  if (!Avx2Available() || ForceScalarFromEnv()) return Arm::kScalar;
  return Arm::kAvx2;
}

/// Cached decision, encoded as arm+1 so 0 means "not yet computed". A
/// relaxed atomic suffices: recomputation is idempotent and the engine's
/// worker threads may race the first query.
std::atomic<unsigned char> g_dispatch{0};

}  // namespace

bool Avx2Available() {
#if defined(VAQ_HAVE_AVX2_KERNELS) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Arm DispatchArm() {
  unsigned char cached = g_dispatch.load(std::memory_order_relaxed);
  if (cached == 0) {
    cached = static_cast<unsigned char>(ComputeDispatchArm()) + 1;
    g_dispatch.store(cached, std::memory_order_relaxed);
  }
  return static_cast<Arm>(cached - 1);
}

void RefreshDispatchForTest() {
  g_dispatch.store(
      static_cast<unsigned char>(ComputeDispatchArm()) + 1,
      std::memory_order_relaxed);
}

const char* ArmName(Arm arm) {
  return arm == Arm::kAvx2 ? "avx2" : "scalar";
}

}  // namespace vaq::simd
