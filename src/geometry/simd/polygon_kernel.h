#ifndef VAQ_GEOMETRY_SIMD_POLYGON_KERNEL_H_
#define VAQ_GEOMETRY_SIMD_POLYGON_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/prepared_area.h"
#include "geometry/simd/classify_kernels.h"
#include "geometry/simd/simd_dispatch.h"

namespace vaq {

/// Runtime-specialised batch containment kernel over a `PreparedArea`.
///
/// Every area-query method refines candidates through the same question —
/// `polygon.Contains(p)` for a block of SoA points — and PR 6 answered it
/// one way: grid class per point, exact row test in the boundary band. This
/// class picks the cheapest *correct* classifier for the query polygon at
/// `QueryContext::Prepared` time and evaluates it 8 lanes per iteration on
/// the AVX2 arm:
///
///  * `kConvexHalfPlane` — convex rings (detected with the exact
///    orientation predicate over consecutive vertex triples): containment
///    is one branch-free half-plane chain, no grid lookup and no
///    boundary-band tail at all for filter-certified lanes;
///  * `kSmallMEdge` — small non-convex rings: the full crossing-parity
///    edge loop is cheaper vectorised over all m edges than the grid
///    residual machinery;
///  * `kGridResidual` — everything else: vector grid classification with a
///    masked resolve, so only boundary-band lanes fall into the (also
///    vectorised) per-row CSR crossing test.
///
/// The scalar arm always runs the grid-residual path — exactly the PR 6
/// refine loop — so `VAQ_FORCE_SCALAR=1` reproduces the pre-SIMD engine
/// behaviour byte for byte. **Exactness contract:** on either arm and for
/// every kind, `ContainsBatch` writes exactly
/// `prep.polygon().Contains({xs[j], ys[j]})` for finite coordinates; the
/// vector arms achieve this with Shewchuk's static filter (certified lanes
/// are mathematically exact) plus scalar exact fallback for uncertain
/// lanes. See DESIGN.md §11.
///
/// Lifetime: a prepared kernel caches SoA copies of the ring edges and raw
/// pointers into `prep`'s grid/CSR arrays; it must be re-`Prepare`d
/// whenever `prep` is rebuilt (QueryContext does this), and `prep` must
/// outlive it. `RebindPolygon` on `prep` does not invalidate the kernel.
class PolygonKernel {
 public:
  enum class Kind : unsigned char {
    kNone = 0,             ///< Not prepared / degenerate polygon.
    kGridResidual = 1,     ///< Grid classes + row-CSR boundary resolve.
    kConvexHalfPlane = 2,  ///< Branch-free half-plane chain (convex ring).
    kSmallMEdge = 3,       ///< Unrolled crossing-parity loop (small m).
  };

  // `QueryStats::kernel_kind` bits. Kind and arm are separate bits so the
  // OR-merge across sharded legs / accumulated queries keeps every kernel
  // that actually ran visible in experiment JSON.
  static constexpr std::uint64_t kStatsGridResidual = 1;
  static constexpr std::uint64_t kStatsConvexHalfPlane = 2;
  static constexpr std::uint64_t kStatsSmallMEdge = 4;
  static constexpr std::uint64_t kStatsAvx2 = 8;

  /// Convexity detection is O(m) per Prepare but the half-plane chain is
  /// O(m) per *point*; past this many vertices the grid path wins even for
  /// convex rings.
  static constexpr std::size_t kConvexMaxVertices = 64;
  /// Non-convex rings up to this size skip the grid machinery entirely:
  /// the vectorised full edge loop beats class lookup + residual tests.
  static constexpr std::size_t kSmallMMaxVertices = 6;

  PolygonKernel() = default;

  /// Binds the kernel to `prep` using the process-wide dispatch decision.
  void Prepare(const PreparedArea& prep) { Prepare(prep, simd::DispatchArm()); }

  /// Binds the kernel to `prep` on an explicit arm (tests and benches; the
  /// scalar arm ignores specialization and runs the grid-residual path).
  void Prepare(const PreparedArea& prep, simd::Arm arm);

  bool prepared() const { return prep_ != nullptr; }

  /// The prepared polygon structure this kernel classifies against.
  /// Precondition: `prepared()`.
  const PreparedArea& prep() const { return *prep_; }

  Kind kind() const { return kind_; }
  simd::Arm arm() const { return arm_; }

  /// The `QueryStats::kernel_kind` bits describing the path this kernel
  /// executes (kind bit, plus `kStatsAvx2` on the vector arm).
  std::uint64_t stats_mask() const;

  static const char* KindName(Kind kind);

  /// Writes `inside[j] = prep().polygon().Contains({xs[j], ys[j]})` for
  /// j in [0, n). Any n: full blocks and the n % block tail run the same
  /// masked kernel entry (no separate scalar remainder loop).
  void ContainsBatch(const double* xs, const double* ys, std::size_t n,
                     bool* inside) const;

 private:
  void ContainsBatchScalarGrid(const double* xs, const double* ys,
                               std::size_t n, bool* inside) const;
#if defined(VAQ_HAVE_AVX2_KERNELS)
  void ContainsBatchAvx2Grid(const double* xs, const double* ys,
                             std::size_t n, bool* inside) const;
  void ContainsBatchAvx2Ring(const double* xs, const double* ys,
                             std::size_t n, bool* inside) const;
#endif

  const PreparedArea* prep_ = nullptr;
  Kind kind_ = Kind::kNone;
  simd::Arm arm_ = simd::Arm::kScalar;

  // Certified bounding-circle pre-screen of the ring kernels (see
  // `simd::CircleScreen`): conservatively-rounded inscribed/circumscribed
  // radii around the vertex centroid, computed once per Prepare.
  simd::CircleScreen screen_;

  // Ring edges in SoA layout for the convex / small-m kernels. For convex
  // rings the (a, b) endpoints are stored in CCW order (swapped for CW
  // input), so inside is uniformly orient(a, b, p) >= 0. The eb* arrays
  // are copies of the polygon's cached per-edge MBRs.
  std::vector<double> ax_, ay_, bx_, by_;
  std::vector<double> ebminx_, ebmaxx_, ebminy_, ebmaxy_;

  // Row-CSR edge SoA (grid-residual AVX2 arm): the PreparedArea's
  // `row_edges_` concatenation expanded to coordinates, plus a borrowed
  // pointer to its per-row offsets.
  std::vector<double> rax_, ray_, rbx_, rby_;
  std::vector<double> rebminx_, rebmaxx_, rebminy_, rebmaxy_;
  const std::uint32_t* row_offsets_ = nullptr;

  // Grid header copy for the vector cell classification (values identical
  // to what the scalar `ClassifyPoints` reads).
  double gminx_ = 0.0, gminy_ = 0.0, gmaxx_ = 0.0, gmaxy_ = 0.0;
  double ginv_cw_ = 1.0, ginv_ch_ = 1.0;
  int gnx_ = 0, gny_ = 0;
};

/// Test/bench entry point: the raw grid-cell classification of `prep`
/// evaluated on an explicit arm (falls back to scalar when the AVX2 arm is
/// not available in this binary/CPU). Both arms are bit-identical for
/// finite coordinates — the property test's oracle check.
void ClassifyCellsOnArm(const PreparedArea& prep, simd::Arm arm,
                        const double* xs, const double* ys, std::size_t n,
                        unsigned char* cls);

}  // namespace vaq

#endif  // VAQ_GEOMETRY_SIMD_POLYGON_KERNEL_H_
