#ifndef VAQ_GEOMETRY_SIMD_CLASSIFY_KERNELS_H_
#define VAQ_GEOMETRY_SIMD_CLASSIFY_KERNELS_H_

#include <cfloat>
#include <cstddef>
#include <limits>

namespace vaq::simd {

/// Shewchuk's static "A" error bound for the orient2d determinant filter —
/// the same constant `geometry/predicates.cc` uses. A lane whose |det|
/// reaches `kCcwErrBound * (|detleft| + |detright|)` has a certified sign
/// (equal to the exact real-arithmetic sign); anything closer to zero is
/// resolved by the scalar exact path. The uniform |det| >= bound test also
/// subsumes the scalar filter's opposite-sign early returns: there
/// det == detsum bit for bit, so the inequality holds trivially.
inline constexpr double kCcwErrBound =
    (3.0 + 16.0 * (DBL_EPSILON / 2.0)) * (DBL_EPSILON / 2.0);

/// Value copy of a `PreparedArea` grid header for the cell-classification
/// kernel: the exact quantities the scalar `ClassifyPoints` loop reads, so
/// the vector arm performs the identical arithmetic (subtract, multiply,
/// truncate, clamp-high) on identical values.
struct GridView {
  double minx = 0.0;
  double miny = 0.0;
  double maxx = 0.0;
  double maxy = 0.0;
  double inv_cw = 1.0;
  double inv_ch = 1.0;
  int nx = 0;
  int ny = 0;
  const unsigned char* cell_class = nullptr;
};

/// Parallel edge-coordinate arrays (SoA), either the polygon's ring edges
/// (convex / small-m kernels: one entry per ring edge, index-aligned) or
/// the per-row CSR concatenation (grid-residual boundary resolve). The
/// `eb*` arrays are the cached per-edge MBRs the scalar containment test
/// gates its on-edge check on.
struct EdgeSoA {
  const double* ax = nullptr;
  const double* ay = nullptr;
  const double* bx = nullptr;
  const double* by = nullptr;
  const double* ebminx = nullptr;
  const double* ebmaxx = nullptr;
  const double* ebminy = nullptr;
  const double* ebmaxy = nullptr;
};

/// Certified bounding-circle pre-screen for the ring kernels. Both radii
/// are conservatively rounded at Prepare time so the lane tests are
/// mathematically exact despite being two multiplies and a compare:
/// computed |p-c|^2 < `rin2` proves p strictly inside the polygon (the
/// disk of that radius around c lies inside), and computed |p-c|^2 >
/// `rout2` proves p strictly outside (beyond every vertex). Lanes in the
/// annulus fall through to the edge chain or the exact scalar path. The
/// degenerate values (`rin2` 0, `rout2` infinity) disable the respective
/// half, never producing a wrong certificate.
struct CircleScreen {
  double cx = 0.0;
  double cy = 0.0;
  double rin2 = 0.0;
  double rout2 = std::numeric_limits<double>::infinity();
};

#if defined(VAQ_HAVE_AVX2_KERNELS)

/// AVX2 arm of `PreparedArea::ClassifyPoints`: writes the grid cell class
/// (0 outside / 1 inside / 2 boundary) of each point, bit-identical to the
/// scalar loop for finite coordinates. Tail lanes (n % 4) run through the
/// same masked vector path, not a separate scalar loop.
void ClassifyCellsAvx2(const GridView& g, const double* xs, const double* ys,
                       std::size_t n, unsigned char* cls);

/// Convex half-plane chain: `inside[j]` = point j is on the inner side of
/// every edge (edges pre-oriented so inside means orient(a,b,p) >= 0),
/// evaluated 8 lanes per iteration with the certified static filter.
/// Lanes the filter cannot certify get `needs_exact[j] = true` and an
/// unspecified `inside[j]`; the caller must resolve them with the exact
/// scalar containment test. The polygon MBR [bminx,bmaxx]x[bminy,bmaxy]
/// gate mirrors `Polygon::Contains`' bounds reject. The circle screen
/// short-circuits whole 8-lane groups: when it decides all but at most
/// two lanes, the chain is skipped and the stragglers are flagged
/// `needs_exact` instead (cheaper than m edge iterations). Returns true
/// when any lane was flagged `needs_exact`, so callers can skip the
/// resolve scan entirely for fully-certified blocks.
bool ConvexContainsAvx2(const EdgeSoA& e, std::size_t m,
                        const CircleScreen& cs, double bminx, double bminy,
                        double bmaxx, double bmaxy, const double* xs,
                        const double* ys, std::size_t n, bool* inside,
                        bool* needs_exact);

/// Crossing-parity containment over all m ring edges (the small-m kernel),
/// points in lanes. Same certification contract as `ConvexContainsAvx2`:
/// certified lanes reproduce `Polygon::Contains` exactly (including the
/// on-edge => true rule); uncertain lanes are flagged for the scalar
/// exact path. Honours the same circle-screen short-circuit as
/// `ConvexContainsAvx2`, and the same any-needs-exact return.
bool CrossingParityAvx2(const EdgeSoA& e, std::size_t m,
                        const CircleScreen& cs, double bminx, double bminy,
                        double bmaxx, double bmaxy, const double* xs,
                        const double* ys, std::size_t n, bool* inside,
                        bool* needs_exact);

/// Crossing-parity test of ONE point against the edge range [begin, end) —
/// the boundary-band resolve of the grid-residual kernel, edges in lanes
/// (the row CSR slice is contiguous in `e`). Returns 1 (contained),
/// 0 (not contained) or -1 when some relevant lane cannot be certified and
/// the caller must run the exact row test instead.
int RowParityAvx2(const EdgeSoA& e, std::size_t begin, std::size_t end,
                  double px, double py);

#endif  // VAQ_HAVE_AVX2_KERNELS

}  // namespace vaq::simd

#endif  // VAQ_GEOMETRY_SIMD_CLASSIFY_KERNELS_H_
