#ifndef VAQ_GEOMETRY_SIMD_SIMD_DISPATCH_H_
#define VAQ_GEOMETRY_SIMD_SIMD_DISPATCH_H_

namespace vaq::simd {

/// The two implementation arms every batch-classification kernel ships
/// with. `kScalar` is the portable arm, compiled unconditionally and used
/// as the bit-exactness oracle; `kAvx2` is the 4-lane (`__m256d`)
/// vectorised arm, compiled only when the toolchain can target AVX2 and
/// executed only when the running CPU reports it.
enum class Arm : unsigned char {
  kScalar = 0,
  kAvx2 = 1,
};

/// True when the AVX2 arm exists in this binary (the translation unit was
/// compiled) AND the running CPU supports AVX2. Purely a capability check:
/// it ignores the `VAQ_FORCE_SCALAR` override.
bool Avx2Available();

/// The arm batch kernels should run with: `kAvx2` when available unless
/// the environment variable `VAQ_FORCE_SCALAR` is set to a non-empty value
/// other than "0" — the CI hook that re-runs the differential harnesses on
/// the scalar arm so both dispatch paths stay verified. The decision is
/// computed once and cached (the env cannot change mid-process for any
/// supported use).
Arm DispatchArm();

/// Re-reads `VAQ_FORCE_SCALAR` and the CPU capability, replacing the
/// cached `DispatchArm` decision. Only for tests that toggle the override
/// via `setenv` in-process; production code never needs it.
void RefreshDispatchForTest();

/// Human-readable arm name ("scalar" / "avx2") for bench and test output.
const char* ArmName(Arm arm);

}  // namespace vaq::simd

#endif  // VAQ_GEOMETRY_SIMD_SIMD_DISPATCH_H_
