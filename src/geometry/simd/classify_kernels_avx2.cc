// AVX2 arm of the batch classification kernels. This translation unit is
// compiled with -mavx2 and -ffp-contract=off (see CMakeLists.txt): the
// certified-filter argument below relies on the determinant being computed
// with plain IEEE multiply/subtract — a fused multiply-add would produce a
// differently-rounded value than `geometry/predicates.cc` and break the
// bit-for-bit agreement contract with the scalar arm.
//
// Exactness contract (see DESIGN.md §11): every lane either
//   (a) passes Shewchuk's static filter, in which case its answer equals
//       the exact real-arithmetic result and therefore equals whatever the
//       scalar path computes for the same point, or
//   (b) is flagged `needs_exact` and resolved by the caller through the
//       SAME scalar exact code the scalar arm runs.
// Both arms therefore return identical bytes for finite inputs without the
// vector code ever needing expansion arithmetic.
#include "geometry/simd/classify_kernels.h"

#if defined(VAQ_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace vaq::simd {

namespace {

// Lane-activation masks for _mm256_maskload_pd: sliding window over a
// constant sign-bit table, `active` in [1, 4].
inline __m256i TailMask(std::size_t active) {
  alignas(32) static const long long kBits[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kBits + (4 - active)));
}

// Loads `active` doubles from p, zero-filling the rest. maskload suppresses
// faults on masked-out lanes, so reading a partial tail block never touches
// memory past p[active-1].
inline __m256d LoadLanes(const double* p, std::size_t active) {
  if (active >= 4) return _mm256_loadu_pd(p);
  return _mm256_maskload_pd(p, TailMask(active));
}

inline __m256d AbsPd(__m256d v) {
  const __m256d mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(0x7fffffffffffffffULL)));
  return _mm256_and_pd(v, mask);
}

inline __m256d NegPd(__m256d v) { return _mm256_xor_pd(v, _mm256_set1_pd(-0.0)); }

struct Orient4 {
  __m256d det;       // fl(detleft - detright), same arithmetic as Orient2D
  __m256d errbound;  // kCcwErrBound * fl(|detleft| + |detright|)
};

// Four-lane orient2d determinant with its static error bound — the vector
// twin of the adaptive filter's first stage in `predicates.cc`.
inline Orient4 OrientLanes(__m256d ax, __m256d ay, __m256d bx, __m256d by,
                           __m256d px, __m256d py) {
  const __m256d acx = _mm256_sub_pd(ax, px);
  const __m256d bcy = _mm256_sub_pd(by, py);
  const __m256d acy = _mm256_sub_pd(ay, py);
  const __m256d bcx = _mm256_sub_pd(bx, px);
  const __m256d detleft = _mm256_mul_pd(acx, bcy);
  const __m256d detright = _mm256_mul_pd(acy, bcx);
  const __m256d det = _mm256_sub_pd(detleft, detright);
  const __m256d detsum = _mm256_add_pd(AbsPd(detleft), AbsPd(detright));
  const __m256d errbound = _mm256_mul_pd(_mm256_set1_pd(kCcwErrBound), detsum);
  return {det, errbound};
}

// (px,py) inside [minx,maxx]x[miny,maxy] — the same four comparisons as
// Box::Contains, so NaN lanes come out false exactly like the scalar path.
inline __m256d InBoxLanes(__m256d px, __m256d py, __m256d minx, __m256d maxx,
                          __m256d miny, __m256d maxy) {
  const __m256d okx = _mm256_and_pd(_mm256_cmp_pd(px, minx, _CMP_GE_OQ),
                                    _mm256_cmp_pd(px, maxx, _CMP_LE_OQ));
  const __m256d oky = _mm256_and_pd(_mm256_cmp_pd(py, miny, _CMP_GE_OQ),
                                    _mm256_cmp_pd(py, maxy, _CMP_LE_OQ));
  return _mm256_and_pd(okx, oky);
}

inline void StoreFlags(__m256d mask, std::size_t active, bool* out) {
  const unsigned bits = static_cast<unsigned>(_mm256_movemask_pd(mask));
  if (active == 4) {
    // Expand the 4 mask bits to 4 bool bytes in one 32-bit store.
    const std::uint32_t bytes = (bits & 1u) | ((bits & 2u) << 7) |
                                ((bits & 4u) << 14) | ((bits & 8u) << 21);
    std::memcpy(out, &bytes, 4);
    return;
  }
  for (std::size_t j = 0; j < active; ++j) out[j] = ((bits >> j) & 1u) != 0;
}

// Chain short-circuit threshold: when the circle screen leaves at most
// this many lanes of an 8-block undecided, flagging them `needs_exact`
// (one O(1) scalar grid test each) beats running m edge iterations for
// the whole block.
constexpr unsigned kScreenMaxExact = 2;

// Circle screen for one 4-lane half: certified-inside lanes, and the
// in-MBR lanes the screen could not decide. NaN coordinates produce false
// in every comparison, landing in "decided outside" exactly like the
// scalar bounds reject.
struct Screen4 {
  __m256d incirc;
  __m256d undecided;
};

inline Screen4 ScreenLanes(__m256d px, __m256d py, __m256d ccx, __m256d ccy,
                           __m256d rin2, __m256d rout2, __m256d inm) {
  const __m256d dx = _mm256_sub_pd(px, ccx);
  const __m256d dy = _mm256_sub_pd(py, ccy);
  const __m256d d2 =
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
  const __m256d incirc = _mm256_cmp_pd(d2, rin2, _CMP_LT_OQ);
  const __m256d outcirc = _mm256_cmp_pd(d2, rout2, _CMP_GT_OQ);
  return {incirc,
          _mm256_andnot_pd(_mm256_or_pd(incirc, outcirc), inm)};
}

}  // namespace

void ClassifyCellsAvx2(const GridView& g, const double* xs, const double* ys,
                       std::size_t n, unsigned char* cls) {
  const __m256d vminx = _mm256_set1_pd(g.minx);
  const __m256d vmaxx = _mm256_set1_pd(g.maxx);
  const __m256d vminy = _mm256_set1_pd(g.miny);
  const __m256d vmaxy = _mm256_set1_pd(g.maxy);
  const __m256d vicw = _mm256_set1_pd(g.inv_cw);
  const __m256d vich = _mm256_set1_pd(g.inv_ch);
  const __m128i vnx1 = _mm_set1_epi32(g.nx - 1);
  const __m128i vny1 = _mm_set1_epi32(g.ny - 1);
  const __m128i vnx = _mm_set1_epi32(g.nx);
  for (std::size_t i = 0; i < n; i += 4) {
    const std::size_t rem = n - i;
    const std::size_t a = rem < 4 ? rem : 4;
    const __m256d px = LoadLanes(xs + i, a);
    const __m256d py = LoadLanes(ys + i, a);
    // The scalar loop rejects with (x < minx || x > maxx || ...); keeping
    // lanes where all four >= / <= comparisons hold is the same predicate
    // for finite coordinates.
    const __m256d in = InBoxLanes(px, py, vminx, vmaxx, vminy, vmaxy);
    // For in-range lanes (x - minx) is exact-signed and the product is in
    // [0, nx], so truncation + high clamp reproduces the scalar
    //   cx = int((x - minx) * inv_cw); cx = cx >= nx ? nx - 1 : cx;
    // Out-of-range lanes may convert to the indefinite value; their index
    // is never used because the class is forced to 0 (outside) below.
    __m128i cx = _mm256_cvttpd_epi32(_mm256_mul_pd(_mm256_sub_pd(px, vminx), vicw));
    __m128i cy = _mm256_cvttpd_epi32(_mm256_mul_pd(_mm256_sub_pd(py, vminy), vich));
    cx = _mm_min_epi32(cx, vnx1);
    cy = _mm_min_epi32(cy, vny1);
    const __m128i idx = _mm_add_epi32(_mm_mullo_epi32(cy, vnx), cx);
    alignas(16) std::int32_t buf[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), idx);
    const unsigned inbits = static_cast<unsigned>(_mm256_movemask_pd(in));
    for (std::size_t j = 0; j < a; ++j) {
      cls[i + j] =
          ((inbits >> j) & 1u) != 0 ? g.cell_class[buf[j]] : static_cast<unsigned char>(0);
    }
  }
}

bool ConvexContainsAvx2(const EdgeSoA& e, std::size_t m,
                        const CircleScreen& cs, double bminx, double bminy,
                        double bmaxx, double bmaxy, const double* xs,
                        const double* ys, std::size_t n, bool* inside,
                        bool* needs_exact) {
  unsigned any_exact = 0;
  const __m256d vminx = _mm256_set1_pd(bminx);
  const __m256d vmaxx = _mm256_set1_pd(bmaxx);
  const __m256d vminy = _mm256_set1_pd(bminy);
  const __m256d vmaxy = _mm256_set1_pd(bmaxy);
  const __m256d vccx = _mm256_set1_pd(cs.cx);
  const __m256d vccy = _mm256_set1_pd(cs.cy);
  const __m256d vrin2 = _mm256_set1_pd(cs.rin2);
  const __m256d vrout2 = _mm256_set1_pd(cs.rout2);
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t rem = n - i;
    const std::size_t a0 = rem < 4 ? rem : 4;
    const std::size_t a1 = rem > 4 ? (rem - 4 < 4 ? rem - 4 : 4) : 0;
    const unsigned amask0 = (1u << a0) - 1u;
    const unsigned amask1 = (1u << a1) - 1u;
    const __m256d px0 = LoadLanes(xs + i, a0);
    const __m256d py0 = LoadLanes(ys + i, a0);
    const __m256d px1 = a1 != 0 ? LoadLanes(xs + i + 4, a1) : _mm256_setzero_pd();
    const __m256d py1 = a1 != 0 ? LoadLanes(ys + i + 4, a1) : _mm256_setzero_pd();
    const __m256d inm0 = InBoxLanes(px0, py0, vminx, vmaxx, vminy, vmaxy);
    const __m256d inm1 = InBoxLanes(px1, py1, vminx, vmaxx, vminy, vmaxy);
    // Circle screen first: certified inside / outside / out-of-MBR lanes
    // need no edge work at all. Only when more than kScreenMaxExact lanes
    // stay undecided is the half-plane chain worth its m iterations; below
    // that the stragglers go straight to the exact scalar path.
    const Screen4 s0 = ScreenLanes(px0, py0, vccx, vccy, vrin2, vrout2, inm0);
    const Screen4 s1 = ScreenLanes(px1, py1, vccx, vccy, vrin2, vrout2, inm1);
    const unsigned ub0 =
        static_cast<unsigned>(_mm256_movemask_pd(s0.undecided)) & amask0;
    const unsigned ub1 =
        static_cast<unsigned>(_mm256_movemask_pd(s1.undecided)) & amask1;
    if (static_cast<unsigned>(__builtin_popcount(ub0) +
                              __builtin_popcount(ub1)) <= kScreenMaxExact) {
      any_exact |= ub0 | ub1;
      StoreFlags(s0.incirc, a0, inside + i);
      StoreFlags(s0.undecided, a0, needs_exact + i);
      if (a1 != 0) {
        StoreFlags(s1.incirc, a1, inside + i + 4);
        StoreFlags(s1.undecided, a1, needs_exact + i + 4);
      }
      continue;
    }
    __m256d anyneg0 = _mm256_setzero_pd();
    __m256d anyneg1 = _mm256_setzero_pd();
    __m256d allok0 = ones;
    __m256d allok1 = ones;
    for (std::size_t k = 0; k < m; ++k) {
      const __m256d ax = _mm256_broadcast_sd(e.ax + k);
      const __m256d ay = _mm256_broadcast_sd(e.ay + k);
      const __m256d bx = _mm256_broadcast_sd(e.bx + k);
      const __m256d by = _mm256_broadcast_sd(e.by + k);
      const Orient4 o0 = OrientLanes(ax, ay, bx, by, px0, py0);
      const Orient4 o1 = OrientLanes(ax, ay, bx, by, px1, py1);
      // Certified strictly-outside (det <= -errbound) vs certified
      // on-or-inside (det >= errbound; equality with errbound == 0 covers
      // the certified-collinear case, which counts as inside per the
      // on-edge rule). Lanes matching neither stay uncertain.
      anyneg0 = _mm256_or_pd(anyneg0, _mm256_cmp_pd(o0.det, NegPd(o0.errbound), _CMP_LE_OQ));
      anyneg1 = _mm256_or_pd(anyneg1, _mm256_cmp_pd(o1.det, NegPd(o1.errbound), _CMP_LE_OQ));
      allok0 = _mm256_and_pd(allok0, _mm256_cmp_pd(o0.det, o0.errbound, _CMP_GE_OQ));
      allok1 = _mm256_and_pd(allok1, _mm256_cmp_pd(o1.det, o1.errbound, _CMP_GE_OQ));
      // All active lanes certified outside: no later edge can change that.
      if ((static_cast<unsigned>(_mm256_movemask_pd(anyneg0)) & amask0) == amask0 &&
          (static_cast<unsigned>(_mm256_movemask_pd(anyneg1)) & amask1) == amask1) {
        break;
      }
    }
    const __m256d in0 = _mm256_and_pd(inm0, allok0);
    const __m256d in1 = _mm256_and_pd(inm1, allok1);
    const __m256d ne0 = _mm256_andnot_pd(anyneg0, _mm256_andnot_pd(allok0, inm0));
    const __m256d ne1 = _mm256_andnot_pd(anyneg1, _mm256_andnot_pd(allok1, inm1));
    any_exact |= (static_cast<unsigned>(_mm256_movemask_pd(ne0)) & amask0) |
                 (static_cast<unsigned>(_mm256_movemask_pd(ne1)) & amask1);
    StoreFlags(in0, a0, inside + i);
    StoreFlags(ne0, a0, needs_exact + i);
    if (a1 != 0) {
      StoreFlags(in1, a1, inside + i + 4);
      StoreFlags(ne1, a1, needs_exact + i + 4);
    }
  }
  return any_exact != 0;
}

namespace {

// Per-edge state for one 4-lane half of the crossing-parity kernel.
struct ParityAcc {
  __m256d parity = _mm256_setzero_pd();
  __m256d onedge = _mm256_setzero_pd();
  __m256d uncert = _mm256_setzero_pd();
};

// One edge vs four points: upward/downward straddle toggles with certified
// strict sign, on-edge detection gated by the edge MBR, uncertainty
// accumulation for everything the filter cannot decide. Mirrors the body
// of `Polygon::Contains`' edge loop.
inline void ParityEdge(ParityAcc* acc, __m256d ax, __m256d ay, __m256d bx,
                       __m256d by, __m256d ebminx, __m256d ebmaxx,
                       __m256d ebminy, __m256d ebmaxy, __m256d px,
                       __m256d py) {
  const Orient4 o = OrientLanes(ax, ay, bx, by, px, py);
  const __m256d aley = _mm256_cmp_pd(ay, py, _CMP_LE_OQ);
  const __m256d bgty = _mm256_cmp_pd(by, py, _CMP_GT_OQ);
  const __m256d bley = _mm256_cmp_pd(by, py, _CMP_LE_OQ);
  const __m256d up = _mm256_and_pd(aley, bgty);
  const __m256d dn = _mm256_andnot_pd(aley, bley);
  const __m256d inbox = InBoxLanes(px, py, ebminx, ebmaxx, ebminy, ebmaxy);
  const __m256d certpos = _mm256_cmp_pd(o.det, o.errbound, _CMP_GE_OQ);
  const __m256d certneg = _mm256_cmp_pd(o.det, NegPd(o.errbound), _CMP_LE_OQ);
  const __m256d certified = _mm256_or_pd(certpos, certneg);
  const __m256d zero = _mm256_setzero_pd();
  // certpos/certneg include det == 0 when errbound == 0, so the strict
  // comparisons against zero split "certified >= 0" into "> 0" vs "== 0"
  // (an upward crossing toggles only on det > 0, on-edge needs det == 0).
  const __m256d dpos = _mm256_cmp_pd(o.det, zero, _CMP_GT_OQ);
  const __m256d dneg = _mm256_cmp_pd(o.det, zero, _CMP_LT_OQ);
  const __m256d dzer = _mm256_cmp_pd(o.det, zero, _CMP_EQ_OQ);
  const __m256d toggle =
      _mm256_or_pd(_mm256_and_pd(up, _mm256_and_pd(certpos, dpos)),
                   _mm256_and_pd(dn, _mm256_and_pd(certneg, dneg)));
  const __m256d relevant = _mm256_or_pd(_mm256_or_pd(up, dn), inbox);
  acc->parity = _mm256_xor_pd(acc->parity, toggle);
  acc->onedge = _mm256_or_pd(acc->onedge, _mm256_and_pd(inbox, _mm256_and_pd(certified, dzer)));
  acc->uncert = _mm256_or_pd(acc->uncert, _mm256_andnot_pd(certified, relevant));
}

}  // namespace

bool CrossingParityAvx2(const EdgeSoA& e, std::size_t m,
                        const CircleScreen& cs, double bminx, double bminy,
                        double bmaxx, double bmaxy, const double* xs,
                        const double* ys, std::size_t n, bool* inside,
                        bool* needs_exact) {
  unsigned any_exact = 0;
  const __m256d vminx = _mm256_set1_pd(bminx);
  const __m256d vmaxx = _mm256_set1_pd(bmaxx);
  const __m256d vminy = _mm256_set1_pd(bminy);
  const __m256d vmaxy = _mm256_set1_pd(bmaxy);
  const __m256d vccx = _mm256_set1_pd(cs.cx);
  const __m256d vccy = _mm256_set1_pd(cs.cy);
  const __m256d vrin2 = _mm256_set1_pd(cs.rin2);
  const __m256d vrout2 = _mm256_set1_pd(cs.rout2);
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t rem = n - i;
    const std::size_t a0 = rem < 4 ? rem : 4;
    const std::size_t a1 = rem > 4 ? (rem - 4 < 4 ? rem - 4 : 4) : 0;
    const unsigned amask0 = (1u << a0) - 1u;
    const unsigned amask1 = (1u << a1) - 1u;
    const __m256d px0 = LoadLanes(xs + i, a0);
    const __m256d py0 = LoadLanes(ys + i, a0);
    const __m256d px1 = a1 != 0 ? LoadLanes(xs + i + 4, a1) : _mm256_setzero_pd();
    const __m256d py1 = a1 != 0 ? LoadLanes(ys + i + 4, a1) : _mm256_setzero_pd();
    const __m256d inm0 = InBoxLanes(px0, py0, vminx, vmaxx, vminy, vmaxy);
    const __m256d inm1 = InBoxLanes(px1, py1, vminx, vmaxx, vminy, vmaxy);
    const Screen4 s0 = ScreenLanes(px0, py0, vccx, vccy, vrin2, vrout2, inm0);
    const Screen4 s1 = ScreenLanes(px1, py1, vccx, vccy, vrin2, vrout2, inm1);
    const unsigned ub0 =
        static_cast<unsigned>(_mm256_movemask_pd(s0.undecided)) & amask0;
    const unsigned ub1 =
        static_cast<unsigned>(_mm256_movemask_pd(s1.undecided)) & amask1;
    if (static_cast<unsigned>(__builtin_popcount(ub0) +
                              __builtin_popcount(ub1)) <= kScreenMaxExact) {
      any_exact |= ub0 | ub1;
      StoreFlags(s0.incirc, a0, inside + i);
      StoreFlags(s0.undecided, a0, needs_exact + i);
      if (a1 != 0) {
        StoreFlags(s1.incirc, a1, inside + i + 4);
        StoreFlags(s1.undecided, a1, needs_exact + i + 4);
      }
      continue;
    }
    ParityAcc acc0;
    ParityAcc acc1;
    for (std::size_t k = 0; k < m; ++k) {
      const __m256d ax = _mm256_broadcast_sd(e.ax + k);
      const __m256d ay = _mm256_broadcast_sd(e.ay + k);
      const __m256d bx = _mm256_broadcast_sd(e.bx + k);
      const __m256d by = _mm256_broadcast_sd(e.by + k);
      const __m256d ebnx = _mm256_broadcast_sd(e.ebminx + k);
      const __m256d ebxx = _mm256_broadcast_sd(e.ebmaxx + k);
      const __m256d ebny = _mm256_broadcast_sd(e.ebminy + k);
      const __m256d ebxy = _mm256_broadcast_sd(e.ebmaxy + k);
      ParityEdge(&acc0, ax, ay, bx, by, ebnx, ebxx, ebny, ebxy, px0, py0);
      ParityEdge(&acc1, ax, ay, bx, by, ebnx, ebxx, ebny, ebxy, px1, py1);
    }
    // Out-of-MBR lanes are decided (false) without consulting the edge
    // accumulators, like the scalar bounds reject; the uncertainty flag is
    // masked the same way.
    const __m256d decided0 = _mm256_or_pd(acc0.onedge, acc0.parity);
    const __m256d decided1 = _mm256_or_pd(acc1.onedge, acc1.parity);
    const __m256d in0 = _mm256_and_pd(inm0, _mm256_andnot_pd(acc0.uncert, decided0));
    const __m256d in1 = _mm256_and_pd(inm1, _mm256_andnot_pd(acc1.uncert, decided1));
    const __m256d ne0 = _mm256_and_pd(inm0, acc0.uncert);
    const __m256d ne1 = _mm256_and_pd(inm1, acc1.uncert);
    any_exact |= (static_cast<unsigned>(_mm256_movemask_pd(ne0)) & amask0) |
                 (static_cast<unsigned>(_mm256_movemask_pd(ne1)) & amask1);
    StoreFlags(in0, a0, inside + i);
    StoreFlags(ne0, a0, needs_exact + i);
    if (a1 != 0) {
      StoreFlags(in1, a1, inside + i + 4);
      StoreFlags(ne1, a1, needs_exact + i + 4);
    }
  }
  return any_exact != 0;
}

int RowParityAvx2(const EdgeSoA& e, std::size_t begin, std::size_t end,
                  double px, double py) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  unsigned toggles = 0;
  bool onedge = false;
  for (std::size_t k = begin; k < end; k += 4) {
    const std::size_t reml = end - k;
    const std::size_t a = reml < 4 ? reml : 4;
    const unsigned amask = (1u << a) - 1u;
    const __m256d ax = LoadLanes(e.ax + k, a);
    const __m256d ay = LoadLanes(e.ay + k, a);
    const __m256d bx = LoadLanes(e.bx + k, a);
    const __m256d by = LoadLanes(e.by + k, a);
    const __m256d ebnx = LoadLanes(e.ebminx + k, a);
    const __m256d ebxx = LoadLanes(e.ebmaxx + k, a);
    const __m256d ebny = LoadLanes(e.ebminy + k, a);
    const __m256d ebxy = LoadLanes(e.ebmaxy + k, a);
    ParityAcc acc;
    ParityEdge(&acc, ax, ay, bx, by, ebnx, ebxx, ebny, ebxy, vpx, vpy);
    if ((static_cast<unsigned>(_mm256_movemask_pd(acc.uncert)) & amask) != 0) {
      return -1;
    }
    toggles += static_cast<unsigned>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(acc.parity)) & amask));
    if ((static_cast<unsigned>(_mm256_movemask_pd(acc.onedge)) & amask) != 0) {
      onedge = true;
    }
  }
  if (onedge) return 1;
  return (toggles & 1u) != 0 ? 1 : 0;
}

}  // namespace vaq::simd

#endif  // VAQ_HAVE_AVX2_KERNELS
