#include "geometry/simd/polygon_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "geometry/predicates.h"
#include "geometry/simd/classify_kernels.h"

namespace vaq {

namespace {

// Internal blocking of ContainsBatch: bounds the scratch class/flag
// buffers so arbitrary-n calls stay on the stack. Matches kRefineBlock so
// the refine loops map 1:1 onto kernel blocks.
constexpr std::size_t kKernelBlock = 256;

// The AVX2 grid kernel writes literal 0 for out-of-MBR lanes.
static_assert(PreparedArea::kPointOutside == 0,
              "grid kernel encodes 'outside' as 0");

}  // namespace

void PolygonKernel::Prepare(const PreparedArea& prep, simd::Arm arm) {
  prep_ = &prep;
  arm_ = arm;
  kind_ = Kind::kNone;
  row_offsets_ = nullptr;
  if (!prep.prepared()) return;
  kind_ = Kind::kGridResidual;
#if defined(VAQ_HAVE_AVX2_KERNELS)
  const Polygon& poly = prep.polygon();
  const std::size_t m = poly.size();
  // Specialisation only pays on the vector arm; the scalar arm stays on
  // the PR 6 grid-residual path so VAQ_FORCE_SCALAR reproduces the
  // pre-SIMD engine behaviour exactly.
  if (arm_ == simd::Arm::kAvx2) {
    int orientation = 0;
    if (m <= kConvexMaxVertices) {
      // Exact convexity: all consecutive-triple orientations share one
      // sign (collinear triples allowed, an all-collinear ring is not a
      // polygon and stays on the grid path).
      bool pos = false;
      bool neg = false;
      for (std::size_t i = 0; i < m; ++i) {
        const int s = Orient2DSign(poly.vertex(i), poly.vertex((i + 1) % m),
                                   poly.vertex((i + 2) % m));
        pos = pos || s > 0;
        neg = neg || s < 0;
      }
      if (pos != neg) orientation = pos ? 1 : -1;
    }
    if (orientation != 0) {
      kind_ = Kind::kConvexHalfPlane;
    } else if (m <= kSmallMMaxVertices) {
      kind_ = Kind::kSmallMEdge;
    }
    if (kind_ != Kind::kGridResidual) {
      // Certified bounding-circle screen around the vertex centroid. The
      // circumscribed radius upper-bounds every vertex distance, so
      // "beyond it" proves outside for any simple polygon. The inscribed
      // radius lower-bounds the centroid's distance to every edge LINE via
      // the same static filter the lane kernels certify signs with
      // (|det| - errbound <= |exact det|); line distance lower-bounds
      // segment distance, so the disk lies inside whenever the centroid
      // does. The 1e-9 relative margins swallow the remaining ~4-ulp
      // rounding of the quotients with six orders of magnitude to spare.
      screen_ = simd::CircleScreen{};
      double ccx = 0.0;
      double ccy = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        ccx += poly.vertex(i).x;
        ccy += poly.vertex(i).y;
      }
      ccx /= static_cast<double>(m);
      ccy /= static_cast<double>(m);
      screen_.cx = ccx;
      screen_.cy = ccy;
      double rout2 = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double dx = poly.vertex(i).x - ccx;
        const double dy = poly.vertex(i).y - ccy;
        rout2 = std::max(rout2, dx * dx + dy * dy);
      }
      screen_.rout2 = rout2 * (1.0 + 1e-9);
      if (poly.Contains({ccx, ccy})) {
        double rin2 = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < m; ++i) {
          const Point& a = poly.vertex(i);
          const Point& b = poly.vertex((i + 1) % m);
          const double l = (a.x - ccx) * (b.y - ccy);
          const double r = (a.y - ccy) * (b.x - ccx);
          const double num = std::abs(l - r) -
                             simd::kCcwErrBound * (std::abs(l) + std::abs(r));
          const double ex = b.x - a.x;
          const double ey = b.y - a.y;
          const double den2 = ex * ex + ey * ey;
          if (num <= 0.0 || den2 <= 0.0) {
            rin2 = 0.0;
            break;
          }
          rin2 = std::min(rin2, (num * num) / den2 * (1.0 - 1e-9));
        }
        screen_.rin2 = std::isfinite(rin2) ? rin2 : 0.0;
      }

      // Ring edges in SoA; convex CW rings store swapped endpoints so the
      // inner side is uniformly orient(a, b, p) >= 0.
      const bool flip = kind_ == Kind::kConvexHalfPlane && orientation < 0;
      ax_.resize(m);
      ay_.resize(m);
      bx_.resize(m);
      by_.resize(m);
      ebminx_.resize(m);
      ebmaxx_.resize(m);
      ebminy_.resize(m);
      ebmaxy_.resize(m);
      for (std::size_t i = 0; i < m; ++i) {
        Point a = poly.vertex(i);
        Point b = poly.vertex((i + 1) % m);
        if (flip) std::swap(a, b);
        ax_[i] = a.x;
        ay_[i] = a.y;
        bx_[i] = b.x;
        by_[i] = b.y;
        const Box& eb = poly.edge_bounds(i);
        ebminx_[i] = eb.min.x;
        ebmaxx_[i] = eb.max.x;
        ebminy_[i] = eb.min.y;
        ebmaxy_[i] = eb.max.y;
      }
    } else {
      // Row-CSR edge coordinates for the vectorised boundary-band resolve,
      // in the PreparedArea's concatenation order (order is irrelevant to
      // parity/on-edge, so matching it is only for cache locality).
      const std::uint32_t* row_edges = prep.row_edges_data();
      const std::size_t rn = prep.row_edges_size();
      row_offsets_ = prep.row_edge_offsets_data();
      rax_.resize(rn);
      ray_.resize(rn);
      rbx_.resize(rn);
      rby_.resize(rn);
      rebminx_.resize(rn);
      rebmaxx_.resize(rn);
      rebminy_.resize(rn);
      rebmaxy_.resize(rn);
      for (std::size_t k = 0; k < rn; ++k) {
        const std::size_t i = row_edges[k];
        const Point& a = poly.vertex(i);
        const Point& b = poly.vertex((i + 1) % m);
        rax_[k] = a.x;
        ray_[k] = a.y;
        rbx_[k] = b.x;
        rby_[k] = b.y;
        const Box& eb = poly.edge_bounds(i);
        rebminx_[k] = eb.min.x;
        rebmaxx_[k] = eb.max.x;
        rebminy_[k] = eb.min.y;
        rebmaxy_[k] = eb.max.y;
      }
      const Box& gb = prep.bounds();
      gminx_ = gb.min.x;
      gminy_ = gb.min.y;
      gmaxx_ = gb.max.x;
      gmaxy_ = gb.max.y;
      ginv_cw_ = prep.inv_cell_w();
      ginv_ch_ = prep.inv_cell_h();
      gnx_ = prep.grid_nx();
      gny_ = prep.grid_ny();
    }
  }
#endif
}

std::uint64_t PolygonKernel::stats_mask() const {
  std::uint64_t mask = 0;
  switch (kind_) {
    case Kind::kGridResidual:
      mask = kStatsGridResidual;
      break;
    case Kind::kConvexHalfPlane:
      mask = kStatsConvexHalfPlane;
      break;
    case Kind::kSmallMEdge:
      mask = kStatsSmallMEdge;
      break;
    case Kind::kNone:
      return 0;
  }
  if (arm_ == simd::Arm::kAvx2) mask |= kStatsAvx2;
  return mask;
}

const char* PolygonKernel::KindName(Kind kind) {
  switch (kind) {
    case Kind::kGridResidual:
      return "grid_residual";
    case Kind::kConvexHalfPlane:
      return "convex_half_plane";
    case Kind::kSmallMEdge:
      return "small_m_edge";
    case Kind::kNone:
      break;
  }
  return "none";
}

void PolygonKernel::ContainsBatch(const double* xs, const double* ys,
                                  std::size_t n, bool* inside) const {
  if (kind_ == Kind::kNone) {
    std::fill(inside, inside + n, false);
    return;
  }
#if defined(VAQ_HAVE_AVX2_KERNELS)
  if (arm_ == simd::Arm::kAvx2) {
    if (kind_ == Kind::kGridResidual) {
      ContainsBatchAvx2Grid(xs, ys, n, inside);
    } else {
      ContainsBatchAvx2Ring(xs, ys, n, inside);
    }
    return;
  }
#endif
  ContainsBatchScalarGrid(xs, ys, n, inside);
}

void PolygonKernel::ContainsBatchScalarGrid(const double* xs, const double* ys,
                                            std::size_t n,
                                            bool* inside) const {
  // The PR 6 refine loop verbatim: grid class per point, exact row-local
  // test in the boundary band.
  unsigned char cls[kKernelBlock];
  for (std::size_t base = 0; base < n; base += kKernelBlock) {
    const std::size_t c = std::min(kKernelBlock, n - base);
    prep_->ClassifyPoints(xs + base, ys + base, c, cls);
    for (std::size_t j = 0; j < c; ++j) {
      inside[base + j] = cls[j] == PreparedArea::kPointInside ||
                         (cls[j] == PreparedArea::kPointBoundary &&
                          prep_->Contains({xs[base + j], ys[base + j]}));
    }
  }
}

#if defined(VAQ_HAVE_AVX2_KERNELS)

void PolygonKernel::ContainsBatchAvx2Grid(const double* xs, const double* ys,
                                          std::size_t n, bool* inside) const {
  simd::GridView gv;
  gv.minx = gminx_;
  gv.miny = gminy_;
  gv.maxx = gmaxx_;
  gv.maxy = gmaxy_;
  gv.inv_cw = ginv_cw_;
  gv.inv_ch = ginv_ch_;
  gv.nx = gnx_;
  gv.ny = gny_;
  gv.cell_class = prep_->cell_class_data();
  simd::EdgeSoA soa;
  soa.ax = rax_.data();
  soa.ay = ray_.data();
  soa.bx = rbx_.data();
  soa.by = rby_.data();
  soa.ebminx = rebminx_.data();
  soa.ebmaxx = rebmaxx_.data();
  soa.ebminy = rebminy_.data();
  soa.ebmaxy = rebmaxy_.data();
  unsigned char cls[kKernelBlock];
  for (std::size_t base = 0; base < n; base += kKernelBlock) {
    const std::size_t c = std::min(kKernelBlock, n - base);
    simd::ClassifyCellsAvx2(gv, xs + base, ys + base, c, cls);
    for (std::size_t j = 0; j < c; ++j) {
      const unsigned char cc = cls[j];
      if (cc != PreparedArea::kPointBoundary) {
        inside[base + j] = cc == PreparedArea::kPointInside;
        continue;
      }
      // Boundary band: vectorised crossing parity over the point's row
      // edges (same clamp as PreparedArea::RowOf); lanes the filter cannot
      // certify fall back to the scalar exact row test.
      const double x = xs[base + j];
      const double y = ys[base + j];
      int r = static_cast<int>((y - gminy_) * ginv_ch_);
      r = r < 0 ? 0 : (r >= gny_ ? gny_ - 1 : r);
      const int verdict =
          simd::RowParityAvx2(soa, row_offsets_[r], row_offsets_[r + 1], x, y);
      inside[base + j] = verdict < 0 ? prep_->Contains({x, y}) : verdict == 1;
    }
  }
}

void PolygonKernel::ContainsBatchAvx2Ring(const double* xs, const double* ys,
                                          std::size_t n, bool* inside) const {
  simd::EdgeSoA soa;
  soa.ax = ax_.data();
  soa.ay = ay_.data();
  soa.bx = bx_.data();
  soa.by = by_.data();
  soa.ebminx = ebminx_.data();
  soa.ebmaxx = ebmaxx_.data();
  soa.ebminy = ebminy_.data();
  soa.ebmaxy = ebmaxy_.data();
  const Box& b = prep_->bounds();
  const std::size_t m = ax_.size();
  bool needs_exact[kKernelBlock];
  for (std::size_t base = 0; base < n; base += kKernelBlock) {
    const std::size_t c = std::min(kKernelBlock, n - base);
    bool any_exact;
    if (kind_ == Kind::kConvexHalfPlane) {
      any_exact = simd::ConvexContainsAvx2(soa, m, screen_, b.min.x, b.min.y,
                                           b.max.x, b.max.y, xs + base,
                                           ys + base, c, inside + base,
                                           needs_exact);
    } else {
      any_exact = simd::CrossingParityAvx2(soa, m, screen_, b.min.x, b.min.y,
                                           b.max.x, b.max.y, xs + base,
                                           ys + base, c, inside + base,
                                           needs_exact);
    }
    if (!any_exact) continue;
    for (std::size_t j = 0; j < c; ++j) {
      if (needs_exact[j]) {
        inside[base + j] = prep_->Contains({xs[base + j], ys[base + j]});
      }
    }
  }
}

#endif  // VAQ_HAVE_AVX2_KERNELS

void ClassifyCellsOnArm(const PreparedArea& prep, simd::Arm arm,
                        const double* xs, const double* ys, std::size_t n,
                        unsigned char* cls) {
#if defined(VAQ_HAVE_AVX2_KERNELS)
  if (arm == simd::Arm::kAvx2 && simd::Avx2Available() && prep.prepared()) {
    simd::GridView gv;
    const Box& b = prep.bounds();
    gv.minx = b.min.x;
    gv.miny = b.min.y;
    gv.maxx = b.max.x;
    gv.maxy = b.max.y;
    gv.inv_cw = prep.inv_cell_w();
    gv.inv_ch = prep.inv_cell_h();
    gv.nx = prep.grid_nx();
    gv.ny = prep.grid_ny();
    gv.cell_class = prep.cell_class_data();
    simd::ClassifyCellsAvx2(gv, xs, ys, n, cls);
    return;
  }
#else
  (void)arm;
#endif
  prep.ClassifyPoints(xs, ys, n, cls);
}

}  // namespace vaq
