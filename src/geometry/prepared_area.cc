#include "geometry/prepared_area.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"

namespace vaq {

namespace {

/// Residual exact segment tests walk the cells under the segment's MBR; a
/// degenerate "segment" spanning the whole grid would walk more cells than
/// the naive O(m) scan, so ranges past this cap fall back to the polygon.
constexpr int kSegmentCellCap = 256;

}  // namespace

template <typename Fn>
void PreparedArea::ForEachEdgeCell(std::size_t i, Fn&& fn) const {
  const Point& a = polygon_->vertex(i);
  const Point& b = polygon_->vertex((i + 1) % polygon_->size());
  const double ex0 = std::min(a.x, b.x);
  const double ex1 = std::max(a.x, b.x);
  const int cx0 = ColOf(ex0 - pad_x_);
  const int cx1 = ColOf(ex1 + pad_x_);
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  for (int cx = cx0; cx <= cx1; ++cx) {
    // Clip the edge to this column's epsilon-inflated x-slab and mark every
    // row its y-range meets. The pads absorb both the clip arithmetic's
    // rounding error and the worst-case error of the query-side cell-index
    // computation, so the marked set is a strict superset of every cell any
    // FP-computed index can attribute an edge point to.
    double ylo, yhi;
    if (dx == 0.0) {
      ylo = std::min(a.y, b.y);
      yhi = std::max(a.y, b.y);
    } else {
      const double slab_x0 = bounds_.min.x + cx * cell_w_ - pad_x_;
      const double slab_x1 = bounds_.min.x + (cx + 1) * cell_w_ + pad_x_;
      double t0 = (slab_x0 - a.x) / dx;
      double t1 = (slab_x1 - a.x) / dx;
      t0 = std::clamp(t0, 0.0, 1.0);
      t1 = std::clamp(t1, 0.0, 1.0);
      const double y0 = a.y + t0 * dy;
      const double y1 = a.y + t1 * dy;
      ylo = std::min(y0, y1);
      yhi = std::max(y0, y1);
    }
    const int cy0 = RowOf(ylo - pad_y_);
    const int cy1 = RowOf(yhi + pad_y_);
    for (int cy = cy0; cy <= cy1; ++cy) {
      fn(static_cast<std::size_t>(cy) * nx_ + cx);
    }
  }
}

int PreparedArea::SuggestGridSide(std::size_t m, std::size_t expected_tests) {
  if (expected_tests == 0) return 0;
  // Optimum of build(side) + tests * boundary_fraction(side) * row_test:
  // side* ~ cbrt(tests * c); complex polygons pay more per residual exact
  // test, shifting the optimum up a little.
  const double complexity =
      std::sqrt(std::max(1.0, static_cast<double>(m) / 10.0));
  const double side = std::cbrt(4.0 * static_cast<double>(expected_tests)) *
                      complexity;
  return std::clamp(static_cast<int>(side), 8, 192);
}

std::size_t PreparedArea::EstimateMbrShare(std::size_t n, const Box& domain,
                                           const Box& mbr) {
  const double domain_area = std::max(domain.Area(), 1e-300);
  return static_cast<std::size_t>(static_cast<double>(n) *
                                  std::min(1.0, mbr.Area() / domain_area));
}

void PreparedArea::Prepare(const Polygon& area, int grid_side_hint) {
  polygon_ = nullptr;
  if (area.size() < 3) return;
  polygon_ = &area;
  bounds_ = area.Bounds();
  const std::size_t m = area.size();

  int side = grid_side_hint > 0
                 ? std::clamp(grid_side_hint, 4, 512)
                 : std::clamp(static_cast<int>(
                                  4.0 * std::sqrt(static_cast<double>(m))),
                              32, 192);
  nx_ = ny_ = side;
  cell_w_ = std::max(bounds_.Width(), 1e-300) / nx_;
  cell_h_ = std::max(bounds_.Height(), 1e-300) / ny_;
  inv_cw_ = 1.0 / cell_w_;
  inv_ch_ = 1.0 / cell_h_;
  pad_x_ = cell_w_ * 1e-6;
  pad_y_ = cell_h_ * 1e-6;

  const std::size_t cells = static_cast<std::size_t>(nx_) * ny_;
  cell_class_.assign(cells, kCellUnknown);

  // --- Pass 1: rasterise the boundary; count per-cell edge references. ---
  cell_edge_offsets_.assign(cells + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    ForEachEdgeCell(i, [&](std::size_t cell) {
      cell_class_[cell] = kPointBoundary;
      ++cell_edge_offsets_[cell + 1];
    });
  }
  for (std::size_t c = 0; c < cells; ++c) {
    cell_edge_offsets_[c + 1] += cell_edge_offsets_[c];
  }
  cell_edges_.resize(cell_edge_offsets_[cells]);
  // Fill via a cursor copy of the offsets (second rasterisation pass).
  csr_cursor_.assign(cell_edge_offsets_.begin(),
                     cell_edge_offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    ForEachEdgeCell(i, [&](std::size_t cell) {
      cell_edges_[csr_cursor_[cell]++] = static_cast<std::uint32_t>(i);
    });
  }

  // --- Per-row edge lists (exact containment fallback). No pads needed:
  // the y -> row mapping is monotone, so an edge straddling p.y always
  // lands in p's row range. ---
  row_edge_offsets_.assign(ny_ + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const Point& a = area.vertex(i);
    const Point& b = area.vertex((i + 1) % m);
    const int r0 = RowOf(std::min(a.y, b.y));
    const int r1 = RowOf(std::max(a.y, b.y));
    for (int r = r0; r <= r1; ++r) ++row_edge_offsets_[r + 1];
  }
  for (int r = 0; r < ny_; ++r) row_edge_offsets_[r + 1] += row_edge_offsets_[r];
  row_edges_.resize(row_edge_offsets_[ny_]);
  csr_cursor_.assign(row_edge_offsets_.begin(), row_edge_offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const Point& a = area.vertex(i);
    const Point& b = area.vertex((i + 1) % m);
    const int r0 = RowOf(std::min(a.y, b.y));
    const int r1 = RowOf(std::max(a.y, b.y));
    for (int r = r0; r <= r1; ++r) {
      row_edges_[csr_cursor_[r]++] = static_cast<std::uint32_t>(i);
    }
  }

  // --- Pass 2: flood-fill the edge-free cells. The boundary ring only
  // passes through boundary cells, so each 4-connected component of
  // edge-free cells has one containment status; one exact test on a
  // representative cell centre classifies the whole component. ---
  for (std::size_t start = 0; start < cells; ++start) {
    if (cell_class_[start] != kCellUnknown) continue;
    flood_queue_.clear();
    flood_queue_.push_back(static_cast<std::int32_t>(start));
    const int scx = static_cast<int>(start % nx_);
    const int scy = static_cast<int>(start / nx_);
    const Point rep{bounds_.min.x + (scx + 0.5) * cell_w_,
                    bounds_.min.y + (scy + 0.5) * cell_h_};
    const unsigned char cls =
        ContainsViaRow(rep) ? kPointInside : kPointOutside;
    cell_class_[start] = cls;
    while (!flood_queue_.empty()) {
      const std::int32_t c = flood_queue_.back();
      flood_queue_.pop_back();
      const int cx = c % nx_;
      const int cy = c / nx_;
      const std::int32_t neighbors[4] = {c - 1, c + 1, c - nx_, c + nx_};
      const bool valid[4] = {cx > 0, cx + 1 < nx_, cy > 0, cy + 1 < ny_};
      for (int k = 0; k < 4; ++k) {
        if (valid[k] && cell_class_[neighbors[k]] == kCellUnknown) {
          cell_class_[neighbors[k]] = cls;
          flood_queue_.push_back(neighbors[k]);
        }
      }
    }
  }

  // --- Summed-area tables over the cell classification for O(1)
  // ClassifyBox. ---
  const std::size_t satn = static_cast<std::size_t>(nx_ + 1) * (ny_ + 1);
  inside_sat_.assign(satn, 0);
  boundary_sat_.assign(satn, 0);
  boundary_cells_ = inside_cells_ = 0;
  for (int cy = 0; cy < ny_; ++cy) {
    for (int cx = 0; cx < nx_; ++cx) {
      const unsigned char cls =
          cell_class_[static_cast<std::size_t>(cy) * nx_ + cx];
      const std::uint32_t inside = cls == kPointInside ? 1 : 0;
      const std::uint32_t boundary = cls == kPointBoundary ? 1 : 0;
      inside_cells_ += inside;
      boundary_cells_ += boundary;
      const std::size_t w = nx_ + 1;
      const std::size_t at = static_cast<std::size_t>(cy + 1) * w + cx + 1;
      inside_sat_[at] = inside + inside_sat_[at - 1] + inside_sat_[at - w] -
                        inside_sat_[at - w - 1];
      boundary_sat_[at] = boundary + boundary_sat_[at - 1] +
                          boundary_sat_[at - w] - boundary_sat_[at - w - 1];
    }
  }
}

bool PreparedArea::ContainsViaRow(const Point& p) const {
  // The same loop body as Polygon::Contains, over the row's edge subset:
  // every edge the naive scan reacts to (on-edge hit or parity crossing)
  // has p.y inside its y-range, hence is listed in p's row.
  const Polygon& poly = *polygon_;
  const int row = RowOf(p.y);
  const std::uint32_t begin = row_edge_offsets_[row];
  const std::uint32_t end = row_edge_offsets_[row + 1];
  bool inside = false;
  for (std::uint32_t k = begin; k < end; ++k) {
    const std::size_t i = row_edges_[k];
    const Point& a = poly.vertex(i);
    const Point& b = poly.vertex((i + 1) % poly.size());
    if (poly.edge_bounds(i).Contains(p) && Orient2DSign(a, b, p) == 0) {
      return true;  // Exactly on this edge.
    }
    if (a.y <= p.y) {
      if (b.y > p.y && Orient2DSign(a, b, p) > 0) inside = !inside;
    } else {
      if (b.y <= p.y && Orient2DSign(a, b, p) < 0) inside = !inside;
    }
  }
  return inside;
}

void PreparedArea::ClassifyPoints(const double* xs, const double* ys,
                                  std::size_t n, unsigned char* cls) const {
  if (polygon_ == nullptr) {
    std::fill(cls, cls + n, kPointOutside);
    return;
  }
  const double minx = bounds_.min.x, miny = bounds_.min.y;
  const double maxx = bounds_.max.x, maxy = bounds_.max.y;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    const double y = ys[i];
    if (x < minx || x > maxx || y < miny || y > maxy) {
      cls[i] = kPointOutside;
      continue;
    }
    int cx = static_cast<int>((x - minx) * inv_cw_);
    int cy = static_cast<int>((y - miny) * inv_ch_);
    cx = cx >= nx_ ? nx_ - 1 : cx;
    cy = cy >= ny_ ? ny_ - 1 : cy;
    cls[i] = cell_class_[static_cast<std::size_t>(cy) * nx_ + cx];
  }
}

bool PreparedArea::BoundaryIntersects(const Segment& s) const {
  if (polygon_ == nullptr) return false;
  const Box sb = s.Bounds();
  if (!bounds_.Intersects(sb)) return false;
  const int cx0 = ColOf(sb.min.x - pad_x_);
  const int cx1 = ColOf(sb.max.x + pad_x_);
  const int cy0 = RowOf(sb.min.y - pad_y_);
  const int cy1 = RowOf(sb.max.y + pad_y_);
  if ((cx1 - cx0 + 1) * (cy1 - cy0 + 1) > kSegmentCellCap) {
    return polygon_->BoundaryIntersects(s);
  }
  // Any edge intersecting `s` does so at a point whose cell lies both in
  // this covering range and in the edge's rasterised cell set, so scanning
  // the boundary cells of the range sees every possible hit. One
  // summed-area lookup rejects ranges away from the boundary outright.
  if (SatRangeSum(boundary_sat_, cx0, cy0, cx1, cy1) == 0) return false;
  const Polygon& poly = *polygon_;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t cell = static_cast<std::size_t>(cy) * nx_ + cx;
      if (cell_class_[cell] != kPointBoundary) continue;
      const std::uint32_t begin = cell_edge_offsets_[cell];
      const std::uint32_t end = cell_edge_offsets_[cell + 1];
      for (std::uint32_t k = begin; k < end; ++k) {
        const std::size_t i = cell_edges_[k];
        if (!poly.edge_bounds(i).Intersects(sb)) continue;
        if (SegmentsIntersect(poly.edge(i), s)) return true;
      }
    }
  }
  return false;
}

PreparedArea::Region PreparedArea::ClassifyBox(const Box& box) const {
  if (polygon_ == nullptr || box.Empty()) return Region::kOutside;
  if (!bounds_.Intersects(box)) return Region::kOutside;
  const int cx0 = ColOf(box.min.x - pad_x_);
  const int cx1 = ColOf(box.max.x + pad_x_);
  const int cy0 = RowOf(box.min.y - pad_y_);
  const int cy1 = RowOf(box.max.y + pad_y_);
  if (SatRangeSum(boundary_sat_, cx0, cy0, cx1, cy1) > 0) {
    return Region::kStraddling;
  }
  const std::uint32_t inside = SatRangeSum(inside_sat_, cx0, cy0, cx1, cy1);
  const std::uint32_t covered =
      static_cast<std::uint32_t>((cx1 - cx0 + 1) * (cy1 - cy0 + 1));
  if (inside == 0) return Region::kOutside;
  if (inside == covered) {
    // Every covered cell is interior; the box is inside iff it does not
    // stick out of the grid (the region beyond the MBR is outside).
    return bounds_.Contains(box) ? Region::kInside : Region::kStraddling;
  }
  // Inside and outside cells with no boundary cell between them cannot
  // happen within one connected component; a rectangle of cells is
  // connected, so this range must touch the boundary band's pad fringe —
  // classify conservatively.
  return Region::kStraddling;
}

}  // namespace vaq
