#ifndef VAQ_GEOMETRY_PREPARED_AREA_H_
#define VAQ_GEOMETRY_PREPARED_AREA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/segment.h"

namespace vaq {

/// Query-polygon acceleration structure: one-time preprocessing of a simple
/// polygon that makes the per-candidate tests every area query pays — point
/// containment, segment-boundary intersection, box classification — cheap.
///
/// `Polygon::Contains` / `BoundaryIntersects` are O(m) scans over the m
/// polygon edges, so query cost scales with *polygon complexity times
/// candidate count*. `PreparedArea` rasterises the polygon once onto a
/// uniform grid over its MBR and classifies every cell as **inside**,
/// **outside** or **boundary** (the cell meets the boundary ring):
///
///  * points in inside/outside cells are answered in O(1) with zero edge
///    tests — by construction the boundary only passes through boundary
///    cells, so the whole cell shares one containment status;
///  * points in boundary cells fall back to an *exact* crossing-parity test
///    that scans only the edges whose y-range meets the point's grid row
///    (a per-row CSR edge list), not all m edges;
///  * segments test only the edges recorded in the boundary cells their
///    MBR covers (a per-cell CSR edge list);
///  * `ClassifyBox` answers inside/outside/straddling in O(1) from two
///    summed-area tables over the cell classification — this is what lets
///    indexes bulk-accept whole subtrees and prune outside ones.
///
/// **Exactness.** All residual tests run the same robust predicates on a
/// subset of edges that provably contains every edge the naive scan could
/// react to, so `Contains`, `BoundaryIntersects` and `Intersects` agree
/// with the `Polygon` methods *bit for bit*, including points exactly on
/// edges or vertices (see the prepared-vs-naive property test).
/// `ClassifyBox` is conservative: `kInside`/`kOutside` answers are always
/// correct; near the boundary it may answer `kStraddling` where the exact
/// answer is inside or outside, and callers must then fall back to
/// per-point validation (which is always safe).
///
/// **Robustness.** Cell indexing is floating-point; the rasteriser
/// therefore marks every cell whose slightly inflated box the edge touches
/// (an epsilon pad orders of magnitude larger than the worst index-rounding
/// error), so a point whose computed cell is *not* a boundary cell is
/// guaranteed to be safely on that cell's side of the boundary.
///
/// A `PreparedArea` holds no mutable state after `Prepare`, so one instance
/// may be read from any number of threads. `Prepare` reuses all internal
/// buffers: query contexts keep one instance per thread and rebuild it per
/// query, allocating nothing in steady state. The referenced polygon must
/// outlive the prepared structure (it is consulted for residual exact
/// tests).
///
/// Preprocessing costs O(m + cells); see DESIGN.md §6 for when it
/// amortises (it already wins at a few hundred candidates for the paper's
/// decagons, and earlier for more complex polygons).
class PreparedArea {
 public:
  /// Classification of an axis-aligned box against the polygon.
  enum class Region : unsigned char {
    kOutside = 0,     ///< Box and polygon are disjoint (definite).
    kInside = 1,      ///< Box lies entirely inside the polygon (definite).
    kStraddling = 2,  ///< Box may meet the boundary; validate per point.
  };

  /// Per-point classification values written by `ClassifyPoints`; the
  /// numeric values match the internal cell classes.
  static constexpr unsigned char kPointOutside = 0;
  static constexpr unsigned char kPointInside = 1;
  /// Point lies in a boundary cell: caller must run `Contains` on it.
  static constexpr unsigned char kPointBoundary = 2;

  PreparedArea() = default;
  explicit PreparedArea(const Polygon& area) { Prepare(area); }

  /// (Re)builds the acceleration structure over `area`, reusing internal
  /// buffers. `area` must stay alive and unmodified while this prepared
  /// structure is in use. `grid_side_hint` overrides the automatic grid
  /// resolution (clamped to [4, 512]); 0 picks `~4*sqrt(m)` in [32, 192].
  void Prepare(const Polygon& area, int grid_side_hint = 0);

  /// Grid resolution balancing one-time build cost (O(side^2) cells)
  /// against the residual exact tests a thinner boundary band avoids, for
  /// a query expected to run `expected_tests` point tests against an
  /// `m`-gon. Derived from build ~ k*side^2 and boundary overhead ~
  /// expected_tests * (c/side) * row_test: the optimum grows with the cube
  /// root of the test count. Returns 0 (the m-based default) when no
  /// estimate is available; pass the result as `grid_side_hint`.
  static int SuggestGridSide(std::size_t m, std::size_t expected_tests);

  /// Expected-test estimate for queries that validate roughly the MBR's
  /// share of a database: `n * area(mbr) / area(domain)`, clamped to `n`.
  /// The common `expected_tests` argument for `SuggestGridSide` when the
  /// exact candidate count is not known up front.
  static std::size_t EstimateMbrShare(std::size_t n, const Box& domain,
                                      const Box& mbr);

  /// Rebinds the accelerated-polygon reference to `area`, with no
  /// rebuild. Every derived structure depends only on the vertex values,
  /// so this is sound precisely when `area` is value-equal (same vertices
  /// in the same order) to the polygon this structure was prepared over —
  /// the caller's guarantee. `QueryContext`'s memo uses it so a cached
  /// grid can serve an equal polygon at a different address after the
  /// originally-prepared object has died; without the rebind, the
  /// residual exact tests would dereference the dead original.
  /// Precondition: `prepared()`.
  void RebindPolygon(const Polygon& area) { polygon_ = &area; }

  /// True once `Prepare` ran on a non-degenerate polygon.
  bool prepared() const { return polygon_ != nullptr; }

  /// The polygon this structure accelerates. Precondition: `prepared()`.
  const Polygon& polygon() const { return *polygon_; }

  /// The polygon's MBR (== `polygon().Bounds()`), the grid's extent.
  const Box& bounds() const { return bounds_; }

  /// O(1) three-way classification of one point against the grid:
  /// `kPointInside` / `kPointOutside` are definite (identical to
  /// `Contains`); `kPointBoundary` means the point lies in a boundary
  /// cell and the caller must confirm with `Contains`. This is the
  /// per-point building block of the batch kernels — cheap enough to run
  /// on every frontier neighbour before deciding whether an exact test
  /// is needed at all.
  unsigned char ClassifyPoint(double x, double y) const {
    if (polygon_ == nullptr || !bounds_.Contains(Point{x, y})) {
      return kPointOutside;
    }
    return cell_class_[CellIndexOf(Point{x, y})];
  }

  /// Exactly `polygon().Contains(p)`: true if `p` is inside or on the
  /// boundary. O(1) for points away from the boundary band.
  bool Contains(const Point& p) const {
    const unsigned char cls = ClassifyPoint(p.x, p.y);
    if (cls != kPointBoundary) return cls == kPointInside;
    return ContainsViaRow(p);
  }

  /// Batched kernel behind the refine step: classifies `n` points (given
  /// as parallel coordinate arrays, SoA) against the grid. Writes
  /// `kPointInside` / `kPointOutside` for definite answers and
  /// `kPointBoundary` for points in boundary cells, which the caller must
  /// confirm with `Contains`. Points outside the MBR get `kPointOutside`.
  void ClassifyPoints(const double* xs, const double* ys, std::size_t n,
                      unsigned char* cls) const;

  /// Exactly `polygon().BoundaryIntersects(s)`: true if `s` crosses or
  /// touches the boundary ring. Tests only edges local to the cells the
  /// segment's MBR covers.
  bool BoundaryIntersects(const Segment& s) const;

  /// Exactly `polygon().Intersects(s)`: boundary crossing or containment.
  bool Intersects(const Segment& s) const {
    if (polygon_ == nullptr || !bounds_.Intersects(s.Bounds())) return false;
    if (BoundaryIntersects(s)) return true;
    return Contains(s.a);
  }

  /// O(1) conservative box classification (two summed-area-table lookups).
  /// `kInside` and `kOutside` answers are always correct; `kStraddling` is
  /// the safe fallback near the boundary.
  Region ClassifyBox(const Box& box) const;

  // -- Introspection (tests and benchmarks) ---------------------------------

  int grid_side() const { return nx_; }
  std::size_t boundary_cell_count() const { return boundary_cells_; }
  std::size_t inside_cell_count() const { return inside_cells_; }

  // -- Raw grid / CSR access for the batch kernels (src/geometry/simd/) -----
  // `PolygonKernel` snapshots these to run the vector twin of
  // `ClassifyPoints` / `ContainsViaRow` on identical values. The returned
  // pointers stay valid until the next `Prepare` (RebindPolygon does not
  // invalidate them).

  int grid_nx() const { return nx_; }
  int grid_ny() const { return ny_; }
  double inv_cell_w() const { return inv_cw_; }
  double inv_cell_h() const { return inv_ch_; }
  /// Per-cell class array, row-major `grid_ny() x grid_nx()`.
  const unsigned char* cell_class_data() const { return cell_class_.data(); }
  /// Row CSR: the edges whose y-range meets grid row r are
  /// `row_edges_data()[row_edge_offsets_data()[r] ..
  ///                   row_edge_offsets_data()[r + 1])`.
  const std::uint32_t* row_edge_offsets_data() const {
    return row_edge_offsets_.data();
  }
  const std::uint32_t* row_edges_data() const { return row_edges_.data(); }
  std::size_t row_edges_size() const { return row_edges_.size(); }

 private:
  // Cell classes share the kPoint* values: 0 outside, 1 inside, 2 boundary.
  static constexpr unsigned char kCellUnknown = 3;

  int ColOf(double x) const {
    const int c = static_cast<int>((x - bounds_.min.x) * inv_cw_);
    return c < 0 ? 0 : (c >= nx_ ? nx_ - 1 : c);
  }
  int RowOf(double y) const {
    const int r = static_cast<int>((y - bounds_.min.y) * inv_ch_);
    return r < 0 ? 0 : (r >= ny_ ? ny_ - 1 : r);
  }
  std::size_t CellIndexOf(const Point& p) const {
    return static_cast<std::size_t>(RowOf(p.y)) * nx_ + ColOf(p.x);
  }

  /// Exact crossing-parity containment scanning only the edges of `p`'s
  /// grid row — the same predicate calls `Polygon::Contains` makes, on the
  /// subset of edges whose y-range meets `p.y` (the only edges the naive
  /// loop reacts to).
  bool ContainsViaRow(const Point& p) const;

  /// Invokes `fn(cell_index)` for every grid cell whose epsilon-inflated
  /// box edge `i` touches (conservative supercover rasterisation).
  template <typename Fn>
  void ForEachEdgeCell(std::size_t i, Fn&& fn) const;

  std::uint32_t SatRangeSum(const std::vector<std::uint32_t>& sat, int cx0,
                            int cy0, int cx1, int cy1) const {
    const int w = nx_ + 1;
    return sat[static_cast<std::size_t>(cy1 + 1) * w + cx1 + 1] -
           sat[static_cast<std::size_t>(cy0) * w + cx1 + 1] -
           sat[static_cast<std::size_t>(cy1 + 1) * w + cx0] +
           sat[static_cast<std::size_t>(cy0) * w + cx0];
  }

  const Polygon* polygon_ = nullptr;
  Box bounds_;
  int nx_ = 0;
  int ny_ = 0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  double inv_cw_ = 1.0;
  double inv_ch_ = 1.0;
  double pad_x_ = 0.0;  // Rasterisation inflation, ~1e-6 of a cell.
  double pad_y_ = 0.0;
  std::size_t boundary_cells_ = 0;
  std::size_t inside_cells_ = 0;

  /// Per-cell class (kPointOutside/kPointInside/kPointBoundary), row-major.
  std::vector<unsigned char> cell_class_;
  /// CSR edge lists per boundary cell (empty list for other cells).
  std::vector<std::uint32_t> cell_edge_offsets_;
  std::vector<std::uint32_t> cell_edges_;
  /// CSR edge lists per grid row: every edge whose y-range meets the row.
  std::vector<std::uint32_t> row_edge_offsets_;
  std::vector<std::uint32_t> row_edges_;
  /// Summed-area tables of the inside / boundary cell indicator functions,
  /// (nx+1) x (ny+1), for O(1) ClassifyBox.
  std::vector<std::uint32_t> inside_sat_;
  std::vector<std::uint32_t> boundary_sat_;
  /// Build scratch (flood-fill queue, CSR fill cursors), reused across
  /// Prepare calls so steady-state rebuilds allocate nothing.
  std::vector<std::int32_t> flood_queue_;
  std::vector<std::uint32_t> csr_cursor_;
};

}  // namespace vaq

#endif  // VAQ_GEOMETRY_PREPARED_AREA_H_
