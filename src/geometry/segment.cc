#include "geometry/segment.h"

#include <algorithm>

#include "geometry/predicates.h"

namespace vaq {

bool OnSegment(const Segment& s, const Point& p) {
  if (Orient2DSign(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) && p.x <= std::max(s.a.x, s.b.x) &&
         p.y >= std::min(s.a.y, s.b.y) && p.y <= std::max(s.a.y, s.b.y);
}

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  const int d1 = Orient2DSign(t.a, t.b, s.a);
  const int d2 = Orient2DSign(t.a, t.b, s.b);
  const int d3 = Orient2DSign(s.a, s.b, t.a);
  const int d4 = Orient2DSign(s.a, s.b, t.b);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;  // Proper crossing.
  }
  // Collinear / endpoint-touching cases.
  if (d1 == 0 && OnSegment(t, s.a)) return true;
  if (d2 == 0 && OnSegment(t, s.b)) return true;
  if (d3 == 0 && OnSegment(s, t.a)) return true;
  if (d4 == 0 && OnSegment(s, t.b)) return true;
  return false;
}

}  // namespace vaq
