#ifndef VAQ_GEOMETRY_SEGMENT_H_
#define VAQ_GEOMETRY_SEGMENT_H_

#include <ostream>

#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

/// A closed line segment between two endpoints.
struct Segment {
  Point a;
  Point b;

  constexpr Segment() = default;
  constexpr Segment(const Point& pa, const Point& pb) : a(pa), b(pb) {}

  /// The MBR of the segment.
  Box Bounds() const {
    Box box(a);
    box.ExpandToInclude(b);
    return box;
  }

  /// Segment length.
  double Length() const { return Distance(a, b); }

  /// Squared distance from `p` to the closest point on the segment.
  double SquaredDistanceTo(const Point& p) const {
    const Point d = b - a;
    const double len2 = d.SquaredNorm();
    if (len2 == 0.0) return SquaredDistance(p, a);
    double t = (p - a).Dot(d) / len2;
    if (t < 0.0) t = 0.0;
    if (t > 1.0) t = 1.0;
    return SquaredDistance(p, a + d * t);
  }

  constexpr bool operator==(const Segment& o) const {
    return a == o.a && b == o.b;
  }
};

/// True if segments `s` and `t` share at least one point (robust: uses the
/// exact orientation predicate; handles collinear overlap and endpoint
/// touching).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// True if `p` lies on segment `s` (inclusive of endpoints, exact).
bool OnSegment(const Segment& s, const Point& p);

inline std::ostream& operator<<(std::ostream& os, const Segment& s) {
  return os << s.a << "-" << s.b;
}

}  // namespace vaq

#endif  // VAQ_GEOMETRY_SEGMENT_H_
