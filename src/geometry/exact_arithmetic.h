#ifndef VAQ_GEOMETRY_EXACT_ARITHMETIC_H_
#define VAQ_GEOMETRY_EXACT_ARITHMETIC_H_

#include <array>
#include <cassert>
#include <cstddef>

namespace vaq {

/// Error-free floating-point transformations and expansion arithmetic,
/// following Shewchuk ("Adaptive Precision Floating-Point Arithmetic and
/// Fast Robust Geometric Predicates", 1997).
///
/// A *non-overlapping expansion* represents a real number exactly as the sum
/// of `n` IEEE-754 doubles of strictly increasing magnitude. The geometric
/// predicates in predicates.h evaluate their determinants in plain doubles
/// first (with a static forward-error filter) and fall back to these exact
/// routines only when the filter cannot certify the sign — so the common
/// case stays fast while degenerate inputs are decided consistently.
///
/// These routines REQUIRE strict IEEE-754 double semantics: the build must
/// not enable -ffast-math / -funsafe-math-optimizations.

/// Computes `a + b` exactly as `x + err` where `x` is the rounded sum.
inline void TwoSum(double a, double b, double* x, double* err) {
  *x = a + b;
  const double b_virtual = *x - a;
  const double a_virtual = *x - b_virtual;
  const double b_roundoff = b - b_virtual;
  const double a_roundoff = a - a_virtual;
  *err = a_roundoff + b_roundoff;
}

/// Computes `a - b` exactly as `x + err`.
inline void TwoDiff(double a, double b, double* x, double* err) {
  *x = a - b;
  const double b_virtual = a - *x;
  const double a_virtual = *x + b_virtual;
  const double b_roundoff = b_virtual - b;
  const double a_roundoff = a - a_virtual;
  *err = a_roundoff + b_roundoff;
}

/// Computes `a * b` exactly as `x + err` using FMA.
inline void TwoProduct(double a, double b, double* x, double* err) {
  *x = a * b;
  *err = __builtin_fma(a, b, -*x);
}

/// A fixed-capacity, non-overlapping expansion of doubles. `Cap` bounds the
/// number of components; operations assert it is never exceeded. The sizes
/// needed by the predicates in this library are small (orient2d <= 16,
/// incircle <= 1152 worst case; we use generous caps).
template <std::size_t Cap>
class Expansion {
 public:
  Expansion() = default;

  /// The expansion representing a single double.
  explicit Expansion(double v) : size_(1) { comp_[0] = v; }

  /// The exact two-component result of TwoSum/TwoDiff/TwoProduct:
  /// value = hi + lo with |lo| <= ulp(hi)/2.
  Expansion(double err_lo, double hi) : size_(2) {
    comp_[0] = err_lo;
    comp_[1] = hi;
  }

  std::size_t size() const { return size_; }
  double component(std::size_t i) const { return comp_[i]; }

  /// The most significant component, which approximates the value and whose
  /// sign equals the sign of the exact value (Shewchuk, Lemma 1 corollary
  /// for strongly non-overlapping expansions produced by these routines).
  double MostSignificant() const { return size_ == 0 ? 0.0 : comp_[size_ - 1]; }

  /// Sign of the exact value: -1, 0 or +1.
  int Sign() const {
    const double m = MostSignificant();
    return m > 0.0 ? 1 : (m < 0.0 ? -1 : 0);
  }

  /// Approximate value (sum of components, most significant last).
  double Estimate() const {
    double s = 0.0;
    for (std::size_t i = 0; i < size_; ++i) s += comp_[i];
    return s;
  }

  /// Exact sum of two expansions. This is Shewchuk's
  /// FAST-EXPANSION-SUM-ZEROELIM: merge the component sequences by
  /// increasing magnitude, then chain TwoSum, emitting the roundoff terms.
  template <std::size_t C2>
  Expansion Add(const Expansion<C2>& other) const {
    Expansion result;
    const std::size_t elen = size_;
    const std::size_t flen = other.size();
    if (elen == 0 && flen == 0) return result;
    // Merge by increasing magnitude (ties broken arbitrarily).
    std::array<double, Cap> merged{};
    std::size_t i = 0, j = 0, m = 0;
    while (i < elen && j < flen) {
      if (Magnitude(comp_[i]) < Magnitude(other.component(j))) {
        merged[m++] = comp_[i++];
      } else {
        merged[m++] = other.component(j++);
      }
    }
    while (i < elen) merged[m++] = comp_[i++];
    while (j < flen) merged[m++] = other.component(j++);

    double q = merged[0];
    for (std::size_t k = 1; k < m; ++k) {
      double sum, err;
      TwoSum(q, merged[k], &sum, &err);
      if (err != 0.0) result.Append(err);
      q = sum;
    }
    if (q != 0.0 || result.size_ == 0) result.Append(q);
    return result;
  }

  /// Exact difference `*this - other`.
  template <std::size_t C2>
  Expansion Subtract(const Expansion<C2>& other) const {
    return Add(other.Negate());
  }

  /// Exact negation.
  Expansion Negate() const {
    Expansion r = *this;
    for (std::size_t i = 0; i < r.size_; ++i) r.comp_[i] = -r.comp_[i];
    return r;
  }

  /// Exact product with a single double (scale-expansion).
  Expansion Scale(double b) const {
    Expansion result;
    if (size_ == 0 || b == 0.0) return result;
    double q, err;
    TwoProduct(comp_[0], b, &q, &err);
    if (err != 0.0) result.Append(err);
    for (std::size_t i = 1; i < size_; ++i) {
      double prod_hi, prod_lo;
      TwoProduct(comp_[i], b, &prod_hi, &prod_lo);
      double sum, sum_err;
      TwoSum(q, prod_lo, &sum, &sum_err);
      if (sum_err != 0.0) result.Append(sum_err);
      double new_q, new_err;
      TwoSum(prod_hi, sum, &new_q, &new_err);
      if (new_err != 0.0) result.Append(new_err);
      q = new_q;
    }
    if (q != 0.0 || result.size_ == 0) result.Append(q);
    return result;
  }

  /// Exact product of two expansions (distribute-and-sum; O(n*m) terms).
  template <std::size_t C2>
  Expansion Multiply(const Expansion<C2>& other) const {
    Expansion result;
    for (std::size_t j = 0; j < other.size(); ++j) {
      result = result.Add(Scale(other.component(j)));
    }
    return result;
  }

 private:
  template <std::size_t C2>
  friend class Expansion;

  static double Magnitude(double v) { return v < 0.0 ? -v : v; }

  void Append(double v) {
    assert(size_ < Cap && "Expansion capacity exceeded");
    comp_[size_++] = v;
  }

  std::array<double, Cap> comp_{};
  std::size_t size_ = 0;
};

/// Exact difference of two doubles as a 2-component expansion.
template <std::size_t Cap>
Expansion<Cap> ExactDiff(double a, double b) {
  double x, err;
  TwoDiff(a, b, &x, &err);
  if (err == 0.0) return Expansion<Cap>(x);
  return Expansion<Cap>(err, x);
}

/// Exact product of two doubles as a 2-component expansion.
template <std::size_t Cap>
Expansion<Cap> ExactProduct(double a, double b) {
  double x, err;
  TwoProduct(a, b, &x, &err);
  if (err == 0.0) return Expansion<Cap>(x);
  return Expansion<Cap>(err, x);
}

}  // namespace vaq

#endif  // VAQ_GEOMETRY_EXACT_ARITHMETIC_H_
