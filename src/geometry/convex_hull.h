#ifndef VAQ_GEOMETRY_CONVEX_HULL_H_
#define VAQ_GEOMETRY_CONVEX_HULL_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace vaq {

/// Convex hull of `points` (Andrew's monotone chain, O(n log n)), returned
/// as a counter-clockwise vertex ring with collinear boundary points
/// removed. Returns an empty vector when fewer than 3 non-collinear points
/// exist. Used by tests (hull vertices have unbounded Voronoi cells) and by
/// the examples.
std::vector<Point> ConvexHull(std::vector<Point> points);

/// Convenience wrapper returning the hull as a `Polygon`.
/// Precondition: `points` spans at least 3 non-collinear locations.
Polygon ConvexHullPolygon(std::vector<Point> points);

}  // namespace vaq

#endif  // VAQ_GEOMETRY_CONVEX_HULL_H_
