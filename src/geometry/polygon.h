#ifndef VAQ_GEOMETRY_POLYGON_H_
#define VAQ_GEOMETRY_POLYGON_H_

#include <cstddef>
#include <ostream>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/segment.h"

namespace vaq {

/// A simple polygon (closed ring of vertices, no self-intersections, last
/// vertex implicitly connected to the first). Query areas in this library
/// are polygons; they may be concave — that is the whole point of the paper.
///
/// The vertex ring may be given in either winding order; `SignedArea()`
/// exposes the order, `Area()` is always non-negative.
class Polygon {
 public:
  Polygon() = default;

  /// Builds a polygon from a vertex ring. Precondition: `vertices.size() >= 3`
  /// and the ring is simple (not validated here; see `IsSimple()`).
  explicit Polygon(std::vector<Point> vertices);

  /// Number of vertices (== number of edges).
  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  const std::vector<Point>& vertices() const { return vertices_; }
  const Point& vertex(std::size_t i) const { return vertices_[i]; }

  /// The i-th edge, from vertex i to vertex (i+1) mod n.
  Segment edge(std::size_t i) const {
    return Segment(vertices_[i], vertices_[(i + 1) % vertices_.size()]);
  }

  /// The cached MBR of the i-th edge (the per-edge fast-reject box the
  /// containment and intersection tests gate on; `PreparedArea` reuses it
  /// for its residual local tests).
  const Box& edge_bounds(std::size_t i) const { return edge_bounds_[i]; }

  /// The (cached) minimum bounding rectangle — exactly what the traditional
  /// area query feeds to the window-query filter.
  const Box& Bounds() const { return bounds_; }

  /// Signed area: positive for counter-clockwise rings (shoelace formula).
  double SignedArea() const;

  /// Absolute enclosed area.
  double Area() const;

  /// Total boundary length.
  double Perimeter() const;

  /// Area centroid. For concave polygons it may lie outside the polygon;
  /// use `InteriorPoint()` when a point strictly inside is needed.
  Point Centroid() const;

  /// A point guaranteed to lie strictly inside the polygon: the midpoint of
  /// the widest interior span of the horizontal scanline through the middle
  /// of the MBR (falls back to scanning other heights for degenerate cases).
  /// This provides the "arbitrary position in A" the paper's Algorithm 1
  /// seeds from. Precondition: `size() >= 3` and positive area.
  Point InteriorPoint() const;

  /// True if `p` is inside the polygon or exactly on its boundary.
  /// Robust crossing-number test built on the exact orientation predicate.
  bool Contains(const Point& p) const;

  /// True if `p` lies exactly on the boundary.
  bool OnBoundary(const Point& p) const;

  /// True if segment `s` intersects the polygon *boundary or interior*:
  /// i.e. either an endpoint is inside, or the segment crosses an edge.
  /// This is the `Intersects(line, A)` primitive of the paper's Algorithm 1.
  bool Intersects(const Segment& s) const;

  /// True if segment `s` crosses or touches the boundary ring (ignores
  /// full containment in the interior).
  bool BoundaryIntersects(const Segment& s) const;

  /// True if the axis-aligned box `box` lies entirely inside the polygon.
  /// Conservative: boxes touching the polygon boundary may be reported as
  /// not contained (callers such as the grid-sweep query then fall back to
  /// per-point validation, which is always safe). A `true` answer is
  /// always correct.
  bool ContainsBox(const Box& box) const;

  /// True if the box and the polygon share at least one point.
  bool IntersectsBox(const Box& box) const;

  /// O(n^2) simplicity check (adjacent edges may share their common vertex).
  /// Intended for validation in tests and debug assertions, not hot paths.
  bool IsSimple() const;

  /// Returns this polygon with the ring order reversed.
  Polygon Reversed() const;

  /// Convenience factory: axis-aligned rectangle as a 4-gon.
  static Polygon FromBox(const Box& box);

  /// Convenience factory: regular n-gon centred at `center`.
  static Polygon RegularNGon(const Point& center, double radius, int n);

 private:
  std::vector<Point> vertices_;
  std::vector<Box> edge_bounds_;  // Cached per-edge MBRs for fast rejects.
  Box bounds_;
};

std::ostream& operator<<(std::ostream& os, const Polygon& poly);

}  // namespace vaq

#endif  // VAQ_GEOMETRY_POLYGON_H_
