#include "geometry/clip.h"

namespace vaq {
namespace {

// One Sutherland–Hodgman pass against the half-plane `Inside(p) == true`,
// with `Cross(a, b)` returning the intersection of segment (a,b) with the
// boundary line.
template <typename InsideFn, typename CrossFn>
std::vector<Point> ClipAgainst(const std::vector<Point>& ring,
                               InsideFn inside, CrossFn cross) {
  std::vector<Point> out;
  const std::size_t n = ring.size();
  if (n == 0) return out;
  out.reserve(n + 4);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& cur = ring[i];
    const Point& prev = ring[(i + n - 1) % n];
    const bool cur_in = inside(cur);
    const bool prev_in = inside(prev);
    if (cur_in) {
      if (!prev_in) out.push_back(cross(prev, cur));
      out.push_back(cur);
    } else if (prev_in) {
      out.push_back(cross(prev, cur));
    }
  }
  return out;
}

}  // namespace

std::vector<Point> ClipRingToBox(const std::vector<Point>& ring,
                                 const Box& clip) {
  auto lerp_x = [](const Point& a, const Point& b, double x) {
    const double t = (x - a.x) / (b.x - a.x);
    return Point{x, a.y + t * (b.y - a.y)};
  };
  auto lerp_y = [](const Point& a, const Point& b, double y) {
    const double t = (y - a.y) / (b.y - a.y);
    return Point{a.x + t * (b.x - a.x), y};
  };

  std::vector<Point> r = ClipAgainst(
      ring, [&](const Point& p) { return p.x >= clip.min.x; },
      [&](const Point& a, const Point& b) { return lerp_x(a, b, clip.min.x); });
  r = ClipAgainst(
      r, [&](const Point& p) { return p.x <= clip.max.x; },
      [&](const Point& a, const Point& b) { return lerp_x(a, b, clip.max.x); });
  r = ClipAgainst(
      r, [&](const Point& p) { return p.y >= clip.min.y; },
      [&](const Point& a, const Point& b) { return lerp_y(a, b, clip.min.y); });
  r = ClipAgainst(
      r, [&](const Point& p) { return p.y <= clip.max.y; },
      [&](const Point& a, const Point& b) { return lerp_y(a, b, clip.max.y); });
  return r;
}

}  // namespace vaq
