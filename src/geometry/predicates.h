#ifndef VAQ_GEOMETRY_PREDICATES_H_
#define VAQ_GEOMETRY_PREDICATES_H_

#include "geometry/point.h"

namespace vaq {

/// Robust geometric predicates (filtered, with exact fallback).
///
/// Both predicates first evaluate their determinant in double precision and
/// compare it against a static forward-error bound (Shewchuk's "A" bound).
/// If the sign cannot be certified, they re-evaluate exactly using expansion
/// arithmetic (see exact_arithmetic.h). The returned sign is therefore
/// always the sign of the exact real-arithmetic determinant.

/// Orientation of the triple (a, b, c):
///  > 0  if they make a left (counter-clockwise) turn,
///  < 0  if they make a right (clockwise) turn,
///  == 0 if they are exactly collinear.
/// The magnitude approximates twice the signed area of triangle (a, b, c).
double Orient2D(const Point& a, const Point& b, const Point& c);

/// Sign of Orient2D as -1 / 0 / +1.
int Orient2DSign(const Point& a, const Point& b, const Point& c);

/// In-circle test: assuming (a, b, c) are in counter-clockwise order,
/// returns
///  > 0  if d lies strictly inside the circumcircle of (a, b, c),
///  < 0  if d lies strictly outside,
///  == 0 if the four points are exactly cocircular.
/// If (a, b, c) are clockwise the sign is flipped.
double InCircle(const Point& a, const Point& b, const Point& c,
                const Point& d);

/// Sign of InCircle as -1 / 0 / +1.
int InCircleSign(const Point& a, const Point& b, const Point& c,
                 const Point& d);

/// Circumcenter of the (non-degenerate) triangle (a, b, c).
/// Precondition: Orient2DSign(a, b, c) != 0. Computed in double precision;
/// used for Voronoi vertex placement (a construction, not a predicate, so
/// inexactness is acceptable).
Point Circumcenter(const Point& a, const Point& b, const Point& c);

namespace predicates_internal {
/// Exposed for tests: exact (expansion-arithmetic) evaluations.
double Orient2DExact(const Point& a, const Point& b, const Point& c);
double InCircleExact(const Point& a, const Point& b, const Point& c,
                     const Point& d);
}  // namespace predicates_internal

}  // namespace vaq

#endif  // VAQ_GEOMETRY_PREDICATES_H_
