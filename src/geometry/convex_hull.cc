#include "geometry/convex_hull.h"

#include <algorithm>

#include "geometry/predicates.h"

namespace vaq {

std::vector<Point> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return {};

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           Orient2DSign(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size &&
           Orient2DSign(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  if (hull.size() < 3) return {};
  return hull;
}

Polygon ConvexHullPolygon(std::vector<Point> points) {
  return Polygon(ConvexHull(std::move(points)));
}

}  // namespace vaq
