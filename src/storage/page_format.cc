#include "storage/page_format.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace vaq {

namespace {

std::string Describe(const std::string& path, const std::string& what) {
  return "page file '" + path + "': " + what;
}

void PutU32(char* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(char* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t GetU32(const char* src) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(src[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* src) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(src[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

bool IsValidPageSize(std::uint32_t page_size) {
  return page_size >= kMinPageSizeBytes && page_size <= kMaxPageSizeBytes &&
         (page_size & (page_size - 1)) == 0;
}

PageFileError::PageFileError(Kind kind, const std::string& path,
                             const std::string& what)
    : std::runtime_error(Describe(path, what)), kind_(kind), path_(path) {}

std::uint64_t Fnv1a64(const void* bytes, std::size_t n, std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void WritePageFile(const std::string& path, const double* xs,
                   const double* ys, std::size_t count,
                   std::uint32_t page_size_bytes) {
  if (!IsValidPageSize(page_size_bytes)) {
    std::ostringstream os;
    os << "WritePageFile: page size " << page_size_bytes
       << " must be a power of two in [" << kMinPageSizeBytes << ", "
       << kMaxPageSizeBytes << "]";
    throw std::invalid_argument(os.str());
  }
  PageFileHeader header;
  header.page_size_bytes = page_size_bytes;
  header.point_count = count;

  const std::size_t ppp = header.PointsPerPage();
  const std::size_t num_pages = header.NumPages();

  // Assemble pages through one reusable buffer: checksum and write per
  // page, so the writer streams at any count without a payload-sized
  // allocation.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw PageFileError(PageFileError::Kind::kIo, path,
                        "cannot open for writing");
  }
  out.seekp(kPageFileHeaderBytes);  // Header written last (checksum).

  std::vector<char> page(page_size_bytes);
  std::uint64_t checksum = Fnv1a64(nullptr, 0);  // Offset basis.
  for (std::size_t p = 0; p < num_pages; ++p) {
    std::memset(page.data(), 0, page.size());
    const std::size_t first = p * ppp;
    const std::size_t m = std::min(ppp, count - first);
    std::memcpy(page.data(), xs + first, m * sizeof(double));
    std::memcpy(page.data() + ppp * sizeof(double), ys + first,
                m * sizeof(double));
    checksum = Fnv1a64(page.data(), page.size(), checksum);
    out.write(page.data(), static_cast<std::streamsize>(page.size()));
  }
  header.payload_checksum = checksum;

  char raw[kPageFileHeaderBytes] = {};
  std::memcpy(raw, kPageFileMagic, sizeof(kPageFileMagic));
  PutU32(raw + 4, kPageFileVersion);
  PutU32(raw + 8, header.page_size_bytes);
  PutU64(raw + 16, header.point_count);
  PutU64(raw + 24, header.payload_checksum);
  out.seekp(0);
  out.write(raw, sizeof(raw));
  out.flush();
  if (!out) {
    throw PageFileError(PageFileError::Kind::kIo, path, "write failed");
  }
}

PageFileHeader ReadPageFileHeader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw PageFileError(PageFileError::Kind::kIo, path,
                        "cannot open for reading");
  }
  char raw[kPageFileHeaderBytes];
  in.read(raw, sizeof(raw));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(raw))) {
    std::ostringstream os;
    os << "truncated header: " << in.gcount() << " bytes, need "
       << sizeof(raw);
    throw PageFileError(PageFileError::Kind::kTruncated, path, os.str());
  }
  if (std::memcmp(raw, kPageFileMagic, sizeof(kPageFileMagic)) != 0) {
    throw PageFileError(PageFileError::Kind::kBadMagic, path,
                        "bad magic (not a VPAG page file)");
  }
  const std::uint32_t version = GetU32(raw + 4);
  if (version != kPageFileVersion) {
    std::ostringstream os;
    os << "unsupported format version " << version << " (reader supports "
       << kPageFileVersion << ")";
    throw PageFileError(PageFileError::Kind::kBadVersion, path, os.str());
  }
  PageFileHeader header;
  header.page_size_bytes = GetU32(raw + 8);
  header.point_count = GetU64(raw + 16);
  header.payload_checksum = GetU64(raw + 24);
  if (!IsValidPageSize(header.page_size_bytes)) {
    std::ostringstream os;
    os << "invalid page size " << header.page_size_bytes
       << " (power of two in [" << kMinPageSizeBytes << ", "
       << kMaxPageSizeBytes << "] required)";
    throw PageFileError(PageFileError::Kind::kBadPageSize, path, os.str());
  }
  // The header's count is untrusted: bound the payload it implies by the
  // bytes actually present before anyone sizes buffers off it (the same
  // discipline the binary point loader applies; see dataset_io.cc).
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  if (end == std::istream::pos_type(-1)) {
    throw PageFileError(PageFileError::Kind::kIo, path, "cannot stat size");
  }
  const std::uint64_t actual_payload =
      static_cast<std::uint64_t>(end) - kPageFileHeaderBytes;
  // NumPages() arithmetic can overflow for adversarial counts; compare in
  // the count domain instead: the payload holds floor(bytes / 16) points.
  const std::uint64_t max_points = actual_payload / 16;
  if (header.point_count > max_points) {
    std::ostringstream os;
    os << "truncated payload: header claims " << header.point_count
       << " points but the file holds at most " << max_points;
    throw PageFileError(PageFileError::Kind::kTruncated, path, os.str());
  }
  if (actual_payload < header.PayloadBytes()) {
    std::ostringstream os;
    os << "truncated payload: " << actual_payload << " bytes, need "
       << header.PayloadBytes() << " (" << header.NumPages() << " pages of "
       << header.page_size_bytes << ")";
    throw PageFileError(PageFileError::Kind::kTruncated, path, os.str());
  }
  return header;
}

}  // namespace vaq
