#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#if defined(VAQ_HAVE_IO_URING)
#include <linux/io_uring.h>
#include <sys/syscall.h>
#endif

namespace vaq {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kInMemory:
      return "memory";
    case StorageBackend::kMmap:
      return "mmap";
    case StorageBackend::kMmapUring:
      return "mmap_uring";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Raw io_uring wrapper (no liburing dependency): one SQ/CQ ring pair used
// only for batched page reads — fill N read SQEs, one `io_uring_enter`
// that both submits and waits, drain N CQEs. Setup failure (old kernel,
// seccomp-filtered sandbox, io_uring_disabled sysctl) is not an error:
// `Create` returns null and the store degrades to madvise-only prefetch.
// ---------------------------------------------------------------------------
#if defined(VAQ_HAVE_IO_URING) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter)

struct PageStore::Uring {
  int ring_fd = -1;
  unsigned sq_entry_count = 0;
  void* sq_ring = nullptr;
  std::size_t sq_ring_sz = 0;
  void* cq_ring = nullptr;
  std::size_t cq_ring_sz = 0;
  bool single_mmap = false;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_sz = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  struct ReadReq {
    void* buf;
    std::uint64_t off;
    std::uint32_t len;
  };

  static std::unique_ptr<Uring> Create(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const long fd = syscall(__NR_io_uring_setup, entries, &params);
    if (fd < 0) return nullptr;

    auto ring = std::make_unique<Uring>();
    ring->ring_fd = static_cast<int>(fd);
    ring->sq_entry_count = params.sq_entries;
    ring->sq_ring_sz =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    ring->cq_ring_sz =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    ring->single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (ring->single_mmap) {
      ring->sq_ring_sz = ring->cq_ring_sz =
          std::max(ring->sq_ring_sz, ring->cq_ring_sz);
    }
    ring->sq_ring = mmap(nullptr, ring->sq_ring_sz, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                         IORING_OFF_SQ_RING);
    if (ring->sq_ring == MAP_FAILED) {
      ring->sq_ring = nullptr;
      return nullptr;
    }
    if (ring->single_mmap) {
      ring->cq_ring = ring->sq_ring;
    } else {
      ring->cq_ring = mmap(nullptr, ring->cq_ring_sz, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                           IORING_OFF_CQ_RING);
      if (ring->cq_ring == MAP_FAILED) {
        ring->cq_ring = nullptr;
        return nullptr;
      }
    }
    ring->sqes_sz = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = mmap(nullptr, ring->sqes_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring->ring_fd,
                      IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return nullptr;
    ring->sqes = static_cast<io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(ring->sq_ring);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    ring->sq_mask = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(ring->cq_ring);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    ring->cq_mask = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return ring;
  }

  ~Uring() {
    if (sqes != nullptr) munmap(sqes, sqes_sz);
    if (cq_ring != nullptr && !single_mmap) munmap(cq_ring, cq_ring_sz);
    if (sq_ring != nullptr) munmap(sq_ring, sq_ring_sz);
    if (ring_fd >= 0) close(ring_fd);
  }

  /// Issues every read and waits for all completions; chunked by ring
  /// capacity. Returns false if any submit or any read failed/shortened —
  /// the caller falls back to pread for the whole batch.
  bool ReadBatch(int file_fd, const ReadReq* reqs, std::size_t n) {
    for (std::size_t base = 0; base < n;) {
      const unsigned chunk = static_cast<unsigned>(
          std::min<std::size_t>(n - base, sq_entry_count));
      unsigned tail = *sq_tail;  // Sole submitter; plain read is fine.
      for (unsigned i = 0; i < chunk; ++i) {
        const unsigned idx = tail & *sq_mask;
        io_uring_sqe* sqe = &sqes[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_READ;
        sqe->fd = file_fd;
        sqe->addr = reinterpret_cast<std::uint64_t>(reqs[base + i].buf);
        sqe->len = reqs[base + i].len;
        sqe->off = reqs[base + i].off;
        sqe->user_data = base + i;
        sq_array[idx] = idx;
        ++tail;
      }
      __atomic_store_n(sq_tail, tail, __ATOMIC_RELEASE);
      unsigned completed = 0;
      while (completed < chunk) {
        const long ret =
            syscall(__NR_io_uring_enter, ring_fd,
                    completed == 0 ? chunk : 0, chunk - completed,
                    IORING_ENTER_GETEVENTS, nullptr, 0);
        if (ret < 0 && errno != EINTR) return false;
        unsigned head = *cq_head;
        const unsigned cq_ready = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
        while (head != cq_ready) {
          const io_uring_cqe& cqe = cqes[head & *cq_mask];
          const ReadReq& req = reqs[cqe.user_data];
          if (cqe.res != static_cast<std::int32_t>(req.len)) {
            __atomic_store_n(cq_head, head + 1, __ATOMIC_RELEASE);
            return false;
          }
          ++head;
          ++completed;
        }
        __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
      }
      base += chunk;
    }
    return true;
  }
};

#else  // io_uring not compiled in: a stub so the unique_ptr member links.

struct PageStore::Uring {
  struct ReadReq {
    void* buf;
    std::uint64_t off;
    std::uint32_t len;
  };
  static std::unique_ptr<Uring> Create(unsigned) { return nullptr; }
  bool ReadBatch(int, const ReadReq*, std::size_t) { return false; }
};

#endif

namespace {

constexpr unsigned kUringEntries = 64;

unsigned ShiftOf(std::size_t pow2) {
  unsigned s = 0;
  while ((std::size_t{1} << s) < pow2) ++s;
  return s;
}

}  // namespace

std::unique_ptr<PageStore> PageStore::Open(const std::string& path,
                                           const Options& options) {
  const PageFileHeader header = ReadPageFileHeader(path);
  if (options.required_page_size_bytes != 0 &&
      header.page_size_bytes != options.required_page_size_bytes) {
    std::ostringstream os;
    os << "page size mismatch: file has " << header.page_size_bytes
       << ", caller requires " << options.required_page_size_bytes;
    throw PageFileError(PageFileError::Kind::kPageSizeMismatch, path,
                        os.str());
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw PageFileError(PageFileError::Kind::kIo, path,
                        std::string("open: ") + std::strerror(errno));
  }
  std::unique_ptr<PageStore> store(new PageStore(path, options, header, fd));
  return store;
}

PageStore::PageStore(const std::string& path, const Options& options,
                     const PageFileHeader& header, int fd)
    : header_(header), options_(options), fd_(fd) {
  map_len_ = kPageFileHeaderBytes + header_.PayloadBytes();
  void* base = mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd_);
    throw PageFileError(PageFileError::Kind::kIo, path,
                        std::string("mmap: ") + std::strerror(err));
  }
  map_base_ = base;
  payload_ = static_cast<const char*>(base) + kPageFileHeaderBytes;
  ppp_shift_ = ShiftOf(header_.PointsPerPage());

  if (options_.verify_checksum) {
    const std::uint64_t sum = Fnv1a64(payload_, header_.PayloadBytes());
    if (sum != header_.payload_checksum) {
      std::ostringstream os;
      os << "payload checksum mismatch: computed " << sum << ", header has "
         << header_.payload_checksum;
      munmap(map_base_, map_len_);
      ::close(fd_);
      map_base_ = nullptr;
      fd_ = -1;
      throw PageFileError(PageFileError::Kind::kChecksumMismatch, path,
                          os.str());
    }
  }

  if (options_.fault.enabled) {
    injector_ = std::make_unique<FaultInjector>(options_.fault);
    quarantined_.assign(header_.NumPages(), 0);
    checksum_strikes_.assign(header_.NumPages(), 0);
    if (options_.fault.corrupt_rate > 0.0) {
      // Snapshot per-page reference checksums now (the mapping was just
      // validated), so a frame corrupted between file and cache is
      // caught before any coordinate leaves the store. Only when
      // corruption faults are possible: the pass is one payload read.
      page_checksums_.resize(header_.NumPages());
      const std::size_t len = header_.page_size_bytes;
      for (std::size_t p = 0; p < header_.NumPages(); ++p) {
        page_checksums_[p] = Fnv1a64(payload_ + p * len, len);
      }
    }
  }

  frames_count_ = std::max<std::size_t>(1, options_.cache_pages);
  frames_.resize(frames_count_ * header_.page_size_bytes);
  slot_of_page_.assign(header_.NumPages(), -1);
  page_of_slot_.assign(frames_count_, 0);
  pin_count_.assign(frames_count_, 0);
  lru_prev_.assign(frames_count_, kNilSlot);
  lru_next_.assign(frames_count_, kNilSlot);
  free_slots_.reserve(frames_count_);
  for (std::size_t s = frames_count_; s-- > 0;) free_slots_.push_back(s);

  if (options_.use_uring) uring_ = Uring::Create(kUringEntries);
}

PageStore::~PageStore() {
  if (map_base_ != nullptr) munmap(map_base_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

bool PageStore::uring_active() const { return uring_ != nullptr; }

void PageStore::UnlinkLocked(std::size_t slot) {
  const std::size_t prev = lru_prev_[slot];
  const std::size_t next = lru_next_[slot];
  if (prev != kNilSlot) lru_next_[prev] = next; else lru_head_ = next;
  if (next != kNilSlot) lru_prev_[next] = prev; else lru_tail_ = prev;
  lru_prev_[slot] = lru_next_[slot] = kNilSlot;
}

void PageStore::PushFrontLocked(std::size_t slot) {
  lru_prev_[slot] = kNilSlot;
  lru_next_[slot] = lru_head_;
  if (lru_head_ != kNilSlot) lru_prev_[lru_head_] = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNilSlot) lru_tail_ = slot;
}

void PageStore::TouchLocked(std::size_t slot) {
  if (lru_head_ == slot) return;
  UnlinkLocked(slot);
  PushFrontLocked(slot);
}

std::size_t PageStore::AcquireSlotLocked() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // Evict the least-recently-used unpinned frame.
  for (std::size_t slot = lru_tail_; slot != kNilSlot;
       slot = lru_prev_[slot]) {
    if (pin_count_[slot] != 0) continue;
    slot_of_page_[page_of_slot_[slot]] = -1;
    ++counters_.evictions;
    UnlinkLocked(slot);
    return slot;
  }
  throw std::runtime_error(
      "PageStore: cannot load page — every cache frame is pinned");
}

void PageStore::LoadPageLocked(std::uint32_t page, std::size_t slot) {
  char* frame = frames_.data() +
                slot * static_cast<std::size_t>(header_.page_size_bytes);
  const std::size_t len = header_.page_size_bytes;
  const std::uint64_t off =
      kPageFileHeaderBytes + static_cast<std::uint64_t>(page) * len;
  if (options_.miss_mode == PageMissMode::kMmapCopy) {
    std::memcpy(frame, payload_ + static_cast<std::size_t>(page) * len, len);
    return;
  }
  std::size_t done = 0;
  while (done < len) {
    const ssize_t got = pread(fd_, frame + done, len - done,
                              static_cast<off_t>(off + done));
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      // The file was validated to hold every page at open; a short read
      // here means it shrank underneath us (or the device failed).
      throw std::runtime_error("PageStore: pread failed mid-page");
    }
    done += static_cast<std::size_t>(got);
  }
}

void PageStore::LoadPageCheckedLocked(std::uint32_t page, std::size_t slot,
                                      QueryStats* stats) {
  if (injector_ == nullptr) {
    LoadPageLocked(page, slot);
    return;
  }
  char* frame = frames_.data() +
                slot * static_cast<std::size_t>(header_.page_size_bytes);
  const std::size_t len = header_.page_size_bytes;
  const std::uint64_t off =
      kPageFileHeaderBytes + static_cast<std::uint64_t>(page) * len;
  const int max_attempts = 1 + std::max(0, options_.fault.max_read_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++counters_.io_retries;
      if (stats != nullptr) ++stats->io_retries;
      const double backoff_ms = injector_->BackoffMs(attempt);
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    if (injector_->ReadFails(page, attempt)) continue;  // Transient fault.
    try {
      LoadPageLocked(page, slot);
    } catch (const std::runtime_error&) {
      // A real short read / device error is transient by policy too:
      // under injection the file is intact, and on a genuinely flaky
      // device a retry is exactly the right response.
      continue;
    }
    if (injector_->CorruptsFrame(page, attempt)) frame[0] ^= 0xFF;
    if (!page_checksums_.empty()) {
      if (Fnv1a64(frame, len) != page_checksums_[page]) {
        if (++checksum_strikes_[page] >= 2) {
          quarantined_[page] = 1;
          ++counters_.pages_quarantined;
          if (stats != nullptr) ++stats->pages_quarantined;
          std::ostringstream os;
          os << "PageStore: page " << page << " quarantined after repeated "
             << "checksum failures (offset " << off << ")";
          throw PageReadError(PageReadError::Kind::kQuarantined, page, off,
                              attempt + 1, os.str());
        }
        continue;  // First strike: corrupt delivery retried like a fault.
      }
      checksum_strikes_[page] = 0;  // Strikes count *consecutive* failures.
    }
    if (injector_->SlowPage(page)) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.fault.spike_ms));
    }
    return;
  }
  std::ostringstream os;
  os << "PageStore: page " << page << " read failed after " << max_attempts
     << " attempts (offset " << off << ")";
  throw PageReadError(PageReadError::Kind::kReadFailed, page, off,
                      max_attempts, os.str());
}

const double* PageStore::FrameForPageLocked(std::uint32_t page,
                                            QueryStats* stats) {
  if (injector_ != nullptr && quarantined_[page] != 0) {
    // Quarantined pages fail fast without touching the cache or its
    // counters — the bytes already failed verification twice and a fresh
    // read would deliver the same lie.
    std::ostringstream os;
    os << "PageStore: page " << page << " is quarantined";
    throw PageReadError(
        PageReadError::Kind::kQuarantined, page,
        kPageFileHeaderBytes +
            static_cast<std::uint64_t>(page) * header_.page_size_bytes,
        0, os.str());
  }
  ++counters_.pages_touched;
  if (stats != nullptr) ++stats->pages_touched;
  const std::int64_t cached = slot_of_page_[page];
  std::size_t slot;
  if (cached >= 0) {
    ++counters_.cache_hits;
    if (stats != nullptr) ++stats->page_cache_hits;
    slot = static_cast<std::size_t>(cached);
    TouchLocked(slot);
  } else {
    ++counters_.cache_misses;
    if (stats != nullptr) ++stats->page_cache_misses;
    slot = AcquireSlotLocked();
    try {
      LoadPageCheckedLocked(page, slot, stats);
    } catch (...) {
      // Return the slot before unwinding: it is in neither the free list
      // nor the LRU chain here, so losing it would shrink the cache by
      // one frame per failed load for the life of the store.
      free_slots_.push_back(slot);
      throw;
    }
    slot_of_page_[page] = static_cast<std::int64_t>(slot);
    page_of_slot_[slot] = page;
    PushFrontLocked(slot);
  }
  return reinterpret_cast<const double*>(
      frames_.data() + slot * static_cast<std::size_t>(header_.page_size_bytes));
}

void PageStore::Gather(const PointId* ids, std::size_t n, double* xs_out,
                       double* ys_out, QueryStats* stats) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t ppp = points_per_page();
  const std::size_t in_page_mask = ppp - 1;
  std::int64_t current_page = -1;
  const double* frame = nullptr;
  for (std::size_t j = 0; j < n; ++j) {
    const PointId id = ids[j];
    const std::uint32_t page = static_cast<std::uint32_t>(id >> ppp_shift_);
    if (static_cast<std::int64_t>(page) != current_page) {
      frame = FrameForPageLocked(page, stats);
      current_page = page;
    }
    const std::size_t at = id & in_page_mask;
    xs_out[j] = frame[at];
    ys_out[j] = frame[ppp + at];
  }
}

Point PageStore::GetPoint(PointId id, QueryStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  const double* frame =
      FrameForPageLocked(static_cast<std::uint32_t>(id >> ppp_shift_), stats);
  const std::size_t ppp = points_per_page();
  const std::size_t at = id & (ppp - 1);
  return Point{frame[at], frame[ppp + at]};
}

void PageStore::Prefetch(const PointId* ids, std::size_t n) {
  if (n == 0 || header_.NumPages() == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Distinct uncached pages of the id sequence (consecutive-run dedup is
  // enough: Hilbert clustering makes same-page ids adjacent).
  prefetch_pages_.clear();
  std::int64_t last = -1;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t page =
        static_cast<std::uint32_t>(ids[j] >> ppp_shift_);
    if (static_cast<std::int64_t>(page) == last) continue;
    last = page;
    if (slot_of_page_[page] < 0) prefetch_pages_.push_back(page);
  }
  if (prefetch_pages_.empty()) return;

  const std::size_t len = header_.page_size_bytes;
  if (uring_ != nullptr) {
    // Load the hinted pages into cache frames with one batched submit.
    // Cap at the cache capacity minus one so the prefetch can never evict
    // a page the in-progress gather still holds a frame pointer to (the
    // gather re-resolves per page anyway; the cap just keeps a hint from
    // churning the whole cache).
    std::size_t quota = frames_count_ > 1 ? frames_count_ - 1 : 1;
    std::vector<Uring::ReadReq> reqs;
    std::vector<std::size_t> slots;
    reqs.reserve(std::min(prefetch_pages_.size(), quota));
    for (const std::uint32_t page : prefetch_pages_) {
      if (reqs.size() >= quota) break;
      std::size_t slot;
      try {
        slot = AcquireSlotLocked();
      } catch (const std::runtime_error&) {
        break;  // Everything pinned — a hint must not throw.
      }
      reqs.push_back(Uring::ReadReq{
          frames_.data() + slot * len,
          kPageFileHeaderBytes + static_cast<std::uint64_t>(page) * len,
          static_cast<std::uint32_t>(len)});
      slots.push_back(slot);
      slot_of_page_[page] = static_cast<std::int64_t>(slot);
      page_of_slot_[slot] = page;
      PushFrontLocked(slot);
    }
    if (!reqs.empty()) {
      // A torn prefetch treats the whole batch as failed mid-flight even
      // when the ring would have succeeded, forcing the rollback path
      // below; the gather then re-reads those pages as ordinary misses,
      // so results never change — only the fallback gets exercised.
      const bool torn = injector_ != nullptr &&
                        injector_->TornPrefetch(prefetch_batches_++);
      if (!torn && uring_->ReadBatch(fd_, reqs.data(), reqs.size())) {
        counters_.prefetch_reads += reqs.size();
        return;
      }
      // Batched read failed: roll the mappings back and fall through to
      // the madvise hint; subsequent touches will pread as normal misses.
      for (std::size_t i = 0; i < slots.size(); ++i) {
        slot_of_page_[page_of_slot_[slots[i]]] = -1;
        UnlinkLocked(slots[i]);
        free_slots_.push_back(slots[i]);
      }
    }
  }

  // madvise(MADV_WILLNEED) over the distinct pages, coalescing adjacent
  // pages into one range. Addresses are aligned down to the system page
  // (the 64-byte header offsets every payload page).
  const long sys_page = sysconf(_SC_PAGESIZE);
  const std::uintptr_t align_mask = static_cast<std::uintptr_t>(sys_page - 1);
  std::size_t i = 0;
  while (i < prefetch_pages_.size()) {
    std::size_t j = i + 1;
    while (j < prefetch_pages_.size() &&
           prefetch_pages_[j] == prefetch_pages_[j - 1] + 1) {
      ++j;
    }
    const char* start =
        payload_ + static_cast<std::size_t>(prefetch_pages_[i]) * len;
    const char* end =
        payload_ + static_cast<std::size_t>(prefetch_pages_[j - 1]) * len +
        len;
    char* aligned = reinterpret_cast<char*>(
        reinterpret_cast<std::uintptr_t>(start) & ~align_mask);
    madvise(aligned, static_cast<std::size_t>(end - aligned), MADV_WILLNEED);
    i = j;
  }
}

void PageStore::Pin(std::uint32_t page, QueryStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  FrameForPageLocked(page, stats);
  ++pin_count_[static_cast<std::size_t>(slot_of_page_[page])];
}

void PageStore::Unpin(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t slot = slot_of_page_[page];
  if (slot < 0 || pin_count_[static_cast<std::size_t>(slot)] == 0) {
    throw std::logic_error("PageStore::Unpin: page is not pinned");
  }
  --pin_count_[static_cast<std::size_t>(slot)];
}

bool PageStore::Cached(std::uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slot_of_page_[page] >= 0;
}

bool PageStore::Quarantined(std::uint32_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !quarantined_.empty() && quarantined_[page] != 0;
}

PageIoCounters PageStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void PageStore::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = PageIoCounters{};
}

}  // namespace vaq
