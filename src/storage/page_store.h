#ifndef VAQ_STORAGE_PAGE_STORE_H_
#define VAQ_STORAGE_PAGE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_stats.h"
#include "fault/fault.h"
#include "geometry/point.h"
#include "index/spatial_index.h"
#include "storage/page_format.h"

namespace vaq {

/// Thrown when one *page* of an already-opened store cannot be read —
/// the runtime counterpart of the open-time `PageFileError` taxonomy.
/// Open-time errors are permanent (a malformed file never becomes valid;
/// they are never retried); a `PageReadError` is raised only after the
/// store's retry policy is exhausted (`kReadFailed`) or the page was
/// quarantined for repeated checksum failures (`kQuarantined`). Carries
/// the page id and its byte offset in the file so an operator can map
/// the failure to a disk region, plus the number of read attempts spent.
class PageReadError : public std::runtime_error {
 public:
  enum class Kind {
    kReadFailed,   // transient read faults exhausted the retry budget
    kQuarantined,  // page failed its checksum twice; no further reads
  };

  PageReadError(Kind kind, std::uint32_t page, std::uint64_t offset,
                int attempts, const std::string& what)
      : std::runtime_error(what),
        kind_(kind),
        page_(page),
        offset_(offset),
        attempts_(attempts) {}

  Kind kind() const { return kind_; }
  std::uint32_t page() const { return page_; }
  std::uint64_t offset() const { return offset_; }
  int attempts() const { return attempts_; }

 private:
  Kind kind_;
  std::uint32_t page_;
  std::uint64_t offset_;
  int attempts_;
};

/// How a page-cache miss brings the page in.
enum class PageMissMode {
  /// `pread` the page from the file into the cache frame. One syscall per
  /// miss — deliberately the expensive path, so cache-miss accounting
  /// corresponds to a real kernel round-trip per page even when the file
  /// is resident in the OS page cache (the cost a disk-backed engine pays
  /// at minimum per page it faults).
  kPread,
  /// `memcpy` the page out of the read-only mapping. Cheaper (no syscall;
  /// the copy may itself fault the mapping in) — the mode for measuring
  /// pure cache-management overhead.
  kMmapCopy,
};

/// Selects what backs `PointDatabase`'s object-fetch boundary.
enum class StorageBackend {
  /// Coordinates served from the in-memory SoA arrays (the default; zero
  /// page accounting, exactly the pre-paging behavior).
  kInMemory,
  /// Coordinates served from an mmap-backed page file through the LRU
  /// `PageStore`; prefetch hints via `madvise(MADV_WILLNEED)`.
  kMmap,
  /// As `kMmap`, plus prefetch performs batched `io_uring` reads that
  /// load the hinted pages into cache frames ahead of the gather (one
  /// submit syscall per frontier instead of one `pread` per missed
  /// page). Falls back to `kMmap` behavior when io_uring is unavailable
  /// (not compiled in, or the kernel/sandbox rejects the setup syscall).
  kMmapUring,
};

const char* StorageBackendName(StorageBackend backend);

/// Storage configuration carried by `PointDatabase::Options` (and through
/// it by the dynamic and sharded layers, whose rebuilt bases inherit it).
struct StorageOptions {
  StorageBackend backend = StorageBackend::kInMemory;
  /// Page size of the spill file; power of two in [256, 1 MiB].
  std::uint32_t page_size_bytes = 4096;
  /// LRU capacity in pages. The working set a query streams through stays
  /// hit-resident when it fits; capacity misses beyond it are the
  /// "larger than RAM" regime the out-of-core benches measure.
  std::size_t cache_pages = 4096;
  /// Verify the payload checksum when opening (one streaming read of the
  /// file). Kept on by default — the spill path writes and immediately
  /// re-verifies, which is cheap insurance against a lying disk.
  bool verify_checksum = true;
  PageMissMode miss_mode = PageMissMode::kPread;
  /// Directory for database-written spill files; empty means
  /// `std::filesystem::temp_directory_path()`. Spill files are unlinked
  /// as soon as they are mapped, so they vanish on close or crash.
  std::string spill_dir;
  /// Deterministic fault injection applied to the page store (and the
  /// database's simulated fetch latency). Disabled by default; when left
  /// disabled, `PointDatabase` falls back to `FaultSpec::FromEnv()`
  /// (`VAQ_FAULT_SPEC`) so the existing harnesses can soak the error
  /// paths without code changes. See `src/fault/fault.h`.
  FaultSpec fault;
};

/// Lifetime IO totals of one `PageStore` (all accesses, all queries) —
/// the bench-level counters; per-query accounting goes to `QueryStats`.
struct PageIoCounters {
  std::uint64_t pages_touched = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetch_reads = 0;  // Pages loaded by uring prefetch.
  /// Read attempts beyond the first (transient faults absorbed by the
  /// retry policy) and pages written off after repeated checksum
  /// failures. Both 0 unless fault injection is active or the device
  /// genuinely misbehaves.
  std::uint64_t io_retries = 0;
  std::uint64_t pages_quarantined = 0;
};

/// An mmap-backed page file behind an explicit LRU page cache.
///
/// Every coordinate read goes through a cache *frame*: a page access
/// first resolves the page to a frame (hit: LRU touch; miss: evict the
/// least-recently-used unpinned frame and load the page via the
/// configured miss mode), then reads coordinates out of the frame. The
/// explicit cache — rather than trusting the OS page cache alone — is
/// what makes "cache smaller than dataset" an experiment knob and
/// hit/miss counts exact, deterministic quantities.
///
/// Accounting: a `Gather` charges one `pages_touched` per page *run* in
/// its id sequence (consecutive ids on the same page are one touch — the
/// page-granular view of a batched gather), and each touch is exactly one
/// hit or one miss, so `page_cache_hits + page_cache_misses ==
/// pages_touched` holds per query by construction.
///
/// Thread safety: all methods are safe to call concurrently (one internal
/// mutex serializes cache state); the per-call `QueryStats*` is written
/// without synchronization and must not be shared across threads (the
/// same contract as the rest of the query layer).
class PageStore {
 public:
  struct Options {
    std::size_t cache_pages = 4096;
    bool verify_checksum = true;
    PageMissMode miss_mode = PageMissMode::kPread;
    /// Reject the file unless its page size equals this
    /// (`PageFileError::Kind::kPageSizeMismatch`); 0 accepts any valid
    /// size. For callers whose cache geometry is fixed before the file
    /// is seen.
    std::uint32_t required_page_size_bytes = 0;
    /// Attempt to build an io_uring for batched prefetch reads; silently
    /// degrades to madvise-only prefetch when unavailable.
    bool use_uring = false;
    /// Fault injection for this store (disabled by default). When
    /// enabled, read attempts consult the injector (simulated transient
    /// errors, frame corruption, slow pages, torn prefetches) and the
    /// retry/backoff/quarantine policy of the spec governs recovery.
    /// When `corrupt` faults are possible, per-page checksums are
    /// computed once at open so a corrupted frame is detected before any
    /// coordinate leaves the store. Every hook is gated on the injector
    /// pointer, so a disabled spec adds one null test per miss — nothing
    /// on hits.
    FaultSpec fault;
  };

  /// Opens, validates (header always; payload checksum unless disabled)
  /// and maps `path`. Throws `PageFileError` on any malformed input.
  static std::unique_ptr<PageStore> Open(const std::string& path,
                                         const Options& options);
  ~PageStore();

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  std::size_t point_count() const { return header_.point_count; }
  std::size_t num_pages() const { return header_.NumPages(); }
  std::uint32_t page_size_bytes() const { return header_.page_size_bytes; }
  std::size_t points_per_page() const { return std::size_t{1} << ppp_shift_; }
  std::size_t cache_pages() const { return frames_count_; }
  std::uint32_t PageOfId(PointId id) const {
    return static_cast<std::uint32_t>(id >> ppp_shift_);
  }

  /// Gathers the coordinates of `ids[0..n)` into the SoA outputs, pulling
  /// every touched page through the cache and charging the page counters
  /// of `stats` (if non-null).
  void Gather(const PointId* ids, std::size_t n, double* xs_out,
              double* ys_out, QueryStats* stats);

  /// Single-point read through the cache (one page touch).
  Point GetPoint(PointId id, QueryStats* stats);

  /// Page-granular prefetch hint for an upcoming gather of `ids[0..n)`.
  /// Plain mmap mode: `madvise(MADV_WILLNEED)` on the distinct page
  /// ranges, letting the kernel read ahead without altering cache state
  /// or accounting. Uring mode: additionally loads the uncached pages
  /// into cache frames with one batched submit, so the gather that
  /// follows hits (those loads count as `prefetch_reads`, and the
  /// gather's touches as hits — the pages are resident by then).
  void Prefetch(const PointId* ids, std::size_t n);

  /// Pins `page` into the cache (loading it if absent — accounted as a
  /// normal touch against `stats`): eviction skips pinned frames until
  /// `Unpin`. Pins nest. Throws `std::runtime_error` if every frame is
  /// pinned and the page cannot be loaded.
  void Pin(std::uint32_t page, QueryStats* stats);
  void Unpin(std::uint32_t page);

  /// Whether `page` currently occupies a cache frame (tests, benches).
  bool Cached(std::uint32_t page) const;

  /// Whether `page` has been quarantined (always false without fault
  /// injection; tests).
  bool Quarantined(std::uint32_t page) const;

  PageIoCounters counters() const;
  void ResetCounters();

  /// Whether the batched io_uring prefetch path is live (compiled in,
  /// requested, and accepted by the kernel).
  bool uring_active() const;

 private:
  struct Uring;  // Raw io_uring wrapper; defined in page_store.cc.

  PageStore(const std::string& path, const Options& options,
            const PageFileHeader& header, int fd);

  /// Resolves `page` to its frame, counting one touch (hit or miss) into
  /// `stats` and the lifetime counters. Caller holds `mu_`.
  const double* FrameForPageLocked(std::uint32_t page, QueryStats* stats);
  std::size_t AcquireSlotLocked();
  void LoadPageLocked(std::uint32_t page, std::size_t slot);
  /// The miss path's load with the failure-domain policy wrapped around
  /// it: consults the fault injector, verifies the per-page checksum when
  /// armed, retries transient faults with capped exponential backoff
  /// (charging `io_retries`), quarantines a page after two consecutive
  /// checksum failures, and throws the typed `PageReadError` when the
  /// budget is exhausted. Caller holds `mu_`.
  void LoadPageCheckedLocked(std::uint32_t page, std::size_t slot,
                             QueryStats* stats);
  void TouchLocked(std::size_t slot);
  void UnlinkLocked(std::size_t slot);
  void PushFrontLocked(std::size_t slot);

  PageFileHeader header_;
  Options options_;
  int fd_ = -1;
  /// Mapping of the whole file; payload_ = base + header bytes.
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
  const char* payload_ = nullptr;
  unsigned ppp_shift_ = 0;

  mutable std::mutex mu_;
  /// Frame arena: frames_count_ frames of page_size bytes each.
  std::vector<char> frames_;
  std::size_t frames_count_ = 0;
  std::vector<std::int64_t> slot_of_page_;   // -1 = not cached.
  std::vector<std::uint32_t> page_of_slot_;
  std::vector<std::uint32_t> pin_count_;
  // Intrusive LRU list over slots; head = most recent, tail = eviction
  // candidate. kNilSlot terminates.
  static constexpr std::size_t kNilSlot = static_cast<std::size_t>(-1);
  std::vector<std::size_t> lru_prev_, lru_next_;
  std::size_t lru_head_ = kNilSlot, lru_tail_ = kNilSlot;
  std::vector<std::size_t> free_slots_;
  PageIoCounters counters_;

  std::unique_ptr<Uring> uring_;
  /// Scratch for Prefetch's distinct-page set (guarded by mu_).
  std::vector<std::uint32_t> prefetch_pages_;

  /// Fault layer (null when Options::fault is disabled — the happy-path
  /// gate every hook tests). All state below it is allocated only when
  /// the injector exists and is guarded by mu_.
  std::unique_ptr<FaultInjector> injector_;
  /// Per-page FNV-1a checksums snapshot at open (only when corruption
  /// faults are possible) — the reference a loaded frame is verified
  /// against.
  std::vector<std::uint64_t> page_checksums_;
  /// Consecutive checksum failures per page (reset on a clean verify);
  /// reaching 2 quarantines the page.
  std::vector<std::uint8_t> checksum_strikes_;
  /// 1 = page quarantined: every future access throws `PageReadError`
  /// immediately instead of handing out bytes that failed verification.
  std::vector<std::uint8_t> quarantined_;
  std::uint64_t prefetch_batches_ = 0;  // Torn-prefetch decision index.
};

}  // namespace vaq

#endif  // VAQ_STORAGE_PAGE_STORE_H_
