#ifndef VAQ_STORAGE_PAGE_FORMAT_H_
#define VAQ_STORAGE_PAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace vaq {

/// The versioned on-disk page file (".vpag") that backs out-of-core
/// storage: point coordinates packed in Hilbert-curve order into
/// fixed-size pages, so page locality == id locality == spatial locality
/// (the clustering `PointDatabase` already applies makes the three
/// coincide for free).
///
/// Layout (all fields little-endian):
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic "VPAG"
///        4     4  format_version (currently 1)
///        8     4  page_size_bytes (power of two in [256, 1 MiB])
///       12     4  reserved (written 0, ignored on read)
///       16     8  point_count
///       24     8  payload_checksum (FNV-1a 64 over the whole payload,
///                 padding included)
///       32    32  reserved (written 0, ignored on read)
///       64   ...  payload: ceil(count / ppp) pages of page_size bytes
///
/// where ppp = page_size_bytes / 16 is the points per page. Page p holds
/// the points with internal ids [p*ppp, (p+1)*ppp) as SoA within the
/// page: ppp doubles of x, then ppp doubles of y — one page read serves
/// a whole id run in the layout the batch refine kernels stream. The
/// last page is zero-padded to full size, so every page read is exactly
/// page_size bytes (no short-read special case in the IO path).
struct PageFileHeader {
  std::uint32_t page_size_bytes = 0;
  std::uint64_t point_count = 0;
  std::uint64_t payload_checksum = 0;

  std::size_t PointsPerPage() const { return page_size_bytes / 16; }
  std::size_t NumPages() const {
    const std::size_t ppp = PointsPerPage();
    return ppp == 0 ? 0 : (point_count + ppp - 1) / ppp;
  }
  std::size_t PayloadBytes() const {
    return NumPages() * static_cast<std::size_t>(page_size_bytes);
  }
};

inline constexpr char kPageFileMagic[4] = {'V', 'P', 'A', 'G'};
inline constexpr std::uint32_t kPageFileVersion = 1;
inline constexpr std::size_t kPageFileHeaderBytes = 64;
inline constexpr std::uint32_t kMinPageSizeBytes = 256;
inline constexpr std::uint32_t kMaxPageSizeBytes = 1u << 20;

/// Whether `page_size` is a value the format accepts: a power of two in
/// [kMinPageSizeBytes, kMaxPageSizeBytes] (so ppp is a whole power of two
/// and offset arithmetic reduces to shifts).
bool IsValidPageSize(std::uint32_t page_size);

/// Thrown by the page-file reader on any malformed input. The on-disk
/// file is untrusted (it may come from another machine, another version,
/// or a bad disk), so every failure mode is diagnosed with a typed kind —
/// callers that want to distinguish "wrong file" from "corrupt file" can
/// switch on `kind()` instead of parsing the message.
class PageFileError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,                // open/read/map syscall failure
    kTruncated,         // file shorter than header, or payload shorter
                        // than the header's count demands
    kBadMagic,          // not a VPAG file
    kBadVersion,        // a future (or corrupt) format_version
    kBadPageSize,       // page size not a power of two in range
    kPageSizeMismatch,  // file valid, but its page size differs from the
                        // one the caller's cache geometry requires
    kChecksumMismatch,  // payload bytes do not hash to the header's sum
  };

  PageFileError(Kind kind, const std::string& path, const std::string& what);

  Kind kind() const { return kind_; }
  const std::string& path() const { return path_; }

 private:
  Kind kind_;
  std::string path_;
};

/// FNV-1a 64-bit over `bytes[0..n)`; the payload checksum of the format.
/// Seeded with the standard offset basis; streamable (feed chunks by
/// passing the previous return as `seed`).
std::uint64_t Fnv1a64(const void* bytes, std::size_t n,
                      std::uint64_t seed = 14695981039346656037ull);

/// Writes a page file at `path` from SoA coordinate streams already in
/// the desired (Hilbert) order. Throws `PageFileError{kIo}` on filesystem
/// failure and `std::invalid_argument` on a bad `page_size_bytes`.
void WritePageFile(const std::string& path, const double* xs,
                   const double* ys, std::size_t count,
                   std::uint32_t page_size_bytes);

/// Opens and fully validates `path`'s header: magic, version, page size
/// (range + power of two), and that the file actually holds the payload
/// bytes the header demands. Does NOT verify the payload checksum (that
/// is a full file read — `PageStore::Open` does it unless told to skip).
/// Throws `PageFileError` with the matching kind on any violation.
PageFileHeader ReadPageFileHeader(const std::string& path);

}  // namespace vaq

#endif  // VAQ_STORAGE_PAGE_FORMAT_H_
