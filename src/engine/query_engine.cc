#include "engine/query_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace vaq {

namespace {

/// Per-worker cap on retained latency samples; reaching it halves the
/// samples and doubles the recording stride (see WorkerState).
constexpr std::size_t kMaxLatencySamples = 1 << 16;

/// The engine whose WorkerLoop is running on this thread, if any.
thread_local const QueryEngine* current_worker_engine = nullptr;

}  // namespace

double NearestRankPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

QueryEngine::QueryEngine(EngineOptions options)
    : options_(options),
      queue_(options.queue_capacity == 0 ? 1 : options.queue_capacity) {
  int n = options.num_threads;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;

  window_start_ = std::chrono::steady_clock::now();
  states_.reserve(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  // Start the pool only after every WorkerState exists: workers index only
  // their own state, handed to them here.
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&QueryEngine::WorkerLoop, this, states_[i].get());
  }
}

QueryEngine::~QueryEngine() { Stop(); }

void QueryEngine::Stop() {
  // Serialise concurrent Stop()s; Close() is idempotent and a Submit
  // racing the close either wins the queue's internal lock first (its
  // task drains normally) or observes closed and throws the typed error.
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  for (std::thread& t : workers_) t.join();
}

int QueryEngine::RegisterMethod(const AreaQuery* query) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  methods_.push_back(query);
  return static_cast<int>(methods_.size()) - 1;
}

std::future<QueryResult> QueryEngine::Enqueue(Task task, const char* site) {
  std::future<QueryResult> future = task.promise.get_future();
  if (options_.shed_on_full) {
    switch (queue_.TryPush(std::move(task))) {
      case BoundedQueue<Task>::PushResult::kPushed:
        return future;
      case BoundedQueue<Task>::PushResult::kFull:
        throw EngineOverloadedError(options_.queue_capacity);
      case BoundedQueue<Task>::PushResult::kClosed:
        break;
    }
    throw EngineStoppedError(std::string(site) + ": engine is shut down");
  }
  if (!queue_.Push(std::move(task))) {
    throw EngineStoppedError(std::string(site) + ": engine is shut down");
  }
  return future;
}

std::future<QueryResult> QueryEngine::Submit(Polygon area, int method,
                                             SubmitOptions opts) {
  const AreaQuery* query;
  {
    std::lock_guard<std::mutex> lock(methods_mu_);
    if (method < 0 || method >= static_cast<int>(methods_.size())) {
      throw std::out_of_range("QueryEngine::Submit: unknown method id");
    }
    query = methods_[method];
  }
  Task task;
  task.area = std::move(area);
  task.query = query;
  task.method = method;
  task.submitted = std::chrono::steady_clock::now();
  task.cancel = std::move(opts.cancel);
  task.hints = opts.hints;
  if (opts.deadline_ms > 0.0) {
    // The deadline clock starts at submission, so queue wait counts
    // against it — an overloaded engine fails stale queued work fast
    // instead of running it late.
    if (task.cancel == nullptr) task.cancel = std::make_shared<CancelToken>();
    task.cancel->SetDeadline(task.submitted +
                             std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     opts.deadline_ms)));
  }
  return Enqueue(std::move(task), "QueryEngine::Submit");
}

std::future<QueryResult> QueryEngine::SubmitWith(
    const AreaQuery* query, Polygon area,
    std::shared_ptr<CancelToken> cancel) {
  Task task;
  task.area = std::move(area);
  task.query = query;
  task.method = -1;  // Ad-hoc: excluded from engine statistics.
  task.submitted = std::chrono::steady_clock::now();
  task.cancel = std::move(cancel);
  return Enqueue(std::move(task), "QueryEngine::SubmitWith");
}

std::vector<QueryResult> QueryEngine::RunBatch(std::span<const Polygon> areas,
                                               int method) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(areas.size());
  for (const Polygon& area : areas) futures.push_back(Submit(area, method));
  std::vector<QueryResult> results;
  results.reserve(areas.size());
  for (std::future<QueryResult>& f : futures) results.push_back(f.get());
  return results;
}

bool QueryEngine::OnWorkerThread() const {
  return current_worker_engine == this;
}

void QueryEngine::WorkerLoop(WorkerState* state) {
  current_worker_engine = this;
  while (std::optional<Task> task = queue_.Pop()) {
    QueryResult result;
    try {
      // A task whose deadline passed while queued fails fast here — the
      // submission-relative deadline covers queue wait, and skipping the
      // run entirely is what lets an overloaded engine shed stale work.
      if (task->cancel != nullptr) task->cancel->Check();
      state->ctx.set_cancel(task->cancel.get());
      state->ctx.set_plan_hints(&task->hints);
      result.ids = task->query->Run(task->area, state->ctx);
      state->ctx.set_cancel(nullptr);
      state->ctx.set_plan_hints(nullptr);
    } catch (...) {
      // A throwing query must not take down the pool (std::terminate) or
      // strand the caller on an unset future.
      state->ctx.set_cancel(nullptr);
      state->ctx.set_plan_hints(nullptr);
      task->promise.set_exception(std::current_exception());
      continue;
    }
    result.stats = state->ctx.stats;
    const double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - task->submitted)
            .count();

    if (task->method < 0) {
      // Ad-hoc fan-out leg (SubmitWith): deliver the result but keep it
      // out of the engine's client-query statistics.
      task->promise.set_value(std::move(result));
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->completed;
      if (state->completed % state->latency_stride == 0) {
        state->latencies_ms.push_back(latency_ms);
        if (state->latencies_ms.size() >= kMaxLatencySamples) {
          // Decimate: keep every other sample, record half as often.
          std::vector<double>& samples = state->latencies_ms;
          for (std::size_t i = 1; 2 * i < samples.size(); ++i) {
            samples[i] = samples[2 * i];
          }
          samples.resize(samples.size() / 2);
          state->latency_stride *= 2;
        }
      }
      if (state->methods.size() <= static_cast<std::size_t>(task->method)) {
        state->methods.resize(task->method + 1);
      }
      MethodEngineStats& m = state->methods[task->method];
      if (m.name.empty()) m.name = std::string(task->query->Name());
      ++m.queries;
      m.degraded_queries += result.stats.degraded;
      m.totals.MergeFrom(result.stats);
    }
    task->promise.set_value(std::move(result));
  }
}

EngineStats QueryEngine::Stats() const {
  EngineStats out;
  std::vector<double> latencies;
  for (const std::unique_ptr<WorkerState>& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    out.queries_completed += state->completed;
    latencies.insert(latencies.end(), state->latencies_ms.begin(),
                     state->latencies_ms.end());
    if (out.methods.size() < state->methods.size()) {
      out.methods.resize(state->methods.size());
    }
    for (std::size_t i = 0; i < state->methods.size(); ++i) {
      const MethodEngineStats& m = state->methods[i];
      MethodEngineStats& agg = out.methods[i];
      if (agg.name.empty()) agg.name = m.name;
      agg.queries += m.queries;
      agg.degraded_queries += m.degraded_queries;
      agg.totals.MergeFrom(m.totals);
    }
  }
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - window_start_)
                      .count();
  }
  if (out.wall_ms > 0.0) {
    out.throughput_qps =
        static_cast<double>(out.queries_completed) / (out.wall_ms / 1000.0);
  }
  std::sort(latencies.begin(), latencies.end());
  out.latency_p50_ms = NearestRankPercentile(latencies, 0.50);
  out.latency_p95_ms = NearestRankPercentile(latencies, 0.95);
  out.latency_p99_ms = NearestRankPercentile(latencies, 0.99);
  return out;
}

void QueryEngine::ResetStats() {
  for (const std::unique_ptr<WorkerState>& state : states_) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->completed = 0;
    state->latency_stride = 1;
    state->latencies_ms.clear();
    state->methods.clear();
  }
  std::lock_guard<std::mutex> lock(window_mu_);
  window_start_ = std::chrono::steady_clock::now();
}

}  // namespace vaq
