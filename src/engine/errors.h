#ifndef VAQ_ENGINE_ERRORS_H_
#define VAQ_ENGINE_ERRORS_H_

#include <cstddef>
#include <stdexcept>
#include <string>

namespace vaq {

/// Thrown by `Submit`/`SubmitWith` after the engine has been stopped
/// (explicit `Stop()` or destruction). Typed so callers racing shutdown
/// can distinguish "engine gone" from a query failure and react —
/// resubmit elsewhere, drop, or surface — instead of string-matching a
/// generic runtime_error.
class EngineStoppedError : public std::runtime_error {
 public:
  explicit EngineStoppedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by `Submit`/`SubmitWith` when admission control is active
/// (`EngineOptions::shed_on_full`) and the work queue is at capacity:
/// the engine sheds the query instead of blocking the producer. The
/// canonical overload response is for the *client* to back off and
/// retry; the engine never queues unboundedly and never stalls the
/// submitting thread.
class EngineOverloadedError : public std::runtime_error {
 public:
  explicit EngineOverloadedError(std::size_t capacity)
      : std::runtime_error(
            "QueryEngine: work queue full (capacity " +
            std::to_string(capacity) +
            "); query shed by admission control"),
        capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
};

}  // namespace vaq

#endif  // VAQ_ENGINE_ERRORS_H_
