#ifndef VAQ_ENGINE_QUERY_ENGINE_H_
#define VAQ_ENGINE_QUERY_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/area_query.h"
#include "core/cancel.h"
#include "core/query_context.h"
#include "engine/bounded_queue.h"
#include "engine/errors.h"
#include "geometry/polygon.h"
#include "planner/query_plan.h"

namespace vaq {

struct EngineOptions {
  /// Worker thread count; 0 means `std::thread::hardware_concurrency()`.
  int num_threads = 0;
  /// Bound of the MPMC work queue; `Submit` blocks (backpressure) when the
  /// queue is full.
  std::size_t queue_capacity = 1024;
  /// Admission control: when true, a `Submit` against a full queue throws
  /// `EngineOverloadedError` instead of blocking — the engine sheds load
  /// so a saturating client observes a typed overload signal rather than
  /// unbounded latency. Off by default (blocking backpressure, the batch
  /// benches' behaviour).
  bool shed_on_full = false;
};

/// Per-submission controls (deadline / cancellation); default = none.
struct SubmitOptions {
  /// Abort the query once this many ms have elapsed *from submission*
  /// (queue wait included — a queued query past its deadline fails fast
  /// without running). 0 = no deadline.
  double deadline_ms = 0.0;
  /// External cancellation handle: the caller keeps a reference and may
  /// `Cancel()` it anytime; the query observes it at its next block
  /// boundary. Created internally when only a deadline is requested.
  std::shared_ptr<CancelToken> cancel;
  /// Planner hints of this submission (forced method, cache/scatter
  /// opt-outs). The worker installs them on its `QueryContext` around the
  /// task — like the cancel token — so a registered `PlannedAreaQuery`
  /// picks them up through the hint-less `AreaQuery::Run` interface.
  /// Ignored by the fixed-method query objects. Defaults = automatic.
  PlanHints hints{};
};

/// Outcome of one engine-executed query.
struct QueryResult {
  std::vector<PointId> ids;
  QueryStats stats;
};

/// Aggregated counters for one registered query method. The per-query
/// `QueryStats` records merge via `QueryStats::MergeFrom` — the same
/// merge the sharded gather uses — so every stats field (including ones
/// added later) aggregates here without a hand-written summation to keep
/// in sync. `totals.elapsed_ms` is the summed per-query execution time;
/// the mask fields (`kernel_kind`, `degraded`, `plan_method`,
/// `plan_reason`) OR across queries.
struct MethodEngineStats {
  std::string name;
  std::uint64_t queries = 0;
  /// Queries that completed degraded (partial results after leg failure).
  /// Counted per *query*, unlike `totals.degraded` which is the OR'd
  /// flag — an engine window needs "how many", not "whether any".
  std::uint64_t degraded_queries = 0;
  /// Merged per-query stats of every completed query of this method.
  QueryStats totals;
};

/// Snapshot of engine-level statistics since construction or the last
/// `ResetStats()`.
struct EngineStats {
  std::uint64_t queries_completed = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  /// End-to-end latency (submission to completion, including queue wait),
  /// nearest-rank percentiles over all completed queries in the window.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Per-method IO and work counters, indexed by registration order.
  std::vector<MethodEngineStats> methods;
};

/// Nearest-rank percentile of an ascending-sorted sample vector: the
/// smallest sample whose rank is >= q * n (so p50 of [1..100] is 50, p99
/// is 99); 0.0 on an empty vector. This is the estimator behind
/// `EngineStats::latency_p50_ms`/`p95`/`p99`, exposed so its order
/// statistics are testable against known distributions directly.
double NearestRankPercentile(const std::vector<double>& sorted, double q);

/// Executes area queries on a fixed pool of worker threads.
///
/// The engine is the concurrency boundary of the library: query objects
/// are stateless and the `PointDatabase` is immutable after construction,
/// so the only mutable per-query state is the `QueryContext` scratch arena
/// — and the engine owns exactly one per worker thread. A context is
/// reused across every query its worker executes, so steady-state
/// execution allocates only result vectors.
///
/// Usage:
///   QueryEngine engine({.num_threads = 4});
///   const int voronoi = engine.RegisterMethod(&voronoi_query);
///   auto results = engine.RunBatch(polygons, voronoi);   // blocking
///   auto future  = engine.Submit(polygon, voronoi);      // async
///
/// Thread safety: `Submit`/`RunBatch`/`Stats` may be called from any
/// thread. `RegisterMethod` must complete before queries that use the new
/// method id are submitted. Do not call `RunBatch`/`Submit(...).wait()`
/// from inside a worker (queries never enqueue queries).
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers a query implementation (which must outlive the engine) and
  /// returns its method id for `Submit`/`RunBatch`.
  int RegisterMethod(const AreaQuery* query);

  /// Enqueues one query; the future resolves with its result and stats.
  /// Blocks while the work queue is full (unless
  /// `EngineOptions::shed_on_full`, which throws `EngineOverloadedError`
  /// instead). Throws `EngineStoppedError` after `Stop()`. With a
  /// deadline or cancel token in `opts`, the query aborts cooperatively
  /// — a queued task past its deadline fails fast without running, a
  /// running one observes the token at its next block boundary — and the
  /// future delivers `QueryAbortedError`.
  std::future<QueryResult> Submit(Polygon area, int method = 0,
                                  SubmitOptions opts = {});

  /// Enqueues one query against an ad-hoc query object that was never
  /// registered — the scatter path of `ShardedAreaQuery`, whose per-shard
  /// sub-queries are ephemeral objects bound to a pinned snapshot.
  /// `query` must stay alive until the returned future resolves (the
  /// caller waits on it before destroying the object). Ad-hoc executions
  /// are internal fan-out legs of one client query: they are excluded
  /// from `Stats()` (completed counts, latency percentiles, per-method
  /// counters), which keeps engine statistics in units of client queries.
  /// `cancel` (may be null) is the leg's token — typically chained to the
  /// parent query's token so cancelling the parent aborts every leg.
  std::future<QueryResult> SubmitWith(const AreaQuery* query, Polygon area,
                                      std::shared_ptr<CancelToken> cancel =
                                          nullptr);

  /// Stops the engine: closes the work queue (queued tasks still run to
  /// completion; to abort them too, cancel their tokens first) and joins
  /// the workers. Idempotent; racing `Submit`s either enqueue before the
  /// close or throw `EngineStoppedError` — no submission is silently
  /// dropped with a stranded future. The destructor calls it.
  void Stop();

  /// Runs every polygon through `method` across the pool and returns the
  /// results in input order — identical to running them sequentially,
  /// whatever the thread interleaving (each query is independent and the
  /// ids of each result are sorted).
  std::vector<QueryResult> RunBatch(std::span<const Polygon> areas,
                                    int method = 0);

  /// Aggregated statistics since construction / last `ResetStats()`.
  EngineStats Stats() const;
  void ResetStats();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when called from one of *this* engine's worker threads. The
  /// self-submission guard: a task that blocks on futures of its own
  /// pool can deadlock it (workers waiting on work only those same
  /// workers could pop), so composite queries check this and fall back
  /// to inline execution (see `ShardedAreaQuery`).
  bool OnWorkerThread() const;

 private:
  struct Task {
    Polygon area;
    const AreaQuery* query;
    int method;  // Registered method id, or < 0 for an ad-hoc SubmitWith.
    std::chrono::steady_clock::time_point submitted;
    /// Deadline/cancellation handle (null = none). Shared: the submitter
    /// may hold it to cancel, the worker polls it during execution.
    std::shared_ptr<CancelToken> cancel;
    /// Planner hints, installed on the worker context around the run.
    PlanHints hints{};
    std::promise<QueryResult> promise;
  };

  /// Counters a worker accumulates locally; folded into EngineStats under
  /// the worker's own mutex so `Stats()` never blocks the whole pool.
  ///
  /// Latency samples are decimated once they reach a cap (keep every
  /// other sample, double the recording stride), so an open-ended query
  /// stream holds percentile memory bounded while the samples stay
  /// uniformly spread over the stats window.
  struct WorkerState {
    std::mutex mu;
    QueryContext ctx;  // Touched only by the owning worker.
    std::uint64_t completed = 0;
    std::uint64_t latency_stride = 1;  // Record every stride-th query.
    std::vector<double> latencies_ms;
    std::vector<MethodEngineStats> methods;
  };

  void WorkerLoop(WorkerState* state);
  std::future<QueryResult> Enqueue(Task task, const char* site);

  EngineOptions options_;

  std::mutex methods_mu_;
  std::vector<const AreaQuery*> methods_;

  BoundedQueue<Task> queue_;
  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;

  std::mutex stop_mu_;
  bool stopped_ = false;

  mutable std::mutex window_mu_;
  std::chrono::steady_clock::time_point window_start_;
};

}  // namespace vaq

#endif  // VAQ_ENGINE_QUERY_ENGINE_H_
