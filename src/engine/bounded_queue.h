#ifndef VAQ_ENGINE_BOUNDED_QUEUE_H_
#define VAQ_ENGINE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace vaq {

/// Bounded multi-producer/multi-consumer FIFO built on a mutex and two
/// condition variables. Simple by design: the engine's unit of work is an
/// entire area query (microseconds to milliseconds), so queue transfer cost
/// is noise and a lock-free ring would buy nothing but complexity.
///
/// The bound provides backpressure: producers block in `Push` when
/// consumers fall behind, so an open-ended stream of `Submit` calls cannot
/// grow memory without limit.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Outcome of a non-blocking `TryPush`.
  enum class PushResult {
    kPushed,
    kFull,    // At capacity — the caller sheds or retries, never blocks.
    kClosed,  // Queue closed — no further items will ever be accepted.
  };

  /// Blocks until there is room, then enqueues. Returns false (dropping
  /// `item`) if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue: admission control for producers that must shed
  /// load rather than stall when consumers fall behind. Distinguishes a
  /// full queue (transient — back off and retry) from a closed one
  /// (permanent); `item` is dropped in both failure cases.
  PushResult TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kPushed;
  }

  /// Blocks until an item is available, then dequeues it. Returns nullopt
  /// once the queue is closed AND drained — consumers process everything
  /// enqueued before the close.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all blocked producers (which fail) and consumers (which drain
  /// the remaining items and then receive nullopt). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace vaq

#endif  // VAQ_ENGINE_BOUNDED_QUEUE_H_
