#ifndef VAQ_INDEX_KDTREE_H_
#define VAQ_INDEX_KDTREE_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace vaq {

/// Static KD-tree (Bentley 1975, Friedman/Bentley/Finkel NN search) over
/// points. Built once by median splits on the axis of larger spread; no
/// dynamic updates (rebuild instead). Included as an ablation alternative
/// to the R-tree for the seed NN query and window filter of area queries.
class KDTree : public SpatialIndex {
 public:
  /// `leaf_size` is the bucket capacity at which recursion stops.
  explicit KDTree(int leaf_size = 16);

  void Build(const std::vector<Point>& points) override;
  std::size_t size() const override { return points_.size(); }
  void WindowQuery(const Box& window, std::vector<PointId>* out,
                   IndexStats* stats = nullptr) const override;
  void PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                    IndexStats* stats = nullptr) const override;
  PointId NearestNeighbor(const Point& q,
                          IndexStats* stats = nullptr) const override;
  void KNearestNeighbors(const Point& q, std::size_t k,
                         std::vector<PointId>* out,
                         IndexStats* stats = nullptr) const override;
  std::string_view Name() const override { return "kdtree"; }

 private:
  struct Node {
    Box bounds;
    // Children; both -1 for leaves.
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Range [begin, end) into ids_ for leaves.
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  std::int32_t BuildRecursive(std::uint32_t begin, std::uint32_t end);

  std::vector<Point> points_;
  std::vector<PointId> ids_;  // Permutation of [0, n) owned by the tree.
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  int leaf_size_;
};

}  // namespace vaq

#endif  // VAQ_INDEX_KDTREE_H_
