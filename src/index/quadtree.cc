#include "index/quadtree.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "geometry/prepared_area.h"

namespace vaq {

Quadtree::Quadtree(int bucket_capacity, int max_depth)
    : bucket_capacity_(bucket_capacity), max_depth_(max_depth) {
  assert(bucket_capacity_ >= 1);
  assert(max_depth_ >= 1);
}

Box Quadtree::ChildBox(const Box& box, int quadrant) {
  const Point c = box.Center();
  switch (quadrant) {
    case 0: return Box{box.min, c};                                  // SW
    case 1: return Box{{c.x, box.min.y}, {box.max.x, c.y}};          // SE
    case 2: return Box{{box.min.x, c.y}, {c.x, box.max.y}};          // NW
    default: return Box{c, box.max};                                 // NE
  }
}

int Quadtree::QuadrantOf(const Box& box, const Point& p) const {
  const Point c = box.Center();
  const int east = p.x >= c.x ? 1 : 0;
  const int north = p.y >= c.y ? 2 : 0;
  return east + north;
}

void Quadtree::Build(const std::vector<Point>& points) {
  Box world;
  for (const Point& p : points) world.ExpandToInclude(p);
  if (world.Empty()) world = Box{{0, 0}, {1, 1}};
  Build(points, world);
}

void Quadtree::Build(const std::vector<Point>& points, const Box& world) {
  nodes_.clear();
  world_ = world;
  count_ = 0;
  nodes_.push_back(Node{});
  root_ = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    Insert(points[i], static_cast<PointId>(i));
  }
}

void Quadtree::Insert(const Point& p, PointId id) {
  assert(root_ >= 0 && "call Build before Insert");
  assert(world_.Contains(p) && "point outside quadtree world box");
  InsertInto(root_, world_, Item{p, id}, 0);
  ++count_;
}

void Quadtree::InsertInto(std::int32_t node_id, const Box& box,
                          const Item& item, int depth) {
  while (true) {
    Node& node = nodes_[node_id];
    if (node.leaf) {
      if (node.items.size() <
              static_cast<std::size_t>(bucket_capacity_) ||
          depth >= max_depth_) {
        node.items.push_back(item);
        return;
      }
      // Split: redistribute the bucket into four children.
      std::vector<Item> items = std::move(node.items);
      node.items.clear();
      node.leaf = false;
      for (int q = 0; q < 4; ++q) {
        nodes_.push_back(Node{});
        // nodes_ may have reallocated; node reference is stale now.
        nodes_[node_id].child[q] =
            static_cast<std::int32_t>(nodes_.size() - 1);
      }
      for (const Item& it : items) {
        const int q = QuadrantOf(box, it.point);
        InsertInto(nodes_[node_id].child[q], ChildBox(box, q), it, depth + 1);
      }
      // Fall through: insert `item` into the now-internal node.
    }
    const int q = QuadrantOf(box, item.point);
    const std::int32_t child = nodes_[node_id].child[q];
    node_id = child;
    const Box child_box = ChildBox(box, q);
    // Tail-call style loop.
    return InsertInto(node_id, child_box, item, depth + 1);
  }
}

void Quadtree::WindowQuery(const Box& window, std::vector<PointId>* out,
                           IndexStats* stats) const {
  if (root_ < 0) return;
  struct Frame {
    std::int32_t id;
    Box box;
  };
  std::vector<Frame> stack{{root_, world_}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    // The root page is always read; children are pruned by their (derived)
    // quadrant boxes before being visited.
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[f.id];
    if (node.leaf) {
      for (const Item& it : node.items) {
        if (window.Contains(it.point)) {
          out->push_back(it.id);
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    } else {
      for (int q = 0; q < 4; ++q) {
        const Box child_box = ChildBox(f.box, q);
        if (window.Intersects(child_box)) {
          stack.push_back({node.child[q], child_box});
        }
      }
    }
  }
}

void Quadtree::PolygonQuery(const PreparedArea& area,
                            std::vector<PointId>* out,
                            IndexStats* stats) const {
  if (root_ < 0 || !area.prepared()) return;
  struct Frame {
    std::int32_t id;
    Box box;
    bool inside;  // An ancestor quadrant classified fully inside.
  };
  std::vector<Frame> stack{{root_, world_, false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[f.id];
    if (node.leaf) {
      for (const Item& it : node.items) {
        if (f.inside || area.Contains(it.point)) {
          out->push_back(it.id);
          if (stats != nullptr) {
            ++stats->entries_reported;
            if (f.inside) ++stats->bulk_accepted;
          }
        }
      }
    } else {
      for (int q = 0; q < 4; ++q) {
        const Box child_box = ChildBox(f.box, q);
        if (f.inside) {
          stack.push_back({node.child[q], child_box, true});
          continue;
        }
        switch (area.ClassifyBox(child_box)) {
          case PreparedArea::Region::kOutside:
            break;
          case PreparedArea::Region::kInside:
            stack.push_back({node.child[q], child_box, true});
            break;
          case PreparedArea::Region::kStraddling:
            stack.push_back({node.child[q], child_box, false});
            break;
        }
      }
    }
  }
}

namespace {
struct QueueItem {
  double dist2;
  bool is_node;
  std::int32_t id;
  Box box;  // Node box when is_node.
  bool operator>(const QueueItem& o) const { return dist2 > o.dist2; }
};
}  // namespace

void Quadtree::KNearestNeighbors(const Point& q, std::size_t k,
                                 std::vector<PointId>* out,
                                 IndexStats* stats) const {
  if (root_ < 0 || k == 0 || count_ == 0) return;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push(QueueItem{world_.SquaredDistanceTo(q), true, root_, world_});
  std::size_t found = 0;
  while (!pq.empty() && found < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.is_node) {
      if (stats != nullptr) ++stats->node_accesses;
      const Node& node = nodes_[item.id];
      if (node.leaf) {
        for (const Item& it : node.items) {
          pq.push(QueueItem{SquaredDistance(it.point, q), false,
                            static_cast<std::int32_t>(it.id), Box{}});
        }
      } else {
        for (int c = 0; c < 4; ++c) {
          const Box child_box = ChildBox(item.box, c);
          pq.push(QueueItem{child_box.SquaredDistanceTo(q), true,
                            node.child[c], child_box});
        }
      }
    } else {
      out->push_back(static_cast<PointId>(item.id));
      if (stats != nullptr) ++stats->entries_reported;
      ++found;
    }
  }
}

PointId Quadtree::NearestNeighbor(const Point& q, IndexStats* stats) const {
  std::vector<PointId> out;
  KNearestNeighbors(q, 1, &out, stats);
  return out.empty() ? kInvalidPointId : out[0];
}

}  // namespace vaq
