#include "index/kdtree.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "geometry/prepared_area.h"

namespace vaq {

KDTree::KDTree(int leaf_size) : leaf_size_(leaf_size) {
  assert(leaf_size_ >= 1);
}

void KDTree::Build(const std::vector<Point>& points) {
  points_ = points;
  ids_.resize(points.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<PointId>(i);
  }
  nodes_.clear();
  root_ = points.empty()
              ? -1
              : BuildRecursive(0, static_cast<std::uint32_t>(points.size()));
}

std::int32_t KDTree::BuildRecursive(std::uint32_t begin, std::uint32_t end) {
  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  Box bounds;
  for (std::uint32_t i = begin; i < end; ++i) {
    bounds.ExpandToInclude(points_[ids_[i]]);
  }
  nodes_[node_id].bounds = bounds;
  nodes_[node_id].begin = begin;
  nodes_[node_id].end = end;

  if (end - begin <= static_cast<std::uint32_t>(leaf_size_)) {
    return node_id;  // Leaf.
  }
  // Split at the median of the wider axis.
  const bool split_x = bounds.Width() >= bounds.Height();
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return split_x ? points_[a].x < points_[b].x
                                    : points_[a].y < points_[b].y;
                   });
  const std::int32_t left = BuildRecursive(begin, mid);
  const std::int32_t right = BuildRecursive(mid, end);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KDTree::WindowQuery(const Box& window, std::vector<PointId>* out,
                         IndexStats* stats) const {
  if (root_ < 0) return;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node_id = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[node_id];
    if (!window.Intersects(node.bounds)) continue;
    if (node.left < 0) {
      const bool all_inside = window.Contains(node.bounds);
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        if (all_inside || window.Contains(points_[ids_[i]])) {
          out->push_back(ids_[i]);
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

void KDTree::PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                          IndexStats* stats) const {
  if (root_ < 0 || !area.prepared()) return;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node_id = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[node_id];
    switch (area.ClassifyBox(node.bounds)) {
      case PreparedArea::Region::kOutside:
        continue;
      case PreparedArea::Region::kInside:
        // Every node records its subtree's id range, so a fully-inside
        // subtree bulk-accepts as one contiguous copy with no point tests.
        out->insert(out->end(), ids_.begin() + node.begin,
                    ids_.begin() + node.end);
        if (stats != nullptr) {
          stats->entries_reported += node.end - node.begin;
          stats->bulk_accepted += node.end - node.begin;
        }
        continue;
      case PreparedArea::Region::kStraddling:
        break;
    }
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        if (area.Contains(points_[ids_[i]])) {
          out->push_back(ids_[i]);
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

namespace {
struct QueueItem {
  double dist2;
  bool is_node;
  std::int32_t id;
  bool operator>(const QueueItem& o) const { return dist2 > o.dist2; }
};
}  // namespace

void KDTree::KNearestNeighbors(const Point& q, std::size_t k,
                               std::vector<PointId>* out,
                               IndexStats* stats) const {
  if (root_ < 0 || k == 0) return;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push(QueueItem{nodes_[root_].bounds.SquaredDistanceTo(q), true, root_});
  std::size_t found = 0;
  while (!pq.empty() && found < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.is_node) {
      if (stats != nullptr) ++stats->node_accesses;
      const Node& node = nodes_[item.id];
      if (node.left < 0) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
          pq.push(QueueItem{SquaredDistance(points_[ids_[i]], q), false,
                            static_cast<std::int32_t>(ids_[i])});
        }
      } else {
        pq.push(QueueItem{nodes_[node.left].bounds.SquaredDistanceTo(q), true,
                          node.left});
        pq.push(QueueItem{nodes_[node.right].bounds.SquaredDistanceTo(q), true,
                          node.right});
      }
    } else {
      out->push_back(static_cast<PointId>(item.id));
      if (stats != nullptr) ++stats->entries_reported;
      ++found;
    }
  }
}

PointId KDTree::NearestNeighbor(const Point& q, IndexStats* stats) const {
  std::vector<PointId> out;
  KNearestNeighbors(q, 1, &out, stats);
  return out.empty() ? kInvalidPointId : out[0];
}

}  // namespace vaq
