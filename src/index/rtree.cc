#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

#include "geometry/prepared_area.h"

namespace vaq {

RTree::RTree(int max_entries, int min_entries, SplitStrategy split)
    : max_entries_(max_entries), min_entries_(min_entries), split_(split) {
  assert(max_entries_ >= 4);
  assert(min_entries_ >= 2 && min_entries_ <= max_entries_ / 2);
}

std::int32_t RTree::NewNode(bool leaf) {
  nodes_.push_back(Node{});
  nodes_.back().leaf = leaf;
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void RTree::RecomputeBounds(std::int32_t node_id) {
  Node& node = nodes_[node_id];
  node.bounds = Box{};
  for (const Entry& e : node.entries) node.bounds.ExpandToInclude(e.box);
}

void RTree::Build(const std::vector<Point>& points) {
  nodes_.clear();
  root_ = -1;
  count_ = points.size();
  if (points.empty()) return;

  // --- Sort-Tile-Recursive bulk load ---
  std::vector<Entry> level;
  level.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    level.push_back(Entry{Box(points[i]), static_cast<std::int32_t>(i)});
  }

  bool leaf_level = true;
  while (level.size() > static_cast<std::size_t>(max_entries_) ||
         leaf_level) {
    const std::size_t n = level.size();
    const std::size_t capacity = static_cast<std::size_t>(max_entries_);
    const std::size_t num_groups = (n + capacity - 1) / capacity;
    const std::size_t num_slabs = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_groups))));
    const std::size_t slab_size = num_slabs * capacity;

    std::sort(level.begin(), level.end(), [](const Entry& a, const Entry& b) {
      return a.box.Center().x < b.box.Center().x;
    });
    std::vector<Entry> parents;
    parents.reserve(num_groups);
    for (std::size_t s = 0; s < n; s += slab_size) {
      const std::size_t slab_end = std::min(s + slab_size, n);
      std::sort(level.begin() + s, level.begin() + slab_end,
                [](const Entry& a, const Entry& b) {
                  return a.box.Center().y < b.box.Center().y;
                });
      for (std::size_t g = s; g < slab_end; g += capacity) {
        const std::size_t group_end = std::min(g + capacity, slab_end);
        const std::int32_t node_id = NewNode(leaf_level);
        Node& node = nodes_[node_id];
        node.entries.assign(level.begin() + g, level.begin() + group_end);
        RecomputeBounds(node_id);
        parents.push_back(Entry{nodes_[node_id].bounds, node_id});
      }
    }
    level = std::move(parents);
    leaf_level = false;
    if (level.size() == 1) break;
  }

  if (level.size() == 1) {
    root_ = level[0].id;
  } else {
    root_ = NewNode(false);
    nodes_[root_].entries = std::move(level);
    RecomputeBounds(root_);
  }
}

void RTree::BuildClustered(const std::vector<Point>& points) {
  nodes_.clear();
  root_ = -1;
  count_ = points.size();
  if (points.empty()) return;

  // Pack consecutive runs of the (already spatially clustered) input into
  // leaves. Group sizes are balanced across the level so no node falls
  // far under capacity: ceil(n / M) groups of n / groups entries each.
  std::vector<Entry> level;
  level.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    level.push_back(Entry{Box(points[i]), static_cast<std::int32_t>(i)});
  }

  bool leaf_level = true;
  while (level.size() > static_cast<std::size_t>(max_entries_) ||
         leaf_level) {
    const std::size_t n = level.size();
    const std::size_t capacity = static_cast<std::size_t>(max_entries_);
    const std::size_t num_groups = (n + capacity - 1) / capacity;
    const std::size_t base = n / num_groups;
    const std::size_t remainder = n % num_groups;

    std::vector<Entry> parents;
    parents.reserve(num_groups);
    std::size_t at = 0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const std::size_t group_size = base + (g < remainder ? 1 : 0);
      const std::int32_t node_id = NewNode(leaf_level);
      Node& node = nodes_[node_id];
      node.entries.assign(level.begin() + at, level.begin() + at + group_size);
      at += group_size;
      RecomputeBounds(node_id);
      parents.push_back(Entry{nodes_[node_id].bounds, node_id});
    }
    level = std::move(parents);
    leaf_level = false;
    if (level.size() == 1) break;
  }

  if (level.size() == 1) {
    root_ = level[0].id;
  } else {
    root_ = NewNode(false);
    nodes_[root_].entries = std::move(level);
    RecomputeBounds(root_);
  }
}

std::int32_t RTree::ChooseLeaf(std::int32_t node_id, const Box& box,
                               std::vector<std::int32_t>* path) const {
  while (true) {
    path->push_back(node_id);
    const Node& node = nodes_[node_id];
    if (node.leaf) return node_id;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    std::int32_t best_child = -1;
    for (const Entry& e : node.entries) {
      const double area = e.box.Area();
      const double enlargement = Box::Union(e.box, box).Area() - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best_child = e.id;
      }
    }
    node_id = best_child;
  }
}

void RTree::PickSeedsQuadratic(const std::vector<Entry>& entries,
                               std::size_t* seed_a,
                               std::size_t* seed_b) const {
  // The pair wasting the most area.
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Box::Union(entries[i].box, entries[j].box).Area() -
                           entries[i].box.Area() - entries[j].box.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        *seed_a = i;
        *seed_b = j;
      }
    }
  }
}

void RTree::PickSeedsLinear(const std::vector<Entry>& entries,
                            std::size_t* seed_a, std::size_t* seed_b) const {
  // Per axis: the entry with the highest low side and the one with the
  // lowest high side; normalise their separation by the axis width and
  // take the axis with the greatest normalised separation.
  double best_separation = -std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < 2; ++axis) {
    auto lo = [axis](const Entry& e) {
      return axis == 0 ? e.box.min.x : e.box.min.y;
    };
    auto hi = [axis](const Entry& e) {
      return axis == 0 ? e.box.max.x : e.box.max.y;
    };
    std::size_t highest_low = 0, lowest_high = 0;
    double min_lo = lo(entries[0]), max_hi = hi(entries[0]);
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (lo(entries[i]) > lo(entries[highest_low])) highest_low = i;
      if (hi(entries[i]) < hi(entries[lowest_high])) lowest_high = i;
      min_lo = std::min(min_lo, lo(entries[i]));
      max_hi = std::max(max_hi, hi(entries[i]));
    }
    if (highest_low == lowest_high) continue;  // Degenerate axis.
    const double width = std::max(max_hi - min_lo, 1e-300);
    const double separation =
        (lo(entries[highest_low]) - hi(entries[lowest_high])) / width;
    if (separation > best_separation) {
      best_separation = separation;
      *seed_a = lowest_high;
      *seed_b = highest_low;
    }
  }
}

std::int32_t RTree::SplitNode(std::int32_t node_id) {
  Node& node = nodes_[node_id];
  std::vector<Entry> entries = std::move(node.entries);
  node.entries.clear();
  const std::int32_t sibling_id = NewNode(node.leaf);
  // NOTE: NewNode may reallocate nodes_; re-take the reference.
  Node& left = nodes_[node_id];
  Node& right = nodes_[sibling_id];

  std::size_t seed_a = 0, seed_b = 1;
  if (split_ == SplitStrategy::kQuadratic) {
    PickSeedsQuadratic(entries, &seed_a, &seed_b);
  } else {
    PickSeedsLinear(entries, &seed_a, &seed_b);
  }

  Box left_box = entries[seed_a].box;
  Box right_box = entries[seed_b].box;
  left.entries.push_back(entries[seed_a]);
  right.entries.push_back(entries[seed_b]);
  std::vector<bool> assigned(entries.size(), false);
  assigned[seed_a] = assigned[seed_b] = true;
  std::size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min_entries_.
    const std::size_t min_needed = static_cast<std::size_t>(min_entries_);
    if (left.entries.size() + remaining == min_needed) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          left.entries.push_back(entries[i]);
          left_box.ExpandToInclude(entries[i].box);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (right.entries.size() + remaining == min_needed) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!assigned[i]) {
          right.entries.push_back(entries[i]);
          right_box.ExpandToInclude(entries[i].box);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext. Quadratic: the entry with the strongest preference for one
    // group (Guttman's O(M) scan per step). Linear: simply the next
    // unassigned entry.
    std::size_t best = 0;
    double best_d_left = 0.0, best_d_right = 0.0;
    if (split_ == SplitStrategy::kQuadratic) {
      double best_diff = -1.0;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (assigned[i]) continue;
        const double d_left =
            Box::Union(left_box, entries[i].box).Area() - left_box.Area();
        const double d_right =
            Box::Union(right_box, entries[i].box).Area() - right_box.Area();
        const double diff = std::fabs(d_left - d_right);
        if (diff > best_diff) {
          best_diff = diff;
          best = i;
          best_d_left = d_left;
          best_d_right = d_right;
        }
      }
    } else {
      while (assigned[best]) ++best;
      best_d_left =
          Box::Union(left_box, entries[best].box).Area() - left_box.Area();
      best_d_right =
          Box::Union(right_box, entries[best].box).Area() - right_box.Area();
    }
    bool to_left = best_d_left < best_d_right;
    if (best_d_left == best_d_right) {
      to_left = left_box.Area() < right_box.Area() ||
                (left_box.Area() == right_box.Area() &&
                 left.entries.size() <= right.entries.size());
    }
    if (to_left) {
      left.entries.push_back(entries[best]);
      left_box.ExpandToInclude(entries[best].box);
    } else {
      right.entries.push_back(entries[best]);
      right_box.ExpandToInclude(entries[best].box);
    }
    assigned[best] = true;
    --remaining;
  }

  left.bounds = left_box;
  right.bounds = right_box;
  return sibling_id;
}

void RTree::InsertEntry(const Entry& entry) {
  if (root_ < 0) {
    root_ = NewNode(true);
    nodes_[root_].entries.push_back(entry);
    nodes_[root_].bounds = entry.box;
    return;
  }
  std::vector<std::int32_t> path;
  const std::int32_t leaf = ChooseLeaf(root_, entry.box, &path);
  nodes_[leaf].entries.push_back(entry);

  // Walk back up: refresh the entry box of the child we descended into,
  // absorb splits, fix bounds.
  std::int32_t split_child = -1;
  for (std::size_t depth = path.size(); depth-- > 0;) {
    const std::int32_t node_id = path[depth];
    if (depth + 1 < path.size()) {
      const std::int32_t child = path[depth + 1];
      for (Entry& e : nodes_[node_id].entries) {
        if (e.id == child) {
          e.box = nodes_[child].bounds;
          break;
        }
      }
    }
    if (split_child >= 0) {
      nodes_[node_id].entries.push_back(
          Entry{nodes_[split_child].bounds, split_child});
      split_child = -1;
    }
    if (nodes_[node_id].entries.size() >
        static_cast<std::size_t>(max_entries_)) {
      split_child = SplitNode(node_id);
    } else {
      RecomputeBounds(node_id);
    }
  }
  if (split_child >= 0) {
    const std::int32_t old_root = root_;
    root_ = NewNode(false);
    nodes_[root_].entries.push_back(Entry{nodes_[old_root].bounds, old_root});
    nodes_[root_].entries.push_back(
        Entry{nodes_[split_child].bounds, split_child});
    RecomputeBounds(root_);
  }
}

void RTree::Insert(const Point& p, PointId id) {
  InsertEntry(Entry{Box(p), static_cast<std::int32_t>(id)});
  ++count_;
}

void RTree::WindowQuery(const Box& window, std::vector<PointId>* out,
                        IndexStats* stats) const {
  if (root_ < 0) return;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node_id = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[node_id];
    if (node.leaf) {
      if (window.Contains(node.bounds)) {
        // Leaf fully covered: report every entry without per-point tests.
        for (const Entry& e : node.entries) {
          out->push_back(static_cast<PointId>(e.id));
        }
        if (stats != nullptr) stats->entries_reported += node.entries.size();
        continue;
      }
      for (const Entry& e : node.entries) {
        if (window.Contains(e.box.min)) {
          out->push_back(static_cast<PointId>(e.id));
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    } else {
      for (const Entry& e : node.entries) {
        if (window.Intersects(e.box)) stack.push_back(e.id);
      }
    }
  }
}

void RTree::EmitSubtree(std::int32_t node_id, std::vector<PointId>* out,
                        IndexStats* stats) const {
  if (stats != nullptr) ++stats->node_accesses;
  const Node& node = nodes_[node_id];
  if (node.leaf) {
    for (const Entry& e : node.entries) {
      out->push_back(static_cast<PointId>(e.id));
    }
    if (stats != nullptr) {
      stats->entries_reported += node.entries.size();
      stats->bulk_accepted += node.entries.size();
    }
  } else {
    for (const Entry& e : node.entries) EmitSubtree(e.id, out, stats);
  }
}

void RTree::PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                         IndexStats* stats) const {
  if (root_ < 0 || !area.prepared()) return;
  // Classify each child MBR against the polygon: outside subtrees are
  // pruned without being read (the window query visits everything inside
  // MBR(A) \ A), inside subtrees are emitted wholesale with zero per-point
  // tests, and only straddling paths descend to leaf-level point tests.
  switch (area.ClassifyBox(nodes_[root_].bounds)) {
    case PreparedArea::Region::kOutside:
      return;
    case PreparedArea::Region::kInside:
      EmitSubtree(root_, out, stats);
      return;
    case PreparedArea::Region::kStraddling:
      break;
  }
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node_id = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->node_accesses;
    const Node& node = nodes_[node_id];
    if (node.leaf) {
      for (const Entry& e : node.entries) {
        if (area.Contains(e.box.min)) {
          out->push_back(static_cast<PointId>(e.id));
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    } else {
      for (const Entry& e : node.entries) {
        switch (area.ClassifyBox(e.box)) {
          case PreparedArea::Region::kOutside:
            break;
          case PreparedArea::Region::kInside:
            EmitSubtree(e.id, out, stats);
            break;
          case PreparedArea::Region::kStraddling:
            stack.push_back(e.id);
            break;
        }
      }
    }
  }
}

namespace {
struct QueueItem {
  double dist2;
  bool is_node;
  std::int32_t id;
  bool operator>(const QueueItem& o) const { return dist2 > o.dist2; }
};
}  // namespace

void RTree::KNearestNeighbors(const Point& q, std::size_t k,
                              std::vector<PointId>* out,
                              IndexStats* stats) const {
  if (root_ < 0 || k == 0) return;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push(QueueItem{nodes_[root_].bounds.SquaredDistanceTo(q), true, root_});
  std::size_t found = 0;
  while (!pq.empty() && found < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.is_node) {
      if (stats != nullptr) ++stats->node_accesses;
      const Node& node = nodes_[item.id];
      if (node.leaf) {
        for (const Entry& e : node.entries) {
          pq.push(QueueItem{SquaredDistance(e.box.min, q), false, e.id});
        }
      } else {
        for (const Entry& e : node.entries) {
          pq.push(QueueItem{e.box.SquaredDistanceTo(q), true, e.id});
        }
      }
    } else {
      out->push_back(static_cast<PointId>(item.id));
      if (stats != nullptr) ++stats->entries_reported;
      ++found;
    }
  }
}

PointId RTree::NearestNeighbor(const Point& q, IndexStats* stats) const {
  std::vector<PointId> out;
  KNearestNeighbors(q, 1, &out, stats);
  return out.empty() ? kInvalidPointId : out[0];
}

int RTree::Height() const {
  if (root_ < 0) return 0;
  int height = 1;
  std::int32_t node_id = root_;
  while (!nodes_[node_id].leaf) {
    node_id = nodes_[node_id].entries.front().id;
    ++height;
  }
  return height;
}

bool RTree::CheckInvariants(std::string* why) const {
  if (root_ < 0) {
    if (count_ != 0) {
      *why = "empty tree with nonzero count";
      return false;
    }
    return true;
  }
  std::size_t seen = 0;
  int leaf_depth = -1;
  struct Frame {
    std::int32_t id;
    int depth;
  };
  std::vector<Frame> stack{{root_, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.id];
    if (node.entries.empty()) {
      *why = "node with no entries";
      return false;
    }
    if (node.entries.size() > static_cast<std::size_t>(max_entries_)) {
      *why = "node overflow";
      return false;
    }
    Box expect;
    for (const Entry& e : node.entries) expect.ExpandToInclude(e.box);
    if (expect != node.bounds) {
      *why = "stale node bounds";
      return false;
    }
    if (node.leaf) {
      if (leaf_depth < 0) leaf_depth = f.depth;
      if (leaf_depth != f.depth) {
        *why = "leaves at different depths";
        return false;
      }
      seen += node.entries.size();
    } else {
      for (const Entry& e : node.entries) {
        stack.push_back({e.id, f.depth + 1});
      }
    }
  }
  if (seen != count_) {
    *why = "entry count mismatch";
    return false;
  }
  return true;
}

}  // namespace vaq
