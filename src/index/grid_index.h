#ifndef VAQ_INDEX_GRID_INDEX_H_
#define VAQ_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace vaq {

/// Uniform grid over the data's bounding box: the simplest possible filter
/// structure, used as a bottom-line ablation baseline. Cell resolution is
/// chosen so the average bucket holds ~`target_bucket_size` points.
///
/// Nearest-neighbour search expands rings of cells around the query until
/// the best candidate provably beats every unvisited cell.
class GridIndex : public SpatialIndex {
 public:
  explicit GridIndex(int target_bucket_size = 4);

  void Build(const std::vector<Point>& points) override;
  std::size_t size() const override { return points_.size(); }
  void WindowQuery(const Box& window, std::vector<PointId>* out,
                   IndexStats* stats = nullptr) const override;
  void PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                    IndexStats* stats = nullptr) const override;
  PointId NearestNeighbor(const Point& q,
                          IndexStats* stats = nullptr) const override;
  void KNearestNeighbors(const Point& q, std::size_t k,
                         std::vector<PointId>* out,
                         IndexStats* stats = nullptr) const override;
  std::string_view Name() const override { return "grid"; }

 private:
  int CellX(double x) const;
  int CellY(double y) const;
  const std::vector<PointId>& Cell(int cx, int cy) const {
    return cells_[static_cast<std::size_t>(cy) * nx_ + cx];
  }

  std::vector<Point> points_;
  std::vector<std::vector<PointId>> cells_;
  Box world_;
  int nx_ = 0;
  int ny_ = 0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  int target_bucket_size_;
};

}  // namespace vaq

#endif  // VAQ_INDEX_GRID_INDEX_H_
