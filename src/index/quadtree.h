#ifndef VAQ_INDEX_QUADTREE_H_
#define VAQ_INDEX_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace vaq {

/// Point-region (PR) quadtree (Samet 1984): square cells recursively split
/// into four quadrants once a bucket overflows. Supports dynamic inserts.
/// Included as an ablation alternative to the R-tree.
class Quadtree : public SpatialIndex {
 public:
  /// `bucket_capacity` points are stored per leaf before it splits;
  /// `max_depth` caps subdivision (duplicates/ultra-dense spots then
  /// overflow the bucket in place).
  explicit Quadtree(int bucket_capacity = 16, int max_depth = 32);

  void Build(const std::vector<Point>& points) override;
  std::size_t size() const override { return count_; }
  void WindowQuery(const Box& window, std::vector<PointId>* out,
                   IndexStats* stats = nullptr) const override;
  void PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                    IndexStats* stats = nullptr) const override;
  PointId NearestNeighbor(const Point& q,
                          IndexStats* stats = nullptr) const override;
  void KNearestNeighbors(const Point& q, std::size_t k,
                         std::vector<PointId>* out,
                         IndexStats* stats = nullptr) const override;
  std::string_view Name() const override { return "quadtree"; }

  /// Dynamic insert. Precondition: `p` lies inside the world box passed to
  /// `Build` (or of the first bulk load).
  void Insert(const Point& p, PointId id);

  /// Bulk load with an explicit world box (points outside are clamped by
  /// precondition, not checked).
  void Build(const std::vector<Point>& points, const Box& world);

 private:
  struct Item {
    Point point;
    PointId id;
  };
  struct Node {
    // child[0] = SW, child[1] = SE, child[2] = NW, child[3] = NE.
    std::int32_t child[4] = {-1, -1, -1, -1};
    std::vector<Item> items;  // Only for leaves.
    bool leaf = true;
  };

  static Box ChildBox(const Box& box, int quadrant);
  int QuadrantOf(const Box& box, const Point& p) const;
  void InsertInto(std::int32_t node_id, const Box& box, const Item& item,
                  int depth);

  std::vector<Node> nodes_;
  Box world_;
  std::int32_t root_ = -1;
  std::size_t count_ = 0;
  int bucket_capacity_;
  int max_depth_;
};

}  // namespace vaq

#endif  // VAQ_INDEX_QUADTREE_H_
