#include "index/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "geometry/prepared_area.h"

namespace vaq {

GridIndex::GridIndex(int target_bucket_size)
    : target_bucket_size_(target_bucket_size) {
  assert(target_bucket_size_ >= 1);
}

int GridIndex::CellX(double x) const {
  int c = static_cast<int>((x - world_.min.x) / cell_w_);
  return std::clamp(c, 0, nx_ - 1);
}

int GridIndex::CellY(double y) const {
  int c = static_cast<int>((y - world_.min.y) / cell_h_);
  return std::clamp(c, 0, ny_ - 1);
}

void GridIndex::Build(const std::vector<Point>& points) {
  points_ = points;
  world_ = Box{};
  for (const Point& p : points) world_.ExpandToInclude(p);
  if (world_.Empty()) world_ = Box{{0, 0}, {1, 1}};

  const double n = static_cast<double>(std::max<std::size_t>(points.size(), 1));
  const int side = std::max(
      1, static_cast<int>(std::sqrt(n / target_bucket_size_)));
  nx_ = ny_ = side;
  cell_w_ = std::max(world_.Width(), 1e-12) / nx_;
  cell_h_ = std::max(world_.Height(), 1e-12) / ny_;

  cells_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells_[static_cast<std::size_t>(CellY(points[i].y)) * nx_ +
           CellX(points[i].x)]
        .push_back(static_cast<PointId>(i));
  }
}

void GridIndex::WindowQuery(const Box& window, std::vector<PointId>* out,
                            IndexStats* stats) const {
  if (stats != nullptr) ++stats->node_accesses;  // The grid directory itself.
  if (points_.empty() || !window.Intersects(world_)) return;
  const int x0 = CellX(window.min.x);
  const int x1 = CellX(window.max.x);
  const int y0 = CellY(window.min.y);
  const int y1 = CellY(window.max.y);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      if (stats != nullptr) ++stats->node_accesses;
      for (const PointId id : Cell(cx, cy)) {
        if (window.Contains(points_[id])) {
          out->push_back(id);
          if (stats != nullptr) ++stats->entries_reported;
        }
      }
    }
  }
}

void GridIndex::PolygonQuery(const PreparedArea& area,
                             std::vector<PointId>* out,
                             IndexStats* stats) const {
  if (stats != nullptr) ++stats->node_accesses;  // The grid directory itself.
  if (points_.empty() || !area.prepared()) return;
  const Box& window = area.bounds();
  if (!window.Intersects(world_)) return;
  const int x0 = CellX(window.min.x);
  const int x1 = CellX(window.max.x);
  const int y0 = CellY(window.min.y);
  const int y1 = CellY(window.max.y);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      const std::vector<PointId>& bucket = Cell(cx, cy);
      if (bucket.empty()) continue;
      if (stats != nullptr) ++stats->node_accesses;
      const Box cell_box{
          {world_.min.x + cx * cell_w_, world_.min.y + cy * cell_h_},
          {world_.min.x + (cx + 1) * cell_w_,
           world_.min.y + (cy + 1) * cell_h_}};
      switch (area.ClassifyBox(cell_box)) {
        case PreparedArea::Region::kOutside:
          break;
        case PreparedArea::Region::kInside:
          out->insert(out->end(), bucket.begin(), bucket.end());
          if (stats != nullptr) {
            stats->entries_reported += bucket.size();
            stats->bulk_accepted += bucket.size();
          }
          break;
        case PreparedArea::Region::kStraddling:
          for (const PointId id : bucket) {
            if (area.Contains(points_[id])) {
              out->push_back(id);
              if (stats != nullptr) ++stats->entries_reported;
            }
          }
          break;
      }
    }
  }
}

void GridIndex::KNearestNeighbors(const Point& q, std::size_t k,
                                  std::vector<PointId>* out,
                                  IndexStats* stats) const {
  if (points_.empty() || k == 0) return;
  // Ring expansion around the query's cell: scan cells at growing
  // Chebyshev radius r, stopping once the current k-th best distance beats
  // the lower bound (r-1) * min(cell_w, cell_h) of everything on ring r
  // and beyond. (The bound also holds for queries outside the grid, whose
  // starting cell is clamped: they are at least that far from ring r.)
  const int qcx = CellX(q.x);
  const int qcy = CellY(q.y);
  using Candidate = std::pair<double, PointId>;  // Max-heap by distance.
  std::priority_queue<Candidate> heap;
  auto consider_cell = [&](int cx, int cy) {
    if (cx < 0 || cy < 0 || cx >= nx_ || cy >= ny_) return;
    if (stats != nullptr) ++stats->node_accesses;
    for (const PointId id : Cell(cx, cy)) {
      const double d = SquaredDistance(points_[id], q);
      if (heap.size() < k) {
        heap.push({d, id});
      } else if (d < heap.top().first) {
        heap.pop();
        heap.push({d, id});
      }
    }
  };
  const double cell_min = std::min(cell_w_, cell_h_);
  const int max_r = std::max(nx_, ny_);
  for (int r = 0; r <= max_r; ++r) {
    if (heap.size() == k && r >= 2) {
      const double ring_lb = (r - 1) * cell_min;
      if (ring_lb * ring_lb >= heap.top().first) break;
    }
    if (r == 0) {
      consider_cell(qcx, qcy);
    } else {
      for (int dx = -r; dx <= r; ++dx) {
        consider_cell(qcx + dx, qcy - r);
        consider_cell(qcx + dx, qcy + r);
      }
      for (int dy = -r + 1; dy <= r - 1; ++dy) {
        consider_cell(qcx - r, qcy + dy);
        consider_cell(qcx + r, qcy + dy);
      }
    }
  }
  // Emit ascending by distance.
  std::vector<Candidate> found(heap.size());
  for (std::size_t i = found.size(); i-- > 0;) {
    found[i] = heap.top();
    heap.pop();
  }
  for (const Candidate& c : found) {
    out->push_back(c.second);
    if (stats != nullptr) ++stats->entries_reported;
  }
}

PointId GridIndex::NearestNeighbor(const Point& q, IndexStats* stats) const {
  std::vector<PointId> out;
  KNearestNeighbors(q, 1, &out, stats);
  return out.empty() ? kInvalidPointId : out[0];
}

}  // namespace vaq
