#ifndef VAQ_INDEX_RTREE_H_
#define VAQ_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace vaq {

/// R-tree over points (Guttman 1984), the index both the paper's methods
/// build on: the traditional area query issues `WindowQuery(MBR(A))` against
/// it, and the Voronoi-based method issues a single `NearestNeighbor` call
/// to find its seed.
///
/// * dynamic inserts use ChooseLeaf by least area enlargement and the
///   quadratic split;
/// * `Build()` bulk-loads with Sort-Tile-Recursive (Leutenegger et al.),
///   producing near-100% leaf utilisation — this matches how an experiment
///   database would be loaded;
/// * nearest-neighbour search is best-first over MINDIST
///   (Hjaltason & Samet 1999).
class RTree : public SpatialIndex {
 public:
  /// Node-split algorithm used on dynamic-insert overflow (Guttman 1984):
  /// the quadratic split optimises dead area at O(M^2) per split; the
  /// linear split picks extreme seeds per axis and distributes the rest in
  /// one pass. Bulk loads (`Build`) never split. Benchmarked in
  /// bench_ablation_rtree_split.
  enum class SplitStrategy { kQuadratic, kLinear };

  /// `max_entries` is the node capacity M; `min_entries` the underflow
  /// bound m (only used by splits; this library does not implement delete).
  /// Preconditions: `max_entries >= 4`, `2 <= min_entries <= max_entries/2`.
  explicit RTree(int max_entries = 16, int min_entries = 6,
                 SplitStrategy split = SplitStrategy::kQuadratic);

  void Build(const std::vector<Point>& points) override;
  /// Hilbert-packed bulk load: the input is promised to be in
  /// space-filling-curve order, so consecutive runs of `max_entries`
  /// points become leaves directly — no sorting at any level. One O(n)
  /// pass per level versus STR's two O(n log n) sorts, with leaf MBRs
  /// of comparable tightness (curve runs are spatially compact).
  void BuildClustered(const std::vector<Point>& points) override;
  std::size_t size() const override { return count_; }
  void WindowQuery(const Box& window, std::vector<PointId>* out,
                   IndexStats* stats = nullptr) const override;
  void PolygonQuery(const PreparedArea& area, std::vector<PointId>* out,
                    IndexStats* stats = nullptr) const override;
  PointId NearestNeighbor(const Point& q,
                          IndexStats* stats = nullptr) const override;
  void KNearestNeighbors(const Point& q, std::size_t k,
                         std::vector<PointId>* out,
                         IndexStats* stats = nullptr) const override;
  std::string_view Name() const override { return "rtree"; }

  /// Dynamic insert (Guttman). Usable to grow a bulk-loaded tree.
  void Insert(const Point& p, PointId id);

  /// Height of the tree (1 = root is a leaf); 0 when empty.
  int Height() const;

  /// Validates structural invariants (bounds containment, entry counts);
  /// used by tests. Returns false and leaves a message in `*why` on failure.
  bool CheckInvariants(std::string* why) const;

 private:
  struct Entry {
    Box box;        // Degenerate box of the point for leaves; child MBR
                    // for internal nodes.
    std::int32_t id;  // PointId for leaves; child node index otherwise.
  };
  struct Node {
    Box bounds;
    bool leaf = true;
    std::vector<Entry> entries;
  };

  std::int32_t NewNode(bool leaf);
  void RecomputeBounds(std::int32_t node_id);
  /// Emits every point of `node_id`'s subtree without geometric tests
  /// (bulk accept of a subtree fully inside the query polygon).
  void EmitSubtree(std::int32_t node_id, std::vector<PointId>* out,
                   IndexStats* stats) const;
  std::int32_t ChooseLeaf(std::int32_t node_id, const Box& box,
                          std::vector<std::int32_t>* path) const;
  /// Splits `node_id` (which overflowed) in place; returns the new sibling.
  std::int32_t SplitNode(std::int32_t node_id);
  /// PickSeeds variants: fill `*seed_a`/`*seed_b` with the two seed
  /// positions within `entries`.
  void PickSeedsQuadratic(const std::vector<Entry>& entries,
                          std::size_t* seed_a, std::size_t* seed_b) const;
  void PickSeedsLinear(const std::vector<Entry>& entries, std::size_t* seed_a,
                       std::size_t* seed_b) const;
  void InsertEntry(const Entry& entry);

  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  std::size_t count_ = 0;
  int max_entries_;
  int min_entries_;
  SplitStrategy split_;
};

}  // namespace vaq

#endif  // VAQ_INDEX_RTREE_H_
