#ifndef VAQ_INDEX_SPATIAL_INDEX_H_
#define VAQ_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

class PreparedArea;

/// Identifier of a point stored in a spatial index. Indexes in this library
/// store lightweight (point, id) entries; the id refers back into the
/// caller's point table (see `PointDatabase`).
using PointId = std::uint32_t;

/// Marker for "no point found".
inline constexpr PointId kInvalidPointId = 0xFFFFFFFFu;

/// Counters that approximate the IO behaviour of a disk-resident index:
/// every visited index node counts as one page access, every reported entry
/// as one object fetch. The paper's framing of area queries as IO-intensive
/// makes these the fairest cost proxy alongside wall-clock time.
///
/// Accounting is per call: pass an `IndexStats*` to a query operation and
/// it is incremented (not reset) by that operation. Keeping the counters
/// caller-owned — rather than a mutable member of the index — is what lets
/// one index instance serve concurrent queries without a data race; each
/// `QueryContext` carries its own instance.
struct IndexStats {
  std::uint64_t node_accesses = 0;
  std::uint64_t entries_reported = 0;
  /// Of `entries_reported`, how many were emitted by bulk-accepting a
  /// subtree whose MBR lies fully inside a query polygon (`PolygonQuery`)
  /// — no per-point geometry test was run on them.
  std::uint64_t bulk_accepted = 0;

  void Reset() { *this = IndexStats{}; }
};

/// Abstract interface shared by every point index in `src/index/`.
///
/// The paper's two area-query implementations consume exactly two
/// operations from this interface: `WindowQuery` (the traditional filter)
/// and `NearestNeighbor` (the Voronoi method's seed lookup). The other
/// operations round out the library and power the ablation benchmarks.
///
/// All query operations are const and touch no shared mutable state, so a
/// built index may be queried from any number of threads concurrently.
/// `Build`/insert operations are not thread-safe against queries.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Bulk-loads the index from `points`; ids are assigned as positions in
  /// the vector. Replaces any previous content.
  virtual void Build(const std::vector<Point>& points) = 0;

  /// Bulk-loads from a vector the caller promises is already spatially
  /// clustered (consecutive positions ≈ spatial neighbours, e.g.
  /// Hilbert-curve order — what `PointDatabase` stores). Indexes that can
  /// exploit the ordering override this to pack consecutive runs directly
  /// into leaves, skipping their own sorting passes; the default just
  /// forwards to `Build`. Results of every query operation are identical
  /// either way.
  virtual void BuildClustered(const std::vector<Point>& points) {
    Build(points);
  }

  /// Number of indexed points.
  virtual std::size_t size() const = 0;

  /// Appends the ids of all points inside `window` (borders inclusive)
  /// to `out`, in unspecified order. If `stats` is non-null, the call's IO
  /// counters are added to it.
  virtual void WindowQuery(const Box& window, std::vector<PointId>* out,
                           IndexStats* stats = nullptr) const = 0;

  /// Polygon-aware filter+refine in one traversal: appends the ids of all
  /// points inside the prepared query polygon (boundary inclusive, exactly
  /// `Polygon::Contains` semantics) to `out`, in unspecified order.
  ///
  /// Implementations classify each subtree/cell MBR against the polygon:
  /// *outside* subtrees are pruned without descending (the window query
  /// would have visited those inside MBR(A) \ A), *inside* subtrees are
  /// bulk-accepted with no per-point validation (`stats->bulk_accepted`),
  /// and only *straddling* leaves run the O(1)/O(log m) prepared point
  /// test. `area` must be prepared over the query polygon.
  virtual void PolygonQuery(const PreparedArea& area,
                            std::vector<PointId>* out,
                            IndexStats* stats = nullptr) const = 0;

  /// Returns the id of the point closest to `q` (ties broken arbitrarily),
  /// or `kInvalidPointId` if the index is empty.
  virtual PointId NearestNeighbor(const Point& q,
                                  IndexStats* stats = nullptr) const = 0;

  /// Appends the ids of the `k` points closest to `q` to `out`, ordered by
  /// increasing distance. Returns fewer if the index holds fewer points.
  virtual void KNearestNeighbors(const Point& q, std::size_t k,
                                 std::vector<PointId>* out,
                                 IndexStats* stats = nullptr) const = 0;

  /// Human-readable index name for benchmark tables.
  virtual std::string_view Name() const = 0;
};

}  // namespace vaq

#endif  // VAQ_INDEX_SPATIAL_INDEX_H_
