#include "core/point_database.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "delaunay/hilbert.h"

namespace vaq {

namespace {

/// Permutes `points` into Hilbert-curve order over their bounding box and
/// records the internal→original mapping in `*to_original`.
std::vector<Point> HilbertCluster(std::vector<Point> points,
                                  std::vector<PointId>* to_original) {
  *to_original = HilbertOrder(points);
  std::vector<Point> clustered;
  clustered.reserve(points.size());
  for (const PointId original : *to_original) {
    clustered.push_back(points[original]);
  }
  return clustered;
}

}  // namespace

void PointDatabase::SimulateFetchLatency(std::size_t n) const {
  const auto wait = std::chrono::nanoseconds(
      static_cast<long>(simulated_fetch_ns_ * static_cast<double>(n)));
  if (latency_model_ == FetchLatencyModel::kSleep) {
    std::this_thread::sleep_for(wait);
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + wait;
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: models synchronous object IO.
  }
}

PointDatabase::PointDatabase(std::vector<Point> points, Options options)
    : points_(HilbertCluster(std::move(points), &to_original_)),
      rtree_(options.rtree_max_entries, options.rtree_min_entries),
      delaunay_(points_, /*hilbert_sorted=*/true) {
  to_internal_.resize(points_.size());
  xs_.resize(points_.size());
  ys_.resize(points_.size());
  for (PointId id = 0; id < points_.size(); ++id) {
    to_internal_[to_original_[id]] = id;
    xs_[id] = points_[id].x;
    ys_[id] = points_[id].y;
    bounds_.ExpandToInclude(points_[id]);
  }
  // The array is already Hilbert-clustered, so the R-tree packs
  // consecutive runs into leaves instead of re-sorting (see
  // `RTree::BuildClustered`).
  rtree_.BuildClustered(points_);
}

const VoronoiDiagram& PointDatabase::voronoi() const {
  std::call_once(voronoi_once_, [this] {
    // Inflate the clip box a little so border cells keep a margin around
    // their generators.
    Box clip = bounds_;
    const double dx = std::max(bounds_.Width(), 1e-9) * 0.05;
    const double dy = std::max(bounds_.Height(), 1e-9) * 0.05;
    clip.min.x -= dx;
    clip.min.y -= dy;
    clip.max.x += dx;
    clip.max.y += dy;
    voronoi_ = std::make_unique<VoronoiDiagram>(delaunay_, clip);
  });
  return *voronoi_;
}

}  // namespace vaq
