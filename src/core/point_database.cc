#include "core/point_database.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <thread>
#include <utility>

#include "delaunay/hilbert.h"
#include "storage/page_format.h"

namespace vaq {

namespace {

std::string DuplicateMessage(const Point& p, std::size_t first,
                             std::size_t second) {
  std::ostringstream os;
  os.precision(17);
  os << "PointDatabase: duplicate point (" << p.x << ", " << p.y
     << ") at input positions " << first << " and " << second
     << " (points must be pairwise distinct)";
  return os.str();
}

/// Enforces the pairwise-distinct precondition: a lexicographic sort of
/// the input positions brings equal coordinates together, so one adjacent
/// scan finds any duplicate pair — and reports it in the caller's frame of
/// reference (input positions), before the Hilbert permutation renames
/// everything. O(n log n), same complexity class as the build itself.
/// Non-finite coordinates are rejected first: NaN breaks the strict weak
/// ordering the sort needs (and NaN != NaN would let duplicates through),
/// and infinities collapse the Hilbert/bounding-box arithmetic.
std::vector<Point> CheckPairwiseDistinct(std::vector<Point> points) {
  CheckFiniteAndDistinct(points);
  return points;
}

/// Permutes `points` into Hilbert-curve order over their bounding box and
/// records the internal→original mapping in `*to_original`.
std::vector<Point> HilbertCluster(std::vector<Point> points,
                                  std::vector<PointId>* to_original) {
  *to_original = HilbertOrder(points);
  std::vector<Point> clustered;
  clustered.reserve(points.size());
  for (const PointId original : *to_original) {
    clustered.push_back(points[original]);
  }
  return clustered;
}

}  // namespace

void CheckFiniteAndDistinct(const std::vector<Point>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!std::isfinite(points[i].x) || !std::isfinite(points[i].y)) {
      std::ostringstream os;
      os << "PointDatabase: non-finite coordinate at input position " << i
         << " (coordinates must be finite)";
      throw std::invalid_argument(os.str());
    }
  }
  std::vector<std::uint32_t> order(points.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (points[a] != points[b]) return points[a] < points[b];
              return a < b;  // Deterministic report: lowest pair first.
            });
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (points[order[i - 1]] == points[order[i]]) {
      throw DuplicatePointError(points[order[i]], order[i - 1], order[i]);
    }
  }
}

DuplicatePointError::DuplicatePointError(const Point& point,
                                         std::size_t first_index,
                                         std::size_t second_index)
    : std::invalid_argument(
          DuplicateMessage(point, first_index, second_index)),
      point_(point),
      first_index_(first_index),
      second_index_(second_index) {}

void PointDatabase::SimulateFetchLatency(std::size_t n) const {
  double wait_ns = simulated_fetch_ns_ * static_cast<double>(n);
  if (fetch_injector_ != nullptr &&
      fetch_injector_->FetchSpikes(
          fetch_seq_.fetch_add(1, std::memory_order_relaxed))) {
    // A spiked fetch pays spike_ms on top of its modelled wait. The
    // sequence number depends on scheduling, which is fine here: spikes
    // perturb latency only, never results, so replay determinism is not
    // required of this site (unlike the page-keyed storage faults).
    wait_ns += fetch_injector_->spec().spike_ms * 1e6;
  }
  const auto wait = std::chrono::nanoseconds(static_cast<long>(wait_ns));
  if (latency_model_ == FetchLatencyModel::kSleep) {
    std::this_thread::sleep_for(wait);
    return;
  }
  // Busy-wait model, hybridised above the cutoff: a multi-hundred-us
  // charge (typically a batched 256-block at ~1 us/object) used to spin
  // the whole wait, occupying a core inside the timed region and
  // serialising the very IO overlap the blocking benches measure. Sleep
  // off everything but a spin tail sized to the scheduler's wakeup
  // jitter; if the sleep overshoots the deadline, the spin loop exits
  // immediately (error bounded by the overshoot, a few percent of a
  // cutoff-sized wait). See the FetchLatencyModel docs for granularity.
  const auto deadline = std::chrono::steady_clock::now() + wait;
  if (wait_ns >= kSpinSleepCutoffNs) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<long>(wait_ns - kSpinTailNs)));
  }
  while (std::chrono::steady_clock::now() < deadline) {
    // Spin: models synchronous object IO, precise to the clock read.
  }
}

PointDatabase::PointDatabase(std::vector<Point> points, Options options)
    : points_(HilbertCluster(options.skip_distinctness_check
                                 ? std::move(points)
                                 : CheckPairwiseDistinct(std::move(points)),
                             &to_original_)),
      rtree_(options.rtree_max_entries, options.rtree_min_entries),
      delaunay_(points_, /*hilbert_sorted=*/true) {
  to_internal_.resize(points_.size());
  xs_.resize(points_.size());
  ys_.resize(points_.size());
  for (PointId id = 0; id < points_.size(); ++id) {
    to_internal_[to_original_[id]] = id;
    xs_[id] = points_[id].x;
    ys_[id] = points_[id].y;
    bounds_.ExpandToInclude(points_[id]);
  }
  // The array is already Hilbert-clustered, so the R-tree packs
  // consecutive runs into leaves instead of re-sorting (see
  // `RTree::BuildClustered`).
  rtree_.BuildClustered(points_);
  options_storage_ = options.storage;
  // Programmatic spec wins; otherwise VAQ_FAULT_SPEC arms the fault
  // layer, so every existing harness doubles as a fault soak with no code
  // changes (the CI fault leg relies on this). The resolved spec flows
  // into the page store below and drives the fetch-spike injector on
  // every backend.
  if (!options_storage_.fault.enabled) {
    options_storage_.fault = FaultSpec::FromEnv();
  }
  if (options_storage_.fault.enabled &&
      options_storage_.fault.fetch_spike_rate > 0.0) {
    fetch_injector_ = std::make_unique<FaultInjector>(options_storage_.fault);
  }
  if (options_storage_.backend != StorageBackend::kInMemory &&
      !points_.empty()) {
    InitPagedStorage();
  }
}

void PointDatabase::InitPagedStorage() {
  // Spill the Hilbert-ordered SoA streams to a page file and serve every
  // fetch through the LRU page cache. The file is unlinked as soon as it
  // is mapped: the mapping keeps it alive for this database's lifetime
  // and nothing survives a crash — spill files are an implementation
  // detail, not an artifact (use tools/vaq_pack for durable page files).
  static std::atomic<std::uint64_t> spill_counter{0};
  const std::string dir =
      options_storage_.spill_dir.empty()
          ? std::filesystem::temp_directory_path().string()
          : options_storage_.spill_dir;
  std::ostringstream name;
  name << dir << "/vaq-spill-" << ::getpid() << "-"
       << spill_counter.fetch_add(1) << ".vpag";
  const std::string path = name.str();
  WritePageFile(path, xs_.data(), ys_.data(), points_.size(),
                options_storage_.page_size_bytes);
  PageStore::Options store_options;
  store_options.cache_pages = options_storage_.cache_pages;
  store_options.verify_checksum = options_storage_.verify_checksum;
  store_options.miss_mode = options_storage_.miss_mode;
  store_options.required_page_size_bytes = options_storage_.page_size_bytes;
  store_options.use_uring =
      options_storage_.backend == StorageBackend::kMmapUring;
  store_options.fault = options_storage_.fault;
  try {
    page_store_ = PageStore::Open(path, store_options);
  } catch (...) {
    ::unlink(path.c_str());
    throw;
  }
  ::unlink(path.c_str());
}

const VoronoiDiagram& PointDatabase::voronoi() const {
  std::call_once(voronoi_once_, [this] {
    // Inflate the clip box a little so border cells keep a margin around
    // their generators.
    Box clip = bounds_;
    const double dx = std::max(bounds_.Width(), 1e-9) * 0.05;
    const double dy = std::max(bounds_.Height(), 1e-9) * 0.05;
    clip.min.x -= dx;
    clip.min.y -= dy;
    clip.max.x += dx;
    clip.max.y += dy;
    voronoi_ = std::make_unique<VoronoiDiagram>(delaunay_, clip);
  });
  return *voronoi_;
}

}  // namespace vaq
