#include "core/point_database.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace vaq {

void PointDatabase::SimulateFetchLatency() const {
  const auto wait =
      std::chrono::nanoseconds(static_cast<long>(simulated_fetch_ns_));
  if (latency_model_ == FetchLatencyModel::kSleep) {
    std::this_thread::sleep_for(wait);
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + wait;
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy-wait: models synchronous object IO.
  }
}

PointDatabase::PointDatabase(std::vector<Point> points, Options options)
    : points_(std::move(points)),
      rtree_(options.rtree_max_entries, options.rtree_min_entries),
      delaunay_(points_) {
  for (const Point& p : points_) bounds_.ExpandToInclude(p);
  rtree_.Build(points_);
}

const VoronoiDiagram& PointDatabase::voronoi() const {
  std::call_once(voronoi_once_, [this] {
    // Inflate the clip box a little so border cells keep a margin around
    // their generators.
    Box clip = bounds_;
    const double dx = std::max(bounds_.Width(), 1e-9) * 0.05;
    const double dy = std::max(bounds_.Height(), 1e-9) * 0.05;
    clip.min.x -= dx;
    clip.min.y -= dy;
    clip.max.x += dx;
    clip.max.y += dy;
    voronoi_ = std::make_unique<VoronoiDiagram>(delaunay_, clip);
  });
  return *voronoi_;
}

}  // namespace vaq
