#ifndef VAQ_CORE_BATCH_REFINE_H_
#define VAQ_CORE_BATCH_REFINE_H_

#include <algorithm>
#include <cstddef>

#include "core/point_database.h"
#include "core/query_stats.h"
#include "geometry/prepared_area.h"

namespace vaq {

/// Block size of the batched refine kernels: big enough to amortise loop
/// overhead and vectorise the grid classification, small enough that the
/// block's SoA arrays stay in L1.
inline constexpr std::size_t kRefineBlock = 256;

/// Boundary resolution both kernels below share: `inside[j]` becomes the
/// exact `Contains` verdict — O(1) from the grid class away from the
/// boundary band, the exact point test only inside it. Any tuning of this
/// step (epsilons, fast paths) must stay common to the static refine and
/// dynamic delta paths, which are required to agree bit-for-bit.
inline void ResolveInsideFlags(const PreparedArea& prep, const double* xs,
                               const double* ys, std::size_t m,
                               const unsigned char* cls, bool* inside) {
  for (std::size_t j = 0; j < m; ++j) {
    inside[j] = cls[j] == PreparedArea::kPointInside ||
                (cls[j] == PreparedArea::kPointBoundary &&
                 prep.Contains({xs[j], ys[j]}));
  }
}

/// The batched refine kernel every query method shares: streams the
/// candidate ids through the database's batched object-IO boundary in
/// `kRefineBlock`-sized blocks — gather coordinates (`FetchPoints`,
/// prefetched), bulk-classify against the prepared grid
/// (`ClassifyPoints`), resolve boundary-cell points with the exact
/// row-local test — and hands each block to
///
///   per_block(const PointId* ids, std::size_t m,
///             const double* xs, const double* ys, const bool* inside)
///
/// where `inside[j]` is exactly `prep.polygon().Contains({xs[j], ys[j]})`.
/// Callers only consume the verdicts (filter-refine pushes hits, the
/// flood also expands hits' neighbours); the classification logic and its
/// tuning live here once.
template <typename Fn>
void ForEachRefinedBlock(const PointDatabase& db, const PreparedArea& prep,
                         const PointId* ids, std::size_t n,
                         QueryStats* stats, Fn&& per_block) {
  double xs[kRefineBlock];
  double ys[kRefineBlock];
  unsigned char cls[kRefineBlock];
  bool inside[kRefineBlock];
  for (std::size_t base = 0; base < n; base += kRefineBlock) {
    const std::size_t m = std::min(kRefineBlock, n - base);
    db.FetchPoints(ids + base, m, xs, ys, stats);
    prep.ClassifyPoints(xs, ys, m, cls);
    ResolveInsideFlags(prep, xs, ys, m, cls, inside);
    per_block(ids + base, m, xs, ys, inside);
  }
}

/// The same classification kernel over caller-owned SoA coordinate streams
/// — no id gather and no object-IO charge. This is the delta-refine pass
/// of the dynamic database: the delta buffer already *is* SoA and memory-
/// resident (a memtable), so the only work left is the blocked grid
/// classification plus exact boundary resolution. Hands each block to
///
///   per_block(std::size_t offset, std::size_t m, const bool* inside)
///
/// where `inside[j]` is `prep.polygon().Contains({xs[offset+j], ...})`.
template <typename Fn>
void ForEachClassifiedBlock(const PreparedArea& prep, const double* xs,
                            const double* ys, std::size_t n,
                            Fn&& per_block) {
  unsigned char cls[kRefineBlock];
  bool inside[kRefineBlock];
  for (std::size_t base = 0; base < n; base += kRefineBlock) {
    const std::size_t m = std::min(kRefineBlock, n - base);
    prep.ClassifyPoints(xs + base, ys + base, m, cls);
    ResolveInsideFlags(prep, xs + base, ys + base, m, cls, inside);
    per_block(base, m, inside);
  }
}

}  // namespace vaq

#endif  // VAQ_CORE_BATCH_REFINE_H_
