#ifndef VAQ_CORE_BATCH_REFINE_H_
#define VAQ_CORE_BATCH_REFINE_H_

#include <algorithm>
#include <cstddef>

#include "core/cancel.h"
#include "core/point_database.h"
#include "core/query_stats.h"
#include "geometry/simd/polygon_kernel.h"

namespace vaq {

/// Block size of the batched refine kernels: big enough to amortise loop
/// overhead and fill the vector lanes of the classification kernel, small
/// enough that the block's SoA arrays stay in L1. Matches the
/// `PolygonKernel` internal block, so each refine block is one kernel
/// invocation.
inline constexpr std::size_t kRefineBlock = 256;

/// The batched refine kernel every query method shares: streams the
/// candidate ids through the database's batched object-IO boundary in
/// `kRefineBlock`-sized blocks — gather coordinates (`FetchPoints`,
/// prefetched), then batch-classify through the query-specialised
/// `PolygonKernel` (grid classes + masked boundary-band resolve, or the
/// convex/small-m ring kernels; see `src/geometry/simd/`) — and hands each
/// block to
///
///   per_block(const PointId* ids, std::size_t m,
///             const double* xs, const double* ys, const bool* inside)
///
/// where `inside[j]` is exactly `polygon.Contains({xs[j], ys[j]})` for the
/// kernel's polygon. Callers only consume the verdicts (filter-refine
/// pushes hits, the flood also expands hits' neighbours); the
/// classification logic and its tuning live in the kernel once.
///
/// The `n % kRefineBlock` tail is not a special case: partial blocks run
/// through the same masked kernel entry as full ones (`ContainsBatch`
/// handles any block length), so both arms execute one code path.
///
/// Records which kernel ran in `stats->kernel_kind` (a bitmask, OR-merged
/// across blocks, legs and repetitions).
///
/// `cancel` is the query's cooperative cancellation token (null = none,
/// one pointer test per block): it is polled once per `kRefineBlock`, so
/// a cancelled or deadline-expired query aborts with `QueryAbortedError`
/// after at most one block's worth of IO + classification — the O(block)
/// abort bound of DESIGN.md §12. The block boundary is the *only* poll
/// site on purpose: it is where the kernels already break their streams,
/// so the happy path pays nothing inside the lanes.
template <typename Fn>
void ForEachRefinedBlock(const PointDatabase& db, const PolygonKernel& kernel,
                         const PointId* ids, std::size_t n, QueryStats* stats,
                         const CancelToken* cancel, Fn&& per_block) {
  if (n == 0) return;
  if (stats != nullptr) stats->kernel_kind |= kernel.stats_mask();
  double xs[kRefineBlock];
  double ys[kRefineBlock];
  bool inside[kRefineBlock];
  for (std::size_t base = 0; base < n; base += kRefineBlock) {
    if (cancel != nullptr) cancel->Check();
    const std::size_t m = std::min(kRefineBlock, n - base);
    db.FetchPoints(ids + base, m, xs, ys, stats);
    kernel.ContainsBatch(xs, ys, m, inside);
    per_block(ids + base, m, xs, ys, inside);
  }
}

/// The same classification kernel over caller-owned SoA coordinate streams
/// — no id gather and no object-IO charge. This is the delta-refine pass
/// of the dynamic database: the delta buffer already *is* SoA and memory-
/// resident (a memtable), so the only work left is the blocked batch
/// containment test. Hands each block to
///
///   per_block(std::size_t offset, std::size_t m, const bool* inside)
///
/// where `inside[j]` is `polygon.Contains({xs[offset+j], ys[offset+j]})`.
/// The caller owns the stats slot and is expected to OR
/// `kernel.stats_mask()` into `QueryStats::kernel_kind` itself.
template <typename Fn>
void ForEachClassifiedBlock(const PolygonKernel& kernel, const double* xs,
                            const double* ys, std::size_t n,
                            Fn&& per_block) {
  bool inside[kRefineBlock];
  for (std::size_t base = 0; base < n; base += kRefineBlock) {
    const std::size_t m = std::min(kRefineBlock, n - base);
    kernel.ContainsBatch(xs + base, ys + base, m, inside);
    per_block(base, m, inside);
  }
}

}  // namespace vaq

#endif  // VAQ_CORE_BATCH_REFINE_H_
