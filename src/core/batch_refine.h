#ifndef VAQ_CORE_BATCH_REFINE_H_
#define VAQ_CORE_BATCH_REFINE_H_

#include <algorithm>
#include <cstddef>

#include "core/point_database.h"
#include "core/query_stats.h"
#include "geometry/prepared_area.h"

namespace vaq {

/// Block size of the batched refine kernels: big enough to amortise loop
/// overhead and vectorise the grid classification, small enough that the
/// block's SoA arrays stay in L1.
inline constexpr std::size_t kRefineBlock = 256;

/// The batched refine kernel every query method shares: streams the
/// candidate ids through the database's batched object-IO boundary in
/// `kRefineBlock`-sized blocks — gather coordinates (`FetchPoints`,
/// prefetched), bulk-classify against the prepared grid
/// (`ClassifyPoints`), resolve boundary-cell points with the exact
/// row-local test — and hands each block to
///
///   per_block(const PointId* ids, std::size_t m,
///             const double* xs, const double* ys, const bool* inside)
///
/// where `inside[j]` is exactly `prep.polygon().Contains({xs[j], ys[j]})`.
/// Callers only consume the verdicts (filter-refine pushes hits, the
/// flood also expands hits' neighbours); the classification logic and its
/// tuning live here once.
template <typename Fn>
void ForEachRefinedBlock(const PointDatabase& db, const PreparedArea& prep,
                         const PointId* ids, std::size_t n,
                         QueryStats* stats, Fn&& per_block) {
  double xs[kRefineBlock];
  double ys[kRefineBlock];
  unsigned char cls[kRefineBlock];
  bool inside[kRefineBlock];
  for (std::size_t base = 0; base < n; base += kRefineBlock) {
    const std::size_t m = std::min(kRefineBlock, n - base);
    db.FetchPoints(ids + base, m, xs, ys, stats);
    prep.ClassifyPoints(xs, ys, m, cls);
    for (std::size_t j = 0; j < m; ++j) {
      inside[j] = cls[j] == PreparedArea::kPointInside ||
                  (cls[j] == PreparedArea::kPointBoundary &&
                   prep.Contains({xs[j], ys[j]}));
    }
    per_block(ids + base, m, xs, ys, inside);
  }
}

}  // namespace vaq

#endif  // VAQ_CORE_BATCH_REFINE_H_
