#ifndef VAQ_CORE_CANCEL_H_
#define VAQ_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace vaq {

/// Thrown by a query that observed its `CancelToken` expired — either an
/// explicit `Cancel()` or a missed deadline. A *typed* abort: the engine
/// delivers it through the query's future, the sharded gather can switch
/// on it for retry/degraded handling, and the CLI maps it to its own exit
/// code. Carries no partial results by design — an aborted query's output
/// is undefined, so callers only ever see all-or-nothing.
class QueryAbortedError : public std::runtime_error {
 public:
  enum class Reason { kCancelled, kDeadline };

  explicit QueryAbortedError(Reason reason)
      : std::runtime_error(reason == Reason::kDeadline
                               ? "query aborted: deadline exceeded"
                               : "query aborted: cancelled"),
        reason_(reason) {}

  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

/// Cooperative cancellation + deadline for one query execution.
///
/// Queries never block on the token; they poll it at block boundaries
/// (every `kRefineBlock` candidates in the shared refine kernel, every
/// generation of the Voronoi flood), so an abort is observed within
/// O(one block) of work after it becomes effective — the deadline bound
/// `bench_fault_tail` measures.
///
/// Tokens chain: a scatter leg's token carries a pointer to the parent
/// query's token, so cancelling (or timing out) the parent aborts every
/// leg without touching them individually. The parent must outlive the
/// child's use — the scatter gather guarantees it by draining every leg
/// before its own frame unwinds.
///
/// Thread safety: `Cancel()`/`Expired()` may race freely (one relaxed
/// atomic); `SetDeadline`/`set_parent` are configuration and must happen
/// before the token is shared.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Requests cancellation; takes effect at the next poll.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  void SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfterMs(double ms) {
    SetDeadline(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms)));
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Links this token under `parent`: the child is expired whenever the
  /// parent is. Null unlinks.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// Whether the query should stop: cancelled, past deadline, or an
  /// ancestor expired. One relaxed load when nothing else is configured;
  /// the clock read happens only for tokens that carry a deadline.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) return true;
    return parent_ != nullptr && parent_->Expired();
  }

  /// Polls and throws the matching `QueryAbortedError` when expired — the
  /// check the kernels place at block boundaries.
  void Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw QueryAbortedError(QueryAbortedError::Reason::kCancelled);
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      throw QueryAbortedError(QueryAbortedError::Reason::kDeadline);
    }
    if (parent_ != nullptr) parent_->Check();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace vaq

#endif  // VAQ_CORE_CANCEL_H_
