#ifndef VAQ_CORE_POINT_DATABASE_H_
#define VAQ_CORE_POINT_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/query_stats.h"
#include "delaunay/triangulation.h"
#include "delaunay/voronoi.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "index/rtree.h"
#include "storage/page_store.h"

namespace vaq {

/// Thrown by `PointDatabase` when the input violates the "points are
/// pairwise distinct" precondition. Feeding duplicate generators to the
/// Delaunay builder is undefined input, so the violation is diagnosed at
/// the construction boundary instead of corrupting the triangulation.
/// `first_index`/`second_index` are positions in the constructor's input
/// vector (the caller's frame of reference, before Hilbert relabelling),
/// so a file-driven caller can point at the offending rows.
class DuplicatePointError : public std::invalid_argument {
 public:
  DuplicatePointError(const Point& point, std::size_t first_index,
                      std::size_t second_index);

  const Point& point() const { return point_; }
  std::size_t first_index() const { return first_index_; }
  std::size_t second_index() const { return second_index_; }

 private:
  Point point_;
  std::size_t first_index_;
  std::size_t second_index_;
};

/// Enforces the construction preconditions every database layer shares:
/// all coordinates finite (`std::invalid_argument` otherwise) and points
/// pairwise distinct (`DuplicatePointError` naming both input positions
/// otherwise). O(n log n). `PointDatabase` runs it at construction; the
/// sharded layer runs it once over the whole input *before* partitioning,
/// so a duplicate pair that would be split across shard boundaries is
/// still reported in the caller's frame of reference.
void CheckFiniteAndDistinct(const std::vector<Point>& points);

/// The "spatial database" of the paper's experiments: a set of distinct
/// points plus the two access structures both query methods share —
/// an R-tree (window queries and the seed NN lookup) and the Delaunay
/// triangulation (Voronoi-neighbour links).
///
/// **Hilbert-clustered storage.** Points are relabelled at construction:
/// the stored order (and therefore the `PointId` space every query
/// operates in) is Hilbert-curve order over the data bounding box, so id
/// proximity ≈ spatial proximity. Every structure built on top — the
/// R-tree leaves, the Delaunay CSR adjacency, the per-query visited
/// bitmap — inherits that locality: a query touching a spatially compact
/// region touches a compact id range, which is what keeps the Voronoi
/// flood's gathers cache-resident. The permutation back to the caller's
/// input order is kept for dataset IO round-trips (`OriginalId` /
/// `InternalId`).
///
/// Coordinates are stored both as the AoS `Point` vector (structure
/// walks, single-point reads) and as parallel SoA arrays `xs()`/`ys()`
/// that the batched refine kernels stream.
///
/// `FetchPoint` / `FetchPoints` are the accounting boundary for object
/// IO: every query implementation fetches candidate geometry through
/// them so that `QueryStats::geometry_loads` approximates the
/// object-level IO a disk-resident engine would pay.
class PointDatabase {
 public:
  struct Options {
    int rtree_max_entries = 16;
    int rtree_min_entries = 6;
    /// Skip the O(n) finiteness and O(n log n) pairwise-distinct
    /// enforcement: the caller asserts the points are finite and
    /// distinct. Only for internal rebuild paths that maintain the
    /// invariants themselves (the dynamic layer's compaction); external
    /// construction should keep the checks.
    bool skip_distinctness_check = false;
    /// What backs the object-fetch boundary (`FetchPoint`/`FetchPoints`).
    /// The default in-memory backend reads the resident SoA arrays; the
    /// mmap backends spill the Hilbert-ordered coordinates to a page
    /// file at construction and serve every fetch through an explicit
    /// LRU page cache (see `PageStore` and DESIGN.md §10). The index and
    /// Delaunay structures stay resident either way — the paper's
    /// regime, where object *geometry* lives on secondary storage.
    StorageOptions storage;
  };

  /// Builds the database: Hilbert-relabels the points, bulk-loads the
  /// R-tree from the clustered array and triangulates.
  /// The points must be finite and pairwise distinct; a duplicate pair
  /// raises `DuplicatePointError` naming both input positions and a
  /// non-finite coordinate raises `std::invalid_argument` (the
  /// preconditions are enforced, not assumed).
  explicit PointDatabase(std::vector<Point> points)
      : PointDatabase(std::move(points), Options{}) {}
  PointDatabase(std::vector<Point> points, Options options);

  std::size_t size() const { return points_.size(); }

  /// The points in internal (Hilbert) order; `points()[id]` is the
  /// geometry of internal id `id`.
  const std::vector<Point>& points() const { return points_; }

  /// SoA coordinate arrays parallel to `points()` — the streams the
  /// batched refine kernels read.
  const double* xs() const { return xs_.data(); }
  const double* ys() const { return ys_.data(); }

  /// Position of internal id `id` in the constructor's input vector.
  PointId OriginalId(PointId id) const { return to_original_[id]; }
  /// Internal id of the point at position `original` of the input vector.
  PointId InternalId(PointId original) const { return to_internal_[original]; }
  /// The whole internal→original permutation (size() entries).
  const std::vector<PointId>& original_ids() const { return to_original_; }

  const Box& bounds() const { return bounds_; }

  const RTree& rtree() const { return rtree_; }
  const DelaunayTriangulation& delaunay() const { return delaunay_; }

  /// The explicit Voronoi diagram (cells clipped to a slightly inflated
  /// data bounding box). Built lazily on first use — only the cell-overlap
  /// expansion ablation and the examples/tests need it. The lazy build is
  /// guarded by a `std::once_flag`, so concurrent first calls from engine
  /// worker threads are safe.
  const VoronoiDiagram& voronoi() const;

  /// Fetches the geometry of point `id`, charging one geometry load to
  /// `stats` (if non-null) and paying the simulated fetch latency, if
  /// any. On a paged backend the read goes through the page cache (one
  /// page touch); returns by value so the result never aliases a cache
  /// frame a later fetch may evict.
  Point FetchPoint(PointId id, QueryStats* stats) const {
    if (stats != nullptr) ++stats->geometry_loads;
    if (simulated_fetch_ns_ > 0.0) SimulateFetchLatency(1);
    if (page_store_ != nullptr) return page_store_->GetPoint(id, stats);
    return points_[id];
  }

  /// Batched fetch: gathers the coordinates of `ids[0..n)` into the SoA
  /// output arrays, charging `n` geometry loads and paying the simulated
  /// latency for the whole batch coherently (one wait of n × the per-object
  /// latency instead of n clock round-trips — a disk engine would likewise
  /// coalesce a batch of object reads into one request queue submission).
  /// This is the accounting boundary the batch refine kernels stream
  /// through; the gather prefetches ahead, so a cache-hostile id sequence
  /// still pipelines its misses.
  void FetchPoints(const PointId* ids, std::size_t n, double* xs_out,
                   double* ys_out, QueryStats* stats) const {
    if (stats != nullptr) stats->geometry_loads += n;
    if (simulated_fetch_ns_ > 0.0) SimulateFetchLatency(n);
    if (page_store_ != nullptr) {
      // Page-granular gather: every distinct page run in the id sequence
      // is one cache touch (hit or miss); the Hilbert-clustered id space
      // keeps those runs long, so a spatially compact batch touches few
      // pages.
      page_store_->Gather(ids, n, xs_out, ys_out, stats);
      return;
    }
    const double* xs = xs_.data();
    const double* ys = ys_.data();
    for (std::size_t j = 0; j < n; ++j) {
#if defined(__GNUC__)
      if (j + 8 < n) {
        __builtin_prefetch(&xs[ids[j + 8]]);
        __builtin_prefetch(&ys[ids[j + 8]]);
      }
#endif
      xs_out[j] = xs[ids[j]];
      ys_out[j] = ys[ids[j]];
    }
  }

  /// Prefetch hint for an upcoming gather of `ids[0..n)` — a no-op on
  /// the in-memory backend, `madvise(MADV_WILLNEED)` (plus batched
  /// io_uring reads into the cache, when active) on the paged ones.
  /// Issued by the frontier-expansion loop for the generation it is
  /// about to stream and by the filter-refine path for its candidate
  /// list; never changes results or per-query touch accounting.
  void PrefetchPoints(const PointId* ids, std::size_t n) const {
    if (page_store_ != nullptr) page_store_->Prefetch(ids, n);
  }

  /// Charges `n` object fetches (geometry loads + simulated latency)
  /// without gathering coordinates — for bulk-accepted results whose
  /// geometry is returned wholesale and never individually inspected.
  /// Deliberately no page traffic on the paged backends either: the
  /// query returns ids, and a result set accepted without inspection
  /// needs no coordinate bytes — the charge models the object-IO a
  /// client materialising those objects would pay, not IO this query
  /// performs.
  void ChargeFetches(std::size_t n, QueryStats* stats) const {
    if (stats != nullptr) stats->geometry_loads += n;
    if (simulated_fetch_ns_ > 0.0 && n > 0) SimulateFetchLatency(n);
  }

  /// How a simulated object fetch spends its latency.
  ///
  /// **Granularity of the model.** A spin is accurate to the clock read
  /// (~20 ns), a `sleep_for` only to the scheduler's wakeup latency
  /// (tens of microseconds on a loaded host). The models therefore
  /// differ below ~100 us and converge above it — which is why kBusyWait
  /// hybridises: a charge at or above `kSpinSleepCutoffNs` gains nothing
  /// from spinning, it only burns a core inside the timed region (and,
  /// on the blocking-IO benches, steals cycles from the threads whose
  /// overlap is being measured). Such charges sleep off the bulk and
  /// spin only the last `kSpinTailNs` up to the deadline, keeping the
  /// sub-cutoff precision where it matters and the CPU free where it
  /// does not. Batched charges (`FetchPoints` of a 256-block at 1 us
  /// each = 256 us) are the common way a nominally sub-cutoff latency
  /// crosses the cutoff.
  enum class FetchLatencyModel {
    /// Spin on the clock up to `kSpinSleepCutoffNs` per charge; above
    /// it, sleep the bulk and spin the tail (see above). Keeps
    /// single-thread timings comparable at sub-microsecond latencies.
    kBusyWait,
    /// `std::this_thread::sleep_for` always. Models blocking IO
    /// faithfully: the worker yields the core, so concurrent queries
    /// overlap their waits and a thread pool shows real throughput
    /// scaling even on one core. Coarser (scheduler quantum) — use for
    /// latencies >= ~10us.
    kSleep,
  };

  /// Per-charge wait at which kBusyWait stops pure spinning (see the
  /// model docs above), and the stretch before the deadline it still
  /// spins to absorb the sleep's wakeup jitter.
  static constexpr double kSpinSleepCutoffNs = 200000.0;  // 200 us
  static constexpr double kSpinTailNs = 100000.0;         // 100 us

  /// Simulated per-object fetch latency in nanoseconds (default 0 = off).
  ///
  /// The paper evaluates on a disk-framed, interpreted (Python) stack where
  /// loading + validating one candidate dominates the query cost; in this
  /// in-memory C++ reproduction a validation costs ~85 ns, so index/graph
  /// overheads are no longer negligible. Setting a latency here charges
  /// every `FetchPoint` a wait of that length, restoring the paper's
  /// cost model (each candidate = one object IO). The table benches report
  /// both raw (0 ns) and IO-simulated runs; see DESIGN.md "Substitutions".
  ///
  /// Not thread-safe against in-flight queries: configure before handing
  /// the database to a `QueryEngine`.
  void set_simulated_fetch_ns(double ns) { simulated_fetch_ns_ = ns; }
  double simulated_fetch_ns() const { return simulated_fetch_ns_; }
  void set_fetch_latency_model(FetchLatencyModel m) { latency_model_ = m; }
  FetchLatencyModel fetch_latency_model() const { return latency_model_; }

  /// The configured storage backend (kInMemory unless Options selected a
  /// paged one — an empty database never spills, so this reports
  /// kInMemory for n == 0 regardless of the request).
  StorageBackend storage_backend() const {
    return page_store_ != nullptr ? options_storage_.backend
                                  : StorageBackend::kInMemory;
  }

  /// The page store behind a paged backend (null on kInMemory) — benches
  /// and tests read its lifetime counters and cache geometry.
  PageStore* page_store() const { return page_store_.get(); }

 private:
  void SimulateFetchLatency(std::size_t n) const;
  void InitPagedStorage();

  // Initialised first (declaration order): the points_ initializer fills it
  // as a side effect of the Hilbert permutation.
  std::vector<PointId> to_original_;
  std::vector<Point> points_;
  std::vector<PointId> to_internal_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  Box bounds_;
  RTree rtree_;
  DelaunayTriangulation delaunay_;
  mutable std::once_flag voronoi_once_;
  mutable std::unique_ptr<VoronoiDiagram> voronoi_;
  StorageOptions options_storage_;
  std::unique_ptr<PageStore> page_store_;
  double simulated_fetch_ns_ = 0.0;
  FetchLatencyModel latency_model_ = FetchLatencyModel::kBusyWait;
  /// Fetch-spike injection (null unless the resolved fault spec enables
  /// it): `SimulateFetchLatency` draws per fetch call against
  /// `fetch_spike_rate`, adding `spike_ms` to spiked waits. Latency-only
  /// — results never depend on it — so the schedule-dependent sequence
  /// counter is acceptable where the page-keyed storage faults are not.
  std::unique_ptr<FaultInjector> fetch_injector_;
  mutable std::atomic<std::uint64_t> fetch_seq_{0};
};

}  // namespace vaq

#endif  // VAQ_CORE_POINT_DATABASE_H_
