#ifndef VAQ_CORE_POINT_DATABASE_H_
#define VAQ_CORE_POINT_DATABASE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/query_stats.h"
#include "delaunay/triangulation.h"
#include "delaunay/voronoi.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "index/rtree.h"

namespace vaq {

/// The "spatial database" of the paper's experiments: a set of distinct
/// points plus the two access structures both query methods share —
/// an R-tree (window queries and the seed NN lookup) and the Delaunay
/// triangulation (Voronoi-neighbour links).
///
/// `FetchPoint` is the accounting boundary for object IO: every query
/// implementation fetches candidate geometry through it so that
/// `QueryStats::geometry_loads` approximates the object-level IO a
/// disk-resident engine would pay.
class PointDatabase {
 public:
  struct Options {
    int rtree_max_entries = 16;
    int rtree_min_entries = 6;
  };

  /// Builds the database (bulk-loads the R-tree, triangulates).
  /// Precondition: points are pairwise distinct.
  explicit PointDatabase(std::vector<Point> points)
      : PointDatabase(std::move(points), Options{}) {}
  PointDatabase(std::vector<Point> points, Options options);

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }
  const Box& bounds() const { return bounds_; }

  const RTree& rtree() const { return rtree_; }
  const DelaunayTriangulation& delaunay() const { return delaunay_; }

  /// The explicit Voronoi diagram (cells clipped to a slightly inflated
  /// data bounding box). Built lazily on first use — only the cell-overlap
  /// expansion ablation and the examples/tests need it. The lazy build is
  /// guarded by a `std::once_flag`, so concurrent first calls from engine
  /// worker threads are safe.
  const VoronoiDiagram& voronoi() const;

  /// Fetches the geometry of point `id`, charging one geometry load to
  /// `stats` (if non-null) and paying the simulated fetch latency, if any.
  const Point& FetchPoint(PointId id, QueryStats* stats) const {
    if (stats != nullptr) ++stats->geometry_loads;
    if (simulated_fetch_ns_ > 0.0) SimulateFetchLatency();
    return points_[id];
  }

  /// How a simulated object fetch spends its latency.
  enum class FetchLatencyModel {
    /// Spin on the clock. Precise for sub-microsecond latencies and keeps
    /// single-thread timings comparable, but occupies the CPU — threads
    /// cannot overlap their "IO" waits.
    kBusyWait,
    /// `std::this_thread::sleep_for`. Models blocking IO faithfully: the
    /// worker yields the core, so concurrent queries overlap their waits
    /// and a thread pool shows real throughput scaling even on one core.
    /// Coarser (scheduler quantum) — use for latencies >= ~10us.
    kSleep,
  };

  /// Simulated per-object fetch latency in nanoseconds (default 0 = off).
  ///
  /// The paper evaluates on a disk-framed, interpreted (Python) stack where
  /// loading + validating one candidate dominates the query cost; in this
  /// in-memory C++ reproduction a validation costs ~85 ns, so index/graph
  /// overheads are no longer negligible. Setting a latency here charges
  /// every `FetchPoint` a wait of that length, restoring the paper's
  /// cost model (each candidate = one object IO). The table benches report
  /// both raw (0 ns) and IO-simulated runs; see DESIGN.md "Substitutions".
  ///
  /// Not thread-safe against in-flight queries: configure before handing
  /// the database to a `QueryEngine`.
  void set_simulated_fetch_ns(double ns) { simulated_fetch_ns_ = ns; }
  double simulated_fetch_ns() const { return simulated_fetch_ns_; }
  void set_fetch_latency_model(FetchLatencyModel m) { latency_model_ = m; }
  FetchLatencyModel fetch_latency_model() const { return latency_model_; }

 private:
  void SimulateFetchLatency() const;

  std::vector<Point> points_;
  Box bounds_;
  RTree rtree_;
  DelaunayTriangulation delaunay_;
  mutable std::once_flag voronoi_once_;
  mutable std::unique_ptr<VoronoiDiagram> voronoi_;
  double simulated_fetch_ns_ = 0.0;
  FetchLatencyModel latency_model_ = FetchLatencyModel::kBusyWait;
};

}  // namespace vaq

#endif  // VAQ_CORE_POINT_DATABASE_H_
