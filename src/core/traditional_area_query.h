#ifndef VAQ_CORE_TRADITIONAL_AREA_QUERY_H_
#define VAQ_CORE_TRADITIONAL_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/point_database.h"

namespace vaq {

/// The classical filter-refine area query the paper compares against
/// (Fig. 1a): window-query the spatial index with MBR(A) to get the
/// candidate set, then refine each candidate with a point-in-polygon test.
///
/// The refine step runs a batched SoA kernel over the `PreparedArea` built
/// for the query polygon: candidate coordinates are classified in blocks
/// against the prepared grid (O(1) per point away from the boundary), and
/// only points landing in boundary cells pay an exact — but locally
/// pruned — edge test. Results are identical to naive per-candidate
/// `Polygon::Contains` validation, at a fraction of the cost.
///
/// The filter index defaults to the database's R-tree; an alternative
/// `SpatialIndex` can be injected for the index-choice ablation.
class TraditionalAreaQuery : public AreaQuery {
 public:
  /// How the index filter step works.
  enum class Filter {
    /// Paper-faithful: `WindowQuery(MBR(A))`, then refine every candidate.
    /// `stats.candidates` is the MBR population, as in Tables I/II.
    kWindowMBR,
    /// Polygon-aware: `SpatialIndex::PolygonQuery` prunes subtrees outside
    /// A and bulk-accepts subtrees inside A during the traversal, so the
    /// filter output *is* the result set (candidates == results) and the
    /// refine step disappears. `stats.bulk_accepted` counts points never
    /// individually validated.
    kPolygonIndex,
  };

  struct Options {
    Filter filter = Filter::kWindowMBR;
  };

  /// `db` must outlive this object. If `index` is null the database R-tree
  /// is used; otherwise `index` (which must index `db->points()` — the
  /// internal, Hilbert-ordered array, so ids agree — and also outlive
  /// this object).
  explicit TraditionalAreaQuery(const PointDatabase* db,
                                const SpatialIndex* index = nullptr)
      : TraditionalAreaQuery(db, index, Options{}) {}
  TraditionalAreaQuery(const PointDatabase* db, const SpatialIndex* index,
                       Options options);

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;
  std::string_view Name() const override {
    return options_.filter == Filter::kWindowMBR ? "traditional"
                                                 : "traditional-polyfilter";
  }

 private:
  const PointDatabase* db_;
  const SpatialIndex* index_;
  Options options_;
};

}  // namespace vaq

#endif  // VAQ_CORE_TRADITIONAL_AREA_QUERY_H_
