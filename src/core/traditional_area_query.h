#ifndef VAQ_CORE_TRADITIONAL_AREA_QUERY_H_
#define VAQ_CORE_TRADITIONAL_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/point_database.h"

namespace vaq {

/// The classical filter-refine area query the paper compares against
/// (Fig. 1a): window-query the spatial index with MBR(A) to get the
/// candidate set, then refine each candidate with a point-in-polygon test.
///
/// The filter index defaults to the database's R-tree; an alternative
/// `SpatialIndex` can be injected for the index-choice ablation.
class TraditionalAreaQuery : public AreaQuery {
 public:
  /// `db` must outlive this object. If `index` is null the database R-tree
  /// is used; otherwise `index` (which must index the same points, and also
  /// outlive this object).
  explicit TraditionalAreaQuery(const PointDatabase* db,
                                const SpatialIndex* index = nullptr);

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;
  std::string_view Name() const override { return "traditional"; }

 private:
  const PointDatabase* db_;
  const SpatialIndex* index_;
};

}  // namespace vaq

#endif  // VAQ_CORE_TRADITIONAL_AREA_QUERY_H_
