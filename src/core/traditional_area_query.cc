#include "core/traditional_area_query.h"

#include <algorithm>
#include <chrono>

#include "core/batch_refine.h"
#include "geometry/prepared_area.h"

namespace vaq {

TraditionalAreaQuery::TraditionalAreaQuery(const PointDatabase* db,
                                           const SpatialIndex* index,
                                           Options options)
    : db_(db),
      index_(index != nullptr ? index : &db->rtree()),
      options_(options) {}

std::vector<PointId> TraditionalAreaQuery::Run(const Polygon& area,
                                               QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  IndexStats& filter_io = ctx.ScratchIndexStats();

  std::vector<PointId> result;
  if (options_.filter == Filter::kPolygonIndex) {
    // Polygon-aware filter: the index traversal already validated (or
    // bulk-accepted) every reported point, so the candidate set equals the
    // result set. Candidates are still fetched through the database — each
    // returned object is one object IO in the paper's cost model. The grid
    // resolution is sized from the expected MBR population.
    const PreparedArea& prep = ctx.Prepared(
        area, PreparedArea::EstimateMbrShare(db_->size(), db_->bounds(),
                                             area.Bounds()));
    std::vector<PointId>& candidates = ctx.ScratchCandidates();
    index_->PolygonQuery(prep, &candidates, &filter_io);
    // Each returned object is one object IO, charged as one coherent
    // batch; the coordinates themselves are never inspected again.
    db_->ChargeFetches(candidates.size(), stats);
    result.insert(result.end(), candidates.begin(), candidates.end());
    stats->candidates = candidates.size();
  } else {
    // Filter: all points inside the MBR of the query area.
    std::vector<PointId>& candidates = ctx.ScratchCandidates();
    index_->WindowQuery(area.Bounds(), &candidates, &filter_io);

    // The filter ran first, so the exact candidate count sizes the
    // prepared grid: the build cost amortises over this many point tests.
    // `PreparedKernel` also selects the specialised batch classifier
    // (convex half-plane / small-m / grid-residual) for the polygon.
    const PolygonKernel& kernel = ctx.PreparedKernel(area, candidates.size());

    // Refine: the shared batched SoA kernel (see batch_refine.h) streams
    // candidate blocks through the IO boundary and the prepared grid;
    // every survivor is a result. The full candidate list is known up
    // front, so hint the out-of-core page cache once for the whole
    // refine pass (no-op on the in-memory backend).
    db_->PrefetchPoints(candidates.data(), candidates.size());
    result.reserve(candidates.size());
    ForEachRefinedBlock(
        *db_, kernel, candidates.data(), candidates.size(), stats,
        ctx.cancel(),
        [&](const PointId* ids, std::size_t m, const double*, const double*,
            const bool* inside) {
          for (std::size_t j = 0; j < m; ++j) {
            if (inside[j]) result.push_back(ids[j]);
          }
        });
    stats->candidates = candidates.size();
  }
  ctx.SortIds(result, db_->size());

  stats->results = result.size();
  stats->candidate_hits = stats->results;
  stats->visited_rejected = stats->candidates - stats->candidate_hits;
  stats->index_node_accesses = filter_io.node_accesses;
  stats->bulk_accepted = filter_io.bulk_accepted;
  stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

}  // namespace vaq
