#include "core/traditional_area_query.h"

#include <algorithm>
#include <chrono>

namespace vaq {

TraditionalAreaQuery::TraditionalAreaQuery(const PointDatabase* db,
                                           const SpatialIndex* index)
    : db_(db), index_(index != nullptr ? index : &db->rtree()) {}

std::vector<PointId> TraditionalAreaQuery::Run(const Polygon& area,
                                               QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  IndexStats& filter_io = ctx.ScratchIndexStats();

  // Filter: all points inside the MBR of the query area.
  std::vector<PointId>& candidates = ctx.ScratchCandidates();
  index_->WindowQuery(area.Bounds(), &candidates, &filter_io);

  // Refine: full geometric validation of every candidate.
  std::vector<PointId> result;
  result.reserve(candidates.size());
  for (const PointId id : candidates) {
    const Point& p = db_->FetchPoint(id, stats);
    if (area.Contains(p)) result.push_back(id);
  }
  std::sort(result.begin(), result.end());

  stats->candidates = candidates.size();
  stats->results = result.size();
  stats->candidate_hits = stats->results;
  stats->index_node_accesses = filter_io.node_accesses;
  stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

}  // namespace vaq
