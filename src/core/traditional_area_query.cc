#include "core/traditional_area_query.h"

#include <algorithm>
#include <chrono>

#include "geometry/prepared_area.h"

namespace vaq {

namespace {
/// Candidates are validated in blocks of this many points: coordinates are
/// gathered into stack-resident SoA arrays, classified against the prepared
/// grid in one tight loop, and only boundary-cell survivors take the exact
/// edge test. Big enough to amortise loop overhead and vectorise, small
/// enough to stay in L1.
constexpr std::size_t kValidateBlock = 256;
}  // namespace

TraditionalAreaQuery::TraditionalAreaQuery(const PointDatabase* db,
                                           const SpatialIndex* index,
                                           Options options)
    : db_(db),
      index_(index != nullptr ? index : &db->rtree()),
      options_(options) {}

std::vector<PointId> TraditionalAreaQuery::Run(const Polygon& area,
                                               QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  IndexStats& filter_io = ctx.ScratchIndexStats();

  std::vector<PointId> result;
  if (options_.filter == Filter::kPolygonIndex) {
    // Polygon-aware filter: the index traversal already validated (or
    // bulk-accepted) every reported point, so the candidate set equals the
    // result set. Candidates are still fetched through the database — each
    // returned object is one object IO in the paper's cost model. The grid
    // resolution is sized from the expected MBR population.
    const PreparedArea& prep = ctx.Prepared(
        area, PreparedArea::EstimateMbrShare(db_->size(), db_->bounds(),
                                             area.Bounds()));
    std::vector<PointId>& candidates = ctx.ScratchCandidates();
    index_->PolygonQuery(prep, &candidates, &filter_io);
    result.reserve(candidates.size());
    for (const PointId id : candidates) {
      db_->FetchPoint(id, stats);
      result.push_back(id);
    }
    stats->candidates = candidates.size();
  } else {
    // Filter: all points inside the MBR of the query area.
    std::vector<PointId>& candidates = ctx.ScratchCandidates();
    index_->WindowQuery(area.Bounds(), &candidates, &filter_io);

    // The filter ran first, so the exact candidate count sizes the
    // prepared grid: the build cost amortises over this many point tests.
    const PreparedArea& prep = ctx.Prepared(area, candidates.size());

    // Refine: batched SoA validation. Fetch a block of candidate
    // coordinates, classify the whole block against the prepared grid, and
    // run the exact (row-local) test only on boundary-cell points.
    result.reserve(candidates.size());
    double xs[kValidateBlock];
    double ys[kValidateBlock];
    unsigned char cls[kValidateBlock];
    for (std::size_t base = 0; base < candidates.size();
         base += kValidateBlock) {
      const std::size_t n =
          std::min(kValidateBlock, candidates.size() - base);
      for (std::size_t j = 0; j < n; ++j) {
#if defined(__GNUC__)
        // The gather strides randomly through the point table; prefetching
        // a few candidates ahead hides most of the cache-miss latency.
        if (base + j + 8 < candidates.size()) {
          __builtin_prefetch(&db_->points()[candidates[base + j + 8]]);
        }
#endif
        const Point& p = db_->FetchPoint(candidates[base + j], stats);
        xs[j] = p.x;
        ys[j] = p.y;
      }
      prep.ClassifyPoints(xs, ys, n, cls);
      for (std::size_t j = 0; j < n; ++j) {
        if (cls[j] == PreparedArea::kPointInside) {
          result.push_back(candidates[base + j]);
        } else if (cls[j] == PreparedArea::kPointBoundary &&
                   prep.Contains({xs[j], ys[j]})) {
          result.push_back(candidates[base + j]);
        }
      }
    }
    stats->candidates = candidates.size();
  }
  ctx.SortIds(result, db_->size());

  stats->results = result.size();
  stats->candidate_hits = stats->results;
  stats->index_node_accesses = filter_io.node_accesses;
  stats->bulk_accepted = filter_io.bulk_accepted;
  stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

}  // namespace vaq
