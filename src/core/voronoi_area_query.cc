#include "core/voronoi_area_query.h"

#include <algorithm>
#include <chrono>
#include <span>

#include "core/batch_refine.h"
#include "geometry/prepared_area.h"
#include "geometry/segment.h"

namespace vaq {

VoronoiAreaQuery::VoronoiAreaQuery(const PointDatabase* db, Options options,
                                   const SpatialIndex* seed_index)
    : db_(db),
      options_(options),
      seed_index_(seed_index != nullptr ? seed_index : &db->rtree()) {
  if (options_.expansion == ExpansionRule::kCellOverlap) {
    db_->voronoi();  // Force construction up front, outside timed queries.
  }
}

bool VoronoiAreaQuery::CellIntersectsArea(PointId v,
                                          const PreparedArea& area) const {
  const VoronoiDiagram& vd = db_->voronoi();
  const std::vector<Point>& ring = vd.cell(v);
  if (ring.size() < 3) return false;
  // O(1) screen: classify the cell's bounding box against the prepared
  // grid. An outside box is disjoint from A (the cell cannot intersect);
  // an inside box is wholly contained in A (the cell certainly does).
  // Only boxes near the boundary fall through to the exact edge loop.
  Box cell_bounds;
  for (const Point& p : ring) cell_bounds.ExpandToInclude(p);
  switch (area.ClassifyBox(cell_bounds)) {
    case PreparedArea::Region::kOutside:
      return false;
    case PreparedArea::Region::kInside:
      return true;
    case PreparedArea::Region::kStraddling:
      break;
  }
  // The cell intersects the polygon iff a cell vertex is inside the
  // polygon, a polygon vertex is inside the cell, or boundaries cross. The
  // edge test below covers all three but full mutual containment, which the
  // two point-in checks handle.
  if (vd.CellContains(v, area.polygon().vertex(0))) return true;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Segment cell_edge{ring[i], ring[(i + 1) % ring.size()]};
    if (area.Intersects(cell_edge)) return true;
  }
  return false;
}

std::vector<PointId> VoronoiAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  IndexStats& seed_io = ctx.ScratchIndexStats();

  std::vector<PointId> result;
  // Every exit — including the empty-database and invalid-seed early
  // returns — funnels through this epilogue so the stats slot is never
  // left half-filled after the Reset() above. Every result is a validated
  // candidate (candidate_hits == results); the candidates that were
  // visited but failed validation — the flood's boundary shell — are
  // reported distinctly (candidates == candidate_hits + visited_rejected).
  const auto finish = [&]() -> std::vector<PointId> {
    ctx.SortIds(result, db_->size());
    stats->results = result.size();
    stats->candidate_hits = stats->results;
    stats->visited_rejected = stats->candidates - stats->candidate_hits;
    stats->index_node_accesses = seed_io.node_accesses;
    stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return std::move(result);
  };

  const DelaunayTriangulation& dt = db_->delaunay();
  const std::size_t n = db_->size();
  if (n == 0) return finish();

  ctx.BeginVisitEpoch(n);
  // The flood validates roughly the MBR's share of the database (results
  // plus a boundary shell); that estimate sizes the prepared grid and
  // pre-sizes the result so the hot loop never reallocates.
  const std::size_t expected =
      PreparedArea::EstimateMbrShare(n, db_->bounds(), area.Bounds());
  // The kernel handles the frontier blocks' batch containment; `prep` is
  // still consulted directly for the per-neighbour screens (cell classes,
  // segment tests) on the boundary shell.
  const PolygonKernel& kernel = ctx.PreparedKernel(area, expected);
  const PreparedArea& prep = kernel.prep();
  result.reserve(expected);

  // Line 3-4: seed = NN(P, arbitrary position in A).
  const Point seed_pos = area.InteriorPoint();
  const PointId seed = seed_index_->NearestNeighbor(seed_pos, &seed_io);
  if (seed == kInvalidPointId) return finish();

  // P_candidate of Algorithm 1, processed one frontier generation at a
  // time instead of one point at a time: the whole frontier's geometry is
  // gathered through the batched fetch boundary into SoA blocks and
  // bulk-classified against the prepared grid, so the common case — an
  // internal point in an inside cell — costs one coordinate stream read
  // and one cell lookup, no exact geometry at all. Visit order does not
  // affect the candidate set (every visited point is validated exactly
  // once), so generation order is as valid as the paper's FIFO.
  // The two generation buffers are std::vectors used as raw storage:
  // `size()` is only a high-water mark (grown, never shrunk, so the
  // zero-fill a vector resize performs is paid once per growth instead
  // of once per block) and the live lengths are tracked separately.
  // Elements beyond the live length are stale scratch, never read.
  std::vector<PointId>& frontier = ctx.ScratchQueue();
  std::vector<PointId>& next = ctx.ScratchCandidates();
  QueryContext::VisitMarker visit = ctx.Marker();
  frontier.resize(64);
  frontier[0] = seed;
  std::size_t frontier_len = 1;
  visit.MarkIfUnvisited(seed);

  const double* xs = db_->xs();
  const double* ys = db_->ys();
  const bool paper_rule =
      options_.expansion == ExpansionRule::kPaperSegment;
  // Cell-overlap completeness rests on cells tiling the *plane*, but the
  // materialised cells only tile the clip box. When A sticks out of the
  // box (a query against one shard of a partitioned database, or a query
  // hugging the data boundary), the parts of A outside the box are
  // covered by no materialised cell, and A ∩ box may even be
  // disconnected — the flood would stall at the box border. Restoring
  // the tiling argument: a *clipped* cell's true extent reaches beyond
  // the box, so treat every clipped cell as intersecting the escaped
  // part of A. The clipped cells form a connected ring (they include the
  // whole hull), so every lobe of A re-entering the box is reachable.
  const VoronoiDiagram* vd = paper_rule ? nullptr : &db_->voronoi();
  const bool area_escapes_clip_box =
      vd != nullptr && !vd->clip_box().Contains(area.Bounds());

  const PointId* rows[kRefineBlock];
  std::uint32_t lens[kRefineBlock];

  while (frontier_len > 0) {
    std::size_t next_len = 0;
    stats->candidates += frontier_len;
    // The whole generation's page set is known before the refine kernel
    // streams it, so hint the page cache now: on the out-of-core backends
    // this overlaps the generation's IO with the previous block's graph
    // work instead of taking every miss synchronously inside the gather.
    // No-op (and no accounting) on the in-memory backend.
    db_->PrefetchPoints(frontier.data(), frontier_len);
    // Each generation streams through the shared batched refine kernel
    // (object IO + grid classification + exact boundary resolution per
    // 256-block); the per-block callback owns the graph side.
    ForEachRefinedBlock(*db_, kernel, frontier.data(), frontier_len, stats,
                        ctx.cancel(), [&](
        const PointId* block, std::size_t m, const double* bx,
        const double* by, const bool* inside) {
      // Resolve the block's CSR adjacency rows up front: one pass pulls
      // every row's extent from the offsets array, prefetches the row
      // data, and sizes the next-frontier append for the whole block —
      // the expansion loop below then runs on registers and L1.
      std::size_t degree_sum = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const std::span<const PointId> nbrs = dt.NeighborsOf(block[j]);
        rows[j] = nbrs.data();
        lens[j] = static_cast<std::uint32_t>(nbrs.size());
        degree_sum += nbrs.size();
#if defined(__GNUC__)
        __builtin_prefetch(nbrs.data());
#endif
      }
      if (next.size() < next_len + degree_sum) {
        next.resize(std::max(next_len + degree_sum, next.size() * 2));
      }
      PointId* out = next.data() + next_len;
      std::size_t enqueued = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const PointId p = block[j];
        const PointId* row = rows[j];
        const std::uint32_t len = lens[j];
        if (inside[j]) {
          // Internal point: all Voronoi neighbours become candidates.
          // Expansion is branchless — mark unconditionally, compact the
          // fresh ids into the next frontier — because the ~50/50
          // already-visited outcome would otherwise mispredict on nearly
          // every edge of the interior.
          result.push_back(p);
          for (std::uint32_t k = 0; k < len; ++k) {
            const PointId pn = row[k];
            out[enqueued] = pn;
            enqueued += visit.MarkIfUnvisited(pn) ? 1 : 0;
          }
        } else {
          // Boundary point: only expand along edges that reach back into
          // A. The O(1) cell class of the neighbour settles the common
          // cases — an inside-cell endpoint is in A (follow, paper line
          // 21's `pn ∈ A` branch), and for an outside-cell endpoint only
          // the boundary-crossing test remains, which rejects in O(1)
          // when the edge's cell range holds no boundary cell. Exact
          // segment geometry runs only for edges that genuinely graze
          // the boundary band.
          for (std::uint32_t k = 0; k < len; ++k) {
            const PointId pn = row[k];
            if (visit.Visited(pn)) continue;
            bool follow;
            if (paper_rule) {
              const double xn = xs[pn];
              const double yn = ys[pn];
              const unsigned char ncls = prep.ClassifyPoint(xn, yn);
              if (ncls == PreparedArea::kPointInside) {
                follow = true;
              } else {
                follow = ncls == PreparedArea::kPointBoundary &&
                         prep.Contains({xn, yn});
                if (!follow) {
                  ++stats->segment_tests;
                  follow = prep.BoundaryIntersects(
                      Segment{{bx[j], by[j]}, {xn, yn}});
                }
              }
            } else {
              follow = CellIntersectsArea(pn, prep) ||
                       (area_escapes_clip_box && vd->CellWasClipped(pn));
            }
            if (follow) {
              visit.MarkIfUnvisited(pn);
              out[enqueued++] = pn;
            }
          }
        }
      }
      next_len += enqueued;
      stats->neighbor_expansions += enqueued;
    });
    std::swap(frontier, next);
    frontier_len = next_len;
  }
  return finish();
}

}  // namespace vaq
