#include "core/voronoi_area_query.h"

#include <algorithm>
#include <chrono>

#include "geometry/prepared_area.h"
#include "geometry/segment.h"

namespace vaq {

VoronoiAreaQuery::VoronoiAreaQuery(const PointDatabase* db, Options options,
                                   const SpatialIndex* seed_index)
    : db_(db),
      options_(options),
      seed_index_(seed_index != nullptr ? seed_index : &db->rtree()) {
  if (options_.expansion == ExpansionRule::kCellOverlap) {
    db_->voronoi();  // Force construction up front, outside timed queries.
  }
}

bool VoronoiAreaQuery::CellIntersectsArea(PointId v,
                                          const PreparedArea& area) const {
  const VoronoiDiagram& vd = db_->voronoi();
  const std::vector<Point>& ring = vd.cell(v);
  if (ring.size() < 3) return false;
  // The cell intersects the polygon iff a cell vertex is inside the
  // polygon, a polygon vertex is inside the cell, or boundaries cross. The
  // edge test below covers all three but full mutual containment, which the
  // two point-in checks handle.
  if (vd.CellContains(v, area.polygon().vertex(0))) return true;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Segment cell_edge{ring[i], ring[(i + 1) % ring.size()]};
    if (area.Intersects(cell_edge)) return true;
  }
  return false;
}

std::vector<PointId> VoronoiAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  IndexStats& seed_io = ctx.ScratchIndexStats();

  std::vector<PointId> result;
  // Every exit — including the empty-database and invalid-seed early
  // returns — funnels through this epilogue so the stats slot is never
  // left half-filled after the Reset() above.
  const auto finish = [&]() -> std::vector<PointId> {
    ctx.SortIds(result, db_->size());
    stats->results = result.size();
    stats->candidate_hits = stats->results;
    stats->index_node_accesses = seed_io.node_accesses;
    stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return std::move(result);
  };

  const DelaunayTriangulation& dt = db_->delaunay();
  const std::size_t n = db_->size();
  if (n == 0) return finish();

  ctx.BeginVisitEpoch(n);
  // The flood validates roughly the MBR's share of the database (results
  // plus a boundary shell); that estimate sizes the prepared grid.
  const PreparedArea& prep = ctx.Prepared(
      area, PreparedArea::EstimateMbrShare(n, db_->bounds(), area.Bounds()));

  // Line 3-4: seed = NN(P, arbitrary position in A).
  const Point seed_pos = area.InteriorPoint();
  const PointId seed = seed_index_->NearestNeighbor(seed_pos, &seed_io);
  if (seed == kInvalidPointId) return finish();

  // P_candidate of Algorithm 1. Visit order does not affect the candidate
  // set (every visited point is validated exactly once), so a LIFO vector
  // is used instead of the paper's FIFO queue for cheaper bookkeeping.
  std::vector<PointId>& queue = ctx.ScratchQueue();
  queue.reserve(256);
  queue.push_back(seed);
  ctx.MarkVisited(seed);

  while (!queue.empty()) {
    const PointId p = queue.back();
    queue.pop_back();
    ++stats->candidates;
    const Point& pp = db_->FetchPoint(p, stats);
    if (prep.Contains(pp)) {
      // Internal point: all Voronoi neighbours become candidates.
      result.push_back(p);
      for (const PointId pn : dt.NeighborsOf(p)) {
        if (!ctx.Visited(pn)) {
          ctx.MarkVisited(pn);
          queue.push_back(pn);
          ++stats->neighbor_expansions;
        }
      }
    } else {
      // Boundary point: only expand along edges that reach back into A.
      for (const PointId pn : dt.NeighborsOf(p)) {
        if (ctx.Visited(pn)) continue;
        bool follow;
        if (options_.expansion == ExpansionRule::kPaperSegment) {
          // Intersects(line(p, pn), A) specialised for p outside A:
          // the segment meets A iff pn is inside or it crosses the ring.
          const Point& pnp = dt.point(pn);
          ++stats->segment_tests;
          follow = prep.Contains(pnp) ||
                   prep.BoundaryIntersects(Segment{pp, pnp});
        } else {
          follow = CellIntersectsArea(pn, prep);
        }
        if (follow) {
          ctx.MarkVisited(pn);
          queue.push_back(pn);
          ++stats->neighbor_expansions;
        }
      }
    }
  }
  return finish();
}

}  // namespace vaq
