#ifndef VAQ_CORE_AREA_QUERY_H_
#define VAQ_CORE_AREA_QUERY_H_

#include <string_view>
#include <vector>

#include "core/query_context.h"
#include "core/query_stats.h"
#include "geometry/polygon.h"
#include "index/spatial_index.h"

namespace vaq {

/// Interface of an area-query implementation: given a simple query polygon
/// `area`, return the ids of every database point contained in it.
///
/// Implementations are stateless: all per-execution scratch (visited set,
/// candidate queues, stats) lives in the caller-provided `QueryContext`, so
/// one query object can serve any number of threads concurrently as long as
/// each thread brings its own context (the `QueryEngine` does exactly
/// that).
///
/// Implementations:
///  * `TraditionalAreaQuery` — filter (window query on MBR) + refine;
///  * `VoronoiAreaQuery`     — the paper's incremental candidate generation
///                             over the Voronoi/Delaunay graph (Algorithm 1),
///                             in both expansion-rule modes;
///  * `GridSweepAreaQuery`   — raster filter baseline;
///  * `BruteForceAreaQuery`  — linear scan, ground truth for tests.
class AreaQuery {
 public:
  virtual ~AreaQuery() = default;

  /// Executes the query using `ctx` for all mutable scratch. The returned
  /// ids are sorted ascending (so result sets compare directly across
  /// implementations). `ctx.stats` is reset and filled with this
  /// execution's counters.
  virtual std::vector<PointId> Run(const Polygon& area,
                                   QueryContext& ctx) const = 0;

  /// Single-threaded convenience wrapper: runs against a per-thread
  /// context owned by the library. If `stats` is non-null it receives the
  /// execution's counters. Safe to call from several threads at once (each
  /// gets its own context), but reuses no scratch across query objects in
  /// different translation units — engines should prefer the explicit
  /// context overload.
  std::vector<PointId> Run(const Polygon& area,
                           QueryStats* stats = nullptr) const;

  /// Implementation name for benchmark tables.
  virtual std::string_view Name() const = 0;
};

}  // namespace vaq

#endif  // VAQ_CORE_AREA_QUERY_H_
