#ifndef VAQ_CORE_AREA_QUERY_H_
#define VAQ_CORE_AREA_QUERY_H_

#include <string_view>
#include <vector>

#include "core/query_stats.h"
#include "geometry/polygon.h"
#include "index/spatial_index.h"

namespace vaq {

/// Interface of an area-query implementation: given a simple query polygon
/// `area`, return the ids of every database point contained in it.
///
/// Implementations:
///  * `TraditionalAreaQuery` — filter (window query on MBR) + refine;
///  * `VoronoiAreaQuery`     — the paper's incremental candidate generation
///                             over the Voronoi/Delaunay graph (Algorithm 1);
///  * `BruteForceAreaQuery`  — linear scan, ground truth for tests.
class AreaQuery {
 public:
  virtual ~AreaQuery() = default;

  /// Executes the query. The returned ids are sorted ascending (so result
  /// sets compare directly across implementations). If `stats` is non-null
  /// it is reset and filled with this execution's counters.
  virtual std::vector<PointId> Run(const Polygon& area,
                                   QueryStats* stats) const = 0;

  /// Implementation name for benchmark tables.
  virtual std::string_view Name() const = 0;
};

}  // namespace vaq

#endif  // VAQ_CORE_AREA_QUERY_H_
