#ifndef VAQ_CORE_QUERY_CONTEXT_H_
#define VAQ_CORE_QUERY_CONTEXT_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "core/query_stats.h"
#include "geometry/prepared_area.h"
#include "geometry/simd/polygon_kernel.h"
#include "index/spatial_index.h"

namespace vaq {

struct PlanHints;

/// Per-thread scratch arena for area-query execution.
///
/// Query objects (`AreaQuery` implementations) are stateless and therefore
/// safe to share across threads; everything a single execution mutates —
/// the epoch-marked visited set, candidate queues, index IO counters and
/// the `QueryStats` slot — lives here instead. The engine keeps one
/// `QueryContext` per worker thread so scratch memory is allocated once
/// and reused across millions of queries; single-threaded callers can use
/// the convenience `AreaQuery::Run(area, stats)` overload, which maintains
/// one context per calling thread.
///
/// A context must never be used by two threads at the same time.
class QueryContext {
 public:
  /// Stats of the most recent query run with this context. Implementations
  /// reset it at the start of `Run` and fill it as they go.
  QueryStats stats;

  // -- Cancellation --------------------------------------------------------

  /// The cancellation/deadline token of the query currently executing on
  /// this context, or null (the default — no cancellation configured,
  /// zero cost). Set by the engine worker around each task (and by the
  /// sharded gather around its inline legs), consulted at block
  /// boundaries via `CheckCancelled`. Not owned.
  void set_cancel(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel() const { return cancel_; }

  /// Throws `QueryAbortedError` when the current query's token expired;
  /// a single null check when no token is installed.
  void CheckCancelled() const {
    if (cancel_ != nullptr) cancel_->Check();
  }

  // -- Planner hints --------------------------------------------------------

  /// Hints of the query currently executing on this context, or null (the
  /// default — fully automatic planning). Set by the engine worker around
  /// each task, exactly like the cancel token: this is how per-submission
  /// `SubmitOptions::hints` reach `PlannedAreaQuery::Run` through the
  /// hint-less `AreaQuery` interface the engine dispatches on. Not owned.
  void set_plan_hints(const PlanHints* hints) { plan_hints_ = hints; }
  const PlanHints* plan_hints() const { return plan_hints_; }

  // -- Epoch-marked visited set -------------------------------------------
  //
  // `visited[id] == epoch` means "id was visited by the current query".
  // Bumping the epoch invalidates all marks in O(1) instead of an O(n)
  // clear per query on million-point databases.

  /// Starts a fresh visited epoch over ids `[0, n)`. Handles the epoch
  /// counter wrap: when the uint32 overflows, stale marks from 2^32 queries
  /// ago would alias fresh ones, so the array is cleared and the epoch
  /// restarts at 1 (0 is reserved as "never marked").
  void BeginVisitEpoch(std::size_t n) {
    // Resize clears to 0, which can never equal a live epoch (0 is
    // reserved), so the epoch counter deliberately keeps running here.
    if (visited_.size() != n) visited_.assign(n, 0);
    if (++epoch_ == 0) {
      std::fill(visited_.begin(), visited_.end(), 0u);
      epoch_ = 1;
    }
  }
  bool Visited(PointId id) const { return visited_[id] == epoch_; }
  void MarkVisited(PointId id) { visited_[id] = epoch_; }

  /// Register-resident view of the visited set for tight kernels: the
  /// array pointer and the epoch live in the returned value, so the
  /// compiler keeps them in registers instead of re-loading the context
  /// members on every edge (stores into a same-typed output array may
  /// alias them otherwise). Invalidated by `BeginVisitEpoch`.
  ///
  /// `MarkIfUnvisited` marks unconditionally and reports whether the id
  /// was fresh, so a caller's expansion loop carries no data-dependent
  /// branch — the flood kernel pairs it with a compaction store
  /// (`out[n] = id; n += fresh;`) to expand neighbours without branch
  /// mispredictions.
  struct VisitMarker {
    std::uint32_t* visited;
    std::uint32_t epoch;
    bool Visited(PointId id) const { return visited[id] == epoch; }
    bool MarkIfUnvisited(PointId id) {
      const bool fresh = visited[id] != epoch;
      visited[id] = epoch;
      return fresh;
    }
  };
  VisitMarker Marker() { return VisitMarker{visited_.data(), epoch_}; }

  /// Test hook for the wrap path: force the epoch counter near its maximum
  /// without running 2^32 queries.
  void SetEpochForTest(std::uint32_t epoch) { epoch_ = epoch; }

  // -- Scratch buffers -----------------------------------------------------

  /// BFS frontier / candidate queue, cleared and ready to fill.
  std::vector<PointId>& ScratchQueue() {
    queue_.clear();
    return queue_;
  }

  /// Candidate id buffer (window-query output), cleared and ready to fill.
  std::vector<PointId>& ScratchCandidates() {
    candidates_.clear();
    return candidates_;
  }

  /// Delta-scan scratch of the dynamic-database wrapper (see
  /// `DynamicAreaQuery`): collects the stable ids of delta-buffer hits
  /// before they are merged into the base result. A third buffer —
  /// distinct from `ScratchQueue`/`ScratchCandidates` — because the
  /// wrapped base query may still own those when the delta pass runs.
  std::vector<PointId>& ScratchDelta() {
    delta_hits_.clear();
    return delta_hits_;
  }

  /// Per-query index IO counters, reset and ready to pass to index calls.
  IndexStats& ScratchIndexStats() {
    index_stats_.Reset();
    return index_stats_;
  }

  /// The context's prepared-geometry accelerator, rebuilt over `area`
  /// (see `PreparedArea`). Query implementations call this once per `Run`;
  /// the grid/CSR buffers are reused across queries, so steady-state
  /// execution allocates nothing. `area` must outlive the returned
  /// reference's use (it does: it outlives the `Run` call).
  ///
  /// `expected_tests` — the caller's estimate of how many point/segment
  /// tests the query will run against the polygon — sizes the grid so the
  /// one-time build cost amortises (see `PreparedArea::SuggestGridSide`);
  /// 0 falls back to the polygon-complexity default.
  ///
  /// Memoized: if the context's accelerator already holds this exact
  /// polygon (compared by value against an owned vertex copy — a previous
  /// query's polygon freed and reallocated at the same address cannot
  /// false-hit) on a grid at least as fine as requested, the build is
  /// skipped. A wrapper whose inner query prepared the same polygon (the
  /// dynamic delta pass) therefore just calls `Prepared` again and gets
  /// the inner build back; repeated identical queries skip the rebuild
  /// too. The O(m) vertex compare is noise next to the grid build.
  const PreparedArea& Prepared(const Polygon& area,
                               std::size_t expected_tests = 0) {
    const int side =
        PreparedArea::SuggestGridSide(area.size(), expected_tests);
    if (prepared_side_ >= side &&
        prepared_vertices_ == area.vertices()) {
      // The structure may have been built over a different (equal-valued)
      // polygon object that no longer exists — e.g. the previous engine
      // task's copy; repoint it at the caller's live polygon before the
      // residual exact tests dereference it. (A degenerate prepared
      // structure holds no polygon and never dereferences one.)
      if (prepared_.prepared()) prepared_.RebindPolygon(area);
      return prepared_;
    }
    prepared_.Prepare(area, side);
    prepared_side_ = side;
    prepared_vertices_ = area.vertices();
    kernel_ready_ = false;  // The kernel snapshots prepared_'s arrays.
    return prepared_;
  }

  /// The context's batch containment kernel over `Prepared(area, ...)` —
  /// the query-specialised classifier selected at prepare time (see
  /// `PolygonKernel`). Memoized alongside the prepared structure: a memo
  /// hit on the polygon reuses the kernel's SoA snapshots too, a rebuild
  /// re-selects and re-snapshots. Re-prepared if the process-wide dispatch
  /// arm changed (only tests toggle that mid-process).
  const PolygonKernel& PreparedKernel(const Polygon& area,
                                      std::size_t expected_tests = 0) {
    const PreparedArea& prep = Prepared(area, expected_tests);
    const simd::Arm arm = simd::DispatchArm();
    if (!kernel_ready_ || kernel_.arm() != arm) {
      kernel_.Prepare(prep, arm);
      kernel_ready_ = true;
    }
    return kernel_;
  }

  /// Sorts `ids` ascending, where every id is < `universe` and ids are
  /// distinct. Dense result sets use a reusable bitmap (O(universe/64 + k)
  /// word operations) instead of comparison sorting (O(k log k)) — on the
  /// large-polygon rows the result sort was a visible slice of query time.
  void SortIds(std::vector<PointId>& ids, std::size_t universe) {
    const std::size_t words = (universe + 63) / 64;
    if (ids.size() < 4096 || ids.size() * 24 < universe) {
      std::sort(ids.begin(), ids.end());
      return;
    }
    if (sort_bitmap_.size() < words) sort_bitmap_.resize(words);
    std::fill(sort_bitmap_.begin(), sort_bitmap_.begin() + words, 0u);
    for (const PointId id : ids) {
      sort_bitmap_[id >> 6] |= std::uint64_t{1} << (id & 63);
    }
    std::size_t at = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = sort_bitmap_[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        ids[at++] = static_cast<PointId>((w << 6) + bit);
      }
    }
  }

 private:
  const CancelToken* cancel_ = nullptr;
  const PlanHints* plan_hints_ = nullptr;
  std::vector<std::uint32_t> visited_;
  std::uint32_t epoch_ = 0;
  std::vector<PointId> queue_;
  std::vector<PointId> candidates_;
  std::vector<PointId> delta_hits_;
  IndexStats index_stats_;
  PreparedArea prepared_;
  /// Memo key of `prepared_`: the prepared polygon's vertices (owned
  /// copy) and grid side; side -1 = nothing prepared yet.
  std::vector<Point> prepared_vertices_;
  int prepared_side_ = -1;
  /// Batch kernel bound to `prepared_`; valid only while `kernel_ready_`
  /// (invalidated whenever `prepared_` is rebuilt).
  PolygonKernel kernel_;
  bool kernel_ready_ = false;
  std::vector<std::uint64_t> sort_bitmap_;
};

}  // namespace vaq

#endif  // VAQ_CORE_QUERY_CONTEXT_H_
