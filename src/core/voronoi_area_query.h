#ifndef VAQ_CORE_VORONOI_AREA_QUERY_H_
#define VAQ_CORE_VORONOI_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/point_database.h"

namespace vaq {

/// The paper's contribution (Algorithm 1, Fig. 1b): incremental candidate
/// generation over Voronoi-neighbour links instead of a window query.
///
///   1. seed  := NN(P, any position inside A)   — one index lookup;
///   2. BFS from the seed over Voronoi neighbours:
///        * a candidate inside A joins the result and expands to all its
///          neighbours (paper Property 7: they are internal or boundary
///          points);
///        * a candidate outside A expands only along Delaunay edges that
///          intersect A (paper Property 9 — this is what keeps the flood
///          from leaking into the rest of the MBR).
///
/// Candidates are therefore the internal points plus a thin shell of
/// boundary points — proportional to the boundary length of A rather than
/// to area(MBR(A)) - area(A).
class VoronoiAreaQuery : public AreaQuery {
 public:
  /// How the flood expands out of a candidate that is *outside* A.
  enum class ExpansionRule {
    /// Paper Algorithm 1, line 21: follow edge (p, pn) iff the segment
    /// intersects A. Minimal candidates; can (rarely) miss points beyond
    /// point-free corridors of extremely concave polygons (see DESIGN.md).
    kPaperSegment,
    /// Follow the edge iff the Voronoi cell of `pn` intersects A. Provably
    /// complete for any connected query area (cells tile the plane, so the
    /// cells meeting A form a connected patch of the dual graph), at the
    /// cost of cell-vs-polygon tests. The materialised cells only tile the
    /// diagram's clip box, so when A extends beyond it — a shard of a
    /// partitioned database answering a cross-shard area, or a query
    /// hugging the data boundary — clipped cells are additionally treated
    /// as intersecting A, which restores the plane-tiling argument (see
    /// `VoronoiDiagram::CellWasClipped`). Benchmarked as an ablation; the
    /// sharded layer forces this rule for its legs.
    kCellOverlap,
  };

  struct Options {
    ExpansionRule expansion = ExpansionRule::kPaperSegment;
  };

  /// `db` must outlive this object. If `seed_index` is null the database
  /// R-tree provides the seed NN lookup (the paper also uses an R-tree
  /// here, "for fairness"); a non-null index must index `db->points()`
  /// (the internal, Hilbert-ordered array) so ids agree.
  explicit VoronoiAreaQuery(const PointDatabase* db)
      : VoronoiAreaQuery(db, Options{}) {}
  VoronoiAreaQuery(const PointDatabase* db, Options options,
                   const SpatialIndex* seed_index = nullptr);

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;
  std::string_view Name() const override {
    return options_.expansion == ExpansionRule::kPaperSegment
               ? "voronoi"
               : "voronoi-cell-overlap";
  }

 private:
  bool CellIntersectsArea(PointId v, const PreparedArea& area) const;

  // Stateless beyond construction-time configuration: the epoch-marked
  // visited set and candidate queue live in the caller's `QueryContext`,
  // so one instance can serve concurrent queries.
  const PointDatabase* db_;
  Options options_;
  const SpatialIndex* seed_index_;
};

}  // namespace vaq

#endif  // VAQ_CORE_VORONOI_AREA_QUERY_H_
