#ifndef VAQ_CORE_GRID_SWEEP_AREA_QUERY_H_
#define VAQ_CORE_GRID_SWEEP_AREA_QUERY_H_

#include <vector>

#include "core/area_query.h"
#include "core/point_database.h"

namespace vaq {

/// A third area-query strategy, the classic raster refinement of GIS
/// engines: rasterise the query polygon onto a uniform grid over the data
/// and classify each cell of the polygon's MBR:
///   * cell fully inside A  -> accept every point wholesale (no
///     per-point validation at all);
///   * cell crossing the boundary of A -> validate each point;
///   * cell outside A -> skip.
/// Like the paper's Voronoi method, its validation count is proportional
/// to the boundary length of A rather than to area(MBR) - area(A), but it
/// pays cell-classification geometry (polygon-vs-box tests) instead of
/// graph traversal, and it needs its own raster structure. Included as a
/// strong extra baseline in the ablation benches.
class GridSweepAreaQuery : public AreaQuery {
 public:
  /// Builds the raster over `db`'s points with ~`target_bucket_size`
  /// points per cell. `db` must outlive this object.
  explicit GridSweepAreaQuery(const PointDatabase* db,
                              int target_bucket_size = 8);

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;
  std::string_view Name() const override { return "grid-sweep"; }

  int grid_side() const { return side_; }

 private:
  Box CellBox(int cx, int cy) const;

  const PointDatabase* db_;
  std::vector<std::vector<PointId>> cells_;
  Box world_;
  int side_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace vaq

#endif  // VAQ_CORE_GRID_SWEEP_AREA_QUERY_H_
