#ifndef VAQ_CORE_BRUTE_FORCE_AREA_QUERY_H_
#define VAQ_CORE_BRUTE_FORCE_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/point_database.h"

namespace vaq {

/// Index-free linear scan: validates every point in the database. Ground
/// truth for correctness tests and the "no index" row of ablations.
class BruteForceAreaQuery : public AreaQuery {
 public:
  /// `db` must outlive this object.
  explicit BruteForceAreaQuery(const PointDatabase* db) : db_(db) {}

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;
  std::string_view Name() const override { return "brute-force"; }

 private:
  const PointDatabase* db_;
};

}  // namespace vaq

#endif  // VAQ_CORE_BRUTE_FORCE_AREA_QUERY_H_
