#include "core/area_query.h"

namespace vaq {

std::vector<PointId> AreaQuery::Run(const Polygon& area,
                                    QueryStats* stats) const {
  static thread_local QueryContext ctx;
  std::vector<PointId> result = Run(area, ctx);
  if (stats != nullptr) *stats = ctx.stats;
  return result;
}

}  // namespace vaq
