#include "core/dynamic_area_query.h"

#include <chrono>
#include <cstdint>
#include <memory>

#include "core/batch_refine.h"
#include "geometry/prepared_area.h"

namespace vaq {

std::vector<PointId> RunDynamicSnapshotQuery(
    const DynamicPointDatabase::Snapshot& snap, DynamicMethod method,
    const Polygon& area, QueryContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();

  // Base pass: the wrapped implementation resets and fills ctx.stats.
  std::vector<PointId> result = snap.BaseQuery(method).Run(area, ctx);

  // Remap base-internal ids to stable ids, dropping tombstoned hits in
  // place. A tombstoned hit stays a validated candidate (it was fetched
  // and passed the geometry test) — it just is not a result.
  std::size_t live = 0;
  for (const PointId id : result) {
    if (!snap.IsTombstoned(id)) result[live++] = snap.StableId(id);
  }
  result.resize(live);

  // Delta-refine pass: stream the snapshot's SoA delta buffer through the
  // blocked classification kernel. No object IO — the buffer is the
  // memtable — but the scans are candidates like any other.
  const std::size_t dn = snap.delta_size();
  if (dn > 0) {
    std::vector<PointId>& delta_hits = ctx.ScratchDelta();
    if (method == DynamicMethod::kBruteForce) {
      // The brute-force wrapper stays PreparedArea-independent on the
      // delta too (see BruteForceAreaQuery): it is the ground truth the
      // cross-method checks compare against, so a shared PreparedArea
      // bug must not fail all four dynamic methods identically. The
      // exact scan is fine — the delta is threshold-bounded.
      snap.ForEachDeltaRun([&](std::size_t run_offset, const double* xs,
                                const double* ys, std::size_t n) {
        for (std::size_t j = 0; j < n; ++j) {
          if (area.Contains({xs[j], ys[j]})) {
            delta_hits.push_back(snap.DeltaStableId(run_offset + j));
          }
        }
      });
    } else {
      // `PreparedKernel` is memoized on the polygon, so when the base pass
      // already built the (larger, base-sized) grid for this area this
      // returns its kernel unchanged; only paths where the base never
      // prepared — e.g. the voronoi flood's empty-base early return — pay
      // a fresh delta-sized build.
      const PolygonKernel& kernel = ctx.PreparedKernel(area, dn);
      ctx.stats.kernel_kind |= kernel.stats_mask();
      snap.ForEachDeltaRun([&](std::size_t run_offset, const double* xs,
                                const double* ys, std::size_t n) {
        ForEachClassifiedBlock(
            kernel, xs, ys, n,
            [&](std::size_t offset, std::size_t m, const bool* inside) {
              for (std::size_t j = 0; j < m; ++j) {
                if (inside[j]) {
                  delta_hits.push_back(
                      snap.DeltaStableId(run_offset + offset + j));
                }
              }
            });
      });
    }
    ctx.stats.delta_candidates = dn;
    ctx.stats.candidates += dn;
    ctx.stats.candidate_hits += delta_hits.size();
    ctx.stats.visited_rejected += dn - delta_hits.size();
    result.insert(result.end(), delta_hits.begin(), delta_hits.end());
  }

  // The two contributions are individually sorted but interleave in the
  // stable id space; one sort over the merged set restores the contract.
  ctx.SortIds(result, snap.stable_limit());
  ctx.stats.results = result.size();
  ctx.stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  return result;
}

std::vector<PointId> DynamicAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  // Pin the version: the execution reads this snapshot only, so the query
  // is immune to concurrent mutations and compactions.
  const std::shared_ptr<const DynamicPointDatabase::Snapshot> snap =
      db_->snapshot();
  return RunDynamicSnapshotQuery(*snap, method_, area, ctx);
}

}  // namespace vaq
