#include "core/grid_sweep_area_query.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/batch_refine.h"
#include "geometry/prepared_area.h"

namespace vaq {

GridSweepAreaQuery::GridSweepAreaQuery(const PointDatabase* db,
                                       int target_bucket_size)
    : db_(db) {
  world_ = db->bounds();
  if (world_.Empty()) world_ = Box{{0, 0}, {1, 1}};
  const double n = static_cast<double>(std::max<std::size_t>(db->size(), 1));
  side_ = std::max(1, static_cast<int>(std::sqrt(n / target_bucket_size)));
  cell_w_ = std::max(world_.Width(), 1e-12) / side_;
  cell_h_ = std::max(world_.Height(), 1e-12) / side_;
  cells_.assign(static_cast<std::size_t>(side_) * side_, {});
  const std::vector<Point>& points = db->points();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int cx = std::clamp(
        static_cast<int>((points[i].x - world_.min.x) / cell_w_), 0,
        side_ - 1);
    const int cy = std::clamp(
        static_cast<int>((points[i].y - world_.min.y) / cell_h_), 0,
        side_ - 1);
    cells_[static_cast<std::size_t>(cy) * side_ + cx].push_back(
        static_cast<PointId>(i));
  }
}

Box GridSweepAreaQuery::CellBox(int cx, int cy) const {
  return Box{{world_.min.x + cx * cell_w_, world_.min.y + cy * cell_h_},
             {world_.min.x + (cx + 1) * cell_w_,
              world_.min.y + (cy + 1) * cell_h_}};
}

std::vector<PointId> GridSweepAreaQuery::Run(const Polygon& area,
                                             QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  // Boundary-cell buckets validate roughly the MBR's share of the points;
  // that estimate sizes the prepared grid. The kernel refines the
  // straddling buckets; `prep` still answers the O(1) box classification.
  const PolygonKernel& kernel = ctx.PreparedKernel(
      area,
      PreparedArea::EstimateMbrShare(db_->size(), world_, area.Bounds()));
  const PreparedArea& prep = kernel.prep();
  std::vector<PointId> result;

  const Box window = Box::Intersection(area.Bounds(), world_);
  if (!window.Empty()) {
    const int x0 = std::clamp(
        static_cast<int>((window.min.x - world_.min.x) / cell_w_), 0,
        side_ - 1);
    const int x1 = std::clamp(
        static_cast<int>((window.max.x - world_.min.x) / cell_w_), 0,
        side_ - 1);
    const int y0 = std::clamp(
        static_cast<int>((window.min.y - world_.min.y) / cell_h_), 0,
        side_ - 1);
    const int y1 = std::clamp(
        static_cast<int>((window.max.y - world_.min.y) / cell_h_), 0,
        side_ - 1);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        const std::vector<PointId>& bucket =
            cells_[static_cast<std::size_t>(cy) * side_ + cx];
        if (bucket.empty()) continue;
        ++stats->index_node_accesses;
        const Box cell = CellBox(cx, cy);
        switch (prep.ClassifyBox(cell)) {
          case PreparedArea::Region::kOutside:
            break;
          case PreparedArea::Region::kInside:
            // Interior cell: accept wholesale. The records are still
            // fetched (they must be returned, one coherent batch IO) but
            // no validation happens.
            db_->ChargeFetches(bucket.size(), stats);
            result.insert(result.end(), bucket.begin(), bucket.end());
            stats->bulk_accepted += bucket.size();
            break;
          case PreparedArea::Region::kStraddling:
            // The O(1) classification is conservative near the boundary
            // band; the exact box tests recover the wholesale accept (and
            // the outright reject) for cells the band merely grazes.
            if (area.ContainsBox(cell)) {
              db_->ChargeFetches(bucket.size(), stats);
              result.insert(result.end(), bucket.begin(), bucket.end());
              stats->bulk_accepted += bucket.size();
              break;
            }
            if (!area.IntersectsBox(cell)) break;
            // Boundary cell: validate with the shared batched SoA kernel
            // (O(1) per point away from the boundary band, locally exact
            // inside it).
            stats->candidates += bucket.size();
            ForEachRefinedBlock(
                *db_, kernel, bucket.data(), bucket.size(), stats,
                ctx.cancel(),
                [&](const PointId* ids, std::size_t m, const double*,
                    const double*, const bool* inside) {
                  for (std::size_t j = 0; j < m; ++j) {
                    if (inside[j]) {
                      result.push_back(ids[j]);
                      ++stats->candidate_hits;
                    }
                  }
                });
            break;
        }
      }
    }
  }
  ctx.SortIds(result, db_->size());

  stats->results = result.size();
  stats->visited_rejected = stats->candidates - stats->candidate_hits;
  stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

}  // namespace vaq
