#ifndef VAQ_CORE_QUERY_STATS_H_
#define VAQ_CORE_QUERY_STATS_H_

#include <cstddef>
#include <cstdint>

namespace vaq {

/// Cost counters collected by one area-query execution. These mirror the
/// quantities the paper reports:
///  * `candidates`            — Table I/II "Candidate number": points whose
///                              full geometry was loaded and validated;
///  * `RedundantValidations()`— Fig. 5/7 "times of redundant validations":
///                              validated candidates that were not results;
///  * `geometry_loads`        — object fetches (IO proxy in a disk-resident
///                              database);
///  * `index_node_accesses`   — index pages touched (filter-step IO proxy);
///  * `elapsed_ms`            — wall-clock time of the whole query.
/// The Voronoi method additionally counts its graph work
/// (`neighbor_expansions`, `segment_tests`).
struct QueryStats {
  std::uint64_t candidates = 0;
  std::uint64_t candidate_hits = 0;  // Candidates that passed validation.
  std::uint64_t results = 0;
  std::uint64_t geometry_loads = 0;
  std::uint64_t index_node_accesses = 0;
  std::uint64_t neighbor_expansions = 0;
  std::uint64_t segment_tests = 0;
  /// Results accepted wholesale without a per-point geometric test: points
  /// of index subtrees / grid cells whose MBR the `PreparedArea` classified
  /// as fully inside the query polygon.
  std::uint64_t bulk_accepted = 0;
  /// Candidates whose geometry was loaded and validated but that were NOT
  /// results — the explicit counterpart of `RedundantValidations()`. For
  /// the Voronoi flood this is the visited boundary shell (visited points
  /// outside A), reported distinctly so the epilogue invariant
  /// `candidates == candidate_hits + visited_rejected` is checkable
  /// instead of being hidden by `candidate_hits = results`.
  std::uint64_t visited_rejected = 0;
  /// Of `candidates`, how many came from a dynamic database's in-memory
  /// delta buffer (see `DynamicPointDatabase`). Delta candidates are
  /// validated like any other candidate (they participate in the
  /// `candidates == candidate_hits + visited_rejected` invariant) but are
  /// *not* charged as `geometry_loads`: the delta buffer is the memtable a
  /// log-structured store keeps resident, so scanning it costs no object
  /// IO. Always 0 for queries on an immutable `PointDatabase`.
  std::uint64_t delta_candidates = 0;
  /// Scatter-gather accounting of a sharded query (see `ShardedAreaQuery`):
  /// shards whose sub-query actually ran vs. shards skipped because their
  /// MBR was classified outside the area (or they held no live points).
  /// `shards_hit + shards_pruned` equals the database's shard count.
  /// Always 0 for unsharded queries.
  std::uint64_t shards_hit = 0;
  std::uint64_t shards_pruned = 0;
  /// Page-granular object IO of the out-of-core backends (see
  /// `PageStore`): distinct page runs the query's gathers streamed
  /// through the page cache, split into hits and misses. Every touch is
  /// exactly one hit or one miss, so
  ///   `page_cache_hits + page_cache_misses == pages_touched`
  /// holds on every exit path (and survives the sharded per-leg
  /// summation). All three are 0 on the in-memory backend, where
  /// `geometry_loads` remains the only (object-level) IO proxy.
  std::uint64_t pages_touched = 0;
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
  /// Bitmask of the `PolygonKernel` paths the refine step executed (see
  /// `PolygonKernel::kStats*`): which specialised classifier ran
  /// (grid-residual / convex half-plane / small-m edge loop) and whether
  /// it ran on the AVX2 arm. A *mask*, not an enum value, so the merge
  /// across sharded legs and accumulated repetitions is a plain OR and
  /// every kernel that participated stays visible in experiment JSON.
  /// 0 when the query never invoked a batch kernel (pure bulk-accept or
  /// index-only paths).
  std::uint64_t kernel_kind = 0;
  /// Failure-domain accounting (DESIGN.md §12). `io_retries` counts page
  /// read attempts beyond the first — transient faults the storage layer
  /// absorbed with retry/backoff; `pages_quarantined` counts pages the
  /// store gave up on (two consecutive checksum failures) during this
  /// query. Both are 0 on every happy path and whenever fault injection
  /// is disabled.
  std::uint64_t io_retries = 0;
  std::uint64_t pages_quarantined = 0;
  /// Scatter legs of a sharded query that exhausted their retry/timeout
  /// policy. In strict mode a failed leg rethrows, so completed queries
  /// always report 0; in partial mode the gather proceeds with
  ///   `shards_hit + shards_pruned + shards_failed == K`
  /// and `degraded` set — the caller's signal that the result set covers
  /// only the surviving shards.
  std::uint64_t shards_failed = 0;
  /// Flag (0/1), OR-merged like `kernel_kind`: the result is partial
  /// because at least one shard leg failed under the partial-result
  /// policy. Never set on strict-mode or unsharded queries.
  std::uint64_t degraded = 0;
  /// Planner accounting (src/planner). `plan_method` is the OR of
  /// `MethodBit(m)` for every method a planned execution ran (a mask like
  /// `kernel_kind`, so sharded legs and engine totals merge losslessly);
  /// `plan_reason` ORs the `PlanReason` bits explaining the choice. Both
  /// 0 when the query was dispatched by hand rather than planned.
  std::uint64_t plan_method = 0;
  std::uint64_t plan_reason = 0;
  /// Snapshot-keyed result-cache traffic of a planned query: exactly one
  /// of the two is 1 per planned execution with caching enabled (a hit
  /// short-circuits execution entirely and leaves the work counters 0).
  /// Additive across repetitions, so engine totals count hits/misses.
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  double elapsed_ms = 0.0;

  /// Number of fields above — the merge contract's checksum. `MergeFrom`
  /// static-asserts `sizeof(QueryStats) == kFieldCount * 8` (every field
  /// is a uint64 or double), so adding a field without teaching the merge
  /// about it fails the build instead of silently dropping counters in
  /// engine aggregation and sharded gathers.
  static constexpr std::size_t kFieldCount = 25;

  /// Candidates that failed refinement — the waste both methods try to
  /// minimise. For the window-filter and Voronoi methods every result is a
  /// validated candidate, so this equals candidates - results; grid-sweep
  /// accepts interior cells wholesale, so it tracks hits separately.
  std::uint64_t RedundantValidations() const {
    return candidates - candidate_hits;
  }

  void Reset() { *this = QueryStats{}; }

  /// The one merge of two stats records, used everywhere partial stats
  /// combine: the engine's per-method aggregation, the sharded gather's
  /// per-leg summation, the experiment runner's repetition averages.
  /// Counters add; the mask/flag fields (`kernel_kind`, `degraded`,
  /// `plan_method`, `plan_reason`) OR, so the merge is lossless for them
  /// too. Preserves the `candidates == candidate_hits + visited_rejected`
  /// invariant when both operands satisfy it.
  QueryStats& MergeFrom(const QueryStats& o) {
    static_assert(sizeof(QueryStats) == kFieldCount * sizeof(std::uint64_t),
                  "QueryStats gained/lost a field: update MergeFrom (and "
                  "kFieldCount) so the new field merges instead of being "
                  "silently dropped by engine/shard aggregation");
    candidates += o.candidates;
    candidate_hits += o.candidate_hits;
    results += o.results;
    geometry_loads += o.geometry_loads;
    index_node_accesses += o.index_node_accesses;
    neighbor_expansions += o.neighbor_expansions;
    segment_tests += o.segment_tests;
    bulk_accepted += o.bulk_accepted;
    visited_rejected += o.visited_rejected;
    delta_candidates += o.delta_candidates;
    shards_hit += o.shards_hit;
    shards_pruned += o.shards_pruned;
    pages_touched += o.pages_touched;
    page_cache_hits += o.page_cache_hits;
    page_cache_misses += o.page_cache_misses;
    kernel_kind |= o.kernel_kind;  // Mask of kernels that ran, not a sum.
    io_retries += o.io_retries;
    pages_quarantined += o.pages_quarantined;
    shards_failed += o.shards_failed;
    degraded |= o.degraded;  // Flag: any degraded leg degrades the merge.
    plan_method |= o.plan_method;  // Masks, like kernel_kind.
    plan_reason |= o.plan_reason;
    result_cache_hits += o.result_cache_hits;
    result_cache_misses += o.result_cache_misses;
    elapsed_ms += o.elapsed_ms;
    return *this;
  }

  /// Element-wise accumulation (the experiment runner's averaging loop);
  /// an alias of `MergeFrom` so there is exactly one merge to maintain.
  QueryStats& operator+=(const QueryStats& o) { return MergeFrom(o); }
};

}  // namespace vaq

#endif  // VAQ_CORE_QUERY_STATS_H_
