#include "core/brute_force_area_query.h"

#include <chrono>

namespace vaq {

std::vector<PointId> BruteForceAreaQuery::Run(const Polygon& area,
                                              QueryContext& ctx) const {
  QueryStats* stats = &ctx.stats;
  stats->Reset();
  const auto t0 = std::chrono::steady_clock::now();
  // Deliberately *not* accelerated with a PreparedArea: this scan is the
  // ground truth every equivalence test and mismatch counter compares the
  // other methods against, so it must stay independent of the structure
  // those methods validate through — a shared PreparedArea bug would
  // otherwise fail every method identically and go unseen.
  std::vector<PointId> result;
  const std::size_t n = db_->size();
  const CancelToken* cancel = ctx.cancel();
  for (PointId id = 0; id < n; ++id) {
    // The oracle scan has no refine blocks, so it polls the cancel token
    // itself at the same granularity the shared kernel does (O(block)
    // abort bound; a pointer test per stride when no token is set).
    if ((id & 255u) == 0 && cancel != nullptr) cancel->Check();
    const Point p = db_->FetchPoint(id, stats);
    if (area.Contains(p)) result.push_back(id);
  }
  stats->candidates = n;
  stats->results = result.size();
  stats->candidate_hits = stats->results;
  stats->visited_rejected = stats->candidates - stats->candidate_hits;
  stats->elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;  // Already sorted: ids scanned in ascending order.
}

}  // namespace vaq
