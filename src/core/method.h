#ifndef VAQ_CORE_METHOD_H_
#define VAQ_CORE_METHOD_H_

#include <cstdint>
#include <string_view>

namespace vaq {

/// The four area-query strategies the library implements. Used to select
/// which base implementation a `DynamicAreaQuery` wraps, which method a
/// sharded scatter-gather runs per leg, and — since the planner — which
/// execution the cost model picked for an `auto` query.
///
/// Lives in its own header (not `dynamic_point_database.h`, its original
/// home) because the planner layer needs the enum without pulling in the
/// whole dynamic-database machinery, and the database headers in turn
/// reference planner types.
enum class DynamicMethod {
  kVoronoi,
  kTraditional,
  kGridSweep,
  kBruteForce,
};

/// Number of `DynamicMethod` values; bounds the planner's per-method
/// tables and the `1 << method` bits of `QueryStats::plan_method`.
inline constexpr int kNumDynamicMethods = 4;

/// Stable lowercase name of `m` for logs, JSON rows and CLI output.
constexpr std::string_view MethodName(DynamicMethod m) {
  switch (m) {
    case DynamicMethod::kVoronoi:
      return "voronoi";
    case DynamicMethod::kTraditional:
      return "traditional";
    case DynamicMethod::kGridSweep:
      return "grid-sweep";
    case DynamicMethod::kBruteForce:
      break;
  }
  return "brute";
}

/// The `QueryStats::plan_method` bit recording that `m` executed. A mask
/// (like `kernel_kind`), so sharded legs and engine aggregation merge by
/// OR and every method that participated stays visible.
constexpr std::uint64_t MethodBit(DynamicMethod m) {
  return std::uint64_t{1} << static_cast<int>(m);
}

}  // namespace vaq

#endif  // VAQ_CORE_METHOD_H_
