#ifndef VAQ_CORE_DYNAMIC_POINT_DATABASE_H_
#define VAQ_CORE_DYNAMIC_POINT_DATABASE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/method.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"

namespace vaq {

struct PlanHints;
class PlannedAreaQuery;

/// Mutable database layer over the immutable Hilbert-clustered
/// `PointDatabase`, following the classic log-structured pattern:
///
///  * the **base** — a `PointDatabase` plus the four query objects built
///    over it — is immutable and rebuilt only by `Compact()`;
///  * **inserts** land in a small in-memory *delta buffer* (SoA, scanned
///    linearly by queries — it is bounded by the compaction threshold);
///  * **deletes** of base points set a bit in a *tombstone* bitmap
///    (deletes of delta points just remove the buffer entry);
///  * queries answer over `base ∪ delta − tombstones` (see
///    `DynamicAreaQuery`, which merges a delta-refine pass into the
///    batched kernels);
///  * once `delta + tombstones` crosses the threshold, `Compact()`
///    rebuilds the base from the merged live set — reusing the Hilbert
///    clustering and the `hilbert_sorted` Delaunay fast path — and resets
///    delta and tombstones.
///
/// **Snapshot semantics.** All of the above lives in an immutable
/// `Snapshot` published through a shared pointer: every mutation builds a
/// new snapshot (sharing the base and all unchanged parts structurally)
/// and swaps the pointer; every query pins the current snapshot for its
/// whole execution. In-flight queries therefore keep running on the
/// version they started on — `QueryEngine::Submit` concurrent with
/// `Insert`/`Erase`/`Compact` is race-free by construction, and a query
/// never observes half a mutation.
///
/// **Stable ids.** Every point receives a `PointId` at insertion (the
/// initial vector's points get their input positions) that never changes —
/// not across mutations, not across compactions, even though the base's
/// internal Hilbert ids are reassigned by every rebuild. Query results and
/// `Erase` speak stable ids.
///
/// **Distinctness.** The live point set stays pairwise distinct:
/// `Insert` of a point equal to a live point is rejected (returns
/// `std::nullopt`), so every `Compact()` feeds the Delaunay builder valid
/// input. Re-inserting an erased point is allowed and yields a fresh id.
///
/// Thread safety: any number of concurrent readers (`snapshot()` and the
/// queries running over snapshots); mutations serialize on an internal
/// mutex. Mutations are cheap — amortised O(1) for inserts (chunked
/// append-only delta storage), O(base/64) words for base deletes,
/// O(delta) only for delta deletes — except the threshold-amortised
/// `Compact()`.
class DynamicPointDatabase {
 public:
  struct Options {
    /// Options of every rebuilt base.
    PointDatabase::Options base;
    /// `delta + tombstones` count that triggers an automatic compaction
    /// after a mutation. 0 = auto: max(256, base_size / 4).
    std::size_t compact_threshold = 0;
    /// Disable to compact only on explicit `Compact()` calls.
    bool auto_compact = true;
    /// Simulated object-IO configuration applied to every built base —
    /// the initial one and every compaction rebuild (the per-database
    /// setters on `PointDatabase` would be lost at the first rebuild).
    /// See `PointDatabase::set_simulated_fetch_ns`.
    double simulated_fetch_ns = 0.0;
    PointDatabase::FetchLatencyModel fetch_latency_model =
        PointDatabase::FetchLatencyModel::kBusyWait;
    /// Configuration of the voronoi query object bundled with every base.
    /// The sharded layer overrides the expansion rule here: the paper's
    /// segment rule has a completeness caveat that partitioning amplifies
    /// (see `ShardedDatabase`).
    VoronoiAreaQuery::Options voronoi;
  };

  /// The immutable base plus the query objects bound to it. Shared by
  /// every snapshot between two compactions; rebuilt as a unit so the
  /// query objects' database pointers can never dangle.
  struct BaseBundle {
    BaseBundle(std::vector<Point> points, const PointDatabase::Options& o,
               const VoronoiAreaQuery::Options& voronoi_options = {})
        : db(std::move(points), o),
          traditional(&db),
          voronoi(&db, voronoi_options),
          grid_sweep(&db),
          brute(&db) {}
    BaseBundle(const BaseBundle&) = delete;
    BaseBundle& operator=(const BaseBundle&) = delete;

    PointDatabase db;
    TraditionalAreaQuery traditional;
    VoronoiAreaQuery voronoi;
    GridSweepAreaQuery grid_sweep;
    BruteForceAreaQuery brute;
  };

  /// One fixed-capacity block of the insert buffer: SoA coordinate
  /// streams plus parallel stable ids. Slots `>= size` of the owning
  /// buffer are writable scratch the next insert may fill; no snapshot
  /// ever reads beyond its own recorded size, so appending into a shared
  /// chunk is race-free (writes touch only never-published slots, and
  /// publication happens-before every read via the snapshot mutex).
  struct DeltaChunk {
    static constexpr std::size_t kCapacity = 1024;
    double xs[kCapacity];
    double ys[kCapacity];
    PointId stable[kCapacity];
  };

  /// The insert buffer: a spine of shared chunks plus the live length.
  /// An insert copies only the spine (delta/1024 shared pointers) and
  /// appends in place — amortised O(1); a base delete shares the buffer
  /// untouched; a delta delete (swap-remove) copies just the two touched
  /// chunks (the erased slot's and the tail, whose freed slot later
  /// inserts refill), so snapshots with a larger recorded size never
  /// share a chunk whose visible slots get rewritten.
  struct DeltaBuffer {
    std::vector<std::shared_ptr<DeltaChunk>> chunks;
    std::size_t size = 0;
  };

  /// One immutable version of the database. Obtained via `snapshot()`;
  /// valid (and unchanging) for as long as the caller holds the pointer,
  /// whatever mutations or compactions happen meanwhile.
  class Snapshot {
   public:
    const PointDatabase& base() const { return bundle_->db; }

    /// The base-side query object for `m`, bound to `base()`.
    const AreaQuery& BaseQuery(DynamicMethod m) const {
      switch (m) {
        case DynamicMethod::kVoronoi:
          return bundle_->voronoi;
        case DynamicMethod::kTraditional:
          return bundle_->traditional;
        case DynamicMethod::kGridSweep:
          return bundle_->grid_sweep;
        case DynamicMethod::kBruteForce:
          break;
      }
      return bundle_->brute;
    }

    /// Stable id of base-internal id `id`.
    PointId StableId(PointId id) const { return (*stable_of_internal_)[id]; }

    /// Whether base-internal id `id` has been deleted in this version.
    bool IsTombstoned(PointId id) const {
      return tombstones_ != nullptr &&
             ((*tombstones_)[id >> 6] >> (id & 63)) & 1;
    }

    // Delta buffer: SoA coordinate streams plus the parallel stable ids.
    std::size_t delta_size() const { return delta_->size; }
    PointId DeltaStableId(std::size_t i) const {
      return delta_->chunks[i / DeltaChunk::kCapacity]
          ->stable[i % DeltaChunk::kCapacity];
    }
    Point DeltaPoint(std::size_t i) const {
      const DeltaChunk& c = *delta_->chunks[i / DeltaChunk::kCapacity];
      const std::size_t at = i % DeltaChunk::kCapacity;
      return Point{c.xs[at], c.ys[at]};
    }

    /// Visits the delta buffer one contiguous SoA run at a time as
    /// `fn(offset, xs, ys, n)` — the shape the blocked classification
    /// kernel consumes (chunk capacity is a multiple of `kRefineBlock`).
    template <typename Fn>
    void ForEachDeltaRun(Fn&& fn) const {
      for (std::size_t off = 0; off < delta_->size;
           off += DeltaChunk::kCapacity) {
        const DeltaChunk& c = *delta_->chunks[off / DeltaChunk::kCapacity];
        const std::size_t n =
            std::min(DeltaChunk::kCapacity, delta_->size - off);
        fn(off, c.xs, c.ys, n);
      }
    }

    /// Live points in this version (base survivors + delta).
    std::size_t live_size() const { return base_live_ + delta_size(); }
    /// Exclusive upper bound of every stable id in this version.
    PointId stable_limit() const { return stable_limit_; }
    /// Monotonic publication counter: 0 for the initial version, +1 per
    /// published mutation/compaction. Two pins with equal versions are the
    /// same immutable snapshot, which is what keys the planner's result
    /// cache — republication invalidates every cached entry for free.
    std::uint64_t version() const { return version_; }

    /// Visits every live point as `fn(stable_id, point)`, base first
    /// (internal order) then delta (buffer order).
    template <typename Fn>
    void ForEachLive(Fn&& fn) const {
      const std::vector<Point>& pts = bundle_->db.points();
      for (PointId id = 0; id < pts.size(); ++id) {
        if (!IsTombstoned(id)) fn(StableId(id), pts[id]);
      }
      for (std::size_t i = 0; i < delta_->size; ++i) {
        fn(DeltaStableId(i), DeltaPoint(i));
      }
    }

   private:
    friend class DynamicPointDatabase;
    std::shared_ptr<const BaseBundle> bundle_;
    /// Base-internal id -> stable id; shared until the next compaction.
    std::shared_ptr<const std::vector<PointId>> stable_of_internal_;
    /// Deleted base points, bitmap over internal ids; null = none.
    /// Copied on delete (base/64 words), shared otherwise.
    std::shared_ptr<const std::vector<std::uint64_t>> tombstones_;
    std::size_t base_live_ = 0;
    /// Never null. Inserts copy the chunk spine and append in place,
    /// delta deletes copy the touched chunks, base deletes share it.
    std::shared_ptr<const DeltaBuffer> delta_;
    PointId stable_limit_ = 0;
    std::uint64_t version_ = 0;
  };

  /// Builds the initial version from `initial`; its points receive stable
  /// ids equal to their positions in the vector. Throws
  /// `DuplicatePointError` if `initial` violates pairwise distinctness.
  explicit DynamicPointDatabase(std::vector<Point> initial)
      : DynamicPointDatabase(std::move(initial), Options{}) {}
  DynamicPointDatabase(std::vector<Point> initial, Options options);
  ~DynamicPointDatabase();  // Out of line: `planned_` is incomplete here.

  DynamicPointDatabase(const DynamicPointDatabase&) = delete;
  DynamicPointDatabase& operator=(const DynamicPointDatabase&) = delete;

  /// Inserts `p` and returns its stable id, or `std::nullopt` if the
  /// point is rejected: an equal point is already live (the
  /// pairwise-distinct invariant — callers that want dedup semantics can
  /// simply ignore the rejection), a coordinate is non-finite, or the
  /// stable id space is exhausted (ids are never reused, so a database
  /// supports 2^32 - 1 successful inserts over its lifetime).
  std::optional<PointId> Insert(const Point& p);

  /// Deletes the point with stable id `id`. Returns false if the id was
  /// never assigned or is already deleted.
  bool Erase(PointId id);

  /// Live point count (base survivors + delta buffer).
  std::size_t Size() const;

  /// Rebuilds the base from the merged live set and clears delta and
  /// tombstones. The rebuild runs outside the reader lock: queries keep
  /// starting (and finishing) on the old version for its whole duration
  /// and only other mutations wait; the new version is swapped in at the
  /// end. Stable ids are unaffected. No-op when there is nothing to fold
  /// in.
  void Compact();

  /// Pins the current version. O(1) — one pointer copy under the reader
  /// lock, which writers hold only to swap the pointer (never during a
  /// compaction rebuild).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Runs one area query through the adaptive planner (see
  /// `PlannedAreaQuery`): the cost model picks the method per query, the
  /// snapshot-keyed result cache serves repeated identical polygons, and
  /// `ctx.stats.plan_method`/`plan_reason` record the choice. This is the
  /// planned single entry point; the four per-method query objects remain
  /// reachable through `Snapshot::BaseQuery` for benches and differential
  /// tests that need a *fixed* method.
  ///
  /// Thread-safe like `snapshot()`: the planner/cache state is internally
  /// synchronized, each caller brings its own `QueryContext`.
  std::vector<PointId> Query(const Polygon& area, QueryContext& ctx) const;
  std::vector<PointId> Query(const Polygon& area, QueryContext& ctx,
                             const PlanHints& hints) const;

  /// The lazily-built planned query behind `Query`, as a registrable
  /// `AreaQuery`. This is how engine/server traffic routes through the
  /// planner instead of around it: `engine.RegisterMethod(db.PlannedQuery())`
  /// makes every `Submit`/`RunBatch` of that method plan, feed the EWMAs
  /// and hit the result cache — per-submission `SubmitOptions::hints`
  /// included. Same instance `Query` uses; valid for this database's
  /// lifetime.
  const PlannedAreaQuery* PlannedQuery() const;

  /// Geometry of the live point with stable id `id`, if any.
  ///
  /// Like the introspection accessors below, this reads the mutator-side
  /// tables and therefore coordinates with writers: it can wait behind an
  /// in-progress mutation — including a full compaction rebuild. The
  /// non-blocking read path is `snapshot()` + the query layer; use these
  /// for tests, tooling and monitoring, not on a latency-sensitive path.
  std::optional<Point> Find(PointId id) const;

  // Introspection (tests, benches). May block behind an in-progress
  // compaction; see `Find`.
  std::size_t DeltaSize() const;
  std::size_t TombstoneCount() const;
  std::uint64_t Compactions() const;

 private:
  /// Mutator-side location of a live stable id. Never read by queries.
  struct Loc {
    enum Kind : std::uint8_t { kBase, kDelta };
    Kind kind = kBase;
    PointId idx = 0;  // Base-internal id or delta-buffer position.
  };

  // "Locked" = caller holds writer_mu_ (which excludes every writer of
  // `current_`, so these may read it without taking mu_; publishing a new
  // version still takes mu_ for the pointer swap).
  bool IsLiveDuplicateLocked(const Point& p) const;
  void PublishLocked(std::shared_ptr<const Snapshot> next);
  void CompactLocked();
  void MaybeAutoCompactLocked();

  Options options_;

  /// Serializes mutations and guards the mutator-side tables below; held
  /// for the whole of Insert/Erase/Compact — including the long
  /// compaction rebuild, which is why readers do not share this lock.
  mutable std::mutex writer_mu_;
  /// Guards only `current_`: readers hold it for one pointer copy,
  /// writers (who already hold `writer_mu_`) for one pointer swap.
  /// Lock order: `writer_mu_` before `mu_`.
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  /// Stable id -> current location, live ids only (erased ids are
  /// removed, so memory tracks the live set + delta, not the lifetime
  /// insert count of a long-running store).
  std::unordered_map<PointId, Loc> loc_;
  /// Coordinates currently in the delta buffer (zero-normalised so ±0.0
  /// collide), for O(1) duplicate checks — an O(delta) scan per insert
  /// would make the mutation stream quadratic between compactions.
  /// Mutator-side like `loc_`: never read by queries.
  std::unordered_set<Point, PointHash> delta_coords_;
  std::size_t tombstone_count_ = 0;
  std::uint64_t compactions_ = 0;
  /// Next snapshot version to publish (guarded by `writer_mu_`).
  std::uint64_t next_version_ = 1;

  /// Lazily built planner behind `Query` (planner EWMA state + result
  /// cache, both internally synchronized). `mutable` because `Query` is
  /// logically const — it mutates only tuning/cache state, never data.
  mutable std::once_flag planned_once_;
  mutable std::unique_ptr<PlannedAreaQuery> planned_;
};

}  // namespace vaq

#endif  // VAQ_CORE_DYNAMIC_POINT_DATABASE_H_
