#ifndef VAQ_CORE_DYNAMIC_AREA_QUERY_H_
#define VAQ_CORE_DYNAMIC_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/dynamic_point_database.h"

namespace vaq {

/// Runs one area query against an already-pinned snapshot: base pass with
/// the selected method, tombstone filter, stable-id remap, delta-refine
/// pass, merge and sort. This is the body of `DynamicAreaQuery::Run` minus
/// the pin, exposed so callers that must hold several snapshots consistent
/// with each other — the sharded scatter-gather layer pins one version of
/// every shard up front — can execute against the exact version they
/// pinned instead of whatever is current when the sub-query runs.
/// `ctx.stats` is reset and filled like any `AreaQuery::Run`.
std::vector<PointId> RunDynamicSnapshotQuery(
    const DynamicPointDatabase::Snapshot& snap, DynamicMethod method,
    const Polygon& area, QueryContext& ctx);

/// Area query over a `DynamicPointDatabase`: pins the current snapshot,
/// runs the selected base implementation (voronoi / traditional /
/// grid-sweep / brute-force) over the immutable base, then merges a
/// delta-refine pass — the snapshot's SoA delta buffer streamed through
/// the same blocked classification kernel the base methods use — and
/// filters tombstoned base hits. Results are stable ids (see
/// `DynamicPointDatabase`), sorted ascending.
///
/// Stateless like every `AreaQuery`: per-execution scratch lives in the
/// caller's `QueryContext` (the delta pass uses `ScratchDelta`), and the
/// snapshot pin makes `Run` safe against concurrent `Insert`/`Erase`/
/// `Compact` — register instances with a `QueryEngine` and mutate away.
///
/// Stats: `ctx.stats` is the base execution's counters plus the delta
/// pass — delta scans count as `candidates` (and `delta_candidates`) and
/// keep the `candidates == candidate_hits + visited_rejected` invariant,
/// but charge no `geometry_loads` (the delta buffer is memory-resident by
/// design). `candidate_hits` counts geometric hits; `results` can be
/// smaller when tombstones exclude validated base hits.
class DynamicAreaQuery : public AreaQuery {
 public:
  /// `db` must outlive this object.
  DynamicAreaQuery(const DynamicPointDatabase* db, DynamicMethod method)
      : db_(db), method_(method) {}

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;

  std::string_view Name() const override {
    switch (method_) {
      case DynamicMethod::kVoronoi:
        return "dyn-voronoi";
      case DynamicMethod::kTraditional:
        return "dyn-traditional";
      case DynamicMethod::kGridSweep:
        return "dyn-grid-sweep";
      case DynamicMethod::kBruteForce:
        break;
    }
    return "dyn-brute-force";
  }

 private:
  const DynamicPointDatabase* db_;
  DynamicMethod method_;
};

}  // namespace vaq

#endif  // VAQ_CORE_DYNAMIC_AREA_QUERY_H_
