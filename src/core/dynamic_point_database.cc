#include "core/dynamic_point_database.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "planner/planned_area_query.h"

namespace vaq {

namespace {

/// Key normalisation for the delta coordinate set: +0.0 and -0.0 compare
/// equal but may hash differently; adding 0.0 maps -0.0 to +0.0.
Point NormalizedKey(const Point& p) { return Point{p.x + 0.0, p.y + 0.0}; }

}  // namespace

DynamicPointDatabase::DynamicPointDatabase(std::vector<Point> initial,
                                           Options options)
    : options_(options) {
  auto mutable_bundle =
      std::make_shared<BaseBundle>(std::move(initial), options_.base,
                                   options_.voronoi);
  mutable_bundle->db.set_simulated_fetch_ns(options_.simulated_fetch_ns);
  mutable_bundle->db.set_fetch_latency_model(options_.fetch_latency_model);
  std::shared_ptr<const BaseBundle> bundle = std::move(mutable_bundle);
  const std::size_t n = bundle->db.size();
  // Stable ids of the initial points are their input positions, which is
  // exactly what the base's internal→original permutation records.
  auto stable = std::make_shared<std::vector<PointId>>(n);
  loc_.reserve(n);
  for (PointId id = 0; id < n; ++id) {
    const PointId stable_id = bundle->db.OriginalId(id);
    (*stable)[id] = stable_id;
    loc_.emplace(stable_id, Loc{Loc::kBase, id});
  }
  auto snap = std::make_shared<Snapshot>();
  snap->bundle_ = std::move(bundle);
  snap->stable_of_internal_ = std::move(stable);
  snap->base_live_ = n;
  snap->delta_ = std::make_shared<const DeltaBuffer>();
  snap->stable_limit_ = static_cast<PointId>(n);
  current_ = std::move(snap);
}

DynamicPointDatabase::~DynamicPointDatabase() = default;

bool DynamicPointDatabase::IsLiveDuplicateLocked(const Point& p) const {
  const Snapshot& snap = *current_;
  // Base side: distinct base points mean at most one can equal `p`, and if
  // one does it is the nearest neighbour (distance 0) — one O(log n) index
  // probe instead of a mutator-side hash of the whole point set.
  const PointDatabase& base = snap.bundle_->db;
  const PointId nn = base.rtree().NearestNeighbor(p, nullptr);
  if (nn != kInvalidPointId && base.points()[nn] == p &&
      !snap.IsTombstoned(nn)) {
    return true;
  }
  // Delta side: the mutator-side coordinate set mirrors the buffer.
  return delta_coords_.count(NormalizedKey(p)) > 0;
}

std::optional<PointId> DynamicPointDatabase::Insert(const Point& p) {
  // Non-finite coordinates poison every downstream structure (NaN breaks
  // the ordering the distinctness check sorts by, and NaN != NaN would
  // admit duplicates); reject them at the mutation boundary.
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) return std::nullopt;
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Stable ids are never reused; kInvalidPointId caps the lifetime space.
  if (current_->stable_limit_ == kInvalidPointId) return std::nullopt;
  if (IsLiveDuplicateLocked(p)) return std::nullopt;
  // Copy the chunk spine only (shared pointers); the append below writes
  // a slot no published snapshot can read (all record sizes <= the
  // current one), so inserts are amortised O(1), not O(delta).
  auto next = std::make_shared<Snapshot>(*current_);
  next->version_ = next_version_++;
  const PointId stable_id = next->stable_limit_++;
  auto delta = std::make_shared<DeltaBuffer>(*next->delta_);
  const std::size_t ci = delta->size / DeltaChunk::kCapacity;
  const std::size_t at = delta->size % DeltaChunk::kCapacity;
  // A delta delete may leave a trailing part-empty chunk behind, so the
  // append targets the chunk the slot index maps to, pushing a fresh one
  // only when the spine really ends here.
  if (ci == delta->chunks.size()) {
    delta->chunks.push_back(std::make_shared<DeltaChunk>());
  }
  DeltaChunk& tail = *delta->chunks[ci];
  tail.xs[at] = p.x;
  tail.ys[at] = p.y;
  tail.stable[at] = stable_id;
  // The remaining throwing operations are the two bookkeeping inserts;
  // order + rollback keep the store consistent if either runs out of
  // memory (everything after is noexcept).
  delta_coords_.insert(NormalizedKey(p));
  try {
    loc_.emplace(stable_id, Loc{Loc::kDelta,
                                static_cast<PointId>(delta->size)});
  } catch (...) {
    delta_coords_.erase(NormalizedKey(p));
    throw;
  }
  ++delta->size;
  next->delta_ = std::move(delta);
  PublishLocked(std::move(next));
  MaybeAutoCompactLocked();
  return stable_id;
}

bool DynamicPointDatabase::Erase(PointId id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) return false;
  auto next = std::make_shared<Snapshot>(*current_);
  next->version_ = next_version_++;
  const Loc loc = it->second;
  if (loc.kind == Loc::kBase) {
    const std::size_t words = (next->bundle_->db.size() + 63) / 64;
    auto tomb =
        next->tombstones_ != nullptr
            ? std::make_shared<std::vector<std::uint64_t>>(
                  *next->tombstones_)
            : std::make_shared<std::vector<std::uint64_t>>(words, 0);
    (*tomb)[loc.idx >> 6] |= std::uint64_t{1} << (loc.idx & 63);
    next->tombstones_ = std::move(tomb);
    --next->base_live_;
    ++tombstone_count_;
  } else {
    // Delta delete leaves no tombstone: swap-remove the buffer entry and
    // repoint the moved entry's location. Only the two touched chunks are
    // copied — the erased slot's chunk (rewritten by the swap) and the
    // tail chunk, whose freed slot a later insert will refill while older
    // snapshots may still read it; every other chunk stays shared.
    auto delta = std::make_shared<DeltaBuffer>(*next->delta_);
    constexpr std::size_t kCap = DeltaChunk::kCapacity;
    const std::size_t di = loc.idx;
    const std::size_t last = delta->size - 1;
    delta->chunks[last / kCap] =
        std::make_shared<DeltaChunk>(*delta->chunks[last / kCap]);
    if (di / kCap != last / kCap) {
      delta->chunks[di / kCap] =
          std::make_shared<DeltaChunk>(*delta->chunks[di / kCap]);
    }
    delta_coords_.erase(NormalizedKey(next->DeltaPoint(di)));
    if (di != last) {
      DeltaChunk& to = *delta->chunks[di / kCap];
      const DeltaChunk& from = *delta->chunks[last / kCap];
      to.xs[di % kCap] = from.xs[last % kCap];
      to.ys[di % kCap] = from.ys[last % kCap];
      to.stable[di % kCap] = from.stable[last % kCap];
      loc_.at(to.stable[di % kCap]).idx = static_cast<PointId>(di);
    }
    --delta->size;
    next->delta_ = std::move(delta);
  }
  loc_.erase(it);
  PublishLocked(std::move(next));
  MaybeAutoCompactLocked();
  return true;
}

std::size_t DynamicPointDatabase::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->live_size();
}

void DynamicPointDatabase::Compact() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  CompactLocked();
}

void DynamicPointDatabase::PublishLocked(
    std::shared_ptr<const Snapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

void DynamicPointDatabase::CompactLocked() {
  // Pin the input version: everything below reads this snapshot while
  // concurrent queries keep pinning (and running on) the same one — the
  // reader lock is only taken for the final pointer swap, so the O(n log
  // n) rebuild never stalls snapshot().
  const std::shared_ptr<const Snapshot> pinned = current_;
  const Snapshot& snap = *pinned;
  if (snap.delta_size() == 0 && tombstone_count_ == 0) return;
  // Merge the live set, carrying each point's stable id alongside so the
  // rebuilt base's fresh Hilbert relabelling can be mapped back.
  std::vector<Point> merged;
  std::vector<PointId> merged_stable;
  merged.reserve(snap.live_size());
  merged_stable.reserve(snap.live_size());
  snap.ForEachLive([&](PointId stable_id, const Point& p) {
    merged.push_back(p);
    merged_stable.push_back(stable_id);
  });
  // The live set is pairwise distinct by the Insert invariant, so the
  // rebuild skips the construction-boundary check instead of re-proving
  // it; the build reuses the clustered bulk-load and the `hilbert_sorted`
  // Delaunay fast path wholesale.
  PointDatabase::Options rebuild_options = options_.base;
  rebuild_options.skip_distinctness_check = true;
  auto mutable_bundle =
      std::make_shared<BaseBundle>(std::move(merged), rebuild_options,
                                   options_.voronoi);
  mutable_bundle->db.set_simulated_fetch_ns(options_.simulated_fetch_ns);
  mutable_bundle->db.set_fetch_latency_model(options_.fetch_latency_model);
  std::shared_ptr<const BaseBundle> bundle = std::move(mutable_bundle);
  const std::size_t n = bundle->db.size();
  auto stable = std::make_shared<std::vector<PointId>>(n);
  // The location table is rebuilt off to the side and swapped in with the
  // snapshot: a mid-loop allocation failure must not leave loc_ half
  // repointed at a base that was never published.
  std::unordered_map<PointId, Loc> new_loc;
  new_loc.reserve(n);
  for (PointId id = 0; id < n; ++id) {
    const PointId stable_id = merged_stable[bundle->db.OriginalId(id)];
    (*stable)[id] = stable_id;
    new_loc.emplace(stable_id, Loc{Loc::kBase, id});
  }
  auto next = std::make_shared<Snapshot>();
  next->bundle_ = std::move(bundle);
  next->stable_of_internal_ = std::move(stable);
  next->base_live_ = n;
  next->delta_ = std::make_shared<const DeltaBuffer>();
  next->stable_limit_ = snap.stable_limit_;
  next->version_ = next_version_++;
  PublishLocked(std::move(next));
  loc_.swap(new_loc);
  delta_coords_.clear();
  tombstone_count_ = 0;
  ++compactions_;
}

void DynamicPointDatabase::MaybeAutoCompactLocked() {
  if (!options_.auto_compact) return;
  const std::size_t threshold =
      options_.compact_threshold > 0
          ? options_.compact_threshold
          : std::max<std::size_t>(256, current_->bundle_->db.size() / 4);
  if (current_->delta_size() + tombstone_count_ >= threshold) {
    CompactLocked();
  }
}

std::shared_ptr<const DynamicPointDatabase::Snapshot>
DynamicPointDatabase::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::optional<Point> DynamicPointDatabase::Find(PointId id) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = loc_.find(id);
  if (it == loc_.end()) return std::nullopt;
  if (it->second.kind == Loc::kBase) {
    return current_->bundle_->db.points()[it->second.idx];
  }
  return current_->DeltaPoint(it->second.idx);
}

std::size_t DynamicPointDatabase::DeltaSize() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return current_->delta_size();
}

std::size_t DynamicPointDatabase::TombstoneCount() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return tombstone_count_;
}

std::uint64_t DynamicPointDatabase::Compactions() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return compactions_;
}

std::vector<PointId> DynamicPointDatabase::Query(const Polygon& area,
                                                 QueryContext& ctx) const {
  return Query(area, ctx, PlanHints{});
}

std::vector<PointId> DynamicPointDatabase::Query(
    const Polygon& area, QueryContext& ctx, const PlanHints& hints) const {
  return PlannedQuery()->RunPlanned(area, ctx, hints);
}

const PlannedAreaQuery* DynamicPointDatabase::PlannedQuery() const {
  std::call_once(planned_once_, [this] {
    planned_ = std::make_unique<PlannedAreaQuery>(this);
  });
  return planned_.get();
}

}  // namespace vaq
