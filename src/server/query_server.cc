#include "server/query_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <system_error>
#include <utility>

#include "geometry/wkt.h"
#include "planner/planned_area_query.h"

namespace vaq {

namespace {

/// Reads exactly `n` bytes; false on orderly EOF at a frame boundary
/// (n == 0 read on the first byte), throws on a mid-frame EOF or error.
/// EINTR retries; everything else is fatal for the connection.
bool ReadFull(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // Clean close between frames.
      throw std::runtime_error("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("read failed: ") +
                             std::strerror(errno));
  }
  return true;
}

void WriteFull(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-response is this
    // connection's problem (EPIPE, handled by the caller), never a
    // process-wide SIGPIPE.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("write failed: ") +
                             std::strerror(errno));
  }
}

std::vector<std::uint8_t> ErrorFrame(WireErrorCode code,
                                     const std::string& detail) {
  std::vector<std::uint8_t> out;
  AppendFrame(out, Opcode::kError, EncodeErrorPayload({code, detail}));
  return out;
}

}  // namespace

/// Per-connection state: the socket, the serving thread and the
/// connection's own stats slice (reported via the STATS opcode).
struct QueryServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
  std::uint64_t requests = 0;  // Touched only by the serving thread.
  std::uint64_t errors = 0;
};

QueryServer::QueryServer(DynamicPointDatabase* db, Options options)
    : db_(db),
      options_(options),
      engine_(EngineOptions{
          .num_threads = options.engine_threads,
          .queue_capacity = options.engine_queue_capacity,
          // Admission control IS the protocol's backpressure story: a
          // full queue must surface as a typed kRetryLater, not as a
          // connection thread blocked inside Submit.
          .shed_on_full = true,
      }) {
  method_ = engine_.RegisterMethod(db_->PlannedQuery());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::system_error(err, std::generic_category(), "listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
}

void QueryServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // Abort in-flight and queued queries: every request token is chained
  // under this one, so one cancel fans out to all of them. Their
  // handlers turn the aborts into typed kCancelled responses before the
  // sockets close — drain, not drop.
  shutdown_.Cancel();

  // Unblock the accept loop.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Unblock connection reads, then join. Joining drains: each handler
  // finishes (and answers) the request it is processing first.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const std::unique_ptr<Connection>& c : conns) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
  }
  for (const std::unique_ptr<Connection>& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
  engine_.Stop();
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or fatally broken): stop accepting.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    // Reap finished connections so a long-lived server's bookkeeping
    // tracks the active set, not its connection history.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        if ((*it)->fd >= 0) ::close((*it)->fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> clock(counters_mu_);
      ++counters_.connections_total;
      ++counters_.connections_active;
    }
    conn->thread = std::thread(&QueryServer::ServeConnection, this, raw);
    conns_.push_back(std::move(conn));
  }
}

void QueryServer::ServeConnection(Connection* conn) {
  std::uint8_t header[kFrameHeaderBytes];
  std::vector<std::uint8_t> payload;
  try {
    while (ReadFull(conn->fd, header, sizeof(header))) {
      ++conn->requests;
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.requests_total;
      }
      FrameHeader fh;
      try {
        fh = DecodeFrameHeader({header, sizeof(header)});
        if (!IsRequestOpcode(static_cast<std::uint8_t>(fh.opcode))) {
          throw ProtocolError(ProtocolError::Kind::kBadOpcode,
                              "response opcode in a request frame");
        }
      } catch (const ProtocolError& e) {
        // A malformed header means framing is lost: answer once, then
        // close — resynchronising an untrusted byte stream is a guess.
        // Bad magic gets no answer at all: the peer is not speaking this
        // protocol, and our error frame would be noise to it.
        ++conn->errors;
        if (e.kind() != ProtocolError::Kind::kBadMagic) {
          const auto frame = ErrorFrame(WireErrorCode::kBadRequest, e.what());
          WriteFull(conn->fd, frame.data(), frame.size());
        }
        break;
      }
      // Header validated (length bounded) — the payload allocation is
      // safe now, and reuses the connection's buffer across requests.
      payload.resize(fh.payload_len);
      if (fh.payload_len > 0 &&
          !ReadFull(conn->fd, payload.data(), payload.size())) {
        break;  // EOF inside the payload: peer vanished; nothing to say.
      }
      const std::vector<std::uint8_t> response =
          HandleRequest(conn, fh.opcode, payload);
      WriteFull(conn->fd, response.data(), response.size());
    }
  } catch (...) {
    // IO failure (peer reset, shutdown during a blocking read/write):
    // the connection is over; server-wide state is untouched.
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    --counters_.connections_active;
  }
  conn->done.store(true, std::memory_order_release);
}

std::vector<std::uint8_t> QueryServer::HandleRequest(
    Connection* conn, Opcode opcode, std::vector<std::uint8_t> payload) {
  if (stopping_.load(std::memory_order_relaxed)) {
    ++conn->errors;
    return ErrorFrame(WireErrorCode::kShuttingDown,
                      "server is shutting down");
  }
  try {
    switch (opcode) {
      case Opcode::kQuery: {
        // Shared side of the drain lock: held across the whole request
        // (submit + wait), so an exclusive COMPACT acquisition is the
        // barrier "all in-flight requests finished".
        std::shared_lock<std::shared_mutex> drain(drain_mu_);
        return HandleQuery(payload);
      }
      case Opcode::kInsert: {
        std::shared_lock<std::shared_mutex> drain(drain_mu_);
        double x = 0.0, y = 0.0;
        DecodeInsertRequest(payload, &x, &y);
        const std::optional<PointId> id = db_->Insert({x, y});
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.mutations_total;
        std::vector<std::uint8_t> out;
        AppendFrame(out, Opcode::kMutated,
                    EncodeMutationPayload(
                        {id.has_value(), id.has_value() ? *id : 0u}));
        return out;
      }
      case Opcode::kErase: {
        std::shared_lock<std::shared_mutex> drain(drain_mu_);
        const PointId id = DecodeEraseRequest(payload);
        const bool ok = db_->Erase(id);
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.mutations_total;
        std::vector<std::uint8_t> out;
        AppendFrame(out, Opcode::kMutated, EncodeMutationPayload({ok, 0}));
        return out;
      }
      case Opcode::kCompact: {
        // Exclusive side: wait for in-flight requests (DRAINING), hold
        // newcomers on the shared acquisition (COMPACTING), rebuild,
        // release (RUNNING). Queries already in the engine finished
        // inside their handlers' shared sections, so nothing runs
        // mid-rebuild and nothing was dropped to get there.
        std::unique_lock<std::shared_mutex> drain(drain_mu_);
        db_->Compact();
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.mutations_total;
        ++counters_.drains_completed;
        std::vector<std::uint8_t> out;
        AppendFrame(out, Opcode::kMutated, EncodeMutationPayload({true, 0}));
        return out;
      }
      case Opcode::kStats: {
        const EngineStats es = engine_.Stats();
        WireServerStats s;
        s.queries_completed = es.queries_completed;
        s.throughput_qps = es.throughput_qps;
        s.latency_p50_ms = es.latency_p50_ms;
        s.latency_p95_ms = es.latency_p95_ms;
        s.latency_p99_ms = es.latency_p99_ms;
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          s.connections_total = counters_.connections_total;
          s.connections_active = counters_.connections_active;
          s.requests_total = counters_.requests_total;
          s.queries_ok = counters_.queries_ok;
          s.queries_shed = counters_.queries_shed;
          s.queries_rejected = counters_.queries_rejected;
          s.queries_aborted = counters_.queries_aborted;
          s.mutations_total = counters_.mutations_total;
          s.drains_completed = counters_.drains_completed;
        }
        s.client_requests = conn->requests;
        s.client_errors = conn->errors;
        std::vector<std::uint8_t> out;
        AppendFrame(out, Opcode::kStatsReply, EncodeServerStatsPayload(s));
        return out;
      }
      case Opcode::kPing: {
        std::vector<std::uint8_t> out;
        AppendFrame(out, Opcode::kPong, payload);
        return out;
      }
      default:
        break;
    }
    throw ProtocolError(ProtocolError::Kind::kBadOpcode,
                        "unhandled request opcode");
  } catch (const ProtocolError& e) {
    ++conn->errors;
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.queries_rejected;
    return ErrorFrame(WireErrorCode::kBadRequest, e.what());
  }
}

std::vector<std::uint8_t> QueryServer::HandleQuery(
    std::span<const std::uint8_t> payload) {
  // Throws ProtocolError up to HandleRequest's kBadRequest mapping.
  const WireQueryRequest req = DecodeQueryRequest(payload);

  Polygon area;
  try {
    area = ParseWktPolygon(req.wkt, options_.max_wkt_vertices);
  } catch (const WktParseError& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.queries_rejected;
    return ErrorFrame(WireErrorCode::kBadWkt, e.what());
  }

  SubmitOptions opts;
  opts.deadline_ms = req.deadline_ms;
  if (options_.max_deadline_ms > 0.0 &&
      (opts.deadline_ms == 0.0 || opts.deadline_ms > options_.max_deadline_ms))
    opts.deadline_ms = options_.max_deadline_ms;
  opts.hints.force_method = req.force_method;
  opts.hints.use_cache = req.use_cache;
  opts.hints.allow_scatter = req.allow_scatter;
  // Chain under the shutdown token so Stop() aborts this query promptly
  // (the engine adds the per-request deadline onto the same token).
  opts.cancel = std::make_shared<CancelToken>();
  opts.cancel->set_parent(&shutdown_);

  QueryResult result;
  try {
    result = engine_.Submit(std::move(area), method_, opts).get();
  } catch (const EngineOverloadedError& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.queries_shed;
    return ErrorFrame(WireErrorCode::kRetryLater, e.what());
  } catch (const QueryAbortedError& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.queries_aborted;
    return ErrorFrame(e.reason() == QueryAbortedError::Reason::kDeadline
                          ? WireErrorCode::kDeadline
                          : WireErrorCode::kCancelled,
                      e.what());
  } catch (const EngineStoppedError& e) {
    return ErrorFrame(WireErrorCode::kShuttingDown, e.what());
  } catch (const std::exception& e) {
    return ErrorFrame(WireErrorCode::kInternal, e.what());
  }

  // Stream the ids in fixed-size frames, then the terminal stats frame.
  std::vector<std::uint8_t> out;
  const std::span<const PointId> ids(result.ids);
  for (std::size_t at = 0; at < ids.size(); at += kIdsPerFrame) {
    AppendFrame(out, Opcode::kResultIds,
                EncodeResultIdsPayload(
                    ids.subspan(at, std::min(kIdsPerFrame, ids.size() - at))));
  }
  WireQueryStats stats = SummarizeQueryStats(result.stats);
  stats.results = result.ids.size();
  AppendFrame(out, Opcode::kQueryDone, EncodeQueryStatsPayload(stats));
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.queries_ok;
  }
  return out;
}

QueryServer::Counters QueryServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace vaq
