#include "server/protocol.h"

#include <bit>
#include <cstring>

namespace vaq {

namespace {

// --- Little-endian put/get helpers ------------------------------------------
// memcpy through a fixed-width integer, byte-swapped on big-endian hosts,
// so the wire format is identical regardless of host endianness.

template <typename T>
T ByteSwapIfBig(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out = static_cast<T>((out << 8) | ((v >> (8 * i)) & 0xFF));
    }
    return out;
  }
  return v;
}

template <typename T>
void PutInt(std::vector<std::uint8_t>& out, T v) {
  const T le = ByteSwapIfBig(v);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &le, sizeof(T));
}

void PutDouble(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutInt<std::uint64_t>(out, bits);
}

/// Reader over a payload span; every Get throws kTruncatedPayload when
/// the span runs out, so decode functions never read past the frame.
struct PayloadReader {
  std::span<const std::uint8_t> in;
  std::size_t at = 0;

  std::size_t Remaining() const { return in.size() - at; }

  template <typename T>
  T GetInt(const char* field) {
    if (Remaining() < sizeof(T)) {
      throw ProtocolError(ProtocolError::Kind::kTruncatedPayload,
                          std::string("payload ends inside field '") + field +
                              "'");
    }
    T le;
    std::memcpy(&le, in.data() + at, sizeof(T));
    at += sizeof(T);
    return ByteSwapIfBig(le);
  }

  double GetDouble(const char* field) {
    const std::uint64_t bits = GetInt<std::uint64_t>(field);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetBytes(std::size_t n, const char* field) {
    if (Remaining() < n) {
      throw ProtocolError(ProtocolError::Kind::kTruncatedPayload,
                          std::string("payload ends inside field '") + field +
                              "'");
    }
    std::string s(reinterpret_cast<const char*>(in.data() + at), n);
    at += n;
    return s;
  }

  /// Decode functions call this last: leftover bytes mean the frame's
  /// declared length disagrees with the opcode's layout.
  void ExpectDone(const char* what) {
    if (at != in.size()) {
      throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                          std::string(what) + " payload has " +
                              std::to_string(in.size() - at) +
                              " trailing bytes");
    }
  }
};

}  // namespace

ProtocolError::ProtocolError(Kind kind, const std::string& what)
    : std::runtime_error("protocol error: " + what), kind_(kind) {}

bool IsRequestOpcode(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Opcode::kQuery) &&
         op <= static_cast<std::uint8_t>(Opcode::kPing);
}

bool IsResponseOpcode(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Opcode::kResultIds) &&
         op <= static_cast<std::uint8_t>(Opcode::kError);
}

std::string_view WireErrorCodeName(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadRequest:
      return "bad-request";
    case WireErrorCode::kBadWkt:
      return "bad-wkt";
    case WireErrorCode::kRetryLater:
      return "retry-later";
    case WireErrorCode::kDeadline:
      return "deadline";
    case WireErrorCode::kCancelled:
      return "cancelled";
    case WireErrorCode::kShuttingDown:
      return "shutting-down";
    case WireErrorCode::kInternal:
      break;
  }
  return "internal";
}

FrameHeader DecodeFrameHeader(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw ProtocolError(ProtocolError::Kind::kTruncatedPayload,
                        "frame header needs 12 bytes, got " +
                            std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw ProtocolError(ProtocolError::Kind::kBadMagic,
                        "frame does not start with the VQRY magic");
  }
  if (bytes[4] != kProtocolVersion) {
    throw ProtocolError(
        ProtocolError::Kind::kBadVersion,
        "unsupported protocol version " + std::to_string(bytes[4]));
  }
  const std::uint8_t op = bytes[5];
  if (!IsRequestOpcode(op) && !IsResponseOpcode(op)) {
    throw ProtocolError(ProtocolError::Kind::kBadOpcode,
                        "unknown opcode " + std::to_string(op));
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    throw ProtocolError(ProtocolError::Kind::kBadFlags,
                        "reserved flag bits are set");
  }
  std::uint32_t len;
  std::memcpy(&len, bytes.data() + 8, sizeof(len));
  len = ByteSwapIfBig(len);
  if (len > kMaxPayloadBytes) {
    throw ProtocolError(ProtocolError::Kind::kOversizedFrame,
                        "payload length " + std::to_string(len) +
                            " exceeds the " +
                            std::to_string(kMaxPayloadBytes) + "-byte bound");
  }
  return FrameHeader{static_cast<Opcode>(op), len};
}

void AppendFrame(std::vector<std::uint8_t>& out, Opcode opcode,
                 std::span<const std::uint8_t> payload) {
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  out.insert(out.end(), kFrameMagic, kFrameMagic + sizeof(kFrameMagic));
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(opcode));
  out.push_back(0);  // flags
  out.push_back(0);
  PutInt<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

// --- Requests ----------------------------------------------------------------

std::vector<std::uint8_t> EncodeQueryRequest(const WireQueryRequest& req) {
  std::vector<std::uint8_t> out;
  out.push_back(req.force_method
                    ? static_cast<std::uint8_t>(*req.force_method)
                    : std::uint8_t{0xFF});
  std::uint8_t hints = 0;
  if (req.use_cache) hints |= 0x01;
  if (req.allow_scatter) hints |= 0x02;
  out.push_back(hints);
  PutInt<std::uint16_t>(out, 0);  // reserved
  PutDouble(out, req.deadline_ms);
  PutInt<std::uint32_t>(out, static_cast<std::uint32_t>(req.wkt.size()));
  out.insert(out.end(), req.wkt.begin(), req.wkt.end());
  return out;
}

WireQueryRequest DecodeQueryRequest(std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  WireQueryRequest req;
  const std::uint8_t method = r.GetInt<std::uint8_t>("method");
  if (method != 0xFF) {
    if (method >= kNumDynamicMethods) {
      throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                          "forced method " + std::to_string(method) +
                              " is not a DynamicMethod");
    }
    req.force_method = static_cast<DynamicMethod>(method);
  }
  const std::uint8_t hints = r.GetInt<std::uint8_t>("hints");
  if ((hints & ~0x03) != 0) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "unknown hint flag bits");
  }
  req.use_cache = (hints & 0x01) != 0;
  req.allow_scatter = (hints & 0x02) != 0;
  if (r.GetInt<std::uint16_t>("reserved") != 0) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "reserved query bytes are set");
  }
  req.deadline_ms = r.GetDouble("deadline_ms");
  // Reject a hostile deadline before it reaches CancelToken arithmetic.
  if (!(req.deadline_ms >= 0.0) || req.deadline_ms > 1e12) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "deadline_ms is negative, non-finite or absurd");
  }
  const std::uint32_t wkt_len = r.GetInt<std::uint32_t>("wkt_len");
  if (wkt_len != r.Remaining()) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "wkt_len disagrees with the frame length");
  }
  req.wkt = r.GetBytes(wkt_len, "wkt");
  r.ExpectDone("query");
  return req;
}

std::vector<std::uint8_t> EncodeInsertRequest(double x, double y) {
  std::vector<std::uint8_t> out;
  PutDouble(out, x);
  PutDouble(out, y);
  return out;
}

void DecodeInsertRequest(std::span<const std::uint8_t> payload, double* x,
                         double* y) {
  PayloadReader r{payload};
  *x = r.GetDouble("x");
  *y = r.GetDouble("y");
  r.ExpectDone("insert");
}

std::vector<std::uint8_t> EncodeEraseRequest(PointId id) {
  std::vector<std::uint8_t> out;
  PutInt<std::uint64_t>(out, id);
  return out;
}

PointId DecodeEraseRequest(std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  const std::uint64_t id = r.GetInt<std::uint64_t>("id");
  r.ExpectDone("erase");
  if (id > 0xFFFFFFFFull) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "erase id exceeds the 32-bit PointId range");
  }
  return static_cast<PointId>(id);
}

// --- Responses ----------------------------------------------------------------

std::vector<std::uint8_t> EncodeResultIdsPayload(
    std::span<const PointId> ids) {
  std::vector<std::uint8_t> out;
  PutInt<std::uint32_t>(out, static_cast<std::uint32_t>(ids.size()));
  PutInt<std::uint32_t>(out, 0);  // reserved
  for (const PointId id : ids) {
    PutInt<std::uint64_t>(out, id);
  }
  return out;
}

std::vector<PointId> DecodeResultIdsPayload(
    std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  const std::uint32_t count = r.GetInt<std::uint32_t>("count");
  if (r.GetInt<std::uint32_t>("reserved") != 0) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "reserved ids bytes are set");
  }
  // count is bounded by the frame itself: 8 bytes per id must fit in the
  // remaining payload, so a hostile count cannot oversize the reserve.
  if (r.Remaining() != std::size_t{count} * 8) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "id count disagrees with the frame length");
  }
  std::vector<PointId> ids;
  ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.GetInt<std::uint64_t>("id");
    if (id > 0xFFFFFFFFull) {
      throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                          "result id exceeds the 32-bit PointId range");
    }
    ids.push_back(static_cast<PointId>(id));
  }
  r.ExpectDone("result-ids");
  return ids;
}

WireQueryStats SummarizeQueryStats(const QueryStats& stats) {
  WireQueryStats s;
  s.results = stats.results;
  s.candidates = stats.candidates;
  s.geometry_loads = stats.geometry_loads;
  s.plan_method = stats.plan_method;
  s.plan_reason = stats.plan_reason;
  s.result_cache_hits = stats.result_cache_hits;
  s.result_cache_misses = stats.result_cache_misses;
  s.shards_hit = stats.shards_hit;
  s.shards_pruned = stats.shards_pruned;
  s.degraded = stats.degraded;
  s.elapsed_ms = stats.elapsed_ms;
  return s;
}

std::vector<std::uint8_t> EncodeQueryStatsPayload(const WireQueryStats& s) {
  std::vector<std::uint8_t> out;
  PutInt<std::uint64_t>(out, s.results);
  PutInt<std::uint64_t>(out, s.candidates);
  PutInt<std::uint64_t>(out, s.geometry_loads);
  PutInt<std::uint64_t>(out, s.plan_method);
  PutInt<std::uint64_t>(out, s.plan_reason);
  PutInt<std::uint64_t>(out, s.result_cache_hits);
  PutInt<std::uint64_t>(out, s.result_cache_misses);
  PutInt<std::uint64_t>(out, s.shards_hit);
  PutInt<std::uint64_t>(out, s.shards_pruned);
  PutInt<std::uint64_t>(out, s.degraded);
  PutDouble(out, s.elapsed_ms);
  return out;
}

WireQueryStats DecodeQueryStatsPayload(
    std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  WireQueryStats s;
  s.results = r.GetInt<std::uint64_t>("results");
  s.candidates = r.GetInt<std::uint64_t>("candidates");
  s.geometry_loads = r.GetInt<std::uint64_t>("geometry_loads");
  s.plan_method = r.GetInt<std::uint64_t>("plan_method");
  s.plan_reason = r.GetInt<std::uint64_t>("plan_reason");
  s.result_cache_hits = r.GetInt<std::uint64_t>("result_cache_hits");
  s.result_cache_misses = r.GetInt<std::uint64_t>("result_cache_misses");
  s.shards_hit = r.GetInt<std::uint64_t>("shards_hit");
  s.shards_pruned = r.GetInt<std::uint64_t>("shards_pruned");
  s.degraded = r.GetInt<std::uint64_t>("degraded");
  s.elapsed_ms = r.GetDouble("elapsed_ms");
  r.ExpectDone("query-stats");
  return s;
}

std::vector<std::uint8_t> EncodeMutationPayload(const WireMutationResult& m) {
  std::vector<std::uint8_t> out;
  out.push_back(m.ok ? 1 : 0);
  for (int i = 0; i < 7; ++i) out.push_back(0);
  PutInt<std::uint64_t>(out, m.value);
  return out;
}

WireMutationResult DecodeMutationPayload(
    std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  WireMutationResult m;
  const std::uint8_t ok = r.GetInt<std::uint8_t>("ok");
  if (ok > 1) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "mutation ok byte is not 0/1");
  }
  m.ok = ok == 1;
  r.GetBytes(7, "reserved");
  m.value = r.GetInt<std::uint64_t>("value");
  r.ExpectDone("mutation");
  return m;
}

std::vector<std::uint8_t> EncodeServerStatsPayload(const WireServerStats& s) {
  std::vector<std::uint8_t> out;
  PutInt<std::uint64_t>(out, s.queries_completed);
  PutDouble(out, s.throughput_qps);
  PutDouble(out, s.latency_p50_ms);
  PutDouble(out, s.latency_p95_ms);
  PutDouble(out, s.latency_p99_ms);
  PutInt<std::uint64_t>(out, s.connections_total);
  PutInt<std::uint64_t>(out, s.connections_active);
  PutInt<std::uint64_t>(out, s.requests_total);
  PutInt<std::uint64_t>(out, s.queries_ok);
  PutInt<std::uint64_t>(out, s.queries_shed);
  PutInt<std::uint64_t>(out, s.queries_rejected);
  PutInt<std::uint64_t>(out, s.queries_aborted);
  PutInt<std::uint64_t>(out, s.mutations_total);
  PutInt<std::uint64_t>(out, s.drains_completed);
  PutInt<std::uint64_t>(out, s.client_requests);
  PutInt<std::uint64_t>(out, s.client_errors);
  return out;
}

WireServerStats DecodeServerStatsPayload(
    std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  WireServerStats s;
  s.queries_completed = r.GetInt<std::uint64_t>("queries_completed");
  s.throughput_qps = r.GetDouble("throughput_qps");
  s.latency_p50_ms = r.GetDouble("latency_p50_ms");
  s.latency_p95_ms = r.GetDouble("latency_p95_ms");
  s.latency_p99_ms = r.GetDouble("latency_p99_ms");
  s.connections_total = r.GetInt<std::uint64_t>("connections_total");
  s.connections_active = r.GetInt<std::uint64_t>("connections_active");
  s.requests_total = r.GetInt<std::uint64_t>("requests_total");
  s.queries_ok = r.GetInt<std::uint64_t>("queries_ok");
  s.queries_shed = r.GetInt<std::uint64_t>("queries_shed");
  s.queries_rejected = r.GetInt<std::uint64_t>("queries_rejected");
  s.queries_aborted = r.GetInt<std::uint64_t>("queries_aborted");
  s.mutations_total = r.GetInt<std::uint64_t>("mutations_total");
  s.drains_completed = r.GetInt<std::uint64_t>("drains_completed");
  s.client_requests = r.GetInt<std::uint64_t>("client_requests");
  s.client_errors = r.GetInt<std::uint64_t>("client_errors");
  r.ExpectDone("server-stats");
  return s;
}

std::vector<std::uint8_t> EncodeErrorPayload(const WireError& e) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(e.code));
  for (int i = 0; i < 3; ++i) out.push_back(0);
  PutInt<std::uint32_t>(out, static_cast<std::uint32_t>(e.detail.size()));
  out.insert(out.end(), e.detail.begin(), e.detail.end());
  return out;
}

WireError DecodeErrorPayload(std::span<const std::uint8_t> payload) {
  PayloadReader r{payload};
  WireError e;
  const std::uint8_t code = r.GetInt<std::uint8_t>("code");
  if (code < static_cast<std::uint8_t>(WireErrorCode::kBadRequest) ||
      code > static_cast<std::uint8_t>(WireErrorCode::kInternal)) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "unknown error code " + std::to_string(code));
  }
  e.code = static_cast<WireErrorCode>(code);
  r.GetBytes(3, "reserved");
  const std::uint32_t detail_len = r.GetInt<std::uint32_t>("detail_len");
  if (detail_len != r.Remaining()) {
    throw ProtocolError(ProtocolError::Kind::kMalformedPayload,
                        "detail_len disagrees with the frame length");
  }
  e.detail = r.GetBytes(detail_len, "detail");
  r.ExpectDone("error");
  return e;
}

}  // namespace vaq
