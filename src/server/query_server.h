#ifndef VAQ_SERVER_QUERY_SERVER_H_
#define VAQ_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/cancel.h"
#include "core/dynamic_point_database.h"
#include "engine/query_engine.h"
#include "geometry/wkt.h"
#include "server/protocol.h"

namespace vaq {

/// The network front door (ROADMAP item 1): a long-running TCP service
/// that exposes one `DynamicPointDatabase` over the `VQRY` framed
/// protocol (see `protocol.h`). Untrusted clients send WKT polygons and
/// mutations; the server multiplexes them onto one shared `QueryEngine`
/// pool and streams results back.
///
/// **Threading model.** One accept thread plus one thread per connection
/// — connection threads do only parsing and IO; all query *work* funnels
/// through the engine pool via `Submit`, so CPU parallelism is bounded by
/// `Options::engine_threads` regardless of connection count, and engine
/// statistics stay in units of client queries.
///
/// **Planner routing.** The engine method the server registers is the
/// database's `PlannedQuery()` — every network query plans, feeds the
/// planner's EWMAs, and hits the snapshot-keyed result cache. Per-request
/// `PlanHints` ride in on `SubmitOptions::hints`.
///
/// **Backpressure.** The engine runs with `shed_on_full`: when the work
/// queue is full, `Submit` throws `EngineOverloadedError`, which the
/// server maps to a typed `kRetryLater` response. An overloaded server
/// answers *something* for every request — load shedding is visible,
/// never a silent drop or unbounded queueing.
///
/// **Deadlines.** A request's `deadline_ms` becomes the submission-
/// relative engine deadline (queue wait counts); expiry surfaces as a
/// typed `kDeadline` response. Every request token is also chained under
/// a server-wide shutdown token, so `Stop()` aborts in-flight queries
/// promptly with `kCancelled` instead of waiting them out.
///
/// **Mutations and drain.** INSERT/ERASE are cheap COW publications and
/// run under a shared lock. COMPACT takes the lock exclusively — the
/// drain state machine: RUNNING -> DRAINING (compact waits for in-flight
/// request handlers; queries keep running on their pinned snapshots) ->
/// COMPACTING (new requests queue on the shared lock — briefly blocked,
/// never rejected, never dropped) -> RUNNING. COW snapshots make this
/// safe without the lock; the lock bounds how much in-flight work a
/// rebuild races against and gives the drain a testable all-or-nothing
/// boundary.
class QueryServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 = ephemeral (see `port()`).
    std::uint16_t port = 0;
    /// Listen backlog.
    int backlog = 64;
    /// Engine pool configuration. `engine_threads` 0 = hardware
    /// concurrency. The queue bound is the admission-control knob: a
    /// full queue sheds with `kRetryLater` instead of queueing further.
    int engine_threads = 0;
    std::size_t engine_queue_capacity = 256;
    /// Vertex bound handed to the WKT parser per request.
    std::size_t max_wkt_vertices = kDefaultMaxWktVertices;
    /// Ceiling applied to client-requested deadlines (0 = no ceiling):
    /// an operator cap so one client cannot park work on the pool for
    /// minutes by asking politely.
    double max_deadline_ms = 0.0;
  };

  /// Counters of `Stop()`-time and STATS-opcode reporting. All since
  /// construction; see `WireServerStats` for field meanings.
  struct Counters {
    std::uint64_t connections_total = 0;
    std::uint64_t connections_active = 0;
    std::uint64_t requests_total = 0;
    std::uint64_t queries_ok = 0;
    std::uint64_t queries_shed = 0;
    std::uint64_t queries_rejected = 0;
    std::uint64_t queries_aborted = 0;
    std::uint64_t mutations_total = 0;
    std::uint64_t drains_completed = 0;
  };

  /// Serves `db` (not owned; must outlive the server). The constructor
  /// binds and listens — a bind failure throws `std::system_error` — but
  /// accepts nothing until `Start()`.
  QueryServer(DynamicPointDatabase* db, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Starts the accept loop. Idempotent.
  void Start();

  /// Graceful shutdown: stop accepting, cancel in-flight queries through
  /// the shutdown token (clients get typed `kCancelled` / `kShuttingDown`
  /// responses, never a silent close mid-response), join every
  /// connection thread, stop the engine. Idempotent; the destructor
  /// calls it.
  void Stop();

  /// The bound port (resolves an ephemeral `Options::port = 0`).
  std::uint16_t port() const { return port_; }

  Counters counters() const;
  EngineStats engine_stats() const { return engine_.Stats(); }
  /// Resets the engine's stats window (benches time cells back to back).
  void ResetEngineStats() { engine_.ResetStats(); }

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Handles one decoded request frame; returns the response bytes
  /// (one or more frames, the last terminal).
  std::vector<std::uint8_t> HandleRequest(Connection* conn, Opcode opcode,
                                          std::vector<std::uint8_t> payload);
  std::vector<std::uint8_t> HandleQuery(std::span<const std::uint8_t> payload);

  DynamicPointDatabase* db_;
  Options options_;
  QueryEngine engine_;
  int method_ = -1;  // The registered planned method.

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Parent of every request token: `Stop()` cancels it once and every
  /// queued/running query aborts at its next block boundary.
  CancelToken shutdown_;

  /// The drain lock (see class comment): request handlers shared,
  /// COMPACT exclusive.
  std::shared_mutex drain_mu_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace vaq

#endif  // VAQ_SERVER_QUERY_SERVER_H_
