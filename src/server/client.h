#ifndef VAQ_SERVER_CLIENT_H_
#define VAQ_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "index/spatial_index.h"
#include "server/protocol.h"

namespace vaq {

/// A typed `kError` response. The `code` is the contract — callers switch
/// on it (retry on `kRetryLater`, fix the polygon on `kBadWkt`, give up on
/// `kShuttingDown`); `detail` is diagnostic text only.
class ServerError : public std::runtime_error {
 public:
  ServerError(WireErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(WireErrorCodeName(code)) + ": " +
                           detail),
        code_(code) {}

  WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

/// Blocking client for the `VQRY` protocol: one TCP connection, strict
/// request/response. Every method sends one request frame and reads
/// response frames until the terminal one; a `kError` response surfaces
/// as a typed `ServerError`, transport failures as `std::runtime_error`.
///
/// Not thread-safe — one connection is one conversation. Concurrency is
/// the *server's* job (open one client per thread, as the soak test and
/// `bench_server_qps` do).
class QueryClient {
 public:
  /// Result of one streamed query: the reassembled ids plus the terminal
  /// summary frame. The constructor of this value already cross-checked
  /// `stats.results` against the streamed frames.
  struct QueryOutcome {
    std::vector<PointId> ids;
    WireQueryStats stats;
  };

  /// Connects to the server on 127.0.0.1. Throws `std::system_error`.
  explicit QueryClient(std::uint16_t port);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Runs one area query. `req.wkt` must be set; hints/deadline optional.
  QueryOutcome Query(const WireQueryRequest& req);
  /// Convenience: defaults (planner choice, cache on, no deadline).
  QueryOutcome Query(std::string_view wkt);

  /// Mutations. `Insert` returns the assigned stable id in `value` when
  /// `ok`; `ok == false` means the point was rejected (duplicate).
  WireMutationResult Insert(double x, double y);
  WireMutationResult Erase(PointId id);
  /// Drain + compact; returns after the rebuild is published.
  WireMutationResult Compact();

  WireServerStats Stats();

  /// Liveness probe; returns true iff the echoed payload matches.
  bool Ping();

  /// Sends raw bytes as-is and reads one response frame — the hostile-
  /// input path for protocol tests (malformed headers, bad payloads).
  /// Returns the full response frame (header + payload).
  std::vector<std::uint8_t> RoundTripRaw(std::span<const std::uint8_t> bytes);

 private:
  /// Reads one well-formed response frame; validates its header.
  struct Frame {
    Opcode opcode;
    std::vector<std::uint8_t> payload;
  };
  Frame ReadFrame();
  void SendFrame(Opcode opcode, std::span<const std::uint8_t> payload);
  /// Reads one response frame, throwing `ServerError` on `kError` and on
  /// an opcode other than `expected` (or `kResultIds`, for queries).
  Frame Expect(Opcode expected);

  int fd_ = -1;
};

}  // namespace vaq

#endif  // VAQ_SERVER_CLIENT_H_
