#ifndef VAQ_SERVER_PROTOCOL_H_
#define VAQ_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/method.h"
#include "core/query_stats.h"
#include "index/spatial_index.h"

namespace vaq {

/// The wire format of the network query service (DESIGN.md §14): a
/// length-prefixed binary protocol of framed messages over one TCP
/// stream. Requests and responses share one frame shape; a connection is
/// strictly request/response (the client sends one request frame, the
/// server answers with one or more response frames, the last of which is
/// terminal for that request).
///
/// Frame layout (all fields little-endian):
///
///   offset  size  field
///   ------  ----  -------------------------------------------------
///        0     4  magic "VQRY"
///        4     1  protocol version (currently 1)
///        5     1  opcode (see `Opcode`)
///        6     2  reserved flags (written 0; readers reject nonzero —
///                 they are claimed for future use, and a client setting
///                 them is speaking a protocol this version is not)
///        8     4  payload length in bytes, <= kMaxPayloadBytes
///       12   ...  payload (opcode-specific, layouts below)
///
/// The reader validates the header *before* any payload allocation —
/// same hardening discipline as the `.vpag` reader: magic, version and
/// the payload bound are checked on the fixed 12 bytes, so a hostile
/// length field can never drive an allocation.
inline constexpr char kFrameMagic[4] = {'V', 'Q', 'R', 'Y'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound of any payload: bigger than the largest legitimate frame
/// (a max-vertex WKT ring is ~3 MiB of text at max_digits10), small
/// enough that a hostile header cannot balloon server memory.
inline constexpr std::size_t kMaxPayloadBytes = 4u << 20;
/// Result ids per streamed response frame: fixed-size chunks so client
/// buffers are bounded and large results pipeline instead of queueing
/// one giant frame. 1024 ids = 8 KiB payloads.
inline constexpr std::size_t kIdsPerFrame = 1024;

/// Message kinds. Requests are < 0x80, responses have the top bit set.
enum class Opcode : std::uint8_t {
  // Requests.
  kQuery = 0x01,    // WKT polygon + hints -> id frames + a stats frame.
  kInsert = 0x02,   // One point -> kMutated.
  kErase = 0x03,    // One stable id -> kMutated.
  kCompact = 0x04,  // Drain in-flight queries, compact -> kMutated.
  kStats = 0x05,    // -> kStatsReply.
  kPing = 0x06,     // Liveness probe; payload echoed in kPong.
  // Responses.
  kResultIds = 0x81,   // One chunk of result ids (non-terminal).
  kQueryDone = 0x82,   // Terminal query summary (`WireQueryStats`).
  kMutated = 0x83,     // Terminal mutation ack (`WireMutationResult`).
  kStatsReply = 0x84,  // Terminal stats snapshot (`WireServerStats`).
  kPong = 0x85,        // Terminal ping echo.
  kError = 0x86,       // Terminal typed failure (`WireError`).
};

/// Whether `op` is a known request / response opcode of this version.
bool IsRequestOpcode(std::uint8_t op);
bool IsResponseOpcode(std::uint8_t op);

/// Typed error codes of `kError` responses — the wire projection of the
/// library's failure domains (DESIGN.md §12): the client switches on the
/// code, never on message text.
enum class WireErrorCode : std::uint8_t {
  kBadRequest = 1,   // Malformed payload, unknown opcode, nonzero flags.
  kBadWkt = 2,       // WKT rejected; detail names the `WktParseError`
                     // kind and byte offset.
  kRetryLater = 3,   // Admission control shed the query (engine queue
                     // full) — back off and retry; nothing was dropped
                     // silently, this response IS the backpressure.
  kDeadline = 4,     // The request's deadline expired (queued or running).
  kCancelled = 5,    // The query was cancelled (server shutdown drain).
  kShuttingDown = 6,  // Server is stopping; no new requests accepted.
  kInternal = 7,     // Unexpected server-side failure.
};

std::string_view WireErrorCodeName(WireErrorCode code);

/// Thrown by every decode function on malformed bytes. Carries a typed
/// kind so the server can distinguish "close the connection" (bad magic:
/// the peer is not speaking this protocol) from "answer kBadRequest and
/// continue" (bad payload on a well-formed frame).
class ProtocolError : public std::runtime_error {
 public:
  enum class Kind {
    kBadMagic,         // Frame does not start with "VQRY".
    kBadVersion,       // Future/unknown protocol version.
    kBadFlags,         // Reserved flag bits set.
    kOversizedFrame,   // Header's payload length > kMaxPayloadBytes.
    kBadOpcode,        // Opcode unknown to this version.
    kTruncatedPayload, // Payload shorter than its opcode's layout needs.
    kMalformedPayload, // Payload lengths inconsistent with the frame.
  };

  ProtocolError(Kind kind, const std::string& what);
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Decoded frame header (magic already verified and stripped).
struct FrameHeader {
  Opcode opcode = Opcode::kPing;
  std::uint32_t payload_len = 0;
};

/// Validates and decodes the fixed 12 header bytes. Throws
/// `ProtocolError` {kBadMagic, kBadVersion, kBadFlags, kOversizedFrame,
/// kBadOpcode}; never reads past `kFrameHeaderBytes`.
FrameHeader DecodeFrameHeader(std::span<const std::uint8_t> bytes);

/// Appends a full frame (header + payload) to `out`.
void AppendFrame(std::vector<std::uint8_t>& out, Opcode opcode,
                 std::span<const std::uint8_t> payload);

// --- Request payloads -----------------------------------------------------

/// `kQuery` payload:
///   offset  size  field
///        0     1  forced method: DynamicMethod value, or 0xFF = planner
///        1     1  hint flags: bit0 use_cache, bit1 allow_scatter
///        2     2  reserved (0)
///        4     8  deadline_ms as IEEE-754 double (0 = none)
///       12     4  WKT byte length L (must equal payload_len - 16)
///       16     L  WKT text (not NUL-terminated)
struct WireQueryRequest {
  std::optional<DynamicMethod> force_method;
  bool use_cache = true;
  bool allow_scatter = true;
  double deadline_ms = 0.0;
  std::string wkt;
};

std::vector<std::uint8_t> EncodeQueryRequest(const WireQueryRequest& req);
WireQueryRequest DecodeQueryRequest(std::span<const std::uint8_t> payload);

/// `kInsert` payload: two doubles (x, y). `kErase` payload: one u64 id.
std::vector<std::uint8_t> EncodeInsertRequest(double x, double y);
void DecodeInsertRequest(std::span<const std::uint8_t> payload, double* x,
                         double* y);
std::vector<std::uint8_t> EncodeEraseRequest(PointId id);
PointId DecodeEraseRequest(std::span<const std::uint8_t> payload);

// --- Response payloads ------------------------------------------------------

/// `kResultIds` payload: u32 count, u32 reserved, then count u64 ids.
/// Ids are u64 on the wire (u32 in-process today) so the format survives
/// a wider id type without a version bump.
std::vector<std::uint8_t> EncodeResultIdsPayload(
    std::span<const PointId> ids);
std::vector<PointId> DecodeResultIdsPayload(
    std::span<const std::uint8_t> payload);

/// `kQueryDone` summary: the per-query cost counters a client can act on
/// (result count is the authoritative total — the client cross-checks it
/// against the streamed id frames).
struct WireQueryStats {
  std::uint64_t results = 0;
  std::uint64_t candidates = 0;
  std::uint64_t geometry_loads = 0;
  std::uint64_t plan_method = 0;
  std::uint64_t plan_reason = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t shards_hit = 0;
  std::uint64_t shards_pruned = 0;
  std::uint64_t degraded = 0;
  double elapsed_ms = 0.0;
};

WireQueryStats SummarizeQueryStats(const QueryStats& stats);
std::vector<std::uint8_t> EncodeQueryStatsPayload(const WireQueryStats& s);
WireQueryStats DecodeQueryStatsPayload(std::span<const std::uint8_t> payload);

/// `kMutated` payload: u8 ok, 7 reserved bytes, u64 value (assigned id
/// for inserts; 0 otherwise).
struct WireMutationResult {
  bool ok = false;
  std::uint64_t value = 0;
};

std::vector<std::uint8_t> EncodeMutationPayload(const WireMutationResult& m);
WireMutationResult DecodeMutationPayload(
    std::span<const std::uint8_t> payload);

/// `kStatsReply`: engine percentiles + server counters + the requesting
/// connection's own counters (the per-client slice).
struct WireServerStats {
  // Engine window (see `EngineStats`).
  std::uint64_t queries_completed = 0;
  double throughput_qps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  // Server-wide counters since start.
  std::uint64_t connections_total = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t queries_ok = 0;
  std::uint64_t queries_shed = 0;      // kRetryLater responses.
  std::uint64_t queries_rejected = 0;  // kBadWkt / kBadRequest responses.
  std::uint64_t queries_aborted = 0;   // kDeadline / kCancelled responses.
  std::uint64_t mutations_total = 0;
  std::uint64_t drains_completed = 0;  // Compact drain cycles.
  // The requesting connection's slice.
  std::uint64_t client_requests = 0;
  std::uint64_t client_errors = 0;
};

std::vector<std::uint8_t> EncodeServerStatsPayload(const WireServerStats& s);
WireServerStats DecodeServerStatsPayload(
    std::span<const std::uint8_t> payload);

/// `kError` payload: u8 code, 3 reserved bytes, u32 detail length, then
/// the UTF-8 detail text (diagnostic only — clients switch on the code).
struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  std::string detail;
};

std::vector<std::uint8_t> EncodeErrorPayload(const WireError& e);
WireError DecodeErrorPayload(std::span<const std::uint8_t> payload);

}  // namespace vaq

#endif  // VAQ_SERVER_PROTOCOL_H_
