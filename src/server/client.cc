#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace vaq {

namespace {

void ReadExact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) throw std::runtime_error("server closed the connection");
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("read failed: ") +
                             std::strerror(errno));
  }
}

void WriteExact(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a server that closed on us surfaces as EPIPE (and a
    // typed exception), not a process-wide SIGPIPE.
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("write failed: ") +
                             std::strerror(errno));
  }
}

}  // namespace

QueryClient::QueryClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

QueryClient::~QueryClient() {
  if (fd_ >= 0) ::close(fd_);
}

void QueryClient::SendFrame(Opcode opcode,
                            std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  AppendFrame(frame, opcode, payload);
  WriteExact(fd_, frame.data(), frame.size());
}

QueryClient::Frame QueryClient::ReadFrame() {
  std::uint8_t header[kFrameHeaderBytes];
  ReadExact(fd_, header, sizeof(header));
  // The client holds the server to the same framing discipline the
  // server holds clients to (throws ProtocolError on violations).
  const FrameHeader fh = DecodeFrameHeader({header, sizeof(header)});
  if (!IsResponseOpcode(static_cast<std::uint8_t>(fh.opcode))) {
    throw ProtocolError(ProtocolError::Kind::kBadOpcode,
                        "request opcode in a response frame");
  }
  Frame frame{fh.opcode, std::vector<std::uint8_t>(fh.payload_len)};
  if (fh.payload_len > 0) {
    ReadExact(fd_, frame.payload.data(), frame.payload.size());
  }
  return frame;
}

QueryClient::Frame QueryClient::Expect(Opcode expected) {
  Frame frame = ReadFrame();
  if (frame.opcode == Opcode::kError) {
    const WireError e = DecodeErrorPayload(frame.payload);
    throw ServerError(e.code, e.detail);
  }
  if (frame.opcode != expected &&
      !(expected == Opcode::kQueryDone &&
        frame.opcode == Opcode::kResultIds)) {
    throw std::runtime_error("unexpected response opcode");
  }
  return frame;
}

QueryClient::QueryOutcome QueryClient::Query(const WireQueryRequest& req) {
  SendFrame(Opcode::kQuery, EncodeQueryRequest(req));
  QueryOutcome outcome;
  for (;;) {
    Frame frame = Expect(Opcode::kQueryDone);
    if (frame.opcode == Opcode::kResultIds) {
      const std::vector<PointId> chunk = DecodeResultIdsPayload(frame.payload);
      outcome.ids.insert(outcome.ids.end(), chunk.begin(), chunk.end());
      continue;
    }
    outcome.stats = DecodeQueryStatsPayload(frame.payload);
    break;
  }
  if (outcome.stats.results != outcome.ids.size()) {
    throw std::runtime_error(
        "result count mismatch between id frames and the summary");
  }
  return outcome;
}

QueryClient::QueryOutcome QueryClient::Query(std::string_view wkt) {
  WireQueryRequest req;
  req.wkt = std::string(wkt);
  return Query(req);
}

WireMutationResult QueryClient::Insert(double x, double y) {
  SendFrame(Opcode::kInsert, EncodeInsertRequest(x, y));
  return DecodeMutationPayload(Expect(Opcode::kMutated).payload);
}

WireMutationResult QueryClient::Erase(PointId id) {
  SendFrame(Opcode::kErase, EncodeEraseRequest(id));
  return DecodeMutationPayload(Expect(Opcode::kMutated).payload);
}

WireMutationResult QueryClient::Compact() {
  SendFrame(Opcode::kCompact, {});
  return DecodeMutationPayload(Expect(Opcode::kMutated).payload);
}

WireServerStats QueryClient::Stats() {
  SendFrame(Opcode::kStats, {});
  return DecodeServerStatsPayload(Expect(Opcode::kStatsReply).payload);
}

bool QueryClient::Ping() {
  const std::uint8_t nonce[4] = {0xde, 0xad, 0xbe, 0xef};
  SendFrame(Opcode::kPing, nonce);
  const Frame frame = Expect(Opcode::kPong);
  return frame.payload.size() == sizeof(nonce) &&
         std::memcmp(frame.payload.data(), nonce, sizeof(nonce)) == 0;
}

std::vector<std::uint8_t> QueryClient::RoundTripRaw(
    std::span<const std::uint8_t> bytes) {
  WriteExact(fd_, bytes.data(), bytes.size());
  std::vector<std::uint8_t> out(kFrameHeaderBytes);
  ReadExact(fd_, out.data(), kFrameHeaderBytes);
  const FrameHeader fh = DecodeFrameHeader({out.data(), kFrameHeaderBytes});
  out.resize(kFrameHeaderBytes + fh.payload_len);
  if (fh.payload_len > 0) {
    ReadExact(fd_, out.data() + kFrameHeaderBytes, fh.payload_len);
  }
  return out;
}

}  // namespace vaq
