#ifndef VAQ_PLANNER_QUERY_PLAN_H_
#define VAQ_PLANNER_QUERY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/method.h"

namespace vaq {

/// Why the planner chose what it chose, as OR-able bits recorded in
/// `QueryStats::plan_reason` (merged across sharded legs / engine totals
/// by OR, like `kernel_kind`). A plan usually carries several bits —
/// e.g. kSeedModel | kIoBound | kScatter.
namespace plan_reason {
/// The choice came from the static cost model seeded off the committed
/// BENCH baselines (no live observations for this bucket yet).
inline constexpr std::uint64_t kSeedModel = 1u << 0;
/// The choice used coefficients tuned by live `QueryStats` observations
/// (the per-(method, selectivity-bucket) EWMA had data for this bucket).
inline constexpr std::uint64_t kLearnedModel = 1u << 1;
/// The caller forced the method via `PlanHints::force_method`.
inline constexpr std::uint64_t kForced = 1u << 2;
/// The result was served from the snapshot-keyed result cache; no
/// execution ran (the method bit records the *planned* method).
inline constexpr std::uint64_t kCacheHit = 1u << 3;
/// Per-candidate IO dominates per-candidate CPU (simulated fetch or
/// paged backend), the regime where the Voronoi method's smaller
/// candidate set wins (the paper's crossover).
inline constexpr std::uint64_t kIoBound = 1u << 4;
/// The database is small enough that index/prepare fixed costs dominate
/// and the brute scan wins.
inline constexpr std::uint64_t kTinyData = 1u << 5;
/// Sharded only: the plan fans surviving shards onto the scatter engine.
inline constexpr std::uint64_t kScatter = 1u << 6;
/// Sharded only: the plan runs surviving shards inline (fan-out would
/// cost more than it overlaps).
inline constexpr std::uint64_t kInline = 1u << 7;
}  // namespace plan_reason

/// Caller-side knobs of one planned query (`PlannedAreaQuery::RunPlanned`,
/// `DynamicPointDatabase::Query`, `ShardedDatabase::Query`). Defaults =
/// fully automatic.
struct PlanHints {
  /// Bypass the cost model and run this method (the plan still carries
  /// reason bits, records stats, and uses the result cache).
  std::optional<DynamicMethod> force_method;
  /// Consult/fill the snapshot-keyed result cache. Disable for one-shot
  /// polygons that would only evict hotter entries.
  bool use_cache = true;
  /// Sharded only: allow fanning legs onto the scatter engine. Disable to
  /// pin the query inline regardless of the cost model's fanout call.
  bool allow_scatter = true;
};

/// What the planner decided for one query, plus the predictions the
/// decision was based on — kept so `QueryPlanner::Observe` can compare
/// prediction against the measured `QueryStats` and tune the model.
struct QueryPlan {
  DynamicMethod method = DynamicMethod::kTraditional;
  /// OR of `plan_reason::*` bits explaining the choice.
  std::uint64_t reason = 0;
  /// Selectivity bucket the EWMA state is keyed on (see `QueryPlanner`).
  int bucket = 0;
  /// IO-bound regime flag (second EWMA key dimension).
  bool io_bound = false;
  /// Sharded fanout call: scatter surviving shards onto the engine
  /// (true) or run them inline (false). Meaningless for unsharded plans.
  bool scatter = false;
  /// Prepared-kernel sizing hint: the predicted number of point-in-
  /// polygon tests, fed to `QueryContext::Prepared(area, expected_tests)`
  /// so the raster grid amortises against the *estimated* workload
  /// instead of the polygon-complexity default.
  std::size_t expected_tests = 0;
  /// The model's predictions for the chosen method (Observe inputs).
  double predicted_cost_ns = 0.0;
  double predicted_candidates = 0.0;
};

}  // namespace vaq

#endif  // VAQ_PLANNER_QUERY_PLAN_H_
