#include "planner/planned_area_query.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/brute_force_area_query.h"
#include "core/dynamic_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "storage/page_store.h"

namespace vaq {

namespace {

/// MBR/area shares of the polygon against the database bounds. A
/// degenerate domain (empty database, zero-area bounds) reports full
/// shares — n is tiny there and every method costs its fixed overhead.
void FillShares(const Polygon& area, const Box& domain, PlanFeatures& f) {
  const double domain_area = domain.Area();
  if (domain_area > 0.0) {
    f.mbr_share = std::min(1.0, area.Bounds().Area() / domain_area);
    f.poly_share = std::min(1.0, area.Area() / domain_area);
  } else {
    f.mbr_share = 1.0;
    f.poly_share = 1.0;
  }
}

void FillBackendCosts(const PointDatabase& base, PlanFeatures& f) {
  f.io_ns_per_load = base.simulated_fetch_ns();
  f.paged = base.storage_backend() != StorageBackend::kInMemory;
}

}  // namespace

/// The four method query objects over an immutable `PointDatabase`; the
/// other backends build their method objects per snapshot inside
/// `RunDynamicSnapshotQuery` / the shard legs.
struct PlannedAreaQuery::StaticBundle {
  TraditionalAreaQuery trad;
  VoronoiAreaQuery vor;
  GridSweepAreaQuery grid;
  BruteForceAreaQuery brute;

  explicit StaticBundle(const PointDatabase* db)
      : trad(db), vor(db), grid(db), brute(db) {}

  const AreaQuery& For(DynamicMethod m) const {
    switch (m) {
      case DynamicMethod::kVoronoi:
        return vor;
      case DynamicMethod::kTraditional:
        return trad;
      case DynamicMethod::kGridSweep:
        return grid;
      case DynamicMethod::kBruteForce:
        break;
    }
    return brute;
  }
};

/// One planning round's pinned state: the features the plan is computed
/// from, and the exact snapshot both the cache key and the execution use
/// — pinning once is what makes the cached answer provably equal to the
/// executed one (no mutation can slip between key and run).
struct PlannedAreaQuery::Pinned {
  PlanFeatures features;
  std::uint64_t version = 0;
  std::shared_ptr<const DynamicPointDatabase::Snapshot> dyn_snap;
  std::shared_ptr<const ShardedDatabase::Snapshot> shard_snap;
};

PlannedAreaQuery::PlannedAreaQuery(const PointDatabase* db, Options opts)
    : static_db_(db),
      bundle_(std::make_unique<StaticBundle>(db)),
      planner_(opts.model),
      cache_(opts.cache_capacity) {}

PlannedAreaQuery::PlannedAreaQuery(const DynamicPointDatabase* db,
                                   Options opts)
    : dynamic_db_(db), planner_(opts.model), cache_(opts.cache_capacity) {}

PlannedAreaQuery::PlannedAreaQuery(const ShardedDatabase* db,
                                   QueryEngine* scatter_engine,
                                   ShardPolicy policy, Options opts)
    : sharded_db_(db),
      scatter_engine_(scatter_engine),
      policy_(policy),
      planner_(opts.model),
      cache_(opts.cache_capacity) {}

PlannedAreaQuery::~PlannedAreaQuery() = default;

PlannedAreaQuery::Pinned PlannedAreaQuery::Pin(const Polygon& area) const {
  Pinned pinned;
  PlanFeatures& f = pinned.features;
  if (dynamic_db_ != nullptr) {
    pinned.dyn_snap = dynamic_db_->snapshot();
    pinned.version = pinned.dyn_snap->version();
    f.n = pinned.dyn_snap->live_size();
    // The base bounds are the domain proxy; delta inserts can drift
    // outside them, but the shares only steer cost estimates and the
    // EWMAs absorb systematic drift.
    FillShares(area, pinned.dyn_snap->base().bounds(), f);
    FillBackendCosts(pinned.dyn_snap->base(), f);
  } else if (sharded_db_ != nullptr) {
    pinned.shard_snap = sharded_db_->snapshot();
    pinned.version = pinned.shard_snap->version();
    Box domain;
    for (const ShardedDatabase::ShardView& v : pinned.shard_snap->shards()) {
      f.n += v.snap->live_size();
      domain.ExpandToInclude(v.mbr);
    }
    FillShares(area, domain, f);
    const auto& shards = pinned.shard_snap->shards();
    if (!shards.empty()) FillBackendCosts(shards.front().snap->base(), f);
    f.num_shards = shards.size();
  } else {
    // Immutable backend: version 0 forever — the cache never invalidates
    // because nothing can change the answer.
    f.n = static_db_->size();
    FillShares(area, static_db_->bounds(), f);
    FillBackendCosts(*static_db_, f);
  }
  return pinned;
}

std::vector<PointId> PlannedAreaQuery::Execute(const Pinned& pinned,
                                               const QueryPlan& plan,
                                               const Polygon& area,
                                               QueryContext& ctx) const {
  if (dynamic_db_ != nullptr) {
    return RunDynamicSnapshotQuery(*pinned.dyn_snap, plan.method, area, ctx);
  }
  if (sharded_db_ != nullptr) {
    return RunShardedSnapshotQuery(
        *pinned.shard_snap, plan.method, area, ctx,
        plan.scatter ? scatter_engine_ : nullptr, policy_);
  }
  return bundle_->For(plan.method).Run(area, ctx);
}

QueryPlan PlannedAreaQuery::PlanFor(const Polygon& area,
                                    const PlanHints& hints) const {
  return planner_.Plan(Pin(area).features, hints);
}

std::vector<PointId> PlannedAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  // The hint-less `AreaQuery` entry point — what `QueryEngine` dispatches
  // on. Per-submission hints ride in on the context (installed by the
  // engine worker around the task, see `SubmitOptions::hints`), so
  // engine-routed traffic plans, learns and caches exactly like a direct
  // `RunPlanned` call instead of bypassing the planner.
  const PlanHints* hints = ctx.plan_hints();
  return RunPlanned(area, ctx, hints != nullptr ? *hints : PlanHints{});
}

std::vector<PointId> PlannedAreaQuery::RunPlanned(
    const Polygon& area, QueryContext& ctx, const PlanHints& hints) const {
  const auto t0 = std::chrono::steady_clock::now();
  const Pinned pinned = Pin(area);
  const QueryPlan plan = planner_.Plan(pinned.features, hints);
  const bool caching = hints.use_cache && cache_.capacity() > 0;

  ResultCache::Key key;
  if (caching) {
    key = ResultCache::Key{pinned.version, HashPolygonBits(area)};
    if (const std::shared_ptr<const std::vector<PointId>> ids =
            cache_.Lookup(key)) {
      // Served without execution: the work counters stay 0 (nothing
      // ran), only the result size, the plan provenance and the hit flag
      // are reported.
      ctx.stats.Reset();
      ctx.stats.results = ids->size();
      ctx.stats.result_cache_hits = 1;
      ctx.stats.plan_method = MethodBit(plan.method);
      ctx.stats.plan_reason = plan.reason | plan_reason::kCacheHit;
      ctx.stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      return *ids;
    }
  }

  // Pre-warm the prepared structure sized for the *predicted* test count,
  // so the execution's own `Prepared(area, ...)` calls memo-hit against a
  // grid already matched to the plan.
  ctx.Prepared(area, plan.expected_tests);
  std::vector<PointId> ids = Execute(pinned, plan, area, ctx);

  ctx.stats.plan_method |= MethodBit(plan.method);
  ctx.stats.plan_reason |= plan.reason;
  if (caching) ctx.stats.result_cache_misses = 1;
  planner_.Observe(plan, pinned.features, ctx.stats);
  // Degraded-partial answers (failed shard legs under `allow_partial`)
  // must not be cached: a later hit would replay the subset as the truth.
  if (caching && ctx.stats.degraded == 0) {
    cache_.Insert(key, std::make_shared<const std::vector<PointId>>(ids));
  }
  return ids;
}

}  // namespace vaq
