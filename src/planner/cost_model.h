#ifndef VAQ_PLANNER_COST_MODEL_H_
#define VAQ_PLANNER_COST_MODEL_H_

#include <cstddef>

#include "core/method.h"

namespace vaq {

/// Per-query features the planner's cost model consumes. All are O(1) to
/// compute at plan time: the shares come from the query polygon's own
/// geometry against the database bounds (the `PreparedArea::
/// EstimateMbrShare` idea), the IO figures from the backend's
/// configuration, never from running the query.
struct PlanFeatures {
  /// Live points in the (pinned) database version.
  std::size_t n = 0;
  /// Query-MBR area / database-bounds area, clamped to [0, 1]. The
  /// selectivity proxy of the filter-refine methods: the window filter
  /// produces ~ n * mbr_share candidates.
  double mbr_share = 0.0;
  /// Polygon area / database-bounds area, clamped to [0, 1]. The Voronoi
  /// flood's result-size proxy: it visits ~ n * poly_share interior
  /// points plus a boundary shell.
  double poly_share = 0.0;
  /// Simulated object-fetch latency per geometry load
  /// (`PointDatabase::simulated_fetch_ns`); the paper's disk-resident
  /// cost knob. 0 on raw in-memory timing.
  double io_ns_per_load = 0.0;
  /// True when geometry is served by an out-of-core page-cache backend
  /// (mmap/pread); adds an effective per-load cost even when
  /// `io_ns_per_load` is 0.
  bool paged = false;
  /// Shard count of the database (1 = unsharded); with the per-leg
  /// estimate, drives the fanout-vs-inline call.
  std::size_t num_shards = 1;
};

/// Static cost model: per-method candidate and wall-time estimators with
/// coefficients seeded from a fit to the committed BENCH_table1/2
/// baselines (see PAPER.md for the rows). The seed encodes the paper's
/// crossover — per-candidate CPU favours the traditional filter-refine
/// path, per-candidate IO favours the Voronoi method's smaller candidate
/// set — and the planner's EWMA layer multiplies it per
/// (method, selectivity-bucket) as live observations arrive.
struct CostModel {
  /// Per-candidate CPU cost (ns), indexed by `DynamicMethod`. Fit note:
  /// measured per-candidate cost falls with candidate count (bulk accept
  /// covers more interior as selectivity grows: ~57 -> ~14 ns for
  /// traditional from 1% to 32% queries); the seed takes the mid-range
  /// and lets the bucketed EWMA absorb the slope.
  double cpu_ns[kNumDynamicMethods] = {62.0, 30.0, 36.0, 3.5};
  /// Per-query fixed overhead (ns): index descent / flood seeding /
  /// prepared-grid build amortisation.
  double fixed_ns[kNumDynamicMethods] = {12000.0, 6000.0, 8000.0, 1500.0};
  /// Voronoi boundary shell: visited-but-rejected points scale with the
  /// result perimeter, ~ shell_coeff * sqrt(results) on uniform data
  /// (measured ~4.7 across the baseline rows).
  double shell_coeff = 4.7;
  /// Effective extra per-load cost (ns) on paged backends when no
  /// explicit `io_ns_per_load` is configured: an amortised page-cache
  /// probe (hits dominate after warm-up; misses are rare but expensive).
  double paged_load_ns = 60.0;
  /// Per-leg submit/future overhead of the sharded scatter path; legs
  /// cheaper than this run inline even when a pool is available.
  double scatter_overhead_ns = 25000.0;

  /// Expected candidate count of `m` under `f` (validated points, the
  /// quantity both `QueryStats::candidates` and the paper's Table I/II
  /// report).
  double ExpectedCandidates(DynamicMethod m, const PlanFeatures& f) const;

  /// Expected wall time (ns) of `m` under `f`, given an explicit
  /// candidate estimate (so callers can substitute an EWMA-corrected
  /// one): fixed + candidates * (cpu + effective per-load IO).
  double EstimateCostNs(DynamicMethod m, const PlanFeatures& f,
                        double candidates) const;

  /// Effective per-geometry-load IO cost (ns) under `f`.
  double IoNsPerLoad(const PlanFeatures& f) const;
};

}  // namespace vaq

#endif  // VAQ_PLANNER_COST_MODEL_H_
