#ifndef VAQ_PLANNER_PLANNED_AREA_QUERY_H_
#define VAQ_PLANNER_PLANNED_AREA_QUERY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/area_query.h"
#include "planner/query_plan.h"
#include "planner/query_planner.h"
#include "planner/result_cache.h"
#include "shard/sharded_area_query.h"

namespace vaq {

/// The unified planned query path: one `AreaQuery` that serves any of the
/// three backends (immutable `PointDatabase`, `DynamicPointDatabase`,
/// `ShardedDatabase`) by planning each query with the cost-model
/// `QueryPlanner` and executing the chosen method against a snapshot it
/// pins itself.
///
/// Per query:
///  1. Pin the backend's current snapshot (static backends are version 0
///     forever — they cannot mutate).
///  2. Compute `PlanFeatures` (live size, the polygon's MBR/area shares
///     of the database bounds, the backend's IO configuration) and ask
///     the planner for a `QueryPlan` — method, sharded fanout call,
///     prepared-kernel sizing, reason bits.
///  3. Probe the result cache under (snapshot version, polygon bit-hash).
///     A hit returns the cached ids without executing anything: the COW
///     snapshot counter guarantees the pinned version saw no mutation
///     since the entry was stored, and the bit-hash keys on the exact
///     vertex bits, so the cached answer is bit-identical to a fresh run.
///  4. On a miss, pre-warm `ctx.Prepared(area, plan.expected_tests)` so
///     the prepared kernel sizes its raster grid against the *predicted*
///     workload, execute the planned method against the pinned snapshot
///     (for sharded plans, scattering onto the engine only when the plan
///     says so), feed the measured `QueryStats` back into the planner's
///     EWMAs, and cache the result (unless it is degraded-partial — a
///     subset answer must never be served as the truth later).
///
/// `ctx.stats` always carries `plan_method` / `plan_reason`, and exactly
/// one of `result_cache_hits` / `result_cache_misses` when caching is on.
///
/// Stateless per-execution like every `AreaQuery` (scratch in the ctx);
/// the planner EWMAs and the cache are internally synchronized, so one
/// instance serves concurrent threads — `DynamicPointDatabase::Query` and
/// `ShardedDatabase::Query` share one lazily-built instance per database.
class PlannedAreaQuery final : public AreaQuery {
 public:
  struct Options {
    /// Result-cache entries (0 disables caching entirely: no lookups, no
    /// inserts, and the cache counters stay 0 in `QueryStats`).
    std::size_t cache_capacity = 128;
    /// Cost-model seed; defaults to the committed-baseline fit.
    CostModel model{};
  };

  /// Immutable backend: the planner owns the four method query objects.
  /// `db` must outlive this object.
  explicit PlannedAreaQuery(const PointDatabase* db)
      : PlannedAreaQuery(db, Options{}) {}
  PlannedAreaQuery(const PointDatabase* db, Options opts);
  /// Dynamic backend. `db` must outlive this object.
  explicit PlannedAreaQuery(const DynamicPointDatabase* db)
      : PlannedAreaQuery(db, Options{}) {}
  PlannedAreaQuery(const DynamicPointDatabase* db, Options opts);
  /// Sharded backend. A null `scatter_engine` pins every plan inline.
  /// `db` (and the engine, if given) must outlive this object.
  explicit PlannedAreaQuery(const ShardedDatabase* db,
                            QueryEngine* scatter_engine = nullptr,
                            ShardPolicy policy = {})
      : PlannedAreaQuery(db, scatter_engine, policy, Options{}) {}
  PlannedAreaQuery(const ShardedDatabase* db, QueryEngine* scatter_engine,
                   ShardPolicy policy, Options opts);
  ~PlannedAreaQuery() override;

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;

  /// `Run` with explicit hints (forced method, cache/scatter opt-outs).
  std::vector<PointId> RunPlanned(const Polygon& area, QueryContext& ctx,
                                  const PlanHints& hints) const;

  /// What would run, without running it (CLI/bench plan reporting). Pins
  /// and releases a snapshot; does not touch the cache or the EWMAs.
  QueryPlan PlanFor(const Polygon& area, const PlanHints& hints = {}) const;

  std::string_view Name() const override { return "auto"; }

  const QueryPlanner& planner() const { return planner_; }
  const ResultCache& cache() const { return cache_; }

 private:
  struct StaticBundle;  // The four method queries over a PointDatabase.

  /// Features + pinned-version context of one planning round.
  struct Pinned;
  Pinned Pin(const Polygon& area) const;

  std::vector<PointId> Execute(const Pinned& pinned, const QueryPlan& plan,
                               const Polygon& area, QueryContext& ctx) const;

  // Exactly one backend pointer is set.
  const PointDatabase* static_db_ = nullptr;
  const DynamicPointDatabase* dynamic_db_ = nullptr;
  const ShardedDatabase* sharded_db_ = nullptr;
  QueryEngine* scatter_engine_ = nullptr;
  ShardPolicy policy_{};
  std::unique_ptr<StaticBundle> bundle_;

  mutable QueryPlanner planner_;
  mutable ResultCache cache_;
};

}  // namespace vaq

#endif  // VAQ_PLANNER_PLANNED_AREA_QUERY_H_
