#include "planner/query_planner.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace vaq {

namespace {

/// EWMA smoothing: one observation moves a factor 25% of the way to the
/// measured ratio, so a slot re-centres in ~4 queries but a single
/// outlier moves it at most 2x (given the [1/8, 8] ratio clamp).
constexpr double kAlpha = 0.25;
/// Per-observation ratio clamp: a cold page cache or a scheduler stall
/// can inflate one query 100x; letting that through would freeze the
/// slot against its clamp for many queries.
constexpr double kRatioFloor = 0.125;
constexpr double kRatioCeil = 8.0;

/// Per-candidate IO above this marks the query IO-bound: the crossover
/// study's simulated-disk rows start at 1000ns/fetch, and even the
/// cheapest per-candidate CPU (brute, ~3.5ns) is far below 100ns.
constexpr double kIoBoundNs = 100.0;

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

int QueryPlanner::SelectivityBucket(double share) {
  if (!(share > 0.0)) return kNumSelectivityBuckets - 1;
  if (share >= 1.0) return 0;
  const int b = static_cast<int>(std::floor(-std::log2(share)));
  return std::min(b, kNumSelectivityBuckets - 1);
}

QueryPlan QueryPlanner::Plan(const PlanFeatures& f,
                             const PlanHints& hints) const {
  QueryPlan plan;
  plan.bucket = SelectivityBucket(f.mbr_share);
  plan.io_bound = model_.IoNsPerLoad(f) >= kIoBoundNs;

  std::lock_guard<std::mutex> lock(mu_);
  const int io = plan.io_bound ? 1 : 0;
  bool have = false;
  bool learned = false;
  DynamicMethod best = DynamicMethod::kTraditional;
  double best_cost = 0.0;
  double best_cand = 0.0;
  for (int i = 0; i < kNumDynamicMethods; ++i) {
    const DynamicMethod m = static_cast<DynamicMethod>(i);
    if (hints.force_method.has_value() && m != *hints.force_method) continue;
    const Slot& slot = slots_[io][i][plan.bucket];
    const double cand =
        model_.ExpectedCandidates(m, f) * slot.cand_factor;
    const double cost =
        model_.EstimateCostNs(m, f, cand) * slot.time_factor;
    if (!have || cost < best_cost) {
      have = true;
      best = m;
      best_cost = cost;
      best_cand = cand;
      learned = slot.seen > 0;
    }
  }
  plan.method = best;
  plan.predicted_cost_ns = best_cost;
  plan.predicted_candidates = best_cand;
  plan.expected_tests = static_cast<std::size_t>(
      Clamp(best_cand, 0.0, static_cast<double>(f.n)));

  plan.reason |= learned ? plan_reason::kLearnedModel
                         : plan_reason::kSeedModel;
  if (hints.force_method.has_value()) plan.reason |= plan_reason::kForced;
  if (plan.io_bound) plan.reason |= plan_reason::kIoBound;
  if (plan.method == DynamicMethod::kBruteForce &&
      !hints.force_method.has_value()) {
    plan.reason |= plan_reason::kTinyData;
  }

  // Sharded fanout call. Worth scattering only when (a) more than one
  // shard plausibly survives the MBR prune — estimated from the query's
  // MBR share, doubled because compact Hilbert shards tile the domain
  // and a window typically straddles its neighbours — and (b) one leg
  // costs enough to amortise the submit/future overhead. The per-leg
  // estimate reuses the chosen method's cost on a 1/K-sized database.
  if (f.num_shards > 1) {
    const double k = static_cast<double>(f.num_shards);
    const double survivors =
        Clamp(k * std::min(1.0, 2.0 * f.mbr_share), 1.0, k);
    PlanFeatures leg = f;
    leg.n = f.n / f.num_shards;
    leg.num_shards = 1;
    const Slot& slot = slots_[io][static_cast<int>(best)][plan.bucket];
    const double leg_cand =
        model_.ExpectedCandidates(best, leg) * slot.cand_factor / survivors;
    const double leg_cost =
        model_.EstimateCostNs(best, leg, leg_cand) * slot.time_factor;
    plan.scatter = hints.allow_scatter && survivors >= 2.0 &&
                   leg_cost > model_.scatter_overhead_ns;
    plan.reason |=
        plan.scatter ? plan_reason::kScatter : plan_reason::kInline;
  }
  return plan;
}

void QueryPlanner::Observe(const QueryPlan& plan, const PlanFeatures& /*f*/,
                           const QueryStats& stats) {
  const double measured_ns = stats.elapsed_ms * 1e6;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[plan.io_bound ? 1 : 0][static_cast<int>(plan.method)]
                     [plan.bucket];
  const auto Update = [first = slot.seen == 0](double& factor,
                                               double ratio) {
    ratio = Clamp(ratio, kRatioFloor, kRatioCeil);
    factor = first ? ratio : factor + kAlpha * (ratio - factor);
    factor = Clamp(factor, kRatioFloor, kRatioCeil);
  };
  if (plan.predicted_candidates > 0.0 && stats.candidates > 0) {
    // Correction relative to the *model's* estimate, not the corrected
    // one: cand_factor already multiplied the prediction, so divide it
    // back out to keep the EWMA a fixed-point of the raw model.
    const double raw = plan.predicted_candidates / slot.cand_factor;
    Update(slot.cand_factor,
           static_cast<double>(stats.candidates) / raw);
  }
  if (plan.predicted_cost_ns > 0.0 && measured_ns > 0.0) {
    const double raw = plan.predicted_cost_ns / slot.time_factor;
    Update(slot.time_factor, measured_ns / raw);
  }
  ++slot.seen;
  ++observations_;
}

double QueryPlanner::TimeFactor(DynamicMethod m, int bucket,
                                bool io_bound) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SlotFor(m, bucket, io_bound).time_factor;
}

double QueryPlanner::CandFactor(DynamicMethod m, int bucket,
                                bool io_bound) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SlotFor(m, bucket, io_bound).cand_factor;
}

std::uint64_t QueryPlanner::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

}  // namespace vaq
