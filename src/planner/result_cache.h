#ifndef VAQ_PLANNER_RESULT_CACHE_H_
#define VAQ_PLANNER_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/point_database.h"
#include "geometry/polygon.h"

namespace vaq {

/// Exact bit-hash of a polygon: FNV-1a over the vertex count and the raw
/// IEEE-754 bits of every coordinate in order. Two polygons collide in
/// the cache key only if every vertex is bit-identical in the same order
/// — the only regime in which a cached answer is guaranteed equal to a
/// fresh run (re-ordered or perturbed vertices can change degenerate-edge
/// behaviour, so they intentionally miss).
std::uint64_t HashPolygonBits(const Polygon& area);

/// Snapshot-keyed LRU cache of query results.
///
/// The key is (snapshot version, polygon bit-hash). Versions come from the
/// COW snapshot counters (`DynamicPointDatabase::Snapshot::version`,
/// `ShardedDatabase::Snapshot::version`): every published mutation bumps
/// the version, so *invalidation is free* — entries for older versions
/// simply stop being looked up and age out of the LRU tail. There is no
/// epoch scan, no writer hook, nothing on the mutation path.
///
/// Values are shared immutable id vectors: a hit hands back the pointer,
/// the caller copies if it must mutate. Capacity-bounded; thread-safe
/// (single internal mutex — entries are small and lookups are rare
/// relative to query work).
///
/// **Second-hit admission.** A first-seen polygon is *not* cached:
/// `Insert` records its bit-hash in a bounded recency set and drops the
/// ids; only a polygon whose hash has been seen before is admitted. A
/// scan of one-shot polygons (the common exploratory workload) therefore
/// cannot evict the genuinely repeating entries — it churns the hash set
/// (8 bytes per polygon) instead of the result LRU. The seen set is keyed
/// on the hash alone, not (version, hash): a polygon that repeats across
/// mutations is exactly the repeater the cache exists for, so the new
/// version's first execution is admitted immediately.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 128)
      : capacity_(capacity), seen_capacity_(capacity * 8) {}

  struct Key {
    std::uint64_t version = 0;
    std::uint64_t polygon_hash = 0;
    bool operator==(const Key& o) const {
      return version == o.version && polygon_hash == o.polygon_hash;
    }
  };

  /// Returns the cached ids and refreshes LRU recency, or null on miss.
  std::shared_ptr<const std::vector<PointId>> Lookup(const Key& key);

  /// Offers `ids` for caching under `key`. Admitted — stored, evicting
  /// the least recently used entry beyond capacity — only when the
  /// polygon hash was offered before (second-hit admission, above) or the
  /// key is already resident (refresh). A declined offer records the hash
  /// and drops the ids. A capacity of 0 disables the cache entirely.
  void Insert(const Key& key, std::shared_ptr<const std::vector<PointId>> ids);

  /// Cumulative counters (monotonic; for stats plumbing and tests).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Admission outcomes of `Insert`: stored/refreshed vs. dropped as
  /// first-seen. `admitted() + declined()` = total offers.
  std::uint64_t admitted() const;
  std::uint64_t declined() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Mix the two words; splitmix64-style finalizer.
      std::uint64_t x = k.version * 0x9e3779b97f4a7c15ull ^ k.polygon_hash;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::vector<PointId>> ids;
  };

  const std::size_t capacity_;
  /// Bound of the seen-hash set: 8x the entry capacity, so the admission
  /// memory outlives the result LRU under churn (a repeating polygon
  /// competing with up to 8x its share of one-shots still reaches its
  /// second offer remembered) while staying 8 bytes per slot.
  const std::size_t seen_capacity_;
  mutable std::mutex mu_;
  /// Front = most recent. The map points into the list.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  /// Recency list + index of polygon hashes offered at least once.
  std::list<std::uint64_t> seen_lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      seen_index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t declined_ = 0;
};

}  // namespace vaq

#endif  // VAQ_PLANNER_RESULT_CACHE_H_
