#include "planner/result_cache.h"

#include <bit>
#include <utility>

namespace vaq {

std::uint64_t HashPolygonBits(const Polygon& area) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 1469598103934665603ull;
  const auto Mix = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  Mix(static_cast<std::uint64_t>(area.size()));
  for (const Point& v : area.vertices()) {
    Mix(std::bit_cast<std::uint64_t>(v.x));
    Mix(std::bit_cast<std::uint64_t>(v.y));
  }
  return h;
}

std::shared_ptr<const std::vector<PointId>> ResultCache::Lookup(
    const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->ids;
}

void ResultCache::Insert(const Key& key,
                         std::shared_ptr<const std::vector<PointId>> ids) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    ++admitted_;
    it->second->ids = std::move(ids);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // Second-hit admission: a hash never offered before is recorded and
  // declined — one-shot polygons pay 8 bytes of admission memory, not a
  // cache slot (and not an eviction of a proven repeater).
  const auto seen = seen_index_.find(key.polygon_hash);
  if (seen == seen_index_.end()) {
    ++declined_;
    seen_lru_.push_front(key.polygon_hash);
    seen_index_.emplace(key.polygon_hash, seen_lru_.begin());
    while (seen_lru_.size() > seen_capacity_) {
      seen_index_.erase(seen_lru_.back());
      seen_lru_.pop_back();
    }
    return;
  }
  ++admitted_;
  seen_lru_.splice(seen_lru_.begin(), seen_lru_, seen->second);
  lru_.push_front(Entry{key, std::move(ids)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

std::uint64_t ResultCache::declined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return declined_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace vaq
