#include "planner/result_cache.h"

#include <bit>
#include <utility>

namespace vaq {

std::uint64_t HashPolygonBits(const Polygon& area) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 1469598103934665603ull;
  const auto Mix = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  Mix(static_cast<std::uint64_t>(area.size()));
  for (const Point& v : area.vertices()) {
    Mix(std::bit_cast<std::uint64_t>(v.x));
    Mix(std::bit_cast<std::uint64_t>(v.y));
  }
  return h;
}

std::shared_ptr<const std::vector<PointId>> ResultCache::Lookup(
    const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->ids;
}

void ResultCache::Insert(const Key& key,
                         std::shared_ptr<const std::vector<PointId>> ids) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->ids = std::move(ids);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(ids)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace vaq
