#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

namespace vaq {

double CostModel::ExpectedCandidates(DynamicMethod m,
                                     const PlanFeatures& f) const {
  const double n = static_cast<double>(f.n);
  switch (m) {
    case DynamicMethod::kVoronoi: {
      // The flood visits the interior plus a perimeter shell of rejected
      // neighbours; on uniform data the shell scales with the boundary
      // length, i.e. with sqrt(interior).
      const double interior = n * f.poly_share;
      return interior + shell_coeff * std::sqrt(std::max(0.0, interior));
    }
    case DynamicMethod::kTraditional:
    case DynamicMethod::kGridSweep:
      // Window filter: everything inside the query MBR becomes a
      // candidate for the refine step.
      return n * f.mbr_share;
    case DynamicMethod::kBruteForce:
      return n;
  }
  return n;
}

double CostModel::IoNsPerLoad(const PlanFeatures& f) const {
  return f.io_ns_per_load + (f.paged ? paged_load_ns : 0.0);
}

double CostModel::EstimateCostNs(DynamicMethod m, const PlanFeatures& f,
                                 double candidates) const {
  const int i = static_cast<int>(m);
  // Brute force scans point coordinates without touching geometry
  // storage per candidate in the simulated-IO sense only when the data
  // is in memory; on IO-charged backends every tested point pays a load
  // like any other method's candidate.
  return fixed_ns[i] + candidates * (cpu_ns[i] + IoNsPerLoad(f));
}

}  // namespace vaq
