#ifndef VAQ_PLANNER_QUERY_PLANNER_H_
#define VAQ_PLANNER_QUERY_PLANNER_H_

#include <cstdint>
#include <mutex>

#include "core/method.h"
#include "core/query_stats.h"
#include "planner/cost_model.h"
#include "planner/query_plan.h"

namespace vaq {

/// Selectivity buckets of the planner's online state: bucket b covers
/// mbr_share in (2^-(b+1), 2^-b], i.e. b = floor(-log2(share)), clamped.
/// Eight buckets span 100% down to <1% selectivity — the committed
/// baseline grid and the paper's Table I/II range.
inline constexpr int kNumSelectivityBuckets = 8;

/// Cost-model-driven method and fanout choice, updated online.
///
/// `Plan` scores every method with the static `CostModel` (seeded from
/// the committed BENCH baselines) *multiplied by* learned per-slot
/// correction factors, and picks the cheapest. A slot is one
/// (io-class, method, selectivity-bucket) cell holding two EWMAs:
///
///  - `cand_factor`: measured candidates / predicted candidates. Fixes
///    the model's density assumptions (clustered data, concave
///    polygons) where the closed-form candidate estimate drifts.
///  - `time_factor`: measured wall time / predicted wall time (the
///    prediction already corrected by `cand_factor`). Fixes the
///    per-candidate cost constants for the actual machine and backend.
///
/// Only the *chosen* method's slot updates per query (the planner never
/// runs the losers), so learning is greedy; the seed keeps unexplored
/// slots honest, and factors are clamped to [1/8, 8] so one anomalous
/// query (page-cache cold start, scheduler hiccup) cannot invert a
/// choice permanently — EWMA decay re-centres within ~1/alpha queries.
///
/// Thread-safe; `Plan` and `Observe` take one short-lived mutex.
class QueryPlanner {
 public:
  explicit QueryPlanner(const CostModel& seed = CostModel{})
      : model_(seed) {}

  /// Maps an area share in [0, 1] to its bucket.
  static int SelectivityBucket(double share);

  /// Produces the plan for one query: method (or `hints.force_method`),
  /// reason bits, sharded fanout call, prepared-kernel sizing, and the
  /// predictions `Observe` will be compared against.
  QueryPlan Plan(const PlanFeatures& f, const PlanHints& hints) const;

  /// Feeds one measured execution back into the chosen slot's EWMAs.
  /// Call only for real executions (never for cache hits — nothing ran)
  /// and only with stats produced by `plan`'s method.
  void Observe(const QueryPlan& plan, const PlanFeatures& f,
               const QueryStats& stats);

  /// Introspection (tests, bench reporting).
  double TimeFactor(DynamicMethod m, int bucket, bool io_bound) const;
  double CandFactor(DynamicMethod m, int bucket, bool io_bound) const;
  std::uint64_t observations() const;
  const CostModel& model() const { return model_; }

 private:
  struct Slot {
    double time_factor = 1.0;
    double cand_factor = 1.0;
    std::uint64_t seen = 0;
  };

  const Slot& SlotFor(DynamicMethod m, int bucket, bool io_bound) const {
    return slots_[io_bound ? 1 : 0][static_cast<int>(m)][bucket];
  }

  CostModel model_;
  mutable std::mutex mu_;
  /// [io-class][method][bucket]; plain seed state = all factors 1.
  Slot slots_[2][kNumDynamicMethods][kNumSelectivityBuckets];
  std::uint64_t observations_ = 0;
};

}  // namespace vaq

#endif  // VAQ_PLANNER_QUERY_PLANNER_H_
