#include "fault/fault.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace vaq {

namespace {

/// splitmix64 finaliser — the standard 64-bit avalanche mix. Three
/// rounds over (seed, site, entity, attempt) folded in sequentially give
/// the per-decision stream its independence.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double ParseRate(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double rate;
  try {
    rate = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
    rate = 0.0;
  }
  if (used != value.size() || rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("FaultSpec: '" + key +
                                "' must be a rate in [0, 1], got '" + value +
                                "'");
  }
  return rate;
}

double ParseNonNegative(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double v;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
    v = -1.0;
  }
  if (used != value.size() || v < 0.0) {
    throw std::invalid_argument("FaultSpec: '" + key +
                                "' must be a non-negative number, got '" +
                                value + "'");
  }
  return v;
}

}  // namespace

double FaultInjector::Draw(std::uint64_t seed, std::uint64_t site,
                           std::uint64_t entity, std::uint64_t attempt) {
  std::uint64_t h = Mix(seed ^ Mix(site));
  h = Mix(h ^ Mix(entity));
  h = Mix(h ^ Mix(attempt));
  // Top 53 bits -> [0, 1): the full double-precision mantissa, uniform.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultInjector::BackoffMs(int attempt) const {
  if (spec_.backoff_initial_ms <= 0.0 || attempt <= 0) return 0.0;
  double ms = spec_.backoff_initial_ms;
  for (int i = 1; i < attempt && ms < spec_.backoff_max_ms; ++i) ms *= 2.0;
  return ms < spec_.backoff_max_ms ? ms : spec_.backoff_max_ms;
}

FaultSpec FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  if (text.empty()) return spec;
  spec.enabled = true;
  std::istringstream in(text);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultSpec: expected key=value, got '" +
                                  field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(
          ParseNonNegative(key, value));
    } else if (key == "read_error") {
      spec.read_error_rate = ParseRate(key, value);
    } else if (key == "corrupt") {
      spec.corrupt_rate = ParseRate(key, value);
    } else if (key == "slow") {
      spec.slow_page_rate = ParseRate(key, value);
    } else if (key == "spike_ms") {
      spec.spike_ms = ParseNonNegative(key, value);
    } else if (key == "fetch_spike") {
      spec.fetch_spike_rate = ParseRate(key, value);
    } else if (key == "torn") {
      spec.torn_prefetch_rate = ParseRate(key, value);
    } else if (key == "retries") {
      spec.max_read_retries = static_cast<int>(ParseNonNegative(key, value));
    } else if (key == "backoff_ms") {
      spec.backoff_initial_ms = ParseNonNegative(key, value);
    } else if (key == "backoff_max_ms") {
      spec.backoff_max_ms = ParseNonNegative(key, value);
    } else {
      throw std::invalid_argument("FaultSpec: unknown key '" + key + "'");
    }
  }
  return spec;
}

FaultSpec FaultSpec::FromEnv() {
  const char* text = std::getenv("VAQ_FAULT_SPEC");
  if (text == nullptr) return FaultSpec{};
  return Parse(text);
}

}  // namespace vaq
