#ifndef VAQ_FAULT_FAULT_H_
#define VAQ_FAULT_FAULT_H_

#include <cstdint>
#include <string>

namespace vaq {

/// Configuration of the deterministic fault layer (DESIGN.md §12): which
/// fault classes the storage/IO paths inject and at what rates. Disabled
/// by default — every consumer guards its hooks on `enabled`, so a
/// default-constructed spec costs one branch on the happy path.
///
/// All decisions downstream (`FaultInjector`) are pure hashes of
/// (seed, site, entity, attempt): the same spec against the same data
/// produces the same faults whatever the thread interleaving, so the
/// differential soak harness can replay a failing seed exactly.
struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Probability that a page read attempt fails with a (simulated)
  /// transient IO error. Hashed per (page, attempt): a retry of the same
  /// page redraws, so rate^(1+max_read_retries) is the chance a page is
  /// permanently unreadable under this spec.
  double read_error_rate = 0.0;
  /// Probability that a page read attempt delivers a corrupted frame
  /// (detected by the per-page checksum, then retried). Also hashed per
  /// (page, attempt); two *consecutive* corrupt deliveries quarantine the
  /// page (see `PageStore`).
  double corrupt_rate = 0.0;
  /// Fraction of pages that are persistently "slow": every cache miss on
  /// such a page pays `spike_ms` extra latency. Hashed per page (no
  /// attempt), modelling a degraded disk region — the tail-latency fault
  /// `bench_fault_tail` measures deadlines against.
  double slow_page_rate = 0.0;
  /// Extra latency of one slow-page miss or spiked fetch, in ms.
  double spike_ms = 1.0;
  /// Probability that one simulated object fetch (`SimulateFetchLatency`)
  /// spikes by `spike_ms`. Drawn per fetch call (sequence-hashed), so it
  /// perturbs latency distributions without touching results.
  double fetch_spike_rate = 0.0;
  /// Probability that a batched (io_uring) prefetch tears: the batch is
  /// treated as failed mid-flight and rolled back, exercising the
  /// fallback path. Never affects results — the gather re-reads misses.
  double torn_prefetch_rate = 0.0;
  /// Read-retry policy the storage layer applies while this spec is
  /// active: a transient fault is retried up to this many times with
  /// capped exponential backoff starting at `backoff_initial_ms` and
  /// doubling up to `backoff_max_ms`. An initial backoff of 0 retries
  /// immediately (the test default — retry *counts* stay observable
  /// without slowing the suite).
  int max_read_retries = 3;
  double backoff_initial_ms = 0.0;
  double backoff_max_ms = 10.0;

  /// Parses a comma-separated `key=value` spec, e.g.
  ///   "seed=42,read_error=0.01,corrupt=0.005,slow=0.01,spike_ms=5"
  /// Keys: seed, read_error, corrupt, slow, spike_ms, fetch_spike, torn,
  /// retries, backoff_ms, backoff_max_ms. The returned spec is enabled
  /// (an empty string parses to a disabled spec). Throws
  /// `std::invalid_argument` on an unknown key or a malformed value.
  static FaultSpec Parse(const std::string& text);

  /// The spec of the `VAQ_FAULT_SPEC` environment variable (the hook the
  /// differential harnesses and CI fault legs use to run the whole
  /// existing test matrix under injected faults); disabled when the
  /// variable is unset or empty.
  static FaultSpec FromEnv();
};

/// Deterministic fault decisions over a `FaultSpec`.
///
/// Stateless by construction: every decision is a splitmix64-style hash
/// of (spec.seed, site, entity, attempt) mapped to [0, 1) and compared
/// against the site's rate. No internal counters, no RNG state — two
/// threads asking about the same (page, attempt) get the same answer, so
/// fault placement is a function of the spec and the data, never of the
/// schedule.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// Does read attempt `attempt` (0-based) of `page` fail transiently?
  bool ReadFails(std::uint64_t page, int attempt) const {
    return Decide(kSiteRead, page, attempt, spec_.read_error_rate);
  }

  /// Does read attempt `attempt` of `page` deliver corrupted bytes?
  bool CorruptsFrame(std::uint64_t page, int attempt) const {
    return Decide(kSiteCorrupt, page, attempt, spec_.corrupt_rate);
  }

  /// Is `page` in the persistently slow set?
  bool SlowPage(std::uint64_t page) const {
    return Decide(kSiteSlow, page, 0, spec_.slow_page_rate);
  }

  /// Does the `n`-th prefetch batch tear mid-flight?
  bool TornPrefetch(std::uint64_t batch) const {
    return Decide(kSiteTorn, batch, 0, spec_.torn_prefetch_rate);
  }

  /// Does the `n`-th simulated fetch spike?
  bool FetchSpikes(std::uint64_t fetch) const {
    return Decide(kSiteSpike, fetch, 0, spec_.fetch_spike_rate);
  }

  /// The capped exponential backoff before retry `attempt` (1-based), in
  /// ms: backoff_initial_ms * 2^(attempt-1), capped at backoff_max_ms.
  double BackoffMs(int attempt) const;

  /// The raw decision hash in [0, 1) — exposed so determinism (same
  /// inputs, same draw; independent sites, independent draws) is testable
  /// directly.
  static double Draw(std::uint64_t seed, std::uint64_t site,
                     std::uint64_t entity, std::uint64_t attempt);

 private:
  // Site tags keep the per-site hash streams independent: a page that
  // draws a read error does not thereby draw corruption too.
  static constexpr std::uint64_t kSiteRead = 0x1;
  static constexpr std::uint64_t kSiteCorrupt = 0x2;
  static constexpr std::uint64_t kSiteSlow = 0x3;
  static constexpr std::uint64_t kSiteTorn = 0x4;
  static constexpr std::uint64_t kSiteSpike = 0x5;

  bool Decide(std::uint64_t site, std::uint64_t entity, std::uint64_t attempt,
              double rate) const {
    if (rate <= 0.0) return false;
    return Draw(spec_.seed, site, entity, attempt) < rate;
  }

  FaultSpec spec_;
};

}  // namespace vaq

#endif  // VAQ_FAULT_FAULT_H_
