#ifndef VAQ_WORKLOAD_EXPERIMENT_H_
#define VAQ_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/point_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"

namespace vaq {

/// One experiment cell of the paper's evaluation: a database of
/// `data_size` points and `repetitions` random query polygons of a given
/// query size, timed for both methods.
struct ExperimentConfig {
  std::size_t data_size = 100000;
  double query_size_fraction = 0.01;
  int repetitions = 200;
  std::uint64_t seed = 42;
  int polygon_vertices = 10;
  PointDistribution distribution = PointDistribution::kUniform;
  /// Also run the brute-force scan and verify both methods return exactly
  /// its result set (counted in `ExperimentRow::mismatches`).
  bool verify = false;
  /// Simulated per-candidate object-fetch latency (see
  /// `PointDatabase::set_simulated_fetch_ns`). 0 = raw in-memory timing.
  double simulated_fetch_ns = 0.0;
  /// Spend the simulated latency blocking (sleep) instead of spinning, so
  /// concurrent queries overlap their IO waits. Only meaningful with
  /// `simulated_fetch_ns > 0`; see `PointDatabase::FetchLatencyModel`.
  bool blocking_fetch = false;
  /// Worker threads of the `QueryEngine` the repetitions run through.
  /// 1 reproduces the paper's sequential setting; the per-query averages
  /// are thread-count independent (results are deterministic), only the
  /// batch wall-clock and throughput change.
  int num_threads = 1;
  /// What backs the database's object-fetch boundary (see
  /// `StorageOptions`): the in-memory SoA arrays (default), or an
  /// mmap-backed page file behind an LRU cache of `page_cache_pages`
  /// pages of `page_size_bytes` each — the out-of-core regime when the
  /// cache is smaller than the dataset. Result sets are backend-invariant
  /// (the page file stores the exact same doubles); only timings and the
  /// page counters change.
  StorageBackend storage_backend = StorageBackend::kInMemory;
  std::size_t page_cache_pages = 4096;
  std::uint32_t page_size_bytes = 4096;
  /// Also run the repetitions through the adaptive planner
  /// (`PlannedAreaQuery`, the library's `--method auto`): the cost model
  /// picks a method per query and the row reports which methods it chose
  /// and why (`ExperimentRow::auto_planned`, with `plan_method` /
  /// `plan_reason` masks in the JSON). The planned results are verified
  /// against the traditional batch like any method.
  bool run_auto = false;
};

/// Per-method averages over the repetitions, plus batch-level throughput.
struct MethodAverages {
  double candidates = 0.0;
  double redundant = 0.0;
  double time_ms = 0.0;
  double node_accesses = 0.0;
  double geometry_loads = 0.0;
  /// Results bulk-accepted without per-point validation (see
  /// `QueryStats::bulk_accepted`).
  double bulk_accepted = 0.0;
  /// Scatter-gather fan-out averages of a sharded method (see
  /// `QueryStats::shards_hit`/`shards_pruned`); 0 for unsharded methods.
  double shards_hit = 0.0;
  double shards_pruned = 0.0;
  /// Page-cache traffic per query on the out-of-core backends (see
  /// `QueryStats::pages_touched`); all 0 on the in-memory backend.
  double pages_touched = 0.0;
  double page_cache_hits = 0.0;
  double page_cache_misses = 0.0;
  /// Failure-domain averages (see `QueryStats::io_retries` etc.): storage
  /// read retries, quarantined pages and failed scatter legs per query.
  /// All exactly 0 without fault injection — the perf-smoke gate pins
  /// them to zero so fault hooks can never silently fire on the happy
  /// path.
  double io_retries = 0.0;
  double pages_quarantined = 0.0;
  double shards_failed = 0.0;
  /// OR of the `QueryStats::kernel_kind` bitmasks across repetitions —
  /// which batch classification kernels (and arm) the method's refine
  /// steps executed. A mask, not an average: Finish does not divide it.
  std::uint64_t kernel_kind = 0;
  /// OR of `QueryStats::degraded` across repetitions: 1 if any repetition
  /// returned a degraded partial result. A flag, not an average.
  std::uint64_t degraded = 0;
  /// Planner provenance of a planned (`run_auto`) batch: the OR of
  /// `QueryStats::plan_method` / `plan_reason` across repetitions — every
  /// method the planner picked and every reason bit it cited — plus the
  /// per-query result-cache traffic. All 0 for hand-dispatched methods.
  std::uint64_t plan_method = 0;
  std::uint64_t plan_reason = 0;
  double result_cache_hits = 0.0;
  double result_cache_misses = 0.0;
  /// Wall-clock of the whole batch through the engine and the resulting
  /// queries/second (equals repetitions / wall when the pool is saturated).
  double batch_wall_ms = 0.0;
  double throughput_qps = 0.0;
};

/// One row of Table I / Table II.
struct ExperimentRow {
  ExperimentConfig config;
  double result_size = 0.0;
  MethodAverages traditional;
  MethodAverages voronoi;
  /// The planned batch; only populated when `config.run_auto`.
  MethodAverages auto_planned;
  int mismatches = 0;          // Only populated when config.verify.
  double build_rtree_ms = 0.0;
  double build_delaunay_ms = 0.0;

  /// Relative savings of the Voronoi method, as the paper reports them.
  double TimeSavedFraction() const {
    return 1.0 - voronoi.time_ms / traditional.time_ms;
  }
  double CandidatesSavedFraction() const {
    return 1.0 - voronoi.candidates / traditional.candidates;
  }
};

/// Runs one experiment cell on an already-built database (non-const: the
/// runner applies `config.simulated_fetch_ns` to the database). The
/// repetitions execute as one batch per method through a `QueryEngine`
/// with `config.num_threads` workers.
ExperimentRow RunExperimentOnDatabase(PointDatabase& db,
                                      const ExperimentConfig& config);

/// Generates the database from `config` (seeded), builds the structures and
/// runs the cell. Build times are reported in the row.
ExperimentRow RunExperiment(const ExperimentConfig& config);

/// Runs the same cell at each thread count in `thread_counts` on one
/// shared database (so rows differ only in parallelism).
std::vector<ExperimentRow> RunThreadSweep(
    const ExperimentConfig& config, const std::vector<int>& thread_counts);

/// Pretty-prints rows in the layout of the paper's Table I (first column =
/// data size) or Table II (first column = query size), selected by
/// `vary_query_size`.
void PrintPaperTable(const std::vector<ExperimentRow>& rows,
                     bool vary_query_size, std::ostream& os);

/// Prints the series behind the paper's figures (Fig. 4/6: time; Fig. 5/7:
/// redundant validations) as aligned columns.
void PrintFigureSeries(const std::vector<ExperimentRow>& rows,
                       bool vary_query_size, std::ostream& os);

/// Prints a thread-scaling table for rows produced by `RunThreadSweep`:
/// throughput of both methods per thread count and speedup vs. the first
/// row.
void PrintThreadScalingTable(const std::vector<ExperimentRow>& rows,
                             std::ostream& os);

/// Serialises rows as a JSON array for machine-readable benchmark
/// trajectories (`BENCH_*.json` artifacts; see the benches' `--json`
/// flag). One object per row: the experiment knobs plus per-method
/// averages.
void WriteRowsJson(const std::vector<ExperimentRow>& rows, std::ostream& os);

}  // namespace vaq

#endif  // VAQ_WORKLOAD_EXPERIMENT_H_
