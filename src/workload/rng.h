#ifndef VAQ_WORKLOAD_RNG_H_
#define VAQ_WORKLOAD_RNG_H_

#include <cstdint>
#include <random>

namespace vaq {

/// Seeded random source used by every generator in the library, so that
/// experiments and tests are reproducible bit-for-bit given a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal deviate.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Raw 64 bits.
  std::uint64_t Next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vaq

#endif  // VAQ_WORKLOAD_RNG_H_
