#include "workload/churn.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/dynamic_area_query.h"
#include "core/dynamic_point_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kDomain{{0.0, 0.0}, {1.0, 1.0}};

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Mirror of the live point set, maintained alongside the dynamic
/// database: O(1) uniform sampling of a live id (for deletes) and the
/// material for the from-scratch rebuilds at verification points.
class LiveSet {
 public:
  void Add(PointId id, const Point& p) {
    pos_[id] = ids_.size();
    ids_.push_back(id);
    points_.push_back(p);
  }

  PointId Sample(Rng* rng) const {
    return ids_[static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<std::int64_t>(ids_.size()) - 1))];
  }

  void Remove(PointId id) {
    const std::size_t at = pos_.at(id);
    const std::size_t last = ids_.size() - 1;
    if (at != last) {
      ids_[at] = ids_[last];
      points_[at] = points_[last];
      pos_[ids_[at]] = at;
    }
    ids_.pop_back();
    points_.pop_back();
    pos_.erase(id);
  }

  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }
  const std::vector<PointId>& ids() const { return ids_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<PointId> ids_;
  std::vector<Point> points_;  // Parallel to ids_.
  std::unordered_map<PointId, std::size_t> pos_;
};

}  // namespace

ChurnReport RunChurnExperiment(const ChurnConfig& config) {
  ChurnReport report;
  Rng rng(config.seed);

  DynamicPointDatabase::Options options;
  options.compact_threshold = config.compact_threshold;
  options.auto_compact = config.auto_compact;
  DynamicPointDatabase db(
      GenerateUniformPoints(config.initial_size, kDomain, &rng), options);

  LiveSet live;
  {
    const auto snap = db.snapshot();
    snap->ForEachLive(
        [&](PointId id, const Point& p) { live.Add(id, p); });
  }

  const DynamicAreaQuery methods[] = {
      DynamicAreaQuery(&db, DynamicMethod::kVoronoi),
      DynamicAreaQuery(&db, DynamicMethod::kTraditional),
      DynamicAreaQuery(&db, DynamicMethod::kGridSweep),
      DynamicAreaQuery(&db, DynamicMethod::kBruteForce),
  };

  PolygonSpec spec;
  spec.vertices = config.polygon_vertices;
  spec.query_size_fraction = config.query_size_fraction;

  QueryContext ctx;
  for (std::size_t op = 0; op < config.operations; ++op) {
    const double r = rng.Uniform(0.0, 1.0);
    if (r < config.insert_fraction) {
      const Point p = Point{rng.Uniform(kDomain.min.x, kDomain.max.x),
                            rng.Uniform(kDomain.min.y, kDomain.max.y)};
      const auto t0 = Clock::now();
      const std::optional<PointId> id = db.Insert(p);
      report.mutate_ms += MsSince(t0);
      if (id.has_value()) {
        ++report.inserts;
        live.Add(*id, p);
      } else {
        ++report.rejected_duplicates;
      }
    } else if (r < config.insert_fraction + config.erase_fraction &&
               !live.empty()) {
      const PointId victim = live.Sample(&rng);
      const auto t0 = Clock::now();
      const bool erased = db.Erase(victim);
      report.mutate_ms += MsSince(t0);
      if (erased) {
        ++report.erases;
        live.Remove(victim);
      }
    } else {
      const Polygon area = GenerateQueryPolygon(spec, kDomain, &rng);
      const auto t0 = Clock::now();
      const std::vector<PointId> truth = methods[0].Run(area, ctx);
      for (std::size_t m = 1; m < 4; ++m) {
        if (methods[m].Run(area, ctx) != truth) ++report.mismatches;
      }
      report.query_ms += MsSince(t0);
      ++report.queries;
    }

    if (config.verify_every > 0 && (op + 1) % config.verify_every == 0 &&
        live.size() >= 3) {
      // From-scratch ground truth: rebuild an immutable database over the
      // merged live set and compare every dynamic method's result set —
      // mapped through the rebuild's id permutation — against brute force
      // on the rebuild.
      const auto t0 = Clock::now();
      const PointDatabase rebuilt(live.points());
      const BruteForceAreaQuery brute(&rebuilt);
      const Polygon area = GenerateQueryPolygon(spec, kDomain, &rng);
      std::vector<PointId> truth;  // Stable ids, sorted.
      for (const PointId internal : brute.Run(area, nullptr)) {
        truth.push_back(live.ids()[rebuilt.OriginalId(internal)]);
      }
      std::sort(truth.begin(), truth.end());
      for (const DynamicAreaQuery& method : methods) {
        if (method.Run(area, ctx) != truth) ++report.mismatches;
      }
      report.verify_ms += MsSince(t0);
      ++report.verifications;
    }
  }

  report.compactions = db.Compactions();
  report.final_size = db.Size();
  return report;
}

void PrintChurnReport(const ChurnConfig& config, const ChurnReport& report,
                      std::ostream& os) {
  os << "churn: initial=" << config.initial_size
     << " ops=" << config.operations << " -> inserts=" << report.inserts
     << " erases=" << report.erases << " queries=" << report.queries
     << " dup-rejects=" << report.rejected_duplicates
     << " compactions=" << report.compactions
     << " final_size=" << report.final_size << "\n";
  const double mutations =
      static_cast<double>(report.inserts + report.erases);
  if (report.mutate_ms > 0.0 && mutations > 0.0) {
    os << "  mutations: " << report.mutate_ms << " ms total, "
       << mutations / (report.mutate_ms / 1000.0) << " ops/s\n";
  }
  if (report.query_ms > 0.0 && report.queries > 0) {
    os << "  queries (x4 methods): " << report.query_ms << " ms total, "
       << static_cast<double>(report.queries) / (report.query_ms / 1000.0)
       << " q/s\n";
  }
  if (report.verifications > 0) {
    os << "  verifications: " << report.verifications << " ("
       << report.verify_ms << " ms)\n";
  }
  os << "  mismatches: " << report.mismatches << "\n";
}

}  // namespace vaq
