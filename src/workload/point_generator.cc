#include "workload/point_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace vaq {
namespace {

/// Deduplicates in place by resampling collisions with `resample()`.
template <typename ResampleFn>
void EnforceDistinct(std::vector<Point>* points, ResampleFn resample) {
  std::unordered_set<Point, PointHash> seen;
  seen.reserve(points->size() * 2);
  for (Point& p : *points) {
    while (!seen.insert(p).second) p = resample();
  }
}

}  // namespace

std::vector<Point> GenerateUniformPoints(std::size_t n, const Box& domain,
                                         Rng* rng) {
  std::vector<Point> points;
  points.reserve(n);
  auto sample = [&] {
    return Point{rng->Uniform(domain.min.x, domain.max.x),
                 rng->Uniform(domain.min.y, domain.max.y)};
  };
  for (std::size_t i = 0; i < n; ++i) points.push_back(sample());
  EnforceDistinct(&points, sample);
  return points;
}

std::vector<Point> GenerateClusteredPoints(std::size_t n, const Box& domain,
                                           int clusters, double sigma_fraction,
                                           Rng* rng) {
  assert(clusters >= 1);
  std::vector<Point> centres;
  centres.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c) {
    centres.push_back({rng->Uniform(domain.min.x, domain.max.x),
                       rng->Uniform(domain.min.y, domain.max.y)});
  }
  const double diag = std::hypot(domain.Width(), domain.Height());
  const double sigma = sigma_fraction * diag;

  std::vector<Point> points;
  points.reserve(n);
  auto sample = [&] {
    while (true) {
      const Point& c =
          centres[static_cast<std::size_t>(rng->UniformInt(0, clusters - 1))];
      const Point p{rng->Gaussian(c.x, sigma), rng->Gaussian(c.y, sigma)};
      if (domain.Contains(p)) return p;
    }
  };
  for (std::size_t i = 0; i < n; ++i) points.push_back(sample());
  EnforceDistinct(&points, sample);
  return points;
}

std::vector<Point> GenerateGridPoints(std::size_t n, const Box& domain,
                                      double jitter, Rng* rng) {
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double cw = domain.Width() / static_cast<double>(side);
  const double ch = domain.Height() / static_cast<double>(side);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t gy = 0; gy < side && points.size() < n; ++gy) {
    for (std::size_t gx = 0; gx < side && points.size() < n; ++gx) {
      const double jx = jitter != 0.0 ? rng->Uniform(-jitter, jitter) : 0.0;
      const double jy = jitter != 0.0 ? rng->Uniform(-jitter, jitter) : 0.0;
      points.push_back({domain.min.x + (gx + 0.5 + jx) * cw,
                        domain.min.y + (gy + 0.5 + jy) * ch});
    }
  }
  auto resample = [&] {
    return Point{rng->Uniform(domain.min.x, domain.max.x),
                 rng->Uniform(domain.min.y, domain.max.y)};
  };
  EnforceDistinct(&points, resample);
  return points;
}

std::vector<Point> GeneratePoints(std::size_t n, const Box& domain,
                                  PointDistribution distribution, Rng* rng) {
  switch (distribution) {
    case PointDistribution::kUniform:
      return GenerateUniformPoints(n, domain, rng);
    case PointDistribution::kClustered:
      return GenerateClusteredPoints(n, domain, /*clusters=*/16,
                                     /*sigma_fraction=*/0.05, rng);
    case PointDistribution::kGrid:
      return GenerateGridPoints(n, domain, /*jitter=*/0.25, rng);
  }
  return {};
}

const char* PointDistributionName(PointDistribution d) {
  switch (d) {
    case PointDistribution::kUniform: return "uniform";
    case PointDistribution::kClustered: return "clustered";
    case PointDistribution::kGrid: return "grid";
  }
  return "?";
}

}  // namespace vaq
