#ifndef VAQ_WORKLOAD_CHURN_H_
#define VAQ_WORKLOAD_CHURN_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace vaq {

/// The dynamic-update experiment: an interleaved stream of inserts,
/// deletes and area queries against a `DynamicPointDatabase`, the first
/// genuinely online workload of the library (every prior experiment
/// queries a frozen database). Each query runs all four dynamic methods
/// and cross-checks that they agree; optionally, every `verify_every`-th
/// operation rebuilds an immutable `PointDatabase` from the current live
/// set and compares each method's result sets against brute force on the
/// rebuild — the from-scratch ground truth across however many
/// compactions the stream has triggered.
struct ChurnConfig {
  std::size_t initial_size = 20000;
  /// Total operations in the stream (mutations + queries).
  std::size_t operations = 20000;
  /// Operation mix; the remainder after inserts and erases is queries.
  double insert_fraction = 0.40;
  double erase_fraction = 0.30;
  /// Query-polygon knobs (as in the paper's experiments).
  double query_size_fraction = 0.04;
  int polygon_vertices = 10;
  std::uint64_t seed = 42;
  /// 0 = never verify against a from-scratch rebuild.
  std::size_t verify_every = 0;
  /// Forwarded to `DynamicPointDatabase::Options`.
  std::size_t compact_threshold = 0;
  bool auto_compact = true;
};

struct ChurnReport {
  std::size_t inserts = 0;
  std::size_t erases = 0;
  std::size_t queries = 0;
  /// Inserts rejected because an equal point was live (the distinctness
  /// invariant at work; astronomically rare with random doubles).
  std::size_t rejected_duplicates = 0;
  std::uint64_t compactions = 0;
  std::size_t verifications = 0;
  /// Result-set disagreements: any dynamic method vs. any other on a
  /// query, or vs. brute force on the from-scratch rebuild at a
  /// verification point. 0 on a correct build.
  std::size_t mismatches = 0;
  std::size_t final_size = 0;
  double mutate_ms = 0.0;
  double query_ms = 0.0;
  double verify_ms = 0.0;
};

/// Runs the churn stream. Deterministic given the config.
ChurnReport RunChurnExperiment(const ChurnConfig& config);

/// One-line human-readable summary (ops mix, rates, compactions,
/// mismatches).
void PrintChurnReport(const ChurnConfig& config, const ChurnReport& report,
                      std::ostream& os);

}  // namespace vaq

#endif  // VAQ_WORKLOAD_CHURN_H_
