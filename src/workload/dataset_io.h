#ifndef VAQ_WORKLOAD_DATASET_IO_H_
#define VAQ_WORKLOAD_DATASET_IO_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace vaq {

/// Flat-file persistence for experiment datasets and query polygons, so
/// that runs are reproducible across machines and external datasets (e.g.
/// public POI extracts converted to x/y pairs) can be loaded.
///
/// Formats:
///  * binary points: little-endian "VAQP" magic, uint64 count, then
///    count * 2 doubles — compact and exact;
///  * CSV points: one "x,y" pair per line ('#' comments allowed) — easy
///    interchange with external tools;
///  * CSV polygon: one "x,y" vertex per line in ring order.
/// All loaders return false on malformed input — including rows with
/// trailing non-numeric content or extra columns, non-finite coordinates
/// (nan/inf), and binary headers whose count exceeds the actual payload —
/// and leave outputs empty.

bool SavePointsBinary(const std::string& path,
                      const std::vector<Point>& points);
bool LoadPointsBinary(const std::string& path, std::vector<Point>* points);

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points);
bool LoadPointsCsv(const std::string& path, std::vector<Point>* points);

bool SavePolygonCsv(const std::string& path, const Polygon& polygon);
bool LoadPolygonCsv(const std::string& path, Polygon* polygon);

}  // namespace vaq

#endif  // VAQ_WORKLOAD_DATASET_IO_H_
