#include "workload/experiment.h"

#include <chrono>
#include <iomanip>
#include <ostream>

#include "core/brute_force_area_query.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "planner/planned_area_query.h"
#include "delaunay/triangulation.h"
#include "engine/query_engine.h"
#include "index/rtree.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnitDomain{{0.0, 0.0}, {1.0, 1.0}};

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void Accumulate(MethodAverages* avg, const QueryStats& stats) {
  avg->candidates += static_cast<double>(stats.candidates);
  avg->redundant += static_cast<double>(stats.visited_rejected);
  avg->time_ms += stats.elapsed_ms;
  avg->node_accesses += static_cast<double>(stats.index_node_accesses);
  avg->geometry_loads += static_cast<double>(stats.geometry_loads);
  avg->bulk_accepted += static_cast<double>(stats.bulk_accepted);
  avg->shards_hit += static_cast<double>(stats.shards_hit);
  avg->shards_pruned += static_cast<double>(stats.shards_pruned);
  avg->pages_touched += static_cast<double>(stats.pages_touched);
  avg->page_cache_hits += static_cast<double>(stats.page_cache_hits);
  avg->page_cache_misses += static_cast<double>(stats.page_cache_misses);
  avg->io_retries += static_cast<double>(stats.io_retries);
  avg->pages_quarantined += static_cast<double>(stats.pages_quarantined);
  avg->shards_failed += static_cast<double>(stats.shards_failed);
  avg->kernel_kind |= stats.kernel_kind;  // Mask of kernels that ran.
  avg->degraded |= stats.degraded;        // Flag: any repetition degraded.
  avg->plan_method |= stats.plan_method;  // Masks, like kernel_kind.
  avg->plan_reason |= stats.plan_reason;
  avg->result_cache_hits += static_cast<double>(stats.result_cache_hits);
  avg->result_cache_misses += static_cast<double>(stats.result_cache_misses);
}

void Finish(MethodAverages* avg, int reps) {
  avg->candidates /= reps;
  avg->redundant /= reps;
  avg->time_ms /= reps;
  avg->node_accesses /= reps;
  avg->geometry_loads /= reps;
  avg->bulk_accepted /= reps;
  avg->shards_hit /= reps;
  avg->shards_pruned /= reps;
  avg->pages_touched /= reps;
  avg->page_cache_hits /= reps;
  avg->page_cache_misses /= reps;
  avg->io_retries /= reps;
  avg->pages_quarantined /= reps;
  avg->shards_failed /= reps;
  avg->result_cache_hits /= reps;
  avg->result_cache_misses /= reps;
  if (avg->batch_wall_ms > 0.0) {
    avg->throughput_qps = reps / (avg->batch_wall_ms / 1000.0);
  }
}

PointDatabase::Options DatabaseOptions(const ExperimentConfig& config) {
  PointDatabase::Options options;
  options.storage.backend = config.storage_backend;
  options.storage.cache_pages = config.page_cache_pages;
  options.storage.page_size_bytes = config.page_size_bytes;
  return options;
}

std::vector<Polygon> GenerateQueryStream(const ExperimentConfig& config) {
  // Query polygons come from a stream seeded independently of the data so
  // the same queries hit different data sizes comparably.
  Rng query_rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  PolygonSpec spec;
  spec.vertices = config.polygon_vertices;
  spec.query_size_fraction = config.query_size_fraction;
  std::vector<Polygon> areas;
  areas.reserve(config.repetitions);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    areas.push_back(GenerateQueryPolygon(spec, kUnitDomain, &query_rng));
  }
  return areas;
}

/// Runs `areas` as one engine batch and folds the per-query stats into
/// `avg`; returns the per-query results.
std::vector<QueryResult> RunMethodBatch(QueryEngine& engine, int method,
                                        std::span<const Polygon> areas,
                                        MethodAverages* avg) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<QueryResult> results = engine.RunBatch(areas, method);
  avg->batch_wall_ms = MillisSince(t0);
  for (const QueryResult& r : results) Accumulate(avg, r.stats);
  return results;
}

}  // namespace

ExperimentRow RunExperimentOnDatabase(PointDatabase& db,
                                      const ExperimentConfig& config) {
  ExperimentRow row;
  row.config = config;
  db.set_simulated_fetch_ns(config.simulated_fetch_ns);
  db.set_fetch_latency_model(config.blocking_fetch
                                 ? PointDatabase::FetchLatencyModel::kSleep
                                 : PointDatabase::FetchLatencyModel::kBusyWait);

  const TraditionalAreaQuery traditional(&db);
  const VoronoiAreaQuery voronoi(&db);
  const BruteForceAreaQuery brute(&db);
  const PlannedAreaQuery planned(&db);

  const std::vector<Polygon> areas = GenerateQueryStream(config);

  QueryEngine engine({.num_threads = config.num_threads,
                      .queue_capacity =
                          static_cast<std::size_t>(config.repetitions) + 1});
  const int trad_id = engine.RegisterMethod(&traditional);
  const int vaq_id = engine.RegisterMethod(&voronoi);
  const int auto_id =
      config.run_auto ? engine.RegisterMethod(&planned) : -1;

  const std::vector<QueryResult> trad_results =
      RunMethodBatch(engine, trad_id, areas, &row.traditional);
  const std::vector<QueryResult> vaq_results =
      RunMethodBatch(engine, vaq_id, areas, &row.voronoi);
  std::vector<QueryResult> auto_results;
  if (config.run_auto) {
    auto_results = RunMethodBatch(engine, auto_id, areas, &row.auto_planned);
  }

  for (int rep = 0; rep < config.repetitions; ++rep) {
    row.result_size += static_cast<double>(trad_results[rep].ids.size());
    if (config.verify) {
      const std::vector<PointId> truth = brute.Run(areas[rep]);
      if (trad_results[rep].ids != truth || vaq_results[rep].ids != truth) {
        ++row.mismatches;
      }
    } else if (trad_results[rep].ids != vaq_results[rep].ids) {
      ++row.mismatches;
    }
    if (config.run_auto && auto_results[rep].ids != trad_results[rep].ids) {
      ++row.mismatches;
    }
  }
  Finish(&row.traditional, config.repetitions);
  Finish(&row.voronoi, config.repetitions);
  if (config.run_auto) Finish(&row.auto_planned, config.repetitions);
  row.result_size /= config.repetitions;
  return row;
}

ExperimentRow RunExperiment(const ExperimentConfig& config) {
  Rng data_rng(config.seed);
  std::vector<Point> points = GeneratePoints(config.data_size, kUnitDomain,
                                             config.distribution, &data_rng);

  // Time the two builds separately (the paper treats them as offline).
  const auto t_rtree = std::chrono::steady_clock::now();
  RTree throwaway_rtree;
  throwaway_rtree.Build(points);
  const double rtree_ms = MillisSince(t_rtree);

  const auto t_delaunay = std::chrono::steady_clock::now();
  PointDatabase db(std::move(points), DatabaseOptions(config));
  const double delaunay_ms = MillisSince(t_delaunay);

  ExperimentRow row = RunExperimentOnDatabase(db, config);
  row.build_rtree_ms = rtree_ms;
  row.build_delaunay_ms = delaunay_ms;
  return row;
}

std::vector<ExperimentRow> RunThreadSweep(
    const ExperimentConfig& config, const std::vector<int>& thread_counts) {
  Rng data_rng(config.seed);
  PointDatabase db(GeneratePoints(config.data_size, kUnitDomain,
                                  config.distribution, &data_rng),
                   DatabaseOptions(config));
  std::vector<ExperimentRow> rows;
  rows.reserve(thread_counts.size());
  for (const int threads : thread_counts) {
    ExperimentConfig cell = config;
    cell.num_threads = threads;
    rows.push_back(RunExperimentOnDatabase(db, cell));
  }
  return rows;
}

void PrintPaperTable(const std::vector<ExperimentRow>& rows,
                     bool vary_query_size, std::ostream& os) {
  os << (vary_query_size ? "Query size" : "Data size")
     << "  Result size  |  Traditional: candidates  time(ms)  |  "
        "Voronoi: candidates  time(ms)  |  saved: cand  time\n";
  for (const ExperimentRow& r : rows) {
    os << std::fixed;
    if (vary_query_size) {
      os << std::setw(9) << std::setprecision(0)
         << r.config.query_size_fraction * 100.0 << "%";
    } else {
      os << std::setw(10) << r.config.data_size;
    }
    os << std::setw(13) << std::setprecision(2) << r.result_size << "  |"
       << std::setw(25) << std::setprecision(2) << r.traditional.candidates
       << std::setw(10) << std::setprecision(3) << r.traditional.time_ms
       << "  |" << std::setw(21) << std::setprecision(2)
       << r.voronoi.candidates << std::setw(10) << std::setprecision(3)
       << r.voronoi.time_ms << "  |" << std::setw(10) << std::setprecision(1)
       << r.CandidatesSavedFraction() * 100.0 << "%" << std::setw(6)
       << std::setprecision(1) << r.TimeSavedFraction() * 100.0 << "%\n";
  }
}

void PrintFigureSeries(const std::vector<ExperimentRow>& rows,
                       bool vary_query_size, std::ostream& os) {
  os << "# Figure series: time cost (ms)\n";
  os << (vary_query_size ? "# query_size_pct" : "# data_size")
     << "  traditional_ms  voronoi_ms\n";
  for (const ExperimentRow& r : rows) {
    os << std::fixed << std::setprecision(4);
    if (vary_query_size) {
      os << r.config.query_size_fraction * 100.0;
    } else {
      os << r.config.data_size;
    }
    os << "  " << r.traditional.time_ms << "  " << r.voronoi.time_ms << "\n";
  }
  os << "# Figure series: redundant validations\n";
  os << (vary_query_size ? "# query_size_pct" : "# data_size")
     << "  traditional_redundant  voronoi_redundant\n";
  for (const ExperimentRow& r : rows) {
    os << std::fixed << std::setprecision(4);
    if (vary_query_size) {
      os << r.config.query_size_fraction * 100.0;
    } else {
      os << r.config.data_size;
    }
    os << "  " << r.traditional.redundant << "  " << r.voronoi.redundant
       << "\n";
  }
}

namespace {

void WriteMethodJson(const MethodAverages& m, std::ostream& os) {
  os << "{\"candidates\": " << m.candidates
     << ", \"redundant\": " << m.redundant << ", \"time_ms\": " << m.time_ms
     << ", \"node_accesses\": " << m.node_accesses
     << ", \"geometry_loads\": " << m.geometry_loads
     << ", \"bulk_accepted\": " << m.bulk_accepted
     << ", \"shards_hit\": " << m.shards_hit
     << ", \"shards_pruned\": " << m.shards_pruned
     << ", \"pages_touched\": " << m.pages_touched
     << ", \"page_cache_hits\": " << m.page_cache_hits
     << ", \"page_cache_misses\": " << m.page_cache_misses
     << ", \"io_retries\": " << m.io_retries
     << ", \"pages_quarantined\": " << m.pages_quarantined
     << ", \"shards_failed\": " << m.shards_failed
     << ", \"kernel_kind\": " << m.kernel_kind
     << ", \"degraded\": " << m.degraded
     << ", \"plan_method\": " << m.plan_method
     << ", \"plan_reason\": " << m.plan_reason
     << ", \"result_cache_hits\": " << m.result_cache_hits
     << ", \"result_cache_misses\": " << m.result_cache_misses
     << ", \"batch_wall_ms\": " << m.batch_wall_ms
     << ", \"throughput_qps\": " << m.throughput_qps << "}";
}

}  // namespace

void WriteRowsJson(const std::vector<ExperimentRow>& rows, std::ostream& os) {
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ExperimentRow& r = rows[i];
    os << "  {\"data_size\": " << r.config.data_size
       << ", \"query_size_fraction\": " << r.config.query_size_fraction
       << ", \"repetitions\": " << r.config.repetitions
       << ", \"polygon_vertices\": " << r.config.polygon_vertices
       << ", \"simulated_fetch_ns\": " << r.config.simulated_fetch_ns
       << ", \"blocking_fetch\": "
       << (r.config.blocking_fetch ? "true" : "false")
       << ", \"num_threads\": " << r.config.num_threads
       << ", \"backend\": \"" << StorageBackendName(r.config.storage_backend)
       << "\", \"page_cache_pages\": " << r.config.page_cache_pages
       << ", \"result_size\": " << r.result_size
       << ", \"mismatches\": " << r.mismatches
       << ", \"build_rtree_ms\": " << r.build_rtree_ms
       << ", \"build_delaunay_ms\": " << r.build_delaunay_ms
       << ",\n   \"traditional\": ";
    WriteMethodJson(r.traditional, os);
    os << ",\n   \"voronoi\": ";
    WriteMethodJson(r.voronoi, os);
    if (r.config.run_auto) {
      os << ",\n   \"auto\": ";
      WriteMethodJson(r.auto_planned, os);
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

void PrintThreadScalingTable(const std::vector<ExperimentRow>& rows,
                             std::ostream& os) {
  os << "Threads  |  Traditional: qps  speedup  |  Voronoi: qps  speedup\n";
  const double trad_base =
      rows.empty() ? 0.0 : rows.front().traditional.throughput_qps;
  const double vaq_base =
      rows.empty() ? 0.0 : rows.front().voronoi.throughput_qps;
  for (const ExperimentRow& r : rows) {
    os << std::fixed << std::setw(7) << r.config.num_threads << "  |"
       << std::setw(18) << std::setprecision(1)
       << r.traditional.throughput_qps << std::setw(9)
       << std::setprecision(2)
       << (trad_base > 0.0 ? r.traditional.throughput_qps / trad_base : 0.0)
       << "x  |" << std::setw(14) << std::setprecision(1)
       << r.voronoi.throughput_qps << std::setw(9) << std::setprecision(2)
       << (vaq_base > 0.0 ? r.voronoi.throughput_qps / vaq_base : 0.0)
       << "x\n";
  }
}

}  // namespace vaq
