#include "workload/dataset_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vaq {
namespace {

constexpr char kMagic[4] = {'V', 'A', 'Q', 'P'};

bool ParseCsvPoint(const std::string& line, Point* p) {
  const std::size_t comma = line.find(',');
  if (comma == std::string::npos) return false;
  try {
    std::size_t used_x = 0, used_y = 0;
    const double x = std::stod(line.substr(0, comma), &used_x);
    const double y = std::stod(line.substr(comma + 1), &used_y);
    *p = Point{x, y};
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

bool SavePointsBinary(const std::string& path,
                      const std::vector<Point>& points) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = points.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Point& p : points) {
    out.write(reinterpret_cast<const char*>(&p.x), sizeof(double));
    out.write(reinterpret_cast<const char*>(&p.y), sizeof(double));
  }
  return static_cast<bool>(out);
}

bool LoadPointsBinary(const std::string& path, std::vector<Point>* points) {
  points->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return false;
  points->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    double x, y;
    in.read(reinterpret_cast<char*>(&x), sizeof(double));
    in.read(reinterpret_cast<char*>(&y), sizeof(double));
    if (!in) {
      points->clear();
      return false;
    }
    points->push_back({x, y});
  }
  return true;
}

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# x,y — vaq point dataset, " << points.size() << " points\n";
  out.precision(17);
  for (const Point& p : points) {
    out << p.x << "," << p.y << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadPointsCsv(const std::string& path, std::vector<Point>* points) {
  points->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Point p;
    if (!ParseCsvPoint(line, &p)) {
      points->clear();
      return false;
    }
    points->push_back(p);
  }
  return true;
}

bool SavePolygonCsv(const std::string& path, const Polygon& polygon) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# x,y — vaq polygon ring, " << polygon.size() << " vertices\n";
  out.precision(17);
  for (const Point& v : polygon.vertices()) {
    out << v.x << "," << v.y << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadPolygonCsv(const std::string& path, Polygon* polygon) {
  std::vector<Point> ring;
  if (!LoadPointsCsv(path, &ring)) return false;
  if (ring.size() < 3) return false;
  *polygon = Polygon(std::move(ring));
  return true;
}

}  // namespace vaq
