#include "workload/dataset_io.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vaq {
namespace {

constexpr char kMagic[4] = {'V', 'A', 'Q', 'P'};

/// True iff `field[used..)` is only trailing whitespace — i.e. the numeric
/// parse consumed the whole field. Guards against rows like "1.0,2.0junk"
/// or "1,2,3" parsing as valid points (stod stops at the first non-numeric
/// character and reports success for the prefix).
bool OnlyTrailingSpace(const std::string& field, std::size_t used) {
  for (; used < field.size(); ++used) {
    const unsigned char c = static_cast<unsigned char>(field[used]);
    if (!std::isspace(c)) return false;
  }
  return true;
}

bool ParseCsvPoint(const std::string& line, Point* p) {
  const std::size_t comma = line.find(',');
  if (comma == std::string::npos) return false;
  try {
    std::size_t used_x = 0, used_y = 0;
    const std::string x_field = line.substr(0, comma);
    const std::string y_field = line.substr(comma + 1);
    const double x = std::stod(x_field, &used_x);
    const double y = std::stod(y_field, &used_y);
    // A second comma lands in y_field and stops the parse there, so the
    // trailing check also rejects extra columns.
    if (!OnlyTrailingSpace(x_field, used_x) ||
        !OnlyTrailingSpace(y_field, used_y)) {
      return false;
    }
    // stod happily parses "nan" and "inf", which poison every geometric
    // structure downstream (NaN even breaks the ordering the distinctness
    // check relies on); coordinates must be finite.
    if (!std::isfinite(x) || !std::isfinite(y)) return false;
    *p = Point{x, y};
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

bool SavePointsBinary(const std::string& path,
                      const std::vector<Point>& points) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = points.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Point& p : points) {
    out.write(reinterpret_cast<const char*>(&p.x), sizeof(double));
    out.write(reinterpret_cast<const char*>(&p.y), sizeof(double));
  }
  return static_cast<bool>(out);
}

bool LoadPointsBinary(const std::string& path, std::vector<Point>* points) {
  points->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return false;
  // The on-disk count is untrusted input: bound it by the payload bytes
  // actually present before reserving, or a corrupt/truncated header could
  // demand a multi-GB allocation (and then fail anyway) on a tiny file.
  const std::istream::pos_type payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type file_end = in.tellg();
  if (payload_start == std::istream::pos_type(-1) ||
      file_end == std::istream::pos_type(-1) || file_end < payload_start) {
    return false;
  }
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(file_end - payload_start);
  if (count > payload_bytes / (2 * sizeof(double))) return false;
  in.seekg(payload_start);
  points->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    double x, y;
    in.read(reinterpret_cast<char*>(&x), sizeof(double));
    in.read(reinterpret_cast<char*>(&y), sizeof(double));
    // Non-finite payload is as corrupt as a short one (see ParseCsvPoint).
    if (!in || !std::isfinite(x) || !std::isfinite(y)) {
      points->clear();
      return false;
    }
    points->push_back({x, y});
  }
  return true;
}

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# x,y — vaq point dataset, " << points.size() << " points\n";
  out.precision(17);
  for (const Point& p : points) {
    out << p.x << "," << p.y << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadPointsCsv(const std::string& path, std::vector<Point>* points) {
  points->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Point p;
    if (!ParseCsvPoint(line, &p)) {
      points->clear();
      return false;
    }
    points->push_back(p);
  }
  return true;
}

bool SavePolygonCsv(const std::string& path, const Polygon& polygon) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# x,y — vaq polygon ring, " << polygon.size() << " vertices\n";
  out.precision(17);
  for (const Point& v : polygon.vertices()) {
    out << v.x << "," << v.y << "\n";
  }
  return static_cast<bool>(out);
}

bool LoadPolygonCsv(const std::string& path, Polygon* polygon) {
  std::vector<Point> ring;
  if (!LoadPointsCsv(path, &ring)) return false;
  if (ring.size() < 3) return false;
  *polygon = Polygon(std::move(ring));
  return true;
}

}  // namespace vaq
