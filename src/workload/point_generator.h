#ifndef VAQ_WORKLOAD_POINT_GENERATOR_H_
#define VAQ_WORKLOAD_POINT_GENERATOR_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"
#include "workload/rng.h"

namespace vaq {

/// Point-set distributions for experiment databases. The paper's
/// experiments use uniform random points; the clustered and grid variants
/// power the distribution ablation.
enum class PointDistribution {
  kUniform,    // i.i.d. uniform over the domain (the paper's setting).
  kClustered,  // Gaussian mixture: realistic city-like point densities.
  kGrid,       // Jittered grid: near-degenerate, stresses the predicates.
};

/// Generates `n` pairwise-distinct points inside `domain` following
/// `distribution`. Distinctness is enforced by regeneration (duplicates
/// are astronomically rare for doubles but the Delaunay substrate requires
/// them gone).
std::vector<Point> GeneratePoints(std::size_t n, const Box& domain,
                                  PointDistribution distribution, Rng* rng);

/// Uniform points, the paper's workload.
std::vector<Point> GenerateUniformPoints(std::size_t n, const Box& domain,
                                         Rng* rng);

/// Gaussian-mixture points: `clusters` centres, each point sampled around a
/// random centre with standard deviation `sigma_fraction` of the domain
/// diagonal (rejected and resampled until inside the domain).
std::vector<Point> GenerateClusteredPoints(std::size_t n, const Box& domain,
                                           int clusters, double sigma_fraction,
                                           Rng* rng);

/// Near-degenerate jittered grid: ceil(sqrt(n))^2 cells, one point per cell
/// jittered by `jitter` of the cell size (0 = exact grid, heavy predicate
/// degeneracy).
std::vector<Point> GenerateGridPoints(std::size_t n, const Box& domain,
                                      double jitter, Rng* rng);

const char* PointDistributionName(PointDistribution d);

}  // namespace vaq

#endif  // VAQ_WORKLOAD_POINT_GENERATOR_H_
