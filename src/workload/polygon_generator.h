#ifndef VAQ_WORKLOAD_POLYGON_GENERATOR_H_
#define VAQ_WORKLOAD_POLYGON_GENERATOR_H_

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "workload/rng.h"

namespace vaq {

/// Parameters of the paper's random query areas: "a randomly generated
/// polygon of ten points" whose *query size* — area(MBR(A)) divided by the
/// domain area — is the experiment knob (1% ... 32%).
struct PolygonSpec {
  /// Number of ring vertices (the paper uses 10).
  int vertices = 10;
  /// Target area(MBR(A)) / area(domain), in (0, 1].
  double query_size_fraction = 0.01;
  /// Radii are drawn from U[min_radius_fraction, 1] of the star radius.
  /// 0.35 calibrates area(A)/area(MBR) to ~= 0.53, matching the paper's
  /// result-to-candidate ratios (see DESIGN.md).
  double min_radius_fraction = 0.35;
};

/// Generates a random simple star-shaped polygon:
/// vertices at jittered-equally-spaced angles and random radii around a
/// centre, scaled so the polygon's MBR area is exactly
/// `spec.query_size_fraction * domain.Area()` and translated so the MBR
/// lies inside `domain`. Star polygons with sorted angles are always
/// simple, and with 10 random radii almost always concave — the query shape
/// the paper argues hurts the traditional method.
Polygon GenerateQueryPolygon(const PolygonSpec& spec, const Box& domain,
                             Rng* rng);

/// A deliberately nasty concave test shape: a "comb" with `teeth` thin
/// prongs, used to probe the completeness caveat of Algorithm 1's
/// segment-expansion rule (see VoronoiAreaQuery::ExpansionRule).
Polygon GenerateCombPolygon(const Box& bounds, int teeth);

}  // namespace vaq

#endif  // VAQ_WORKLOAD_POLYGON_GENERATOR_H_
