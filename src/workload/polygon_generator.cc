#include "workload/polygon_generator.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace vaq {

Polygon GenerateQueryPolygon(const PolygonSpec& spec, const Box& domain,
                             Rng* rng) {
  assert(spec.vertices >= 3);
  assert(spec.query_size_fraction > 0.0 && spec.query_size_fraction <= 1.0);
  const int n = spec.vertices;

  // Star-shaped ring around the origin: jittered equal angles (strictly
  // increasing, so the ring is simple), radii in
  // U[min_radius_fraction, 1].
  std::vector<Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double angle =
        2.0 * M_PI * (static_cast<double>(i) + rng->Uniform(0.0, 0.7)) /
        static_cast<double>(n);
    const double radius = rng->Uniform(spec.min_radius_fraction, 1.0);
    ring.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }

  // Scale so area(MBR) hits the requested fraction of the domain.
  Box mbr;
  for (const Point& p : ring) mbr.ExpandToInclude(p);
  const double target_area = spec.query_size_fraction * domain.Area();
  const double scale = std::sqrt(target_area / mbr.Area());
  for (Point& p : ring) p = p * scale;
  mbr = Box{mbr.min * scale, mbr.max * scale};

  // Place the MBR uniformly inside the domain.
  const double tx =
      rng->Uniform(domain.min.x - mbr.min.x,
                   domain.max.x - mbr.max.x);
  const double ty =
      rng->Uniform(domain.min.y - mbr.min.y,
                   domain.max.y - mbr.max.y);
  for (Point& p : ring) p = {p.x + tx, p.y + ty};

  return Polygon(std::move(ring));
}

Polygon GenerateCombPolygon(const Box& bounds, int teeth) {
  assert(teeth >= 2);
  // A comb: a thin horizontal spine along the bottom with `teeth` tall thin
  // prongs. Points inside different prongs are only connected through the
  // spine, which can be made point-free — the pathological case for the
  // paper's segment-expansion rule.
  const double w = bounds.Width();
  const double h = bounds.Height();
  const double spine_h = 0.08 * h;
  const double tooth_w = w / (2.0 * teeth - 1.0);

  std::vector<Point> ring;
  // Bottom edge, left to right.
  ring.push_back({bounds.min.x, bounds.min.y});
  ring.push_back({bounds.max.x, bounds.min.y});
  // Up the right side of the last tooth and across the comb, right to left.
  for (int t = teeth - 1; t >= 0; --t) {
    const double x0 = bounds.min.x + 2.0 * t * tooth_w;
    const double x1 = x0 + tooth_w;
    ring.push_back({x1, bounds.max.y});
    ring.push_back({x0, bounds.max.y});
    if (t > 0) {
      ring.push_back({x0, bounds.min.y + spine_h});
      ring.push_back({x0 - tooth_w, bounds.min.y + spine_h});
    }
  }
  return Polygon(std::move(ring));
}

}  // namespace vaq
