#ifndef VAQ_SHARD_SHARDED_DATABASE_H_
#define VAQ_SHARD_SHARDED_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/dynamic_point_database.h"
#include "geometry/box.h"
#include "geometry/point.h"

namespace vaq {

class QueryEngine;

/// Spatially partitioned database: K shards, each a full
/// `DynamicPointDatabase` (immutable Hilbert-clustered base + delta buffer
/// + tombstones + the four query objects), carved by **Hilbert-range
/// cuts**. Construction orders the input along the Hilbert curve over its
/// bounding box — the same relabelling every `PointDatabase` applies
/// internally — and cuts the curve into K contiguous key ranges of
/// roughly n/K points. Curve locality makes the ranges spatially compact,
/// so shard MBRs overlap little and an area query can prune most shards
/// by one `PreparedArea::ClassifyBox` test each (see `ShardedAreaQuery`).
///
/// **Cuts are key-aligned**: a run of points sharing one curve key is
/// never split across shards. That makes the partition a function of the
/// point *set* (input order never matters) and makes insert routing by
/// key exact: an inserted point lands in the shard that owns its key
/// range, so a point equal to a live point always meets that point's
/// shard-local duplicate check — cross-shard duplicates cannot creep in.
/// Routing keys are computed on the grid over the *initial* bounding box
/// (points outside clamp to the border cells), so routing stays total
/// and deterministic as the data drifts.
///
/// **Global stable ids.** Results and mutations speak one id space across
/// shards: the initial points get their input positions (matching both
/// `DynamicPointDatabase` and `PointDatabase::OriginalId` conventions, so
/// sharded answers compare bit-for-bit against an unsharded oracle built
/// from the same vector), inserts get fresh increasing ids. Each shard
/// view carries an append-only local→global id map sharing the chunked
/// copy-on-write spine idiom of the delta buffer.
///
/// **Snapshot semantics.** Every mutation publishes a new `Snapshot` — K
/// per-shard snapshot pins plus their id maps and MBRs — through a
/// shared pointer, exactly like the single-shard dynamic layer. A query
/// pins one `Snapshot` and therefore sees *one version of every shard*:
/// no cross-shard skew, however the mutation stream interleaves with it.
///
/// Thread safety mirrors `DynamicPointDatabase`: any number of concurrent
/// readers via `snapshot()`; mutations serialize on an internal mutex.
class ShardedDatabase {
 public:
  struct Options {
    /// Shard count K. Must be >= 1 (`std::invalid_argument` otherwise).
    /// K may exceed the point count: the surplus shards start empty and
    /// fill through inserts routed into their key ranges.
    std::size_t num_shards = 4;
    /// Options applied to every shard (compaction thresholds, simulated
    /// IO). Two fields are overridden internally: the construction
    /// distinctness check is skipped (the sharded constructor proves
    /// distinctness globally first, which per-shard checks could not — a
    /// duplicate pair may split across shard boundaries), and the voronoi
    /// expansion rule is forced to the provably complete `kCellOverlap`
    /// (each shard holds only 1/K of the points, so the point-free
    /// corridors that the paper's segment rule can fail to cross are K
    /// times wider at shard level; see DESIGN.md §9).
    DynamicPointDatabase::Options shard;
  };

  /// Append-only shard-local stable id → global stable id map. Shares the
  /// chunked COW-spine idiom of `DynamicPointDatabase::DeltaBuffer`:
  /// appending copies the chunk-pointer spine only and writes a slot no
  /// published snapshot reads (every published view bounds its reads by
  /// its own shard snapshot's `stable_limit()`).
  struct IdChunk {
    static constexpr std::size_t kCapacity = 1024;
    PointId global[kCapacity];
  };
  struct IdMap {
    std::vector<std::shared_ptr<IdChunk>> chunks;
    PointId Global(PointId local) const {
      return chunks[local / IdChunk::kCapacity]
          ->global[local % IdChunk::kCapacity];
    }
  };

  /// One shard as a query sees it: the pinned shard version, the id map
  /// translating its stable ids to global ids, and a conservative MBR of
  /// its live points (exact after a full `Compact()`, only ever grown by
  /// inserts in between — a pruning test against it can produce false
  /// overlaps, never false prunes).
  struct ShardView {
    std::shared_ptr<const DynamicPointDatabase::Snapshot> snap;
    std::shared_ptr<const IdMap> ids;
    Box mbr;
  };

  /// One immutable cross-shard version. Obtained via `snapshot()`; valid
  /// for as long as the caller holds the pointer.
  class Snapshot {
   public:
    const std::vector<ShardView>& shards() const { return shards_; }
    /// Exclusive upper bound of every global stable id in this version.
    PointId stable_limit() const { return stable_limit_; }
    /// Monotonic publication counter: 0 for the initial version, +1 per
    /// published mutation/compaction — mirrors
    /// `DynamicPointDatabase::Snapshot::version()` and keys the planner's
    /// result cache, so any mutation of any shard invalidates for free.
    std::uint64_t version() const { return version_; }
    /// Live points across all shards in this version.
    std::size_t live_size() const {
      std::size_t n = 0;
      for (const ShardView& v : shards_) n += v.snap->live_size();
      return n;
    }
    /// Visits every live point as `fn(global_stable_id, point)`, shard by
    /// shard (no global id order guarantee).
    template <typename Fn>
    void ForEachLive(Fn&& fn) const {
      for (const ShardView& v : shards_) {
        v.snap->ForEachLive([&](PointId local, const Point& p) {
          fn(v.ids->Global(local), p);
        });
      }
    }

   private:
    friend class ShardedDatabase;
    std::vector<ShardView> shards_;
    PointId stable_limit_ = 0;
    std::uint64_t version_ = 0;
  };

  /// Partitions `points` into `options.num_shards` Hilbert-range shards.
  /// The input must be finite and pairwise distinct — validated *before*
  /// partitioning, so a `DuplicatePointError` names the offending input
  /// positions even when the pair would have landed in different shards.
  /// An empty input is valid: the routing grid defaults to the unit
  /// square with the curve key space cut evenly, so inserts spread
  /// K-ways from the start.
  explicit ShardedDatabase(std::vector<Point> points)
      : ShardedDatabase(std::move(points), Options{}) {}
  ShardedDatabase(std::vector<Point> points, Options options);
  ~ShardedDatabase();  // Out of line: `planned_` is incomplete here.

  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// Inserts `p` into the shard owning its curve key and returns the
  /// global stable id, or `std::nullopt` when the shard rejects it (an
  /// equal point is live, a coordinate is non-finite, id space
  /// exhausted). See `DynamicPointDatabase::Insert`.
  std::optional<PointId> Insert(const Point& p);

  /// Deletes the point with global stable id `id`. Returns false if the
  /// id was never assigned or is already deleted.
  bool Erase(PointId id);

  /// Compacts every shard and tightens every shard MBR back to exact.
  void Compact();

  /// Live point count across all shards.
  std::size_t Size() const;

  std::size_t num_shards() const { return shards_.size(); }

  /// Pins the current cross-shard version. O(1).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Runs one area query through the adaptive planner (see
  /// `PlannedAreaQuery`): the cost model picks the method per query *and*
  /// whether to fan the surviving shards out onto `scatter_engine` or run
  /// them inline; the snapshot-keyed result cache serves repeated
  /// identical polygons. `scatter_engine` (may be null = always inline)
  /// and `policy` are fixed at the first call — they configure the
  /// lazily-built planned query — and must outlive this database.
  /// Thread-safe like `snapshot()`.
  std::vector<PointId> Query(const Polygon& area, QueryContext& ctx,
                             QueryEngine* scatter_engine = nullptr) const;
  std::vector<PointId> Query(const Polygon& area, QueryContext& ctx,
                             QueryEngine* scatter_engine,
                             const PlanHints& hints) const;

  /// The lazily-built planned query behind `Query`, as a registrable
  /// `AreaQuery` — see `DynamicPointDatabase::PlannedQuery`. Like `Query`,
  /// `scatter_engine` configures the planned query at the *first* call
  /// (later arguments are ignored) and must outlive this database. Note a
  /// planned sharded query may scatter onto that engine: registering it
  /// on the same engine is safe only because `ShardedAreaQuery` falls
  /// back to inline legs on a worker thread (the self-submission guard).
  const PlannedAreaQuery* PlannedQuery(
      QueryEngine* scatter_engine = nullptr) const;

  /// Total compactions across shards (threshold-triggered + explicit).
  std::uint64_t Compactions() const;

  /// Shard index that owns `p`'s Hilbert key (tests, tooling).
  std::size_t RouteShard(const Point& p) const;

 private:
  /// Mutator-side location of a global stable id (never read by queries).
  struct Loc {
    std::uint32_t shard = 0;
    PointId local = 0;  // Shard-local stable id.
  };

  void PublishLocked(std::shared_ptr<const Snapshot> next);

  Options options_;
  /// Curve domain of the routing grid: the initial bounding box.
  Box routing_bounds_;
  /// First curve key owned by each shard; non-decreasing, `start_keys_[0]`
  /// is 0. Shard i owns keys in [start_keys_[i], start_keys_[i+1]).
  std::vector<std::uint64_t> start_keys_;
  std::vector<std::unique_ptr<DynamicPointDatabase>> shards_;

  /// Serializes mutations; guards the mutator-side tables below.
  mutable std::mutex writer_mu_;
  /// Guards only `current_` (readers copy the pointer, writers swap it).
  /// Lock order: `writer_mu_` before `mu_`.
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> current_;
  /// Global stable id → owning shard + shard-local stable id, for the
  /// whole id lifetime (ids are never reused; stale entries are resolved
  /// by the shard's own liveness check in `Erase`).
  std::vector<Loc> loc_;
  /// Conservative live-point MBR per shard, mirrored into the views.
  std::vector<Box> mbrs_;
  PointId next_global_ = 0;
  /// Next snapshot version to publish (guarded by `writer_mu_`).
  std::uint64_t next_version_ = 1;

  /// Lazily built planner behind `Query` (see `DynamicPointDatabase`).
  mutable std::once_flag planned_once_;
  mutable std::unique_ptr<PlannedAreaQuery> planned_;
};

}  // namespace vaq

#endif  // VAQ_SHARD_SHARDED_DATABASE_H_
