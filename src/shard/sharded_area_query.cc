#include "shard/sharded_area_query.h"

#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/dynamic_area_query.h"
#include "geometry/prepared_area.h"

namespace vaq {

namespace {

/// One scatter leg: the selected method against one pinned shard view,
/// hits remapped to global stable ids. Internal to the scatter-gather —
/// it deliberately skips the per-leg sort (`AreaQuery` contract), because
/// global ids interleave across shards anyway and the gather runs one
/// sort over the merged set.
class ShardLegQuery final : public AreaQuery {
 public:
  ShardLegQuery(const ShardedDatabase::ShardView* view, DynamicMethod method)
      : view_(view), method_(method) {}

  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override {
    std::vector<PointId> ids =
        RunDynamicSnapshotQuery(*view_->snap, method_, area, ctx);
    for (PointId& id : ids) id = view_->ids->Global(id);
    return ids;
  }

  std::string_view Name() const override { return "shard-leg"; }

 private:
  const ShardedDatabase::ShardView* view_;
  DynamicMethod method_;
};

}  // namespace

std::vector<PointId> RunShardedSnapshotQuery(
    const ShardedDatabase::Snapshot& snap, DynamicMethod method,
    const Polygon& area, QueryContext& ctx, QueryEngine* scatter_engine,
    const ShardPolicy& policy) {
  const auto t0 = std::chrono::steady_clock::now();

  // Prune: O(1) conservative box test per shard. Empty shards are counted
  // as pruned too (their MBR may be stale-empty or missing).
  const PreparedArea& prep = ctx.Prepared(area);
  std::vector<const ShardedDatabase::ShardView*> survivors;
  survivors.reserve(snap.shards().size());
  std::uint64_t pruned = 0;
  for (const ShardedDatabase::ShardView& view : snap.shards()) {
    if (view.snap->live_size() == 0 ||
        prep.ClassifyBox(view.mbr) == PreparedArea::Region::kOutside) {
      ++pruned;
    } else {
      survivors.push_back(&view);
    }
  }

  // Scatter + gather. Per-leg stats merge by summation — `QueryStats`
  // counters are all additive, so the epilogue invariant survives. A
  // failed leg contributes neither ids nor stats (an aborted query's
  // output is undefined, all-or-nothing per leg).
  QueryStats merged;
  std::vector<PointId> result;

  // A leg's cancel token: fresh per attempt (each gets a full timeout
  // budget), chained under the parent query's token so cancelling the
  // parent aborts every leg. Null when neither is configured — the legs
  // then skip token polling entirely.
  const CancelToken* parent = ctx.cancel();
  const auto MakeLegToken = [&]() -> std::shared_ptr<CancelToken> {
    if (policy.leg_timeout_ms <= 0.0 && parent == nullptr) return nullptr;
    auto token = std::make_shared<CancelToken>();
    if (policy.leg_timeout_ms > 0.0) {
      token->SetDeadlineAfterMs(policy.leg_timeout_ms);
    }
    token->set_parent(parent);
    return token;
  };
  // One inline leg attempt on the caller's context (the sequential path
  // and every retry). Returns null on success, the error otherwise.
  const auto TryLegInline =
      [&](const ShardLegQuery& leg) -> std::exception_ptr {
    const std::shared_ptr<CancelToken> token = MakeLegToken();
    if (token != nullptr) ctx.set_cancel(token.get());
    std::exception_ptr error;
    try {
      std::vector<PointId> ids = leg.Run(area, ctx);
      merged += ctx.stats;
      result.insert(result.end(), ids.begin(), ids.end());
    } catch (...) {
      error = std::current_exception();
    }
    if (token != nullptr) ctx.set_cancel(parent);
    return error;
  };

  std::vector<ShardLegQuery> legs;
  legs.reserve(survivors.size());
  for (const ShardedDatabase::ShardView* view : survivors) {
    legs.emplace_back(view, method);
  }
  std::vector<std::exception_ptr> leg_errors(legs.size());

  // Self-submission guard: if this query is itself executing on a worker
  // of its scatter engine (it was registered with the same pool — the
  // documented deadlock configuration), scattering would block this
  // worker on legs that may only ever be queued behind more blocked
  // parents. Degrade to inline legs instead of hanging.
  const bool scatter = scatter_engine != nullptr && survivors.size() > 1 &&
                       !scatter_engine->OnWorkerThread();
  if (scatter) {
    // Every submitted leg must be drained before this frame can unwind:
    // the pool executes legs through pointers into `legs`, the per-leg
    // tokens (parented to a token on this frame) and the pinned
    // snapshot, so propagating an exception with futures outstanding
    // would turn the remaining queued legs into use-after-frees. Record
    // per-leg outcomes, finish the gather, then decide.
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(legs.size());
    for (std::size_t i = 0; i < legs.size(); ++i) {
      try {
        futures.push_back(
            scatter_engine->SubmitWith(&legs[i], area, MakeLegToken()));
      } catch (...) {
        // Submit no further legs (the engine is stopping or shedding);
        // the unsubmitted tail is marked failed and the in-flight legs
        // are drained below.
        for (std::size_t j = i; j < legs.size(); ++j) {
          leg_errors[j] = std::current_exception();
        }
        break;
      }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        QueryResult r = futures[i].get();
        merged += r.stats;
        result.insert(result.end(), r.ids.begin(), r.ids.end());
      } catch (...) {
        leg_errors[i] = std::current_exception();
      }
    }
  } else {
    for (std::size_t i = 0; i < legs.size(); ++i) {
      leg_errors[i] = TryLegInline(legs[i]);
    }
  }

  // The parent expiring is not a shard failure: it aborts the whole
  // query in either mode (retrying or returning partial results against
  // a cancelled deadline would be answering a question nobody is still
  // asking). Checked only after every leg is drained.
  ctx.CheckCancelled();

  // Failed legs get their retry budget inline, each attempt under a
  // fresh timeout.
  std::uint64_t failed = 0;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    for (int attempt = 0;
         leg_errors[i] != nullptr && attempt < policy.max_leg_retries;
         ++attempt) {
      leg_errors[i] = TryLegInline(legs[i]);
    }
    if (leg_errors[i] != nullptr) {
      ++failed;
      if (first_error == nullptr) first_error = leg_errors[i];
    }
  }
  if (failed > 0 && !policy.allow_partial) {
    std::rethrow_exception(first_error);
  }

  // Per-shard results are disjoint global-id sets; one sort restores the
  // ascending contract over the merged list.
  ctx.SortIds(result, snap.stable_limit());
  merged.shards_hit = survivors.size() - failed;
  merged.shards_pruned = pruned;
  merged.shards_failed = failed;
  merged.degraded = failed > 0 ? 1 : 0;
  merged.results = result.size();
  merged.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ctx.stats = merged;
  return result;
}

std::vector<PointId> ShardedAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  // Pin one cross-shard version: every leg queries the exact shard
  // snapshots recorded here, immune to concurrent mutations and to skew
  // between shards.
  const std::shared_ptr<const ShardedDatabase::Snapshot> snap =
      db_->snapshot();
  return RunShardedSnapshotQuery(*snap, method_, area, ctx, scatter_engine_,
                                 policy_);
}

}  // namespace vaq
