#include "shard/sharded_area_query.h"

#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/dynamic_area_query.h"
#include "geometry/prepared_area.h"

namespace vaq {

namespace {

/// One scatter leg: the selected method against one pinned shard view,
/// hits remapped to global stable ids. Internal to the scatter-gather —
/// it deliberately skips the per-leg sort (`AreaQuery` contract), because
/// global ids interleave across shards anyway and the gather runs one
/// sort over the merged set.
class ShardLegQuery final : public AreaQuery {
 public:
  ShardLegQuery(const ShardedDatabase::ShardView* view, DynamicMethod method)
      : view_(view), method_(method) {}

  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override {
    std::vector<PointId> ids =
        RunDynamicSnapshotQuery(*view_->snap, method_, area, ctx);
    for (PointId& id : ids) id = view_->ids->Global(id);
    return ids;
  }

  std::string_view Name() const override { return "shard-leg"; }

 private:
  const ShardedDatabase::ShardView* view_;
  DynamicMethod method_;
};

}  // namespace

std::vector<PointId> ShardedAreaQuery::Run(const Polygon& area,
                                           QueryContext& ctx) const {
  const auto t0 = std::chrono::steady_clock::now();
  // Pin one cross-shard version: every leg below queries the exact shard
  // snapshots recorded here, immune to concurrent mutations and to skew
  // between shards.
  const std::shared_ptr<const ShardedDatabase::Snapshot> snap =
      db_->snapshot();

  // Prune: O(1) conservative box test per shard. Empty shards are counted
  // as pruned too (their MBR may be stale-empty or missing).
  const PreparedArea& prep = ctx.Prepared(area);
  std::vector<const ShardedDatabase::ShardView*> survivors;
  survivors.reserve(snap->shards().size());
  std::uint64_t pruned = 0;
  for (const ShardedDatabase::ShardView& view : snap->shards()) {
    if (view.snap->live_size() == 0 ||
        prep.ClassifyBox(view.mbr) == PreparedArea::Region::kOutside) {
      ++pruned;
    } else {
      survivors.push_back(&view);
    }
  }

  // Scatter + gather. Per-leg stats merge by summation — `QueryStats`
  // counters are all additive, so the epilogue invariant survives.
  QueryStats merged;
  std::vector<PointId> result;
  // Self-submission guard: if this query is itself executing on a worker
  // of its scatter engine (it was registered with the same pool — the
  // documented deadlock configuration), scattering would block this
  // worker on legs that may only ever be queued behind more blocked
  // parents. Degrade to inline legs instead of hanging.
  const bool scatter = scatter_engine_ != nullptr && survivors.size() > 1 &&
                       !scatter_engine_->OnWorkerThread();
  if (scatter) {
    std::vector<ShardLegQuery> legs;
    legs.reserve(survivors.size());
    for (const ShardedDatabase::ShardView* view : survivors) {
      legs.emplace_back(view, method_);
    }
    // Every submitted leg must be drained before this frame can unwind:
    // the pool executes legs through pointers into `legs` and the pinned
    // snapshot, so propagating an exception with futures outstanding
    // would turn the remaining queued legs into use-after-frees. Collect
    // the first error, finish the gather, then rethrow.
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(legs.size());
    std::exception_ptr first_error;
    for (const ShardLegQuery& leg : legs) {
      try {
        futures.push_back(scatter_engine_->SubmitWith(&leg, area));
      } catch (...) {
        first_error = std::current_exception();
        break;  // Submit no further legs; drain the ones in flight.
      }
    }
    for (std::future<QueryResult>& f : futures) {
      try {
        QueryResult r = f.get();
        merged += r.stats;
        result.insert(result.end(), r.ids.begin(), r.ids.end());
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  } else {
    for (const ShardedDatabase::ShardView* view : survivors) {
      const ShardLegQuery leg(view, method_);
      std::vector<PointId> ids = leg.Run(area, ctx);
      merged += ctx.stats;
      result.insert(result.end(), ids.begin(), ids.end());
    }
  }

  // Per-shard results are disjoint global-id sets; one sort restores the
  // ascending contract over the merged list.
  ctx.SortIds(result, snap->stable_limit());
  merged.shards_hit = survivors.size();
  merged.shards_pruned = pruned;
  merged.results = result.size();
  merged.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ctx.stats = merged;
  return result;
}

}  // namespace vaq
