#include "shard/sharded_database.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "delaunay/hilbert.h"
#include "planner/planned_area_query.h"

namespace vaq {

ShardedDatabase::ShardedDatabase(std::vector<Point> points, Options options)
    : options_(options) {
  const std::size_t k = options_.num_shards;
  if (k == 0) {
    throw std::invalid_argument(
        "ShardedDatabase: num_shards must be >= 1 (got 0)");
  }
  // Global precondition check, before partitioning: a per-shard check
  // could not see a duplicate pair split across shard boundaries, and the
  // error must name positions in the caller's input vector.
  CheckFiniteAndDistinct(points);
  const std::size_t n = points.size();

  for (const Point& p : points) routing_bounds_.ExpandToInclude(p);
  // Empty construction: no data to derive a curve domain from. Default
  // to the library's experiment domain (coordinates outside it clamp to
  // border cells, as always); the cut keys get an even key-space split
  // below.
  if (routing_bounds_.Empty()) {
    routing_bounds_ = Box{{0.0, 0.0}, {1.0, 1.0}};
  }

  // Order the input along the Hilbert curve. Ties on the curve key (grid
  // cell collisions) break by coordinate, so the resulting partition
  // depends only on the point set, never on input order.
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = HilbertKeyInBox(routing_bounds_, points[i]);
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return points[a] < points[b];
            });

  // Key-aligned cuts at the balanced targets: each cut advances to the
  // end of its key run so no run splits. Shards can come out uneven (or
  // empty) when runs straddle targets or when K > n; that trades perfect
  // balance for exact key routing.
  std::vector<std::size_t> cuts(k + 1, n);
  cuts[0] = 0;
  for (std::size_t s = 1; s < k; ++s) {
    std::size_t cut = std::max(s * n / k, cuts[s - 1]);
    while (cut > 0 && cut < n && keys[order[cut]] == keys[order[cut - 1]]) {
      ++cut;
    }
    cuts[s] = cut;
  }

  DynamicPointDatabase::Options shard_options = options_.shard;
  shard_options.base.skip_distinctness_check = true;
  // The paper's segment-expansion rule can fail to cross point-free
  // corridors of concave query areas. Unsharded, the corridors are
  // vanishingly rare at benchmark densities — but partitioning hands each
  // shard only 1/K of the points, widening every corridor by exactly the
  // factor the shard is sparser. The sharded voronoi legs therefore
  // always run the provably complete cell-overlap rule (the sharded
  // differential bench caught real misses at K=8 without it).
  shard_options.voronoi.expansion =
      VoronoiAreaQuery::ExpansionRule::kCellOverlap;

  start_keys_.assign(k, 0);
  std::vector<char> empty_shard(k, 0);
  mbrs_.assign(k, Box{});
  loc_.resize(n);
  shards_.reserve(k);
  auto snap = std::make_shared<Snapshot>();
  snap->shards_.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t lo = cuts[s];
    const std::size_t hi = cuts[s + 1];
    std::vector<Point> part;
    part.reserve(hi - lo);
    auto ids = std::make_shared<IdMap>();
    ids->chunks.reserve((hi - lo + IdChunk::kCapacity - 1) /
                        IdChunk::kCapacity);
    for (std::size_t i = lo; i < hi; ++i) {
      const PointId global = order[i];
      const PointId local = static_cast<PointId>(i - lo);
      part.push_back(points[global]);
      if (local % IdChunk::kCapacity == 0) {
        ids->chunks.push_back(std::make_shared<IdChunk>());
      }
      ids->chunks.back()->global[local % IdChunk::kCapacity] = global;
      loc_[global] = Loc{static_cast<std::uint32_t>(s), local};
    }
    empty_shard[s] = (lo == hi);
    if (!empty_shard[s]) start_keys_[s] = keys[order[lo]];
    shards_.push_back(
        std::make_unique<DynamicPointDatabase>(std::move(part),
                                               shard_options));
    std::shared_ptr<const DynamicPointDatabase::Snapshot> shard_snap =
        shards_[s]->snapshot();
    mbrs_[s] = shard_snap->base().bounds();
    snap->shards_[s] =
        ShardView{std::move(shard_snap), std::move(ids), mbrs_[s]};
  }
  // Empty shards get the start key of their successor (an empty routing
  // range wedged between neighbours); trailing empties get the key just
  // past the data, so future inserts beyond the tail land in them.
  // `start_keys_[0]` stays 0: keys below the first point route to shard 0.
  const std::uint64_t tail_key = n > 0 ? keys[order[n - 1]] + 1 : 0;
  for (std::size_t s = k; s-- > 1;) {
    if (empty_shard[s]) {
      start_keys_[s] = s + 1 < k ? start_keys_[s + 1] : tail_key;
    }
  }
  start_keys_[0] = 0;
  // With no points, the backfill above collapses every range to [0, 0)
  // and all future inserts would funnel into the last shard. Cut the
  // order-16 key space (2^32 cells) evenly instead, so K-way routing
  // works from the first insert.
  if (n == 0) {
    constexpr std::uint64_t kKeySpace = std::uint64_t{1} << 32;
    for (std::size_t s = 0; s < k; ++s) {
      start_keys_[s] = s * (kKeySpace / k);
    }
  }

  next_global_ = static_cast<PointId>(n);
  snap->stable_limit_ = next_global_;
  current_ = std::move(snap);
}

std::size_t ShardedDatabase::RouteShard(const Point& p) const {
  const std::uint64_t key = HilbertKeyInBox(routing_bounds_, p);
  // `start_keys_[0] == 0 <= key`, so the bound is never `begin()`.
  const auto it =
      std::upper_bound(start_keys_.begin(), start_keys_.end(), key);
  return static_cast<std::size_t>(it - start_keys_.begin()) - 1;
}

std::optional<PointId> ShardedDatabase::Insert(const Point& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) return std::nullopt;
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (next_global_ == kInvalidPointId) return std::nullopt;
  const std::size_t s = RouteShard(p);
  // Every allocating step happens *before* the shard commits the point,
  // so a bad_alloc can never strand a live shard point without its
  // global bookkeeping (the same order-then-commit discipline as
  // `DynamicPointDatabase::Insert`). The shard-local stable id the
  // insert will assign is known up front: ids are dense and every shard
  // mutation funnels through this object, so it is the pinned view's
  // `stable_limit()`.
  const ShardView& view = current_->shards_[s];
  const PointId local = view.snap->stable_limit();
  auto ids = std::make_shared<IdMap>(*view.ids);
  const std::size_t ci = local / IdChunk::kCapacity;
  if (ci == ids->chunks.size()) {
    ids->chunks.push_back(std::make_shared<IdChunk>());
  }
  ids->chunks[ci]->global[local % IdChunk::kCapacity] = next_global_;
  // Geometric pre-grow (an exact-fit reserve would reallocate — and copy
  // the whole table — on every insert); the commit's push_back then
  // cannot throw.
  if (loc_.size() == loc_.capacity()) {
    loc_.reserve(std::max<std::size_t>(16, loc_.capacity() * 2));
  }
  auto next = std::make_shared<Snapshot>(*current_);
  // Key routing sends an equal point to the shard holding its live twin
  // (equal points share a key, and key runs never split), so the shard's
  // local duplicate check is globally sufficient.
  const std::optional<PointId> inserted = shards_[s]->Insert(p);
  if (!inserted.has_value()) return std::nullopt;
  // Commit: nothing below throws.
  const PointId global = next_global_++;
  loc_.push_back(Loc{static_cast<std::uint32_t>(s), local});
  mbrs_[s].ExpandToInclude(p);
  next->shards_[s].snap = shards_[s]->snapshot();
  next->shards_[s].ids = std::move(ids);
  next->shards_[s].mbr = mbrs_[s];
  next->stable_limit_ = next_global_;
  next->version_ = next_version_++;
  PublishLocked(std::move(next));
  return global;
}

bool ShardedDatabase::Erase(PointId id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (id >= loc_.size()) return false;
  const Loc loc = loc_[id];
  // Allocate the next version before the shard commits the delete, so an
  // allocation failure cannot leave the published cross-shard view
  // behind the shard's actual state.
  auto next = std::make_shared<Snapshot>(*current_);
  if (!shards_[loc.shard]->Erase(loc.local)) return false;
  next->shards_[loc.shard].snap = shards_[loc.shard]->snapshot();
  // The MBR stays conservative across deletes; Compact() re-tightens it.
  next->shards_[loc.shard].mbr = mbrs_[loc.shard];
  next->stable_limit_ = next_global_;
  next->version_ = next_version_++;
  PublishLocked(std::move(next));
  return true;
}

void ShardedDatabase::Compact() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  auto next = std::make_shared<Snapshot>(*current_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->Compact();
    std::shared_ptr<const DynamicPointDatabase::Snapshot> snap =
        shards_[s]->snapshot();
    // Post-compaction the live set is exactly the rebuilt base, so its
    // bounding box is the exact live MBR again.
    mbrs_[s] = snap->base().bounds();
    next->shards_[s].snap = std::move(snap);
    next->shards_[s].mbr = mbrs_[s];
  }
  next->stable_limit_ = next_global_;
  next->version_ = next_version_++;
  PublishLocked(std::move(next));
}

std::size_t ShardedDatabase::Size() const { return snapshot()->live_size(); }

std::uint64_t ShardedDatabase::Compactions() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<DynamicPointDatabase>& shard : shards_) {
    total += shard->Compactions();
  }
  return total;
}

std::shared_ptr<const ShardedDatabase::Snapshot> ShardedDatabase::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void ShardedDatabase::PublishLocked(std::shared_ptr<const Snapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

ShardedDatabase::~ShardedDatabase() = default;

std::vector<PointId> ShardedDatabase::Query(const Polygon& area,
                                            QueryContext& ctx,
                                            QueryEngine* scatter_engine)
    const {
  return Query(area, ctx, scatter_engine, PlanHints{});
}

std::vector<PointId> ShardedDatabase::Query(const Polygon& area,
                                            QueryContext& ctx,
                                            QueryEngine* scatter_engine,
                                            const PlanHints& hints) const {
  return PlannedQuery(scatter_engine)->RunPlanned(area, ctx, hints);
}

const PlannedAreaQuery* ShardedDatabase::PlannedQuery(
    QueryEngine* scatter_engine) const {
  std::call_once(planned_once_, [&] {
    planned_ = std::make_unique<PlannedAreaQuery>(this, scatter_engine,
                                                  ShardPolicy{});
  });
  return planned_.get();
}

}  // namespace vaq
