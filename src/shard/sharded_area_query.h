#ifndef VAQ_SHARD_SHARDED_AREA_QUERY_H_
#define VAQ_SHARD_SHARDED_AREA_QUERY_H_

#include "core/area_query.h"
#include "core/dynamic_point_database.h"
#include "engine/query_engine.h"
#include "shard/sharded_database.h"

namespace vaq {

/// Failure policy of one sharded scatter-gather (DESIGN.md §12).
///
/// Defaults preserve the strict contract: no per-leg deadline, no
/// retries, and any leg failure fails the whole query (the gather still
/// drains every in-flight leg first — never a silent partial answer).
struct ShardPolicy {
  /// Per-leg deadline in ms, measured from that leg's dispatch (scatter
  /// submit or inline start); each retry attempt gets a fresh budget.
  /// 0 = none. Legs also inherit the parent query's token: cancelling
  /// the parent aborts every leg at its next block boundary.
  double leg_timeout_ms = 0.0;
  /// Extra attempts for a failed leg, run inline on the gathering thread
  /// after every first-round leg has been drained (retrying while other
  /// legs are still in flight would just contend with them).
  int max_leg_retries = 0;
  /// Degraded partial-result mode: when legs still fail after retries,
  /// return the surviving shards' results instead of throwing, with
  /// `QueryStats::shards_failed` counting the losses and
  /// `QueryStats::degraded` set — the caller explicitly opted into an
  /// answer that may be a subset of the truth, and the flags make that
  /// visible end to end (engine aggregation, experiment JSON). A parent
  /// cancellation/deadline is *not* a shard failure: it aborts the whole
  /// query with `QueryAbortedError` in either mode.
  bool allow_partial = false;
};

/// Runs one scatter-gather area query against an already-pinned
/// cross-shard snapshot: MBR prune, scatter (parallel legs through
/// `scatter_engine`, or sequential inline legs when it is null or the
/// caller is itself a worker of that pool), gather + merge + sort. This
/// is the body of `ShardedAreaQuery::Run` minus the pin, exposed for the
/// same reason as `RunDynamicSnapshotQuery`: a caller that derives other
/// state from the snapshot — the planner keys its result cache on
/// `Snapshot::version()` — must execute against the exact version it
/// pinned, not whatever is current when the query runs.
/// `ctx.stats` is reset and filled like any `AreaQuery::Run`.
std::vector<PointId> RunShardedSnapshotQuery(
    const ShardedDatabase::Snapshot& snap, DynamicMethod method,
    const Polygon& area, QueryContext& ctx, QueryEngine* scatter_engine,
    const ShardPolicy& policy);

/// Scatter-gather area query over a `ShardedDatabase`:
///
///  1. **Pin** one cross-shard snapshot, so every sub-query answers the
///     same version of the database whatever mutations run concurrently.
///  2. **Prune**: classify each live shard's MBR against the prepared
///     query polygon (`PreparedArea::ClassifyBox`, O(1) per shard); a
///     `kOutside` verdict skips the shard entirely. The MBRs are
///     conservative (exact after compaction, grown by inserts), so a
///     prune is always sound.
///  3. **Scatter** the surviving shards: each runs the selected method
///     (`RunDynamicSnapshotQuery`) against its pinned shard snapshot and
///     remaps its hits to global stable ids. With a scatter engine the
///     legs run as `QueryEngine::SubmitWith` jobs in parallel — under the
///     blocking IO model the shards overlap their object fetches, which
///     is where the sharded layout's throughput comes from; without one
///     they run sequentially on the caller's context.
///  4. **Gather**: concatenate the per-shard hits (global id ranges
///     interleave, so one final `SortIds` restores the sorted contract)
///     and merge the per-shard `QueryStats` by summation, which preserves
///     the `candidates == candidate_hits + visited_rejected` invariant.
///     `stats.shards_hit`/`shards_pruned` record the scatter fan-out
///     (they always sum to the shard count); `elapsed_ms` is the
///     end-to-end wall time of the whole scatter-gather, not the sum of
///     the legs.
///
/// Stateless and engine-registrable like every `AreaQuery`. **Pool
/// rule**: the scatter engine should be a pool dedicated to shard legs —
/// a sharded query blocks its calling thread until its legs finish, so
/// legs queued behind other sharded queries occupying every worker of
/// the same pool would deadlock. Registering this query with its own
/// scatter engine anyway is *safe but pointless*: `Run` detects that it
/// is executing on a worker of the scatter pool and degrades to inline
/// legs (`QueryEngine::OnWorkerThread`). (Fan-out legs are `SubmitWith`
/// tasks, excluded from the scatter engine's client-facing `Stats()`.)
class ShardedAreaQuery : public AreaQuery {
 public:
  /// `db` (and `scatter_engine`, if given) must outlive this object.
  /// A null `scatter_engine` runs surviving shards sequentially inline —
  /// same results and merged counters, no intra-query parallelism.
  /// `policy` sets the per-leg timeout/retry budget and the partial-result
  /// mode; the default is strict (see `ShardPolicy`).
  ShardedAreaQuery(const ShardedDatabase* db, DynamicMethod method,
                   QueryEngine* scatter_engine = nullptr,
                   ShardPolicy policy = {})
      : db_(db),
        method_(method),
        scatter_engine_(scatter_engine),
        policy_(policy) {}

  const ShardPolicy& policy() const { return policy_; }

  using AreaQuery::Run;
  std::vector<PointId> Run(const Polygon& area,
                           QueryContext& ctx) const override;

  std::string_view Name() const override {
    switch (method_) {
      case DynamicMethod::kVoronoi:
        return "sharded-voronoi";
      case DynamicMethod::kTraditional:
        return "sharded-traditional";
      case DynamicMethod::kGridSweep:
        return "sharded-grid-sweep";
      case DynamicMethod::kBruteForce:
        break;
    }
    return "sharded-brute-force";
  }

 private:
  const ShardedDatabase* db_;
  DynamicMethod method_;
  QueryEngine* scatter_engine_;
  ShardPolicy policy_;
};

}  // namespace vaq

#endif  // VAQ_SHARD_SHARDED_AREA_QUERY_H_
