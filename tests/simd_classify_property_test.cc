// Bit-exactness of the batch classification kernels (src/geometry/simd/):
// on BOTH dispatch arms and for EVERY specialised kind, PolygonKernel::
// ContainsBatch must equal the naive Polygon::Contains byte for byte, and
// the raw grid classification must be bit-identical across arms — on
// adversarial inputs: stars, combs, collinear/degenerate vertices, points
// exactly on edges and vertices, ±0.0 and denormal coordinates, and every
// tail length (the n % block remainder runs the same masked kernel entry
// as full blocks, so short lengths are first-class test cases).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/prepared_area.h"
#include "geometry/simd/polygon_kernel.h"
#include "geometry/simd/simd_dispatch.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

/// Probe points stressing every lane outcome: random points in and around
/// the MBR (inside cells, outside cells, out-of-MBR rejects), every vertex
/// and edge midpoint/quarter-point (exact on-edge and one-ulp-off ties for
/// the certified filter), and grid cell-corner lattice points (index
/// rounding ties).
std::vector<Point> ProbePoints(const Polygon& poly, const PreparedArea& prep,
                               Rng* rng, int random_count) {
  std::vector<Point> probes;
  const Box& b = poly.Bounds();
  const double w = b.Width(), h = b.Height();
  for (int i = 0; i < random_count; ++i) {
    probes.push_back({b.min.x + rng->Uniform(-0.1, 1.1) * w,
                      b.min.y + rng->Uniform(-0.1, 1.1) * h});
  }
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Point& a = poly.vertex(i);
    const Point& c = poly.vertex((i + 1) % poly.size());
    probes.push_back(a);
    probes.push_back(Midpoint(a, c));
    probes.push_back(Midpoint(a, Midpoint(a, c)));
  }
  const int side = prep.grid_side();
  for (int k = 0; k < 8 && side > 0; ++k) {
    const int cx = rng->UniformInt(0, side);
    const int cy = rng->UniformInt(0, side);
    probes.push_back({b.min.x + cx * (w / side), b.min.y + cy * (h / side)});
  }
  return probes;
}

/// Runs `kernel.ContainsBatch` over the probes at several lengths —
/// including sub-lane tails, one-full-vector, and around the internal 256
/// block — and checks every verdict against the naive polygon test.
void ExpectBatchMatchesNaive(const Polygon& poly, const PolygonKernel& kernel,
                             const std::vector<Point>& probes,
                             const char* label) {
  std::vector<double> xs, ys;
  for (const Point& p : probes) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::vector<bool> naive;
  for (const Point& p : probes) naive.push_back(poly.Contains(p));

  std::vector<std::size_t> lengths = {probes.size()};
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{255}, std::size_t{256}, std::size_t{257}}) {
    if (n <= probes.size()) lengths.push_back(n);
  }
  // The kernel must not touch flags past n: a sentinel slot beyond every
  // tested length starts poisoned and is re-checked after each call. The
  // poison value is `!naive[n]` so a one-past-the-end write of the correct
  // verdict for slot n is also caught.
  std::unique_ptr<bool[]> flags(new bool[probes.size() + 1]);
  for (const std::size_t n : lengths) {
    const bool poison = n < naive.size() ? !naive[n] : true;
    flags[n] = poison;
    kernel.ContainsBatch(xs.data(), ys.data(), n, flags.get());
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(flags[j], naive[j])
          << label << " kind=" << PolygonKernel::KindName(kernel.kind())
          << " arm=" << simd::ArmName(kernel.arm()) << " n=" << n
          << " disagreement at " << probes[j];
    }
    ASSERT_EQ(flags[n], poison) << label << " wrote past n=" << n;
  }
}

/// Raw grid classification: both arms bit-identical over the probes.
void ExpectClassifyArmsIdentical(const PreparedArea& prep,
                                 const std::vector<Point>& probes,
                                 const char* label) {
  if (!simd::Avx2Available()) return;
  std::vector<double> xs, ys;
  for (const Point& p : probes) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::vector<unsigned char> scalar_cls(probes.size(), 255);
  std::vector<unsigned char> avx2_cls(probes.size(), 254);
  ClassifyCellsOnArm(prep, simd::Arm::kScalar, xs.data(), ys.data(),
                     probes.size(), scalar_cls.data());
  ClassifyCellsOnArm(prep, simd::Arm::kAvx2, xs.data(), ys.data(),
                     probes.size(), avx2_cls.data());
  ASSERT_EQ(0, std::memcmp(scalar_cls.data(), avx2_cls.data(), probes.size()))
      << label << " ClassifyPoints arms diverge";
}

/// The full cross-check for one polygon: kernels on both arms vs the naive
/// oracle, plus the raw-classification arm agreement, plus a light
/// boundary-segment agreement pass (prepared vs naive) over probe pairs.
void ExpectAllKernelsExact(const Polygon& poly, Rng* rng, int random_count,
                           const char* label,
                           PolygonKernel::Kind expected_avx2_kind =
                               PolygonKernel::Kind::kNone) {
  const PreparedArea prep(poly);
  const std::vector<Point> probes = ProbePoints(poly, prep, rng, random_count);

  PolygonKernel kernel;
  kernel.Prepare(prep, simd::Arm::kScalar);
  ASSERT_EQ(kernel.kind(), PolygonKernel::Kind::kGridResidual);
  ExpectBatchMatchesNaive(poly, kernel, probes, label);

  if (simd::Avx2Available()) {
    kernel.Prepare(prep, simd::Arm::kAvx2);
    if (expected_avx2_kind != PolygonKernel::Kind::kNone) {
      ASSERT_EQ(kernel.kind(), expected_avx2_kind) << label;
    }
    ExpectBatchMatchesNaive(poly, kernel, probes, label);
  }
  ExpectClassifyArmsIdentical(prep, probes, label);

  for (std::size_t i = 0; i + 1 < probes.size(); i += 8) {
    const Segment s{probes[i], probes[i + 1]};
    ASSERT_EQ(prep.BoundaryIntersects(s), poly.BoundaryIntersects(s))
        << label << " BoundaryIntersects disagreement at " << s;
  }
}

TEST(SimdClassifyPropertyTest, RandomStarPolygons) {
  Rng rng(20260807);
  PolygonSpec spec;
  for (int rep = 0; rep < 300; ++rep) {
    spec.vertices = 3 + rng.UniformInt(0, 38);
    spec.query_size_fraction = rng.Uniform(0.005, 0.5);
    const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
    Rng probe_rng(1000 + rep);
    ExpectAllKernelsExact(poly, &probe_rng, 48, "star");
  }
}

TEST(SimdClassifyPropertyTest, ConvexRegularNGonsBothWindings) {
  // Convex rings across the whole accepted size range, both CCW and CW
  // (the CW edge-swap path), selected onto the half-plane kernel.
  Rng rng(42);
  for (int m = 3; m <= 64; m += (m < 12 ? 1 : 7)) {
    const Polygon ccw = Polygon::RegularNGon({0.5, 0.5}, 0.37, m);
    ExpectAllKernelsExact(ccw, &rng, 64, "ngon-ccw",
                          PolygonKernel::Kind::kConvexHalfPlane);
    const Polygon cw = ccw.Reversed();
    ExpectAllKernelsExact(cw, &rng, 64, "ngon-cw",
                          PolygonKernel::Kind::kConvexHalfPlane);
  }
}

TEST(SimdClassifyPropertyTest, AdversarialCombs) {
  // Thin-pronged combs: heavily concave, collinear axis-aligned edges,
  // exactly-representable on-edge probes. Large combs take the generic
  // grid-residual path on both arms.
  Rng rng(777);
  for (int teeth = 2; teeth <= 24; teeth += 4) {
    const Polygon poly =
        GenerateCombPolygon(Box{{0.125, 0.25}, {0.875, 0.75}}, teeth);
    ExpectAllKernelsExact(poly, &rng, 300, "comb",
                          PolygonKernel::Kind::kGridResidual);
  }
}

TEST(SimdClassifyPropertyTest, SmallConcavePolygons) {
  // Concave quads ("darts") and hexagons: small-m non-convex rings that
  // select the unrolled crossing-parity kernel on the vector arm.
  Rng rng(99);
  const Polygon dart({{0.1, 0.1}, {0.9, 0.5}, {0.1, 0.9}, {0.35, 0.5}});
  ExpectAllKernelsExact(dart, &rng, 200, "dart",
                        PolygonKernel::Kind::kSmallMEdge);
  const Polygon hex({{0.0, 0.0},
                     {0.5, 0.25},
                     {1.0, 0.0},
                     {1.0, 1.0},
                     {0.5, 0.4},
                     {0.0, 1.0}});
  ExpectAllKernelsExact(hex, &rng, 200, "concave-hex",
                        PolygonKernel::Kind::kSmallMEdge);
}

TEST(SimdClassifyPropertyTest, CollinearVerticesStayConvex) {
  // A rectangle with redundant collinear vertices on its edges: consecutive
  // triples include zero orientations, which must not defeat the convexity
  // detection, and the duplicate supporting lines are on-edge tie cases.
  Rng rng(31337);
  const Polygon poly({{0.0, 0.0},
                      {0.25, 0.0},
                      {0.5, 0.0},
                      {1.0, 0.0},
                      {1.0, 0.5},
                      {1.0, 1.0},
                      {0.5, 1.0},
                      {0.0, 1.0},
                      {0.0, 0.5}});
  ExpectAllKernelsExact(poly, &rng, 200, "collinear-rect",
                        PolygonKernel::Kind::kConvexHalfPlane);
  // On-edge lattice points: exactly representable, exactly on the ring.
  const PreparedArea prep(poly);
  PolygonKernel kernel;
  std::vector<Point> lattice;
  for (int i = 0; i <= 16; ++i) {
    lattice.push_back({i / 16.0, 0.0});
    lattice.push_back({i / 16.0, 1.0});
    lattice.push_back({0.0, i / 16.0});
    lattice.push_back({1.0, i / 16.0});
  }
  for (const simd::Arm arm : {simd::Arm::kScalar, simd::Arm::kAvx2}) {
    if (arm == simd::Arm::kAvx2 && !simd::Avx2Available()) continue;
    kernel.Prepare(prep, arm);
    ExpectBatchMatchesNaive(poly, kernel, lattice, "lattice");
  }
}

TEST(SimdClassifyPropertyTest, SignedZeroAndDenormalCoordinates) {
  // A polygon spanning the origin probed at ±0.0 and denormal coordinates:
  // the sign of zero must not flip containment (-0.0 == 0.0 in every
  // comparison) and denormals must classify identically on both arms (no
  // FTZ/DAZ divergence between the vector and scalar units).
  const Polygon diamond(
      {{-1.0, 0.0}, {0.0, -1.0}, {1.0, 0.0}, {0.0, 1.0}});
  const double denorm = 4.9406564584124654e-324;  // min subnormal
  const double tiny = 1.0e-310;                   // subnormal
  std::vector<Point> probes = {
      {0.0, 0.0},       {-0.0, 0.0},     {0.0, -0.0},    {-0.0, -0.0},
      {denorm, 0.0},    {-denorm, 0.0},  {0.0, denorm},  {0.0, -denorm},
      {denorm, denorm}, {tiny, -tiny},   {-tiny, tiny},  {tiny, tiny},
      {1.0, 0.0},       {-1.0, -0.0},    {0.5, 0.5},     {0.5 + tiny, 0.5},
      {-0.0, 1.0},      {denorm, -1.0},  {2.0, 0.0},     {-0.0, -1.0},
  };
  const PreparedArea prep(diamond);
  PolygonKernel kernel;
  for (const simd::Arm arm : {simd::Arm::kScalar, simd::Arm::kAvx2}) {
    if (arm == simd::Arm::kAvx2 && !simd::Avx2Available()) continue;
    kernel.Prepare(prep, arm);
    ExpectBatchMatchesNaive(diamond, kernel, probes, "signed-zero");
  }
  ExpectClassifyArmsIdentical(prep, probes, "signed-zero");

  // Same probes against a degenerate-thin convex sliver whose determinants
  // underflow: certified-or-fallback must still match the exact oracle.
  const Polygon sliver({{-1.0, -tiny}, {1.0, -tiny}, {1.0, tiny}, {-1.0, tiny}});
  const PreparedArea sprep(sliver);
  for (const simd::Arm arm : {simd::Arm::kScalar, simd::Arm::kAvx2}) {
    if (arm == simd::Arm::kAvx2 && !simd::Avx2Available()) continue;
    kernel.Prepare(sprep, arm);
    ExpectBatchMatchesNaive(sliver, kernel, probes, "sliver");
  }
}

TEST(SimdClassifyPropertyTest, BlockBoundaryLengths) {
  // A probe set larger than the internal 256 block, checked at lengths
  // around every boundary: sub-lane, lane, 8-lane, and block edges.
  Rng rng(2468);
  PolygonSpec spec;
  spec.vertices = 10;
  spec.query_size_fraction = 0.2;
  const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
  const PreparedArea prep(poly);
  std::vector<Point> probes = ProbePoints(poly, prep, &rng, 600);
  probes.resize(600);
  PolygonKernel kernel;
  for (const simd::Arm arm : {simd::Arm::kScalar, simd::Arm::kAvx2}) {
    if (arm == simd::Arm::kAvx2 && !simd::Avx2Available()) continue;
    kernel.Prepare(prep, arm);
    ExpectBatchMatchesNaive(poly, kernel, probes, "block-boundary");
  }
}

}  // namespace
}  // namespace vaq
