// Runtime CPU dispatch: the `VAQ_FORCE_SCALAR` environment override, the
// cached arm decision, the per-kind stats bits surfaced through
// `QueryStats::kernel_kind`, and `QueryContext::PreparedKernel`'s
// re-preparation when the dispatch arm changes mid-process.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/query_context.h"
#include "core/query_stats.h"
#include "geometry/polygon.h"
#include "geometry/prepared_area.h"
#include "geometry/simd/polygon_kernel.h"
#include "geometry/simd/simd_dispatch.h"
#include "workload/polygon_generator.h"

namespace vaq {
namespace {

/// Restores the pre-test `VAQ_FORCE_SCALAR` state and dispatch cache no
/// matter how the test exits, so dispatch mutations cannot leak into other
/// tests in this binary.
class ScopedForceScalarEnv {
 public:
  ScopedForceScalarEnv() {
    const char* v = std::getenv("VAQ_FORCE_SCALAR");
    had_ = v != nullptr;
    if (had_) saved_ = v;
  }
  ~ScopedForceScalarEnv() {
    if (had_) {
      ::setenv("VAQ_FORCE_SCALAR", saved_.c_str(), 1);
    } else {
      ::unsetenv("VAQ_FORCE_SCALAR");
    }
    simd::RefreshDispatchForTest();
  }
  void Set(const char* value) {
    ::setenv("VAQ_FORCE_SCALAR", value, 1);
    simd::RefreshDispatchForTest();
  }
  void Unset() {
    ::unsetenv("VAQ_FORCE_SCALAR");
    simd::RefreshDispatchForTest();
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(SimdDispatchTest, ForceScalarEnvOverridesCapability) {
  ScopedForceScalarEnv env;

  env.Unset();
  const simd::Arm native = simd::DispatchArm();
  EXPECT_EQ(native,
            simd::Avx2Available() ? simd::Arm::kAvx2 : simd::Arm::kScalar);

  env.Set("1");
  EXPECT_EQ(simd::DispatchArm(), simd::Arm::kScalar);

  // "0" and the empty string mean "not forced".
  env.Set("0");
  EXPECT_EQ(simd::DispatchArm(), native);
  env.Set("");
  EXPECT_EQ(simd::DispatchArm(), native);

  // Any other non-empty value forces scalar.
  env.Set("yes");
  EXPECT_EQ(simd::DispatchArm(), simd::Arm::kScalar);
}

TEST(SimdDispatchTest, ArmNames) {
  EXPECT_STREQ(simd::ArmName(simd::Arm::kScalar), "scalar");
  EXPECT_STREQ(simd::ArmName(simd::Arm::kAvx2), "avx2");
}

TEST(SimdDispatchTest, StatsMaskEncodesKindAndArm) {
  const Polygon convex = Polygon::RegularNGon({0.5, 0.5}, 0.3, 12);
  const PreparedArea prep(convex);
  PolygonKernel kernel;

  kernel.Prepare(prep, simd::Arm::kScalar);
  EXPECT_EQ(kernel.kind(), PolygonKernel::Kind::kGridResidual);
  EXPECT_EQ(kernel.stats_mask(), PolygonKernel::kStatsGridResidual);

  if (simd::Avx2Available()) {
    kernel.Prepare(prep, simd::Arm::kAvx2);
    EXPECT_EQ(kernel.kind(), PolygonKernel::Kind::kConvexHalfPlane);
    EXPECT_EQ(kernel.stats_mask(),
              PolygonKernel::kStatsConvexHalfPlane | PolygonKernel::kStatsAvx2);

    const Polygon dart({{0.1, 0.1}, {0.9, 0.5}, {0.1, 0.9}, {0.35, 0.5}});
    const PreparedArea dprep(dart);
    kernel.Prepare(dprep, simd::Arm::kAvx2);
    EXPECT_EQ(kernel.kind(), PolygonKernel::Kind::kSmallMEdge);
    EXPECT_EQ(kernel.stats_mask(),
              PolygonKernel::kStatsSmallMEdge | PolygonKernel::kStatsAvx2);

    const Polygon comb = GenerateCombPolygon(Box{{0.1, 0.1}, {0.9, 0.9}}, 12);
    const PreparedArea cprep(comb);
    kernel.Prepare(cprep, simd::Arm::kAvx2);
    EXPECT_EQ(kernel.kind(), PolygonKernel::Kind::kGridResidual);
    EXPECT_EQ(kernel.stats_mask(),
              PolygonKernel::kStatsGridResidual | PolygonKernel::kStatsAvx2);
  }
}

TEST(SimdDispatchTest, KernelKindMergesAcrossStats) {
  QueryStats a;
  a.kernel_kind =
      PolygonKernel::kStatsConvexHalfPlane | PolygonKernel::kStatsAvx2;
  QueryStats b;
  b.kernel_kind = PolygonKernel::kStatsGridResidual;
  a += b;
  EXPECT_EQ(a.kernel_kind, PolygonKernel::kStatsConvexHalfPlane |
                               PolygonKernel::kStatsGridResidual |
                               PolygonKernel::kStatsAvx2);
}

TEST(SimdDispatchTest, PreparedKernelFollowsDispatchArm) {
  ScopedForceScalarEnv env;
  const Polygon convex = Polygon::RegularNGon({0.5, 0.5}, 0.3, 8);
  QueryContext ctx;

  env.Unset();
  const PolygonKernel& k1 = ctx.PreparedKernel(convex, 1000);
  EXPECT_EQ(k1.arm(), simd::DispatchArm());
  EXPECT_TRUE(k1.prepared());
  if (simd::Avx2Available()) {
    EXPECT_EQ(k1.kind(), PolygonKernel::Kind::kConvexHalfPlane);
  } else {
    EXPECT_EQ(k1.kind(), PolygonKernel::Kind::kGridResidual);
  }

  // Same polygon again: memoized, same kernel state.
  const PolygonKernel& k2 = ctx.PreparedKernel(convex, 1000);
  EXPECT_EQ(&k1, &k2);
  EXPECT_EQ(k2.arm(), simd::DispatchArm());

  // Flipping the dispatch arm re-prepares the memoized kernel even though
  // the polygon (and its PreparedArea) did not change.
  env.Set("1");
  const PolygonKernel& k3 = ctx.PreparedKernel(convex, 1000);
  EXPECT_EQ(k3.arm(), simd::Arm::kScalar);
  EXPECT_EQ(k3.kind(), PolygonKernel::Kind::kGridResidual);
}

}  // namespace
}  // namespace vaq
