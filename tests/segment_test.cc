#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(SegmentTest, BoundsAndLength) {
  const Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.Length(), 5.0);
  EXPECT_EQ(s.Bounds(), Box::FromExtents(0, 0, 3, 4));
  const Segment reversed{{3, 4}, {0, 0}};
  EXPECT_EQ(reversed.Bounds(), s.Bounds());
}

TEST(SegmentTest, SquaredDistanceToPoint) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(s.SquaredDistanceTo({5, 3}), 9.0);    // Perpendicular.
  EXPECT_DOUBLE_EQ(s.SquaredDistanceTo({-3, 4}), 25.0);  // Before start.
  EXPECT_DOUBLE_EQ(s.SquaredDistanceTo({13, 4}), 25.0);  // After end.
  EXPECT_DOUBLE_EQ(s.SquaredDistanceTo({7, 0}), 0.0);    // On segment.
}

TEST(SegmentTest, DegenerateSegmentDistance) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(s.SquaredDistanceTo({4, 5}), 25.0);
}

TEST(OnSegmentTest, EndpointsAndInterior) {
  const Segment s{{0, 0}, {2, 2}};
  EXPECT_TRUE(OnSegment(s, {0, 0}));
  EXPECT_TRUE(OnSegment(s, {2, 2}));
  EXPECT_TRUE(OnSegment(s, {1, 1}));
  EXPECT_FALSE(OnSegment(s, {3, 3}));    // Collinear but beyond.
  EXPECT_FALSE(OnSegment(s, {1, 1.5}));  // Off the line.
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 1}}, {{2, 0}, {3, 1}}));
}

TEST(SegmentsIntersectTest, EndpointTouching) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 5}}));  // T.
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{2, 0}, {3, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentsIntersectTest, ParallelNonCollinear) {
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {2, 0}}, {{0, 1}, {2, 1}}));
}

TEST(SegmentsIntersectTest, SymmetricInArguments) {
  const Segment s{{0, 0}, {2, 2}};
  const Segment t{{0, 2}, {2, 0}};
  EXPECT_EQ(SegmentsIntersect(s, t), SegmentsIntersect(t, s));
  const Segment far_away{{5, 5}, {6, 6}};
  EXPECT_EQ(SegmentsIntersect(s, far_away), SegmentsIntersect(far_away, s));
}

TEST(SegmentsIntersectTest, NearMissDecidedRobustly) {
  // Segment endpoints chosen so the crossing decision hinges on exact
  // arithmetic: t passes exactly through s's endpoint.
  const Segment s{{0, 0}, {1, 1}};
  const Segment t{{0.5, 0.5}, {2, -1}};  // Starts exactly on s.
  EXPECT_TRUE(SegmentsIntersect(s, t));
}

}  // namespace
}  // namespace vaq
