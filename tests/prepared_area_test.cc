// Prepared-vs-naive equivalence: `PreparedArea::Contains`,
// `BoundaryIntersects` and `Intersects` must agree with the naive `Polygon`
// methods on every input — including points exactly on edges and vertices
// (exact-predicate tie cases) — across thousands of random star-convex and
// adversarially concave polygons. `ClassifyBox` is conservative, so its
// definite answers are checked against exact box predicates instead.

#include <gtest/gtest.h>

#include <vector>

#include "geometry/polygon.h"
#include "geometry/prepared_area.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

/// Probe points that stress every code path: random points in and around
/// the MBR, every vertex (exactly on the boundary), edge midpoints and
/// quarter-points (on or within one ulp of the boundary — either way both
/// sides must agree), and points on the prepared grid's cell-corner
/// lattice (index-rounding ties).
std::vector<Point> ProbePoints(const Polygon& poly, const PreparedArea& prep,
                               Rng* rng, int random_count) {
  std::vector<Point> probes;
  const Box& b = poly.Bounds();
  const double w = b.Width(), h = b.Height();
  for (int i = 0; i < random_count; ++i) {
    probes.push_back({b.min.x + rng->Uniform(-0.1, 1.1) * w,
                      b.min.y + rng->Uniform(-0.1, 1.1) * h});
  }
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Point& a = poly.vertex(i);
    const Point& c = poly.vertex((i + 1) % poly.size());
    probes.push_back(a);
    probes.push_back(Midpoint(a, c));
    probes.push_back(Midpoint(a, Midpoint(a, c)));
  }
  const int side = prep.grid_side();
  for (int k = 0; k < 8; ++k) {
    const int cx = rng->UniformInt(0, side);
    const int cy = rng->UniformInt(0, side);
    probes.push_back({b.min.x + cx * (w / side), b.min.y + cy * (h / side)});
  }
  return probes;
}

void ExpectAgreement(const Polygon& poly, const PreparedArea& prep,
                     Rng* rng, int random_count, const char* label) {
  const std::vector<Point> probes =
      ProbePoints(poly, prep, rng, random_count);
  for (const Point& p : probes) {
    ASSERT_EQ(prep.Contains(p), poly.Contains(p))
        << label << " Contains disagreement at " << p;
  }
  // Segments: short (Delaunay-edge scale), medium, and degenerate.
  for (std::size_t i = 0; i + 1 < probes.size(); i += 2) {
    const Segment s{probes[i], probes[i + 1]};
    ASSERT_EQ(prep.BoundaryIntersects(s), poly.BoundaryIntersects(s))
        << label << " BoundaryIntersects disagreement at " << s;
    ASSERT_EQ(prep.Intersects(s), poly.Intersects(s))
        << label << " Intersects disagreement at " << s;
    const Segment short_s{probes[i],
                          probes[i] + Point{poly.Bounds().Width() * 0.02,
                                            poly.Bounds().Height() * 0.013}};
    ASSERT_EQ(prep.BoundaryIntersects(short_s),
              poly.BoundaryIntersects(short_s))
        << label << " short BoundaryIntersects disagreement at " << short_s;
  }
  // Degenerate zero-length segments on vertices.
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Segment z{poly.vertex(i), poly.vertex(i)};
    ASSERT_EQ(prep.BoundaryIntersects(z), poly.BoundaryIntersects(z))
        << label << " zero-length segment disagreement at vertex " << i;
  }
}

void ExpectClassifyBoxSound(const Polygon& poly, const PreparedArea& prep,
                            Rng* rng, const char* label) {
  const Box& b = poly.Bounds();
  const double w = b.Width(), h = b.Height();
  for (int i = 0; i < 64; ++i) {
    const Point lo{b.min.x + rng->Uniform(-0.2, 1.1) * w,
                   b.min.y + rng->Uniform(-0.2, 1.1) * h};
    const Box box{lo, lo + Point{rng->Uniform(0.0, 0.4) * w,
                                 rng->Uniform(0.0, 0.4) * h}};
    switch (prep.ClassifyBox(box)) {
      case PreparedArea::Region::kInside:
        // Definite: the whole box is inside. Spot-check corners, centre
        // and random interior samples with the exact test.
        ASSERT_TRUE(poly.Contains(box.min)) << label << " box " << box;
        ASSERT_TRUE(poly.Contains(box.max)) << label << " box " << box;
        ASSERT_TRUE(poly.Contains(box.Center())) << label << " box " << box;
        for (int s = 0; s < 8; ++s) {
          const Point p{box.min.x + rng->Uniform(0, 1) * box.Width(),
                        box.min.y + rng->Uniform(0, 1) * box.Height()};
          ASSERT_TRUE(poly.Contains(p)) << label << " box " << box;
        }
        break;
      case PreparedArea::Region::kOutside:
        // Definite: box and polygon disjoint.
        ASSERT_FALSE(poly.IntersectsBox(box)) << label << " box " << box;
        break;
      case PreparedArea::Region::kStraddling:
        break;  // Always a safe answer.
    }
  }
}

TEST(PreparedAreaTest, AgreesOnRandomStarPolygons) {
  Rng rng(20260729);
  PolygonSpec spec;
  for (int rep = 0; rep < 1200; ++rep) {
    spec.vertices = 3 + rng.UniformInt(0, 38);
    spec.query_size_fraction = rng.Uniform(0.005, 0.5);
    const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
    const PreparedArea prep(poly);
    ExpectAgreement(poly, prep, &rng, 24, "star");
  }
}

TEST(PreparedAreaTest, AgreesOnAdversarialCombs) {
  // Thin-pronged combs: long point-free corridors, heavily concave, lots
  // of collinear axis-aligned edges with exactly representable on-edge
  // probe points.
  Rng rng(777);
  for (int teeth = 2; teeth <= 24; teeth += 2) {
    const Polygon poly =
        GenerateCombPolygon(Box{{0.125, 0.25}, {0.875, 0.75}}, teeth);
    const PreparedArea prep(poly);
    ExpectAgreement(poly, prep, &rng, 200, "comb");
    ExpectClassifyBoxSound(poly, prep, &rng, "comb");
  }
}

TEST(PreparedAreaTest, AgreesOnAxisAlignedAndCollinear) {
  Rng rng(99);
  // A rectangle with extra collinear vertices along its bottom edge:
  // on-edge probes are exact, and collinear edge chains stress the
  // crossing-parity tie-breaks.
  const Polygon poly({{0.0, 0.0},
                      {0.25, 0.0},
                      {0.5, 0.0},
                      {0.75, 0.0},
                      {1.0, 0.0},
                      {1.0, 0.5},
                      {0.5, 0.5},
                      {0.0, 0.5}});
  const PreparedArea prep(poly);
  ExpectAgreement(poly, prep, &rng, 400, "collinear");
  // Exact boundary lattice points.
  for (double x : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    for (double y : {0.0, 0.25, 0.5}) {
      const Point p{x, y};
      ASSERT_EQ(prep.Contains(p), poly.Contains(p)) << p;
    }
  }
}

TEST(PreparedAreaTest, ClassifyBoxSoundOnRandomPolygons) {
  Rng rng(4242);
  PolygonSpec spec;
  for (int rep = 0; rep < 300; ++rep) {
    spec.vertices = 3 + rng.UniformInt(0, 27);
    spec.query_size_fraction = rng.Uniform(0.01, 0.4);
    const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
    const PreparedArea prep(poly);
    ExpectClassifyBoxSound(poly, prep, &rng, "star");
  }
}

TEST(PreparedAreaTest, GridSideHintsRespected) {
  Rng rng(5);
  PolygonSpec spec;
  const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
  for (int side : {4, 8, 17, 64, 192}) {
    PreparedArea prep;
    prep.Prepare(poly, side);
    EXPECT_EQ(prep.grid_side(), side);
    ExpectAgreement(poly, prep, &rng, 64, "hinted");
  }
  // SuggestGridSide grows with the workload and stays clamped.
  EXPECT_EQ(PreparedArea::SuggestGridSide(10, 0), 0);
  EXPECT_EQ(PreparedArea::SuggestGridSide(10, 1), 8);
  EXPECT_GT(PreparedArea::SuggestGridSide(10, 100000),
            PreparedArea::SuggestGridSide(10, 1000));
  EXPECT_LE(PreparedArea::SuggestGridSide(4096, 1u << 30), 192);
}

TEST(PreparedAreaTest, UnpreparedAndDegenerate) {
  const PreparedArea empty;
  EXPECT_FALSE(empty.prepared());
  EXPECT_FALSE(empty.Contains({0.5, 0.5}));
  EXPECT_FALSE(empty.BoundaryIntersects({{0, 0}, {1, 1}}));
  EXPECT_EQ(empty.ClassifyBox(Box{{0, 0}, {1, 1}}),
            PreparedArea::Region::kOutside);

  // Degenerate sliver: near-zero height, all cells are boundary cells.
  Rng rng(6);
  const Polygon sliver({{0.0, 0.5}, {1.0, 0.5}, {0.5, 0.5 + 1e-13}});
  const PreparedArea prep(sliver);
  ExpectAgreement(sliver, prep, &rng, 200, "sliver");
}

TEST(PreparedAreaTest, ReuseAcrossPolygons) {
  // One PreparedArea instance rebuilt over many polygons (the QueryContext
  // usage pattern) must behave identically to a fresh build.
  Rng rng(11);
  PolygonSpec spec;
  PreparedArea reused;
  for (int rep = 0; rep < 200; ++rep) {
    spec.vertices = 3 + rng.UniformInt(0, 20);
    spec.query_size_fraction = rng.Uniform(0.01, 0.4);
    const Polygon poly = GenerateQueryPolygon(spec, kUnit, &rng);
    reused.Prepare(poly);
    ExpectAgreement(poly, reused, &rng, 16, "reused");
  }
}

}  // namespace
}  // namespace vaq
