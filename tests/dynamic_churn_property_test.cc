// The PR's acceptance property: under a randomized interleaved
// insert/delete/query stream, every dynamic method's result set is
// identical to a from-scratch `PointDatabase` built on the merged live
// point set — before and after compactions, whether threshold-triggered
// or explicit.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/dynamic_area_query.h"
#include "core/dynamic_point_database.h"
#include "workload/churn.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(DynamicChurnPropertyTest, ChurnStreamMatchesRebuildEverywhere) {
  // The full harness: 3000 mixed operations on a 2000-point database,
  // verifying against a from-scratch rebuild every 250 ops. The small
  // compaction threshold forces several threshold-triggered compactions
  // inside the stream, so verification points land on both sides of
  // multiple rebuilds.
  ChurnConfig config;
  config.initial_size = 2000;
  config.operations = 3000;
  config.insert_fraction = 0.40;
  config.erase_fraction = 0.30;
  config.query_size_fraction = 0.06;
  config.seed = 4242;
  config.verify_every = 250;
  config.compact_threshold = 300;
  const ChurnReport report = RunChurnExperiment(config);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_GT(report.compactions, 1u);
  EXPECT_EQ(report.verifications, 12u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.inserts, 0u);
  EXPECT_GT(report.erases, 0u);
}

TEST(DynamicChurnPropertyTest, ExplicitCompactionBoundariesAreSeamless) {
  // Hand-rolled variant pinning the exact moments: compare all four
  // methods against the merged-set rebuild immediately before and
  // immediately after every explicit Compact().
  Rng rng(777);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(1500, kUnit, &rng),
                          options);
  const DynamicAreaQuery methods[] = {
      DynamicAreaQuery(&db, DynamicMethod::kVoronoi),
      DynamicAreaQuery(&db, DynamicMethod::kTraditional),
      DynamicAreaQuery(&db, DynamicMethod::kGridSweep),
      DynamicAreaQuery(&db, DynamicMethod::kBruteForce),
  };
  PolygonSpec spec;
  spec.query_size_fraction = 0.08;

  std::vector<PointId> live;
  db.snapshot()->ForEachLive(
      [&](PointId id, const Point&) { live.push_back(id); });

  QueryContext ctx;
  const auto verify_against_rebuild = [&](const char* when) {
    // Merged live set in stable ids, rebuilt from scratch.
    std::vector<PointId> ids;
    std::vector<Point> pts;
    db.snapshot()->ForEachLive([&](PointId id, const Point& p) {
      ids.push_back(id);
      pts.push_back(p);
    });
    const PointDatabase rebuilt(pts);
    const BruteForceAreaQuery brute(&rebuilt);
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &rng);
    std::vector<PointId> truth;
    for (const PointId internal : brute.Run(area, nullptr)) {
      truth.push_back(ids[rebuilt.OriginalId(internal)]);
    }
    std::sort(truth.begin(), truth.end());
    for (const DynamicAreaQuery& method : methods) {
      EXPECT_EQ(method.Run(area, ctx), truth)
          << when << ", method: " << method.Name();
    }
  };

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 150; ++i) {
      const auto id = db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      if (id.has_value()) live.push_back(*id);
    }
    for (int i = 0; i < 60 && !live.empty(); ++i) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      if (db.Erase(live[at])) {
        live[at] = live.back();
        live.pop_back();
      }
    }
    verify_against_rebuild("before compaction");
    db.Compact();
    verify_against_rebuild("after compaction");
  }
  EXPECT_EQ(db.Compactions(), 3u);
}

}  // namespace
}  // namespace vaq
