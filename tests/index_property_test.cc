// Parameterised property suite run against every SpatialIndex
// implementation: window queries and (k-)NN must agree with brute force on
// several distributions and sizes, and statistics must be monotone.

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "index/rtree.h"
#include "index/spatial_index.h"
#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

enum class IndexKind { kRTree, kKDTree, kQuadtree, kGrid };

std::unique_ptr<SpatialIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kRTree: return std::make_unique<RTree>();
    case IndexKind::kKDTree: return std::make_unique<KDTree>();
    case IndexKind::kQuadtree: return std::make_unique<Quadtree>();
    case IndexKind::kGrid: return std::make_unique<GridIndex>();
  }
  return nullptr;
}

using Param = std::tuple<IndexKind, PointDistribution, std::size_t>;

class IndexPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [kind, distribution, n] = GetParam();
    Rng rng(1234 + n);
    points_ = GeneratePoints(n, Box::FromExtents(0, 0, 1, 1), distribution,
                             &rng);
    index_ = MakeIndex(kind);
    index_->Build(points_);
  }

  std::vector<Point> points_;
  std::unique_ptr<SpatialIndex> index_;
};

TEST_P(IndexPropertyTest, SizeMatches) {
  EXPECT_EQ(index_->size(), points_.size());
}

TEST_P(IndexPropertyTest, WindowQueryMatchesBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int q = 0; q < 25; ++q) {
    const double x0 = dist(rng), y0 = dist(rng);
    const Box window = Box::FromExtents(x0, y0, x0 + dist(rng) * 0.4,
                                        y0 + dist(rng) * 0.4);
    std::vector<PointId> got;
    index_->WindowQuery(window, &got);
    std::sort(got.begin(), got.end());
    std::vector<PointId> expect;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (window.Contains(points_[i])) {
        expect.push_back(static_cast<PointId>(i));
      }
    }
    ASSERT_EQ(got, expect) << index_->Name() << " window " << window;
  }
}

TEST_P(IndexPropertyTest, WholeDomainWindowReturnsEverything) {
  std::vector<PointId> got;
  index_->WindowQuery(Box::FromExtents(-1, -1, 2, 2), &got);
  EXPECT_EQ(got.size(), points_.size());
}

TEST_P(IndexPropertyTest, EmptyWindowReturnsNothing) {
  std::vector<PointId> got;
  index_->WindowQuery(Box::FromExtents(2, 2, 3, 3), &got);
  EXPECT_TRUE(got.empty());
}

TEST_P(IndexPropertyTest, NearestNeighborMatchesBruteForce) {
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> dist(-0.3, 1.3);
  for (int q = 0; q < 50; ++q) {
    const Point query{dist(rng), dist(rng)};
    const PointId got = index_->NearestNeighbor(query);
    ASSERT_NE(got, kInvalidPointId);
    double best = 1e300;
    for (const Point& p : points_) {
      best = std::min(best, SquaredDistance(p, query));
    }
    // Compare distances (ids may tie).
    EXPECT_DOUBLE_EQ(SquaredDistance(points_[got], query), best)
        << index_->Name();
  }
}

TEST_P(IndexPropertyTest, KnnSortedAndConsistentWithBruteForce) {
  const Point query{0.31, 0.77};
  const std::size_t k = std::min<std::size_t>(20, points_.size());
  std::vector<PointId> got;
  index_->KNearestNeighbors(query, k, &got);
  ASSERT_EQ(got.size(), k);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(SquaredDistance(points_[got[i - 1]], query),
              SquaredDistance(points_[got[i]], query));
  }
  // The k-th distance must equal the brute-force k-th distance.
  std::vector<double> dists;
  dists.reserve(points_.size());
  for (const Point& p : points_) dists.push_back(SquaredDistance(p, query));
  std::sort(dists.begin(), dists.end());
  EXPECT_DOUBLE_EQ(SquaredDistance(points_[got.back()], query), dists[k - 1]);
}

TEST_P(IndexPropertyTest, StatsAccumulatePerCall) {
  // IO counters are caller-owned: a passed IndexStats accumulates across
  // calls, a null one means no accounting at all.
  IndexStats stats;
  std::vector<PointId> got;
  index_->WindowQuery(Box::FromExtents(0.2, 0.2, 0.8, 0.8), &got, &stats);
  const std::uint64_t after_one = stats.node_accesses;
  EXPECT_GT(after_one, 0u);
  EXPECT_EQ(stats.entries_reported, got.size());
  got.clear();
  index_->WindowQuery(Box::FromExtents(0.2, 0.2, 0.8, 0.8), &got, &stats);
  EXPECT_GT(stats.node_accesses, after_one);
  stats.Reset();
  EXPECT_EQ(stats.node_accesses, 0u);
  got.clear();
  // Null stats means no accounting — the query must still work.
  index_->WindowQuery(Box::FromExtents(-1.0, -1.0, 2.0, 2.0), &got);
  EXPECT_EQ(got.size(), index_->size());
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto [kind, distribution, n] = info.param;
  std::string name;
  switch (kind) {
    case IndexKind::kRTree: name = "rtree"; break;
    case IndexKind::kKDTree: name = "kdtree"; break;
    case IndexKind::kQuadtree: name = "quadtree"; break;
    case IndexKind::kGrid: name = "grid"; break;
  }
  name += std::string("_") + PointDistributionName(distribution);
  name += "_n" + std::to_string(n);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexPropertyTest,
    ::testing::Combine(
        ::testing::Values(IndexKind::kRTree, IndexKind::kKDTree,
                          IndexKind::kQuadtree, IndexKind::kGrid),
        ::testing::Values(PointDistribution::kUniform,
                          PointDistribution::kClustered,
                          PointDistribution::kGrid),
        ::testing::Values<std::size_t>(1, 17, 500, 4000)),
    ParamName);

}  // namespace
}  // namespace vaq
