#include "workload/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, BinaryRoundTripExact) {
  Rng rng(1);
  const auto points =
      GenerateUniformPoints(1234, Box::FromExtents(0, 0, 1, 1), &rng);
  const std::string path = TempPath("points.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, points));
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsBinary(path, &loaded));
  EXPECT_EQ(loaded, points);  // Bit-exact.
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryEmptyDataset) {
  const std::string path = TempPath("empty.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, {}));
  std::vector<Point> loaded{{1, 2}};
  ASSERT_TRUE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("bad.vaqp");
  std::ofstream(path) << "not a vaq file at all";
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsTruncated) {
  Rng rng(2);
  const auto points =
      GenerateUniformPoints(100, Box::FromExtents(0, 0, 1, 1), &rng);
  const std::string path = TempPath("trunc.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, points));
  // Truncate the file.
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.seekp(100);
  out.close();
  std::ifstream check(path, std::ios::binary | std::ios::ate);
  // (seekp alone does not truncate; rewrite a short prefix instead.)
  std::ofstream shorter(path, std::ios::binary | std::ios::trunc);
  shorter.write("VAQP", 4);
  const std::uint64_t claimed = 100;
  shorter.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
  shorter << "only a few bytes";
  shorter.close();
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(TempPath("does_not_exist.vaqp"), &loaded));
  EXPECT_FALSE(LoadPointsCsv(TempPath("does_not_exist.csv"), &loaded));
}

TEST(DatasetIoTest, CsvRoundTrip) {
  Rng rng(3);
  const auto points =
      GenerateUniformPoints(321, Box::FromExtents(-5, -5, 5, 5), &rng);
  const std::string path = TempPath("points.csv");
  ASSERT_TRUE(SavePointsCsv(path, points));
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), points.size());
  // 17 significant digits round-trip doubles exactly.
  EXPECT_EQ(loaded, points);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvSkipsCommentsAndRejectsGarbage) {
  const std::string path = TempPath("mixed.csv");
  std::ofstream(path) << "# header\n1.5,2.5\n# middle comment\n3.0,4.0\n";
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  EXPECT_EQ(loaded,
            (std::vector<Point>{{1.5, 2.5}, {3.0, 4.0}}));

  std::ofstream(path) << "1.5,2.5\nnot,a point,\n";
  EXPECT_FALSE(LoadPointsCsv(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, PolygonRoundTrip) {
  const Polygon poly({{0, 0}, {2, 0}, {2, 1}, {0.5, 0.5}});
  const std::string path = TempPath("poly.csv");
  ASSERT_TRUE(SavePolygonCsv(path, poly));
  Polygon loaded;
  ASSERT_TRUE(LoadPolygonCsv(path, &loaded));
  EXPECT_EQ(loaded.vertices(), poly.vertices());
  EXPECT_DOUBLE_EQ(loaded.Area(), poly.Area());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, PolygonNeedsThreeVertices) {
  const std::string path = TempPath("degenerate.csv");
  std::ofstream(path) << "0,0\n1,1\n";
  Polygon loaded;
  EXPECT_FALSE(LoadPolygonCsv(path, &loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vaq
