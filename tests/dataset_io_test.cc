#include "workload/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, BinaryRoundTripExact) {
  Rng rng(1);
  const auto points =
      GenerateUniformPoints(1234, Box::FromExtents(0, 0, 1, 1), &rng);
  const std::string path = TempPath("points.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, points));
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsBinary(path, &loaded));
  EXPECT_EQ(loaded, points);  // Bit-exact.
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryEmptyDataset) {
  const std::string path = TempPath("empty.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, {}));
  std::vector<Point> loaded{{1, 2}};
  ASSERT_TRUE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("bad.vaqp");
  std::ofstream(path) << "not a vaq file at all";
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsTruncated) {
  Rng rng(2);
  const auto points =
      GenerateUniformPoints(100, Box::FromExtents(0, 0, 1, 1), &rng);
  const std::string path = TempPath("trunc.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, points));
  // Truncate the file.
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.seekp(100);
  out.close();
  std::ifstream check(path, std::ios::binary | std::ios::ate);
  // (seekp alone does not truncate; rewrite a short prefix instead.)
  std::ofstream shorter(path, std::ios::binary | std::ios::trunc);
  shorter.write("VAQP", 4);
  const std::uint64_t claimed = 100;
  shorter.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
  shorter << "only a few bytes";
  shorter.close();
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(TempPath("does_not_exist.vaqp"), &loaded));
  EXPECT_FALSE(LoadPointsCsv(TempPath("does_not_exist.csv"), &loaded));
}

TEST(DatasetIoTest, CsvRoundTrip) {
  Rng rng(3);
  const auto points =
      GenerateUniformPoints(321, Box::FromExtents(-5, -5, 5, 5), &rng);
  const std::string path = TempPath("points.csv");
  ASSERT_TRUE(SavePointsCsv(path, points));
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), points.size());
  // 17 significant digits round-trip doubles exactly.
  EXPECT_EQ(loaded, points);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvSkipsCommentsAndRejectsGarbage) {
  const std::string path = TempPath("mixed.csv");
  std::ofstream(path) << "# header\n1.5,2.5\n# middle comment\n3.0,4.0\n";
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  EXPECT_EQ(loaded,
            (std::vector<Point>{{1.5, 2.5}, {3.0, 4.0}}));

  std::ofstream(path) << "1.5,2.5\nnot,a point,\n";
  EXPECT_FALSE(LoadPointsCsv(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, PolygonRoundTrip) {
  const Polygon poly({{0, 0}, {2, 0}, {2, 1}, {0.5, 0.5}});
  const std::string path = TempPath("poly.csv");
  ASSERT_TRUE(SavePolygonCsv(path, poly));
  Polygon loaded;
  ASSERT_TRUE(LoadPolygonCsv(path, &loaded));
  EXPECT_EQ(loaded.vertices(), poly.vertices());
  EXPECT_DOUBLE_EQ(loaded.Area(), poly.Area());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, PolygonNeedsThreeVertices) {
  const std::string path = TempPath("degenerate.csv");
  std::ofstream(path) << "0,0\n1,1\n";
  Polygon loaded;
  EXPECT_FALSE(LoadPolygonCsv(path, &loaded));
  std::remove(path.c_str());
}

// -- Input-boundary hardening corpus ----------------------------------------
//
// The loaders face untrusted files; every row here used to (or could)
// slip through the parser and either load a corrupted point or demand an
// absurd allocation. See ParseCsvPoint / LoadPointsBinary.

TEST(DatasetIoTest, CsvRejectsTrailingGarbageOnEitherField) {
  const std::string path = TempPath("trailing.csv");
  std::vector<Point> loaded;
  for (const char* row :
       {"1.0,2.0garbage", "1.0garbage,2.0", "1.0,2.0 junk", "1.0,2.0e",
        "0x,1.0"}) {
    std::ofstream(path) << row << "\n";
    EXPECT_FALSE(LoadPointsCsv(path, &loaded)) << "row: " << row;
    EXPECT_TRUE(loaded.empty()) << "row: " << row;
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvRejectsExtraColumns) {
  const std::string path = TempPath("columns.csv");
  std::ofstream(path) << "1.0,2.0,3.0\n";
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsCsv(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvRejectsEmptyFields) {
  const std::string path = TempPath("emptyfield.csv");
  std::vector<Point> loaded;
  for (const char* row : {"1.0,", ",2.0", ","}) {
    std::ofstream(path) << row << "\n";
    EXPECT_FALSE(LoadPointsCsv(path, &loaded)) << "row: " << row;
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvAcceptsSurroundingWhitespaceAndCrlf) {
  // stod skips leading whitespace and the trailing check tolerates it —
  // including the '\r' a Windows-written file leaves on every line.
  const std::string path = TempPath("whitespace.csv");
  std::ofstream(path) << " 1.5 , 2.5 \n3.0,4.0\r\n";
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  EXPECT_EQ(loaded, (std::vector<Point>{{1.5, 2.5}, {3.0, 4.0}}));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvRejectsNonFiniteCoordinates) {
  // stod accepts "nan"/"inf" spellings, but non-finite coordinates poison
  // every geometric structure downstream (a NaN point once segfaulted the
  // CLI through the Delaunay build) — the parse boundary rejects them.
  const std::string path = TempPath("nonfinite.csv");
  std::vector<Point> loaded;
  for (const char* row : {"nan,0.5", "0.5,nan", "inf,0.5", "0.5,-inf",
                          "NAN,0.5", "0.5,Infinity"}) {
    std::ofstream(path) << row << "\n";
    EXPECT_FALSE(LoadPointsCsv(path, &loaded)) << "row: " << row;
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsNonFinitePayload) {
  const std::string path = TempPath("nonfinite.vaqp");
  std::ofstream out(path, std::ios::binary);
  out.write("VAQP", 4);
  const std::uint64_t count = 2;
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const double payload[4] = {0.25, 0.75,
                             std::numeric_limits<double>::quiet_NaN(), 0.5};
  out.write(reinterpret_cast<const char*>(payload), sizeof(payload));
  out.close();
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvScientificNotationStillParses) {
  const std::string path = TempPath("sci.csv");
  std::ofstream(path) << "1.5e-3,-2.5E+2\n";
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  EXPECT_EQ(loaded, (std::vector<Point>{{1.5e-3, -2.5e+2}}));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsHugeCountHeaderWithoutAllocating) {
  // A corrupt header claiming ~1e18 points must fail on the payload-size
  // bound, not reach the reserve and OOM. The allocation-free rejection is
  // what the ASan CI job guards.
  const std::string path = TempPath("huge_count.vaqp");
  std::ofstream out(path, std::ios::binary);
  out.write("VAQP", 4);
  const std::uint64_t absurd = std::uint64_t{1} << 60;
  out.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  const double payload[2] = {1.0, 2.0};
  out.write(reinterpret_cast<const char*>(payload), sizeof(payload));
  out.close();
  std::vector<Point> loaded;
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  EXPECT_LT(loaded.capacity(), std::size_t{1} << 20);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRejectsCountBeyondPayload) {
  // A count one past the actual payload must fail, and an exact count must
  // keep passing — the bound is tight.
  Rng rng(9);
  const auto points =
      GenerateUniformPoints(16, Box::FromExtents(0, 0, 1, 1), &rng);
  const std::string path = TempPath("overcount.vaqp");
  ASSERT_TRUE(SavePointsBinary(path, points));
  std::vector<Point> loaded;
  ASSERT_TRUE(LoadPointsBinary(path, &loaded));
  EXPECT_EQ(loaded, points);
  // Patch the count header (offset 4) to claim one extra point.
  std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
  const std::uint64_t inflated = points.size() + 1;
  patch.seekp(4);
  patch.write(reinterpret_cast<const char*>(&inflated), sizeof(inflated));
  patch.close();
  EXPECT_FALSE(LoadPointsBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vaq
