#include "geometry/point.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(PointTest, DefaultIsOrigin) {
  const Point p;
  EXPECT_EQ(p.x, 0.0);
  EXPECT_EQ(p.y, 0.0);
}

TEST(PointTest, VectorArithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -4.0};
  EXPECT_EQ(a + b, Point(4.0, -2.0));
  EXPECT_EQ(a - b, Point(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Point(1.5, -2.0));
}

TEST(PointTest, DotAndCross) {
  const Point a{1.0, 2.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 11.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -2.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), 2.0);  // Antisymmetric.
}

TEST(PointTest, NormAndDistance) {
  const Point a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, a), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
}

TEST(PointTest, MidpointIsHalfway) {
  EXPECT_EQ(Midpoint({0, 0}, {2, 4}), Point(1.0, 2.0));
  EXPECT_EQ(Midpoint({-1, -1}, {1, 1}), Point(0.0, 0.0));
}

TEST(PointTest, LexicographicOrder) {
  EXPECT_LT(Point(0, 5), Point(1, 0));
  EXPECT_LT(Point(1, 0), Point(1, 5));
  EXPECT_FALSE(Point(1, 5) < Point(1, 5));
}

TEST(PointTest, EqualityIsExact) {
  EXPECT_EQ(Point(0.1, 0.2), Point(0.1, 0.2));
  EXPECT_NE(Point(0.1, 0.2), Point(0.1, 0.2 + 1e-15));
}

TEST(PointTest, StreamOutput) {
  std::ostringstream os;
  os << Point{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(PointTest, HashDistinguishesPoints) {
  std::unordered_set<Point, PointHash> set;
  set.insert({0, 0});
  set.insert({0, 1});
  set.insert({1, 0});
  set.insert({0, 0});  // Duplicate.
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace vaq
