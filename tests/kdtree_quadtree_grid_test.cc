// Implementation-specific tests for the non-R-tree indexes (shared
// behavioural properties live in index_property_test.cc).

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "index/grid_index.h"
#include "index/kdtree.h"
#include "index/quadtree.h"

namespace vaq {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back({dist(rng), dist(rng)});
  return points;
}

// --- KDTree ---

TEST(KDTreeTest, EmptyTree) {
  KDTree tree;
  tree.Build({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.NearestNeighbor({0, 0}), kInvalidPointId);
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
}

TEST(KDTreeTest, SinglePoint) {
  KDTree tree;
  tree.Build({{0.3, 0.7}});
  EXPECT_EQ(tree.NearestNeighbor({0, 0}), 0u);
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(0, 0.5, 0.5, 1), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(KDTreeTest, LeafSizeOneStillCorrect) {
  KDTree tree(/*leaf_size=*/1);
  const auto points = RandomPoints(513, 21);
  tree.Build(points);
  const Point q{0.4, 0.6};
  const PointId got = tree.NearestNeighbor(q);
  double best = 1e300;
  for (const Point& p : points) best = std::min(best, SquaredDistance(p, q));
  EXPECT_DOUBLE_EQ(SquaredDistance(points[got], q), best);
}

TEST(KDTreeTest, RebuildReplacesContent) {
  KDTree tree;
  tree.Build(RandomPoints(100, 22));
  tree.Build(RandomPoints(7, 23));
  EXPECT_EQ(tree.size(), 7u);
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(-1, -1, 2, 2), &out);
  EXPECT_EQ(out.size(), 7u);
}

TEST(KDTreeTest, CollinearInputHandled) {
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) points.push_back({i * 0.005, 0.5});
  KDTree tree;
  tree.Build(points);
  EXPECT_EQ(tree.NearestNeighbor({0.5024, 0.5}), 100u);
}

// --- Quadtree ---

TEST(QuadtreeTest, SplitsBeyondBucketCapacity) {
  Quadtree tree(/*bucket_capacity=*/4);
  tree.Build(RandomPoints(1000, 24));
  EXPECT_EQ(tree.size(), 1000u);
}

TEST(QuadtreeTest, DeepDuplicatesCappedByMaxDepth) {
  // 100 points in a tiny cluster force max-depth overflow buckets.
  std::vector<Point> points;
  std::mt19937_64 rng(25);
  std::uniform_real_distribution<double> dist(0.5, 0.5 + 1e-12);
  for (int i = 0; i < 100; ++i) points.push_back({dist(rng), dist(rng)});
  points.push_back({0.1, 0.1});
  Quadtree tree(/*bucket_capacity=*/4, /*max_depth=*/8);
  tree.Build(points);
  EXPECT_EQ(tree.size(), points.size());
  std::vector<PointId> out;
  tree.WindowQuery(Box::FromExtents(0.4, 0.4, 0.6, 0.6), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(QuadtreeTest, DynamicInsertAfterBuild) {
  Quadtree tree;
  tree.Build(RandomPoints(50, 26), Box::FromExtents(0, 0, 1, 1));
  tree.Insert({0.123, 0.456}, 50);
  EXPECT_EQ(tree.size(), 51u);
  std::vector<PointId> out;
  tree.WindowQuery(Box(Point{0.123, 0.456}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 50u);
}

// --- GridIndex ---

TEST(GridIndexTest, SinglePointAndEmpty) {
  GridIndex grid;
  grid.Build({});
  EXPECT_EQ(grid.NearestNeighbor({0.5, 0.5}), kInvalidPointId);
  grid.Build({{0.5, 0.5}});
  EXPECT_EQ(grid.NearestNeighbor({0.9, 0.9}), 0u);
}

TEST(GridIndexTest, QueryOutsideWorldBox) {
  GridIndex grid;
  grid.Build(RandomPoints(100, 27));
  std::vector<PointId> out;
  grid.WindowQuery(Box::FromExtents(5, 5, 6, 6), &out);
  EXPECT_TRUE(out.empty());
  // NN from far outside still works.
  EXPECT_NE(grid.NearestNeighbor({10, 10}), kInvalidPointId);
}

TEST(GridIndexTest, DegenerateAllPointsOneSpot) {
  std::vector<Point> points;
  for (int i = 0; i < 64; ++i) points.push_back({0.5, 0.5 + i * 1e-15});
  GridIndex grid;
  grid.Build(points);
  std::vector<PointId> out;
  grid.WindowQuery(Box::FromExtents(0.4, 0.4, 0.6, 0.6), &out);
  EXPECT_EQ(out.size(), 64u);
}

}  // namespace
}  // namespace vaq
