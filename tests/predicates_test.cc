#include "geometry/predicates.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(Orient2DTest, BasicTurns) {
  EXPECT_GT(Orient2D({0, 0}, {1, 0}, {0, 1}), 0.0);  // Left turn.
  EXPECT_LT(Orient2D({0, 0}, {0, 1}, {1, 0}), 0.0);  // Right turn.
  EXPECT_EQ(Orient2D({0, 0}, {1, 1}, {2, 2}), 0.0);  // Collinear.
}

TEST(Orient2DTest, SignHelper) {
  EXPECT_EQ(Orient2DSign({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(Orient2DSign({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(Orient2DSign({0, 0}, {1, 0}, {2, 0}), 0);
}

TEST(Orient2DTest, MagnitudeIsTwiceArea) {
  // Right triangle with legs 3 and 4: area 6, determinant 12.
  EXPECT_DOUBLE_EQ(Orient2D({0, 0}, {3, 0}, {0, 4}), 12.0);
}

TEST(Orient2DTest, NearlyCollinearDecidedExactly) {
  // Classic adversarial case: points on a line y = x with one nudged by
  // the smallest representable amount. Naive double evaluation returns 0
  // or a wrong sign for many such inputs; the exact fallback must not.
  const Point a{0.5, 0.5};
  const Point b{12.0, 12.0};
  const Point c{24.0, 24.0 + std::ldexp(1.0, -44)};
  EXPECT_EQ(Orient2DSign(a, b, c), 1);
  const Point c2{24.0, 24.0 - std::ldexp(1.0, -44)};
  EXPECT_EQ(Orient2DSign(a, b, c2), -1);
  EXPECT_EQ(Orient2DSign(a, b, {24.0, 24.0}), 0);
}

TEST(Orient2DTest, AgreesWithExactOnRandomNearDegenerate) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::uniform_real_distribution<double> eps(-1e-14, 1e-14);
  for (int i = 0; i < 2000; ++i) {
    const Point a{dist(rng), dist(rng)};
    const Point b{dist(rng), dist(rng)};
    // c near the line through a and b.
    const double t = dist(rng) * 2.0;
    const Point c{a.x + t * (b.x - a.x) + eps(rng),
                  a.y + t * (b.y - a.y) + eps(rng)};
    const double exact = predicates_internal::Orient2DExact(a, b, c);
    const double filtered = Orient2D(a, b, c);
    const auto sgn = [](double v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); };
    EXPECT_EQ(sgn(filtered), sgn(exact));
  }
}

TEST(Orient2DTest, AntisymmetryUnderSwap) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  for (int i = 0; i < 500; ++i) {
    const Point a{dist(rng), dist(rng)};
    const Point b{dist(rng), dist(rng)};
    const Point c{dist(rng), dist(rng)};
    EXPECT_EQ(Orient2DSign(a, b, c), -Orient2DSign(b, a, c));
    EXPECT_EQ(Orient2DSign(a, b, c), Orient2DSign(b, c, a));  // Cyclic.
  }
}

TEST(InCircleTest, UnitCircleBasics) {
  // CCW unit circle through (1,0), (0,1), (-1,0).
  const Point a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_GT(InCircle(a, b, c, {0, 0}), 0.0);        // Centre inside.
  EXPECT_LT(InCircle(a, b, c, {2, 0}), 0.0);        // Outside.
  EXPECT_EQ(InCircleSign(a, b, c, {0, -1}), 0);     // On the circle.
}

TEST(InCircleTest, OrientationFlipsSign) {
  const Point a{1, 0}, b{0, 1}, c{-1, 0};
  const Point inside{0.1, 0.1};
  EXPECT_GT(InCircle(a, b, c, inside), 0.0);
  EXPECT_LT(InCircle(c, b, a, inside), 0.0);  // CW triangle flips.
}

TEST(InCircleTest, CocircularExactlyZero) {
  // Four points of a circle centred at (0.5, 0.5) with radius 0.5 whose
  // coordinates are exactly representable.
  const Point a{0.5, 0.0}, b{1.0, 0.5}, c{0.5, 1.0}, d{0.0, 0.5};
  EXPECT_EQ(InCircleSign(a, b, c, d), 0);
}

TEST(InCircleTest, NearCocircularDecidedExactly) {
  const double ulp = std::ldexp(1.0, -50);
  const Point a{0.5, 0.0}, b{1.0, 0.5}, c{0.5, 1.0};
  EXPECT_GT(InCircle(a, b, c, {0.0 + ulp, 0.5}), 0.0);  // Nudged inward.
  EXPECT_LT(InCircle(a, b, c, {0.0 - ulp, 0.5}), 0.0);  // Nudged outward.
}

TEST(InCircleTest, AgreesWithExactOnRandomNearDegenerate) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::uniform_real_distribution<double> eps(-1e-13, 1e-13);
  int exact_cases = 0;
  for (int i = 0; i < 1000; ++i) {
    // Random circle; d placed near it.
    const Point centre{dist(rng), dist(rng)};
    const double r = 0.1 + dist(rng);
    auto on_circle = [&](double angle) {
      return Point{centre.x + r * std::cos(angle),
                   centre.y + r * std::sin(angle)};
    };
    const Point a = on_circle(0.3);
    const Point b = on_circle(2.1);
    const Point c = on_circle(4.4);
    const Point d = on_circle(5.2 + eps(rng));
    if (Orient2DSign(a, b, c) == 0) continue;
    const double exact = predicates_internal::InCircleExact(a, b, c, d);
    const double filtered = InCircle(a, b, c, d);
    const auto sgn = [](double v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); };
    EXPECT_EQ(sgn(filtered), sgn(exact));
    if (std::fabs(exact) < 1e-20) ++exact_cases;
  }
  (void)exact_cases;
}

TEST(CircumcenterTest, EquidistantFromVertices) {
  const Point a{0, 0}, b{4, 0}, c{1, 3};
  const Point cc = Circumcenter(a, b, c);
  const double da = Distance(cc, a);
  EXPECT_NEAR(Distance(cc, b), da, 1e-12);
  EXPECT_NEAR(Distance(cc, c), da, 1e-12);
}

TEST(CircumcenterTest, RightTriangleCentreOnHypotenuse) {
  const Point cc = Circumcenter({0, 0}, {2, 0}, {0, 2});
  EXPECT_NEAR(cc.x, 1.0, 1e-12);
  EXPECT_NEAR(cc.y, 1.0, 1e-12);
}

}  // namespace
}  // namespace vaq
