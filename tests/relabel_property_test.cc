// Property tests for the Hilbert-clustered storage layer: relabelling the
// points at construction must be invisible to every query method. The same
// point set presented in different input orders must produce the same
// *coordinate sets* from all four methods (internal ids differ only by the
// permutation), and the original↔internal id mappings must round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>
#include <vector>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "delaunay/hilbert.h"
#include "index/rtree.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit{{0.0, 0.0}, {1.0, 1.0}};

using CoordSet = std::set<std::pair<double, double>>;

CoordSet ResultCoords(const PointDatabase& db,
                      const std::vector<PointId>& ids) {
  CoordSet coords;
  for (const PointId id : ids) {
    coords.insert({db.points()[id].x, db.points()[id].y});
  }
  return coords;
}

TEST(RelabelPropertyTest, MappingsRoundTripAndOrderIsHilbert) {
  Rng rng(71);
  const auto input = GenerateUniformPoints(1500, kUnit, &rng);
  PointDatabase db(input);
  ASSERT_EQ(db.size(), input.size());
  // internal -> original -> internal is the identity, and the stored
  // geometry of an internal id is the input point at its original slot.
  for (PointId id = 0; id < db.size(); ++id) {
    const PointId original = db.OriginalId(id);
    EXPECT_EQ(db.InternalId(original), id);
    EXPECT_EQ(db.points()[id], input[original]);
    EXPECT_EQ(db.xs()[id], input[original].x);
    EXPECT_EQ(db.ys()[id], input[original].y);
  }
  // original_ids() is exactly the permutation.
  std::vector<PointId> perm = db.original_ids();
  std::sort(perm.begin(), perm.end());
  for (PointId i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(RelabelPropertyTest, ShuffledInputOrdersGiveIdenticalResultSets) {
  Rng rng(72);
  const auto base_points = GenerateUniformPoints(2500, kUnit, &rng);

  Rng qrng(73);
  PolygonSpec spec;
  std::vector<Polygon> areas;
  for (const double qs : {0.02, 0.15}) {
    spec.query_size_fraction = qs;
    for (int rep = 0; rep < 3; ++rep) {
      areas.push_back(GenerateQueryPolygon(spec, kUnit, &qrng));
    }
  }

  // Reference answers from the original input order.
  PointDatabase reference(base_points);
  std::vector<CoordSet> expected;
  for (const Polygon& area : areas) {
    expected.push_back(ResultCoords(
        reference, BruteForceAreaQuery(&reference).Run(area, nullptr)));
  }

  std::mt19937 shuffle_rng(7);
  for (int shuffle = 0; shuffle < 3; ++shuffle) {
    std::vector<Point> points = base_points;
    std::shuffle(points.begin(), points.end(), shuffle_rng);
    PointDatabase db(points);
    const BruteForceAreaQuery brute(&db);
    const TraditionalAreaQuery trad(&db);
    const VoronoiAreaQuery voronoi(&db);
    const GridSweepAreaQuery sweep(&db);
    for (std::size_t a = 0; a < areas.size(); ++a) {
      const auto truth = brute.Run(areas[a], nullptr);
      EXPECT_EQ(ResultCoords(db, truth), expected[a])
          << "shuffle " << shuffle << " area " << a;
      // All four methods agree on the id set within this database...
      EXPECT_EQ(trad.Run(areas[a], nullptr), truth);
      EXPECT_EQ(voronoi.Run(areas[a], nullptr), truth);
      EXPECT_EQ(sweep.Run(areas[a], nullptr), truth);
      // ...and the ids map back to original input positions that hold the
      // same coordinates.
      for (const PointId id : truth) {
        EXPECT_EQ(points[db.OriginalId(id)], db.points()[id]);
      }
    }
  }
}

TEST(RelabelPropertyTest, ClusteredBuildMatchesStrBuild) {
  // The Hilbert-packed R-tree bulk load must answer every query exactly
  // like the STR load and keep the structural invariants.
  Rng rng(74);
  const auto points = GenerateUniformPoints(3000, kUnit, &rng);
  const auto order = HilbertOrder(points);
  std::vector<Point> clustered;
  clustered.reserve(points.size());
  for (const auto i : order) clustered.push_back(points[i]);

  RTree str(8, 3);
  str.Build(clustered);
  RTree packed(8, 3);
  packed.BuildClustered(clustered);
  std::string why;
  EXPECT_TRUE(packed.CheckInvariants(&why)) << why;
  EXPECT_EQ(packed.size(), clustered.size());

  Rng qrng(75);
  for (int rep = 0; rep < 20; ++rep) {
    const double x = qrng.Uniform(0.0, 0.8);
    const double y = qrng.Uniform(0.0, 0.8);
    const Box window = Box::FromExtents(x, y, x + 0.2, y + 0.2);
    std::vector<PointId> got_str, got_packed;
    str.WindowQuery(window, &got_str);
    packed.WindowQuery(window, &got_packed);
    std::sort(got_str.begin(), got_str.end());
    std::sort(got_packed.begin(), got_packed.end());
    EXPECT_EQ(got_packed, got_str);

    const Point q{qrng.Uniform(0.0, 1.0), qrng.Uniform(0.0, 1.0)};
    const PointId nn_str = str.NearestNeighbor(q);
    const PointId nn_packed = packed.NearestNeighbor(q);
    EXPECT_EQ(SquaredDistance(clustered[nn_packed], q),
              SquaredDistance(clustered[nn_str], q));
  }
}

TEST(RelabelPropertyTest, EmptyAndSingletonDatabases) {
  PointDatabase empty(std::vector<Point>{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.original_ids().empty());

  PointDatabase one(std::vector<Point>{{0.25, 0.75}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.OriginalId(0), 0u);
  EXPECT_EQ(one.InternalId(0), 0u);
  EXPECT_EQ(one.points()[0], (Point{0.25, 0.75}));
}

TEST(RelabelPropertyTest, BatchedFetchMatchesScalarFetchAndCharges) {
  Rng rng(76);
  PointDatabase db(GenerateUniformPoints(300, kUnit, &rng));
  std::vector<PointId> ids(db.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::mt19937 g(3);
  std::shuffle(ids.begin(), ids.end(), g);

  QueryStats batch_stats;
  std::vector<double> xs(ids.size()), ys(ids.size());
  db.FetchPoints(ids.data(), ids.size(), xs.data(), ys.data(), &batch_stats);
  EXPECT_EQ(batch_stats.geometry_loads, ids.size());

  QueryStats scalar_stats;
  for (std::size_t j = 0; j < ids.size(); ++j) {
    const Point& p = db.FetchPoint(ids[j], &scalar_stats);
    EXPECT_EQ(xs[j], p.x);
    EXPECT_EQ(ys[j], p.y);
  }
  EXPECT_EQ(scalar_stats.geometry_loads, batch_stats.geometry_loads);

  QueryStats charge_stats;
  db.ChargeFetches(17, &charge_stats);
  EXPECT_EQ(charge_stats.geometry_loads, 17u);
}

}  // namespace
}  // namespace vaq
