#include "geometry/clip.h"

#include <gtest/gtest.h>

namespace vaq {
namespace {

double RingArea(const std::vector<Point>& ring) {
  double twice = 0.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    twice += ring[i].Cross(ring[(i + 1) % ring.size()]);
  }
  return twice * 0.5;
}

TEST(ClipTest, FullyInsideUnchanged) {
  const std::vector<Point> ring{{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0, 0, 1, 1));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_NEAR(RingArea(out), RingArea(ring), 1e-12);
}

TEST(ClipTest, FullyOutsideEmpty) {
  const std::vector<Point> ring{{2, 2}, {3, 2}, {2.5, 3}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0, 0, 1, 1));
  EXPECT_TRUE(out.empty());
}

TEST(ClipTest, HalfOverlapSquare) {
  // Unit square clipped to its right half.
  const std::vector<Point> ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0.5, 0, 2, 1));
  EXPECT_NEAR(RingArea(out), 0.5, 1e-12);
}

TEST(ClipTest, TriangleCornerCut) {
  // A big triangle clipped to the unit box: the result is the box corner
  // region under the hypotenuse.
  const std::vector<Point> ring{{0, 0}, {2, 0}, {0, 2}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0, 0, 1, 1));
  // Area = 1 - 0.5*(overhang): triangle x+y<=2 within unit box covers
  // the whole box except nothing: every (x,y) in [0,1]^2 has x+y<=2.
  EXPECT_NEAR(RingArea(out), 1.0, 1e-12);
}

TEST(ClipTest, BoxLargerThanRingIdentity) {
  const std::vector<Point> ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(-10, -10, 10, 10));
  EXPECT_NEAR(RingArea(out), 16.0, 1e-12);
}

TEST(ClipTest, ClipToContainedBoxYieldsBox) {
  // Huge triangle covering the clip box entirely.
  const std::vector<Point> ring{{-100, -100}, {100, -100}, {0, 100}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0, 0, 1, 1));
  EXPECT_NEAR(RingArea(out), 1.0, 1e-12);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ClipTest, EmptyInput) {
  EXPECT_TRUE(
      ClipRingToBox({}, Box::FromExtents(0, 0, 1, 1)).empty());
}

TEST(ClipTest, PreservesCcwOrientation) {
  const std::vector<Point> ring{{-1, -1}, {2, -1}, {2, 2}, {-1, 2}};
  const auto out = ClipRingToBox(ring, Box::FromExtents(0, 0, 1, 1));
  EXPECT_GT(RingArea(out), 0.0);  // Still CCW.
  EXPECT_NEAR(RingArea(out), 1.0, 1e-12);
}

}  // namespace
}  // namespace vaq
