// Correctness of the snapshot-keyed result cache under churn: the cache
// may only ever return what a fresh execution against the same pinned
// snapshot would return, across arbitrary Insert / Erase / Compact
// interleavings. Every cached answer is compared bit-for-bit against an
// uncached run of the same planned path AND against brute force over the
// live set — the differential the bench gates in CI, here exercised with
// randomized schedules (and concurrently, for the TSan leg).

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_point_database.h"
#include "planner/planned_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

std::vector<PointId> LiveBruteForce(const DynamicPointDatabase& db,
                                    const Polygon& area) {
  std::vector<PointId> expected;
  db.snapshot()->ForEachLive([&](PointId id, const Point& p) {
    if (area.Contains(p)) expected.push_back(id);
  });
  std::sort(expected.begin(), expected.end());
  return expected;
}

std::vector<Polygon> FixedAreas(std::uint64_t seed, int count,
                                double size) {
  Rng rng(seed);
  PolygonSpec spec;
  spec.query_size_fraction = size;
  std::vector<Polygon> areas;
  for (int i = 0; i < count; ++i) {
    areas.push_back(GenerateQueryPolygon(spec, kUnit, &rng));
  }
  return areas;
}

TEST(PlannerCacheChurnTest, RandomizedChurnNeverServesAStaleResult) {
  Rng rng(2026);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;  // Compaction only where the schedule says.
  DynamicPointDatabase db(GenerateUniformPoints(3000, kUnit, &rng),
                          options);
  // A small fixed polygon set, so the same key repeats often enough to
  // exercise both hits (no mutation between repeats) and invalidation
  // (mutation bumped the version in between).
  const std::vector<Polygon> areas = FixedAreas(7, 5, 0.15);

  PlanHints uncached;
  uncached.use_cache = false;
  std::vector<PointId> inserted;
  QueryContext ctx;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (int step = 0; step < 400; ++step) {
    const std::int64_t dice = rng.UniformInt(0, 9);
    if (dice < 2) {
      const auto id = db.Insert({rng.Uniform(0.0, 1.0),
                                 rng.Uniform(0.0, 1.0)});
      if (id.has_value()) inserted.push_back(*id);
    } else if (dice == 2 && !inserted.empty()) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(inserted.size()) - 1));
      db.Erase(inserted[victim]);
      inserted.erase(inserted.begin() + victim);
    } else if (dice == 3) {
      db.Compact();
    } else {
      const Polygon& area = areas[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(areas.size()) - 1))];
      const std::vector<PointId> cached = db.Query(area, ctx);
      hits += ctx.stats.result_cache_hits;
      misses += ctx.stats.result_cache_misses;
      ASSERT_EQ(ctx.stats.result_cache_hits + ctx.stats.result_cache_misses,
                1u)
          << "a planned query must be exactly one hit or one miss";
      const std::vector<PointId> fresh = db.Query(area, ctx, uncached);
      ASSERT_EQ(cached, fresh)
          << "cached result diverged from a fresh run at step " << step;
      ASSERT_EQ(cached, LiveBruteForce(db, area))
          << "planned result diverged from brute force at step " << step;
    }
  }
  // The schedule leaves quiet stretches between mutations, so repeats of
  // the small polygon set must actually hit; and mutations must actually
  // re-miss. Both counters being live is what makes the differential
  // above a cache test rather than a no-op.
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, static_cast<std::uint64_t>(areas.size()));
}

TEST(PlannerCacheChurnTest, EveryMutationKindInvalidates) {
  Rng rng(99);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(500, kUnit, &rng), options);
  const Polygon area = FixedAreas(11, 1, 0.4)[0];
  QueryContext ctx;

  // Prime the cache, then make each mutation kind and require a re-miss
  // with the updated answer. Second-hit admission means the first
  // execution of a never-seen polygon is declined (its hash is merely
  // recorded), the second execution is stored, the third hits.
  std::vector<PointId> before = db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_misses, 1u);
  db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_misses, 1u)
      << "a first-seen polygon must not be cached by its first execution";
  db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_hits, 1u);

  // Insert inside the query's MBR: the cached answer is now wrong.
  const Box mbr = area.Bounds();
  const auto id = db.Insert({(mbr.min.x + mbr.max.x) / 2.0,
                             (mbr.min.y + mbr.max.y) / 2.0});
  ASSERT_TRUE(id.has_value());
  std::vector<PointId> after_insert = db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_misses, 1u)
      << "insert published a new version; the old entry must not hit";
  EXPECT_EQ(after_insert, LiveBruteForce(db, area));

  db.Erase(*id);
  std::vector<PointId> after_erase = db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_misses, 1u);
  EXPECT_EQ(after_erase, before)
      << "erasing the inserted point restores the original answer";

  // An effective compaction (non-empty delta) publishes a new version
  // and re-misses; ids and answers are stable across the rebuild.
  ASSERT_TRUE(db.Insert({2.0, 2.0}).has_value());  // Outside the area.
  db.Compact();
  std::vector<PointId> after_compact = db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_misses, 1u);
  EXPECT_EQ(after_compact, before);

  // A no-op compaction (nothing to merge) publishes nothing: same
  // version, and serving the cached entry is exactly right.
  db.Compact();
  db.Query(area, ctx);
  EXPECT_EQ(ctx.stats.result_cache_hits, 1u)
      << "a no-op compact must not invalidate (version unchanged)";
}

TEST(PlannerCacheChurnTest, ConcurrentReadersAndMutatorStayExact) {
  // The TSan leg: readers serve planned (cached) queries while a mutator
  // churns the database. Each reader verifies every answer against an
  // uncached run pinned by the same call pattern — the two pin
  // independently, so they can legitimately see adjacent versions; the
  // brute-force differential is checked after the world stops instead.
  Rng rng(4242);
  DynamicPointDatabase db(GenerateUniformPoints(2000, kUnit, &rng));
  const std::vector<Polygon> areas = FixedAreas(5, 4, 0.2);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_hits{0};
  std::thread mutator([&] {
    Rng mrng(1);
    std::vector<PointId> mine;
    for (int i = 0; i < 300; ++i) {
      const std::int64_t dice = mrng.UniformInt(0, 7);
      if (dice < 5) {
        const auto id = db.Insert({mrng.Uniform(0.0, 1.0),
                                   mrng.Uniform(0.0, 1.0)});
        if (id.has_value()) mine.push_back(*id);
      } else if (dice < 7 && !mine.empty()) {
        const std::size_t victim = static_cast<std::size_t>(
            mrng.UniformInt(0, static_cast<std::int64_t>(mine.size()) - 1));
        db.Erase(mine[victim]);
        mine.erase(mine.begin() + victim);
      } else {
        db.Compact();
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng qrng(100 + t);
      QueryContext ctx;
      std::uint64_t hits = 0;
      while (!stop.load()) {
        const Polygon& area = areas[static_cast<std::size_t>(qrng.UniformInt(
            0, static_cast<std::int64_t>(areas.size()) - 1))];
        const std::vector<PointId> ids = db.Query(area, ctx);
        hits += ctx.stats.result_cache_hits;
        // Internal exactness holds even mid-churn: one hit or one miss,
        // and a hit short-circuits all execution counters to zero.
        EXPECT_EQ(
            ctx.stats.result_cache_hits + ctx.stats.result_cache_misses, 1u);
        if (ctx.stats.result_cache_hits == 1) {
          EXPECT_EQ(ctx.stats.candidates, 0u);
        }
      }
      total_hits.fetch_add(hits);
    });
  }
  mutator.join();
  for (std::thread& r : readers) r.join();

  // Quiesced differential: the final cached answers equal brute force.
  QueryContext ctx;
  PlanHints uncached;
  uncached.use_cache = false;
  for (const Polygon& area : areas) {
    const std::vector<PointId> cached = db.Query(area, ctx);
    EXPECT_EQ(cached, db.Query(area, ctx, uncached));
    EXPECT_EQ(cached, LiveBruteForce(db, area));
  }
  // Readers loop far more often than the mutator publishes, so the cache
  // must have served real hits mid-churn for this to have tested anything.
  EXPECT_GT(total_hits.load(), 0u);
}

}  // namespace
}  // namespace vaq
