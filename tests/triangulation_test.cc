#include "delaunay/triangulation.h"

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "workload/point_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

TEST(TriangulationTest, SingleTriangle) {
  DelaunayTriangulation dt({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(dt.num_points(), 3u);
  EXPECT_EQ(dt.num_triangles(), 1u);
  const auto tris = dt.Triangles();
  ASSERT_EQ(tris.size(), 1u);
  // All three vertices mutually adjacent.
  for (PointId v = 0; v < 3; ++v) {
    EXPECT_EQ(dt.NeighborsOf(v).size(), 2u);
  }
}

TEST(TriangulationTest, SquareHasFiveEdges) {
  // Four corners of a square: 2 triangles, 5 Delaunay edges (4 sides + 1
  // diagonal, whichever the cocircular tie-break picks).
  DelaunayTriangulation dt({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(dt.num_triangles(), 2u);
  std::size_t total_degree = 0;
  for (PointId v = 0; v < 4; ++v) total_degree += dt.NeighborsOf(v).size();
  EXPECT_EQ(total_degree, 10u);  // 2 * 5 edges.
}

TEST(TriangulationTest, StructureValidAfterRandomBuild) {
  Rng rng(100);
  DelaunayTriangulation dt(
      GenerateUniformPoints(2000, Box::FromExtents(0, 0, 1, 1), &rng));
  std::string why;
  EXPECT_TRUE(dt.CheckStructure(&why)) << why;
}

TEST(TriangulationTest, DelaunayPropertyHoldsSmall) {
  Rng rng(101);
  DelaunayTriangulation dt(
      GenerateUniformPoints(250, Box::FromExtents(0, 0, 1, 1), &rng));
  std::string why;
  EXPECT_TRUE(dt.CheckDelaunay(&why)) << why;
}

TEST(TriangulationTest, EulerFormulaForTriangulations) {
  // For n points with h hull points: triangles = 2n - h - 2,
  // edges = 3n - h - 3 (counting only real triangles/edges).
  Rng rng(102);
  const auto points =
      GenerateUniformPoints(500, Box::FromExtents(0, 0, 1, 1), &rng);
  DelaunayTriangulation dt(points);
  std::size_t num_edges = 0;
  for (PointId v = 0; v < dt.num_points(); ++v) {
    num_edges += dt.NeighborsOf(v).size();
  }
  num_edges /= 2;
  // Triangles touching the super vertices replace hull triangles, so use
  // the edge/triangle relation directly: every real triangle has 3 edges,
  // every interior edge is shared by <=2 real triangles.
  EXPECT_GT(num_edges, dt.num_triangles());
  EXPECT_LE(dt.num_triangles(), 2 * dt.num_points());
  // Known closed form (hull edges all exist because the far super triangle
  // keeps the hull convex): E = 3n - 3 - h.
  std::set<PointId> hullish;  // Vertices with a super-vertex triangle.
  // Count via handshake instead: 2E = sum of degrees.
  std::size_t degree_sum = 0;
  for (PointId v = 0; v < dt.num_points(); ++v) {
    degree_sum += dt.NeighborsOf(v).size();
  }
  EXPECT_EQ(degree_sum, 2 * num_edges);
}

TEST(TriangulationTest, AdjacencyIsSymmetric) {
  Rng rng(103);
  DelaunayTriangulation dt(
      GenerateUniformPoints(800, Box::FromExtents(0, 0, 1, 1), &rng));
  for (PointId v = 0; v < dt.num_points(); ++v) {
    for (const PointId u : dt.NeighborsOf(v)) {
      const auto back = dt.NeighborsOf(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << u << " missing back-edge to " << v;
    }
  }
}

TEST(TriangulationTest, NoSelfLoopsOrDuplicateNeighbors) {
  Rng rng(104);
  DelaunayTriangulation dt(
      GenerateUniformPoints(600, Box::FromExtents(0, 0, 1, 1), &rng));
  for (PointId v = 0; v < dt.num_points(); ++v) {
    const auto nbrs = dt.NeighborsOf(v);
    std::set<PointId> unique(nbrs.begin(), nbrs.end());
    EXPECT_EQ(unique.size(), nbrs.size()) << "duplicate neighbour of " << v;
    EXPECT_EQ(unique.count(v), 0u) << "self-loop at " << v;
  }
}

TEST(TriangulationTest, NearestNeighborIsDelaunayNeighbor) {
  // Paper Property 6 (NN-graph is a subgraph of the Delaunay graph): every
  // point's nearest neighbour must appear in its adjacency list.
  Rng rng(105);
  const auto points =
      GenerateUniformPoints(400, Box::FromExtents(0, 0, 1, 1), &rng);
  DelaunayTriangulation dt(points);
  for (PointId v = 0; v < points.size(); ++v) {
    double best = 1e300;
    PointId nn = kInvalidPointId;
    for (PointId u = 0; u < points.size(); ++u) {
      if (u == v) continue;
      const double d = SquaredDistance(points[u], points[v]);
      if (d < best) {
        best = d;
        nn = u;
      }
    }
    const auto nbrs = dt.NeighborsOf(v);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), nn), nbrs.end())
        << "NN of " << v << " not a Voronoi neighbour";
  }
}

TEST(TriangulationTest, DelaunayGraphIsConnected) {
  // Paper Property 5: the Delaunay graph is connected.
  Rng rng(106);
  DelaunayTriangulation dt(
      GenerateUniformPoints(1000, Box::FromExtents(0, 0, 1, 1), &rng));
  std::vector<bool> seen(dt.num_points(), false);
  std::vector<PointId> stack{0};
  seen[0] = true;
  std::size_t count = 0;
  while (!stack.empty()) {
    const PointId v = stack.back();
    stack.pop_back();
    ++count;
    for (const PointId u : dt.NeighborsOf(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  EXPECT_EQ(count, dt.num_points());
}

TEST(TriangulationTest, GridPointsDegenerateInput) {
  // Exact grid: masses of collinear and cocircular quadruples. The exact
  // predicates must keep the structure valid.
  std::vector<Point> points;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      points.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  DelaunayTriangulation dt(points);
  std::string why;
  EXPECT_TRUE(dt.CheckStructure(&why)) << why;
  EXPECT_TRUE(dt.CheckDelaunay(&why)) << why;
  EXPECT_EQ(dt.num_points(), 144u);
  // 11x11 cells, 2 triangles each.
  EXPECT_EQ(dt.num_triangles(), 242u);
}

TEST(TriangulationTest, CollinearOnlyInputHasNoTriangles) {
  std::vector<Point> points;
  for (int i = 0; i < 10; ++i) points.push_back({static_cast<double>(i), 2.0});
  DelaunayTriangulation dt(points);
  EXPECT_EQ(dt.num_triangles(), 0u);
  // But consecutive points are still graph-adjacent (via super triangles).
  std::string why;
  EXPECT_TRUE(dt.CheckStructure(&why)) << why;
  for (PointId v = 0; v + 1 < 10; ++v) {
    const auto nbrs = dt.NeighborsOf(v);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), v + 1), nbrs.end());
  }
}

TEST(TriangulationTest, CirculationVisitsAllIncidentTriangles) {
  Rng rng(107);
  const auto points =
      GenerateUniformPoints(300, Box::FromExtents(0, 0, 1, 1), &rng);
  DelaunayTriangulation dt(points);
  // For each vertex, circulation count equals its degree (every incident
  // triangle is visited exactly once, fan closed by super triangles).
  for (PointId v = 0; v < dt.num_points(); ++v) {
    std::size_t fan = 0;
    std::set<std::uint32_t> seen;
    dt.CirculateCell(v, [&](std::uint32_t t) {
      ++fan;
      EXPECT_TRUE(seen.insert(t).second) << "triangle revisited";
    });
    // Every vertex is interior in the (n+3)-point triangulation, so the
    // fan is closed and its size equals the full-graph degree, which is at
    // least the real-neighbour degree.
    EXPECT_GE(fan, dt.NeighborsOf(v).size())
        << "fan smaller than degree at " << v;
  }
}

}  // namespace
}  // namespace vaq
