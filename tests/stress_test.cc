// Cross-module stress and degenerate-input tests: the scenarios most
// likely to corrupt a computational-geometry stack — exact grids
// (cocircular quadruples everywhere), points exactly on query boundaries,
// larger-scale equivalence, and repeated mixed operations.

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/grid_sweep_area_query.h"
#include "core/point_database.h"
#include "core/traditional_area_query.h"
#include "core/voronoi_area_query.h"
#include "delaunay/voronoi.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

TEST(StressTest, ExactGridVoronoiStillTiles) {
  // 20x20 exact integer grid: every interior quadruple is cocircular.
  std::vector<Point> points;
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) {
      points.push_back({static_cast<double>(x), static_cast<double>(y)});
    }
  }
  DelaunayTriangulation dt(points);
  const Box clip = Box::FromExtents(0, 0, 19, 19);
  VoronoiDiagram vd(dt, clip);
  EXPECT_NEAR(vd.TotalArea(), clip.Area(), 1e-6);
  for (PointId v = 0; v < vd.size(); ++v) {
    EXPECT_TRUE(vd.CellContains(v, dt.point(v)));
  }
}

TEST(StressTest, QueryBoundaryThroughGridPoints) {
  // A rectangle query whose edges pass exactly through data points: the
  // boundary-inclusive Contains semantics must agree across all methods.
  std::vector<Point> points;
  for (int y = 0; y < 15; ++y) {
    for (int x = 0; x < 15; ++x) {
      points.push_back({x * 0.0625, y * 0.0625});
    }
  }
  PointDatabase db(points);
  // Edges at exact multiples of the grid pitch.
  const Polygon area = Polygon::FromBox(Box::FromExtents(0.125, 0.125, 0.5, 0.5));
  const auto truth = BruteForceAreaQuery(&db).Run(area, nullptr);
  // 0.125..0.5 in steps of 0.0625: 7 positions per axis => 49 points,
  // including all boundary points.
  EXPECT_EQ(truth.size(), 49u);
  EXPECT_EQ(TraditionalAreaQuery(&db).Run(area, nullptr), truth);
  EXPECT_EQ(VoronoiAreaQuery(&db).Run(area, nullptr), truth);
  EXPECT_EQ(GridSweepAreaQuery(&db).Run(area, nullptr), truth);
}

TEST(StressTest, LargeScaleEquivalence) {
  Rng rng(20260611);
  PointDatabase db(GenerateUniformPoints(100000, kUnit, &rng));
  const TraditionalAreaQuery trad(&db);
  const VoronoiAreaQuery vaq(&db);
  const GridSweepAreaQuery sweep(&db);
  Rng qrng(1);
  for (const double qs : {0.01, 0.32}) {
    PolygonSpec spec;
    spec.query_size_fraction = qs;
    for (int rep = 0; rep < 3; ++rep) {
      const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
      const auto t = trad.Run(area, nullptr);
      EXPECT_EQ(vaq.Run(area, nullptr), t);
      EXPECT_EQ(sweep.Run(area, nullptr), t);
    }
  }
}

TEST(StressTest, ManySmallQueriesInterleaved) {
  // Interleave the three methods over 100 tiny queries: epoch bookkeeping
  // in VoronoiAreaQuery must never bleed state between queries.
  Rng rng(2);
  PointDatabase db(GenerateUniformPoints(5000, kUnit, &rng));
  const TraditionalAreaQuery trad(&db);
  const VoronoiAreaQuery vaq(&db);
  Rng qrng(3);
  PolygonSpec spec;
  spec.query_size_fraction = 0.002;
  for (int rep = 0; rep < 100; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
    EXPECT_EQ(vaq.Run(area, nullptr), trad.Run(area, nullptr)) << rep;
  }
}

TEST(StressTest, ClusterVoidQueries) {
  // Clustered data with queries landing in density voids: the Voronoi
  // flood crosses large empty cells; results must still match.
  Rng rng(4);
  PointDatabase db(GenerateClusteredPoints(20000, kUnit, 5, 0.02, &rng));
  const TraditionalAreaQuery trad(&db);
  const VoronoiAreaQuery vaq(&db);
  Rng qrng(5);
  PolygonSpec spec;
  spec.query_size_fraction = 0.05;
  int nonempty = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const Polygon area = GenerateQueryPolygon(spec, kUnit, &qrng);
    const auto t = trad.Run(area, nullptr);
    EXPECT_EQ(vaq.Run(area, nullptr), t) << rep;
    if (!t.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 10);  // The sweep actually hit clusters.
}

TEST(StressTest, NearDuplicateCoordinates) {
  // Points one ulp apart: distinct for the triangulation, brutal for
  // floating-point filters.
  std::vector<Point> points;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0, 1);
    const double y = rng.Uniform(0, 1);
    points.push_back({x, y});
    points.push_back({std::nextafter(x, 2.0), y});
  }
  PointDatabase db(points);
  const Polygon area = Polygon::FromBox(Box::FromExtents(0.25, 0.25, 0.75, 0.75));
  EXPECT_EQ(VoronoiAreaQuery(&db).Run(area, nullptr),
            BruteForceAreaQuery(&db).Run(area, nullptr));
}

TEST(StressTest, ThinSliverPolygonQueries) {
  // Extremely thin query polygons (worst case for the window filter and a
  // stress for the segment-expansion rule).
  Rng rng(7);
  PointDatabase db(GenerateUniformPoints(30000, kUnit, &rng));
  const TraditionalAreaQuery trad(&db);
  const VoronoiAreaQuery vaq(&db);
  for (int rep = 0; rep < 10; ++rep) {
    const double y = 0.05 + rep * 0.09;
    // A long, nearly-degenerate sliver across the whole domain.
    const Polygon sliver({{0.02, y},
                          {0.98, y + 0.001},
                          {0.98, y + 0.004},
                          {0.02, y + 0.003}});
    EXPECT_EQ(vaq.Run(sliver, nullptr), trad.Run(sliver, nullptr)) << rep;
  }
}

}  // namespace
}  // namespace vaq
