// Failure-domain hardening (DESIGN.md §12): the deterministic fault
// layer, the storage retry/backoff/quarantine policy, engine deadlines,
// cancellation and shutdown semantics, and the sharded degraded
// partial-result mode. The permanent-vs-transient error classification is
// pinned here by exact `io_retries` counts: open-time `PageFileError`
// kinds must never be retried, injected read faults must be retried
// exactly as many times as the policy says.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/cancel.h"
#include "core/point_database.h"
#include "engine/query_engine.h"
#include "fault/fault.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "storage/page_format.h"
#include "storage/page_store.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

// ---------------------------------------------------------------------------
// FaultSpec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesFullSpec) {
  const FaultSpec spec = FaultSpec::Parse(
      "seed=42,read_error=0.01,corrupt=0.005,slow=0.02,spike_ms=5,"
      "fetch_spike=0.1,torn=0.25,retries=7,backoff_ms=0.5,backoff_max_ms=8");
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.read_error_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.corrupt_rate, 0.005);
  EXPECT_DOUBLE_EQ(spec.slow_page_rate, 0.02);
  EXPECT_DOUBLE_EQ(spec.spike_ms, 5.0);
  EXPECT_DOUBLE_EQ(spec.fetch_spike_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.torn_prefetch_rate, 0.25);
  EXPECT_EQ(spec.max_read_retries, 7);
  EXPECT_DOUBLE_EQ(spec.backoff_initial_ms, 0.5);
  EXPECT_DOUBLE_EQ(spec.backoff_max_ms, 8.0);
}

TEST(FaultSpecTest, EmptyStringParsesDisabled) {
  EXPECT_FALSE(FaultSpec::Parse("").enabled);
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::Parse("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("read_error"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("read_error=abc"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("read_error=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("read_error=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultSpec::Parse("retries=-1"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministicAndSiteIndependent) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 7;
  spec.read_error_rate = 0.5;
  spec.corrupt_rate = 0.5;
  const FaultInjector a(spec);
  const FaultInjector b(spec);
  int read_faults = 0;
  int divergences = 0;
  for (std::uint64_t page = 0; page < 512; ++page) {
    // Same spec, same inputs => same answer, whoever asks.
    ASSERT_EQ(a.ReadFails(page, 0), b.ReadFails(page, 0));
    ASSERT_EQ(a.CorruptsFrame(page, 3), b.CorruptsFrame(page, 3));
    read_faults += a.ReadFails(page, 0) ? 1 : 0;
    // Independent per-site streams: read and corrupt decisions must not
    // be the same bit for the same (page, attempt).
    divergences += a.ReadFails(page, 0) != a.CorruptsFrame(page, 0) ? 1 : 0;
  }
  // rate=0.5 over 512 pages: a degenerate all-or-nothing stream would be
  // a hash bug. Loose bounds — this is a sanity check, not a chi-square.
  EXPECT_GT(read_faults, 512 / 4);
  EXPECT_LT(read_faults, 512 * 3 / 4);
  EXPECT_GT(divergences, 512 / 8);
}

TEST(FaultInjectorTest, RateEndpointsAreExact) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 9;
  spec.read_error_rate = 0.0;
  FaultInjector never(spec);
  spec.read_error_rate = 1.0;
  FaultInjector always(spec);
  for (std::uint64_t page = 0; page < 256; ++page) {
    ASSERT_FALSE(never.ReadFails(page, 0));
    ASSERT_TRUE(always.ReadFails(page, 0));
  }
}

TEST(FaultInjectorTest, BackoffDoublesAndCaps) {
  FaultSpec spec;
  spec.enabled = true;
  spec.backoff_initial_ms = 1.0;
  spec.backoff_max_ms = 5.0;
  const FaultInjector inj(spec);
  EXPECT_DOUBLE_EQ(inj.BackoffMs(1), 1.0);
  EXPECT_DOUBLE_EQ(inj.BackoffMs(2), 2.0);
  EXPECT_DOUBLE_EQ(inj.BackoffMs(3), 4.0);
  EXPECT_DOUBLE_EQ(inj.BackoffMs(4), 5.0);  // Capped.
  EXPECT_DOUBLE_EQ(inj.BackoffMs(9), 5.0);
}

// ---------------------------------------------------------------------------
// PageStore retry / quarantine under injected faults
// ---------------------------------------------------------------------------

class FaultedPageStoreTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kPageSize = 512;
  static constexpr std::size_t kPpp = 32;
  static constexpr std::size_t kPages = 64;

  void SetUp() override {
    const std::size_t count = kPages * kPpp;
    std::vector<double> xs(count), ys(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = static_cast<double>(i);
      ys[i] = -static_cast<double>(i);
    }
    path_ = (std::filesystem::temp_directory_path() /
             ("vaq_fault_store_test_" + std::to_string(::getpid()) + ".vpag"))
                .string();
    WritePageFile(path_, xs.data(), ys.data(), count, kPageSize);
  }

  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<PageStore> OpenFaulted(const FaultSpec& fault,
                                         std::size_t cache_pages = 8) {
    PageStore::Options options;
    options.cache_pages = cache_pages;
    options.fault = fault;
    return PageStore::Open(path_, options);
  }

  static PointId IdOnPage(std::size_t page) {
    return static_cast<PointId>(page * kPpp);
  }

  std::string path_;
};

TEST_F(FaultedPageStoreTest, TransientReadFaultRetriedWithExactCount) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 17;
  spec.read_error_rate = 0.5;
  spec.max_read_retries = 3;
  const FaultInjector inj(spec);
  // The injector is a pure hash, so the test can find a page whose first
  // attempt faults and whose second succeeds — and then assert the store
  // spent *exactly one* retry on it.
  std::int64_t page = -1;
  for (std::size_t p = 0; p < kPages; ++p) {
    if (inj.ReadFails(p, 0) && !inj.ReadFails(p, 1)) {
      page = static_cast<std::int64_t>(p);
      break;
    }
  }
  ASSERT_GE(page, 0) << "no page with fail-then-succeed pattern; seed bug?";

  const auto store = OpenFaulted(spec);
  QueryStats stats;
  const Point pt = store->GetPoint(IdOnPage(page), &stats);
  EXPECT_EQ(pt.x, static_cast<double>(IdOnPage(page)));
  EXPECT_EQ(stats.io_retries, 1u);
  EXPECT_EQ(stats.pages_quarantined, 0u);
  EXPECT_EQ(store->counters().io_retries, 1u);

  // A clean page (no fault on attempt 0) must cost zero retries.
  std::int64_t clean = -1;
  for (std::size_t p = 0; p < kPages; ++p) {
    if (!inj.ReadFails(p, 0)) {
      clean = static_cast<std::int64_t>(p);
      break;
    }
  }
  ASSERT_GE(clean, 0);
  QueryStats clean_stats;
  store->GetPoint(IdOnPage(clean), &clean_stats);
  EXPECT_EQ(clean_stats.io_retries, 0u);
}

TEST_F(FaultedPageStoreTest, ExhaustedRetriesThrowTypedReadError) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 1;
  spec.read_error_rate = 1.0;  // Every attempt of every page faults.
  spec.max_read_retries = 2;
  const auto store = OpenFaulted(spec);
  QueryStats stats;
  try {
    store->GetPoint(IdOnPage(5), &stats);
    FAIL() << "expected PageReadError";
  } catch (const PageReadError& e) {
    EXPECT_EQ(e.kind(), PageReadError::Kind::kReadFailed);
    EXPECT_EQ(e.page(), 5u);
    EXPECT_EQ(e.offset(),
              kPageFileHeaderBytes + 5ull * kPageSize);
    EXPECT_EQ(e.attempts(), 3);  // 1 initial + 2 retries, all faulted.
  }
  EXPECT_EQ(stats.io_retries, 2u);  // Exactly the retry budget.
  // The store survives: a different spec-free access path still works —
  // the failure never crashes the process or poisons the cache.
  EXPECT_EQ(store->counters().pages_quarantined, 0u);
}

TEST_F(FaultedPageStoreTest, TwoConsecutiveChecksumFailuresQuarantine) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 3;
  spec.corrupt_rate = 1.0;  // Every delivery corrupt: strike, strike, out.
  spec.max_read_retries = 5;
  const auto store = OpenFaulted(spec);
  QueryStats stats;
  try {
    store->GetPoint(IdOnPage(2), &stats);
    FAIL() << "expected PageReadError";
  } catch (const PageReadError& e) {
    EXPECT_EQ(e.kind(), PageReadError::Kind::kQuarantined);
    EXPECT_EQ(e.page(), 2u);
  }
  EXPECT_EQ(stats.pages_quarantined, 1u);
  EXPECT_EQ(stats.io_retries, 1u);  // The second (striking-out) attempt.
  EXPECT_TRUE(store->Quarantined(2));
  EXPECT_FALSE(store->Quarantined(3));
  EXPECT_EQ(store->counters().pages_quarantined, 1u);

  // Every further access fails fast with the same typed error and no
  // fresh read attempts or quarantine recounts.
  QueryStats again;
  EXPECT_THROW(store->GetPoint(IdOnPage(2), &again), PageReadError);
  EXPECT_EQ(again.io_retries, 0u);
  EXPECT_EQ(again.pages_quarantined, 0u);
  EXPECT_EQ(store->counters().pages_quarantined, 1u);

  // The quarantine is per page, not global: page 7 is still un-flagged
  // until its own strikes accrue (under corrupt_rate=1 they immediately
  // do, bumping the lifetime counter to 2).
  QueryStats other;
  EXPECT_THROW(store->GetPoint(IdOnPage(7), &other), PageReadError);
  EXPECT_EQ(other.pages_quarantined, 1u);
  EXPECT_TRUE(store->Quarantined(7));
  EXPECT_EQ(store->counters().pages_quarantined, 2u);
}

TEST_F(FaultedPageStoreTest, SingleChecksumFailureRetriesAndRecovers) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 23;
  spec.corrupt_rate = 0.5;
  spec.max_read_retries = 3;
  const FaultInjector inj(spec);
  std::int64_t page = -1;
  for (std::size_t p = 0; p < kPages; ++p) {
    if (inj.CorruptsFrame(p, 0) && !inj.CorruptsFrame(p, 1)) {
      page = static_cast<std::int64_t>(p);
      break;
    }
  }
  ASSERT_GE(page, 0);
  const auto store = OpenFaulted(spec);
  QueryStats stats;
  const Point pt = store->GetPoint(IdOnPage(page), &stats);
  // One corrupt delivery (first strike), one clean retry: exact
  // coordinates, one retry charged, no quarantine — and the clean read
  // reset the strike counter.
  EXPECT_EQ(pt.x, static_cast<double>(IdOnPage(page)));
  EXPECT_EQ(stats.io_retries, 1u);
  EXPECT_EQ(stats.pages_quarantined, 0u);
  EXPECT_FALSE(store->Quarantined(page));
}

TEST_F(FaultedPageStoreTest, FailedLoadDoesNotLeakCacheFrames) {
  FaultSpec spec;
  spec.enabled = true;
  spec.seed = 1;
  spec.read_error_rate = 1.0;
  spec.max_read_retries = 0;
  // Cache of 2 frames, hammered with failing loads: if a failed load
  // leaked its frame, the third failure would exhaust the cache and turn
  // the typed read error into "every frame is pinned".
  const auto store = OpenFaulted(spec, /*cache_pages=*/2);
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(store->GetPoint(IdOnPage(round % kPages), nullptr),
                 PageReadError);
  }
}

TEST_F(FaultedPageStoreTest, DisabledSpecIsByteIdenticalToNoFaultStore) {
  // The null-injector path: a disabled spec must not change a single
  // counter or coordinate relative to a store with no fault field set.
  PageStore::Options plain_options;
  plain_options.cache_pages = 4;
  const auto plain = PageStore::Open(path_, plain_options);
  const auto faulted = OpenFaulted(FaultSpec{}, 4);
  QueryStats a, b;
  for (std::size_t p = 0; p < kPages; ++p) {
    const Point pa = plain->GetPoint(IdOnPage(p), &a);
    const Point pb = faulted->GetPoint(IdOnPage(p), &b);
    ASSERT_EQ(pa.x, pb.x);
    ASSERT_EQ(pa.y, pb.y);
  }
  EXPECT_EQ(a.pages_touched, b.pages_touched);
  EXPECT_EQ(a.page_cache_misses, b.page_cache_misses);
  EXPECT_EQ(b.io_retries, 0u);
  EXPECT_EQ(b.pages_quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Permanent vs transient classification: every open-time PageFileError
// kind is permanent — the store never opens, so no retry can ever be
// spent on it (io_retries is structurally 0). Transient faults above are
// the only retried class, pinned by their exact counts.
// ---------------------------------------------------------------------------

class ErrorClassificationTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("vaq_fault_class_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::filesystem::remove(p);
  }

  std::string WriteValid(std::size_t count = 100) {
    std::vector<double> xs(count), ys(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i] = static_cast<double>(i);
      ys[i] = static_cast<double>(i) + 0.5;
    }
    const std::string path = TempPath("valid.vpag");
    WritePageFile(path, xs.data(), ys.data(), count, 512);
    return path;
  }

  void Corrupt(const std::string& path,
               const std::function<void(std::vector<char>&)>& mutate) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Opens with an aggressive retry budget armed; a permanent error must
  /// throw the typed PageFileError without consuming any of it.
  PageFileError::Kind OpenPermanentKind(const std::string& path) {
    PageStore::Options options;
    options.fault.enabled = true;
    options.fault.max_read_retries = 5;
    options.fault.backoff_initial_ms = 0.0;
    try {
      PageStore::Open(path, options);
    } catch (const PageFileError& e) {
      return e.kind();
    }
    ADD_FAILURE() << "expected PageFileError for " << path;
    return PageFileError::Kind::kIo;
  }

 private:
  std::vector<std::string> paths_;
};

TEST_F(ErrorClassificationTest, OpenTimeErrorsArePermanentNeverRetried) {
  {
    const std::string path = WriteValid();
    Corrupt(path, [](std::vector<char>& b) { b[0] ^= 0xFF; });
    EXPECT_EQ(OpenPermanentKind(path), PageFileError::Kind::kBadMagic);
  }
  {
    const std::string path = WriteValid();
    Corrupt(path, [](std::vector<char>& b) { b.resize(b.size() - 7); });
    EXPECT_EQ(OpenPermanentKind(path), PageFileError::Kind::kTruncated);
  }
  {
    const std::string path = WriteValid();
    // Flip a payload byte: open-time whole-payload checksum mismatch.
    Corrupt(path, [](std::vector<char>& b) { b[kPageFileHeaderBytes] ^= 1; });
    EXPECT_EQ(OpenPermanentKind(path),
              PageFileError::Kind::kChecksumMismatch);
  }
  {
    // Nonexistent file: kIo, permanent.
    EXPECT_EQ(OpenPermanentKind(TempPath("missing.vpag")),
              PageFileError::Kind::kIo);
  }
}

// ---------------------------------------------------------------------------
// Engine: shutdown, admission control, deadlines, cancellation
// ---------------------------------------------------------------------------

/// A query that parks inside Run until released (or aborted via the
/// context's cancel token) — the deterministic way to hold workers busy
/// and queues full.
class GateQuery final : public AreaQuery {
 public:
  std::vector<PointId> Run(const Polygon&,
                           QueryContext& ctx) const override {
    started_.fetch_add(1);
    while (!release_.load()) {
      ctx.CheckCancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return {};
  }
  std::string_view Name() const override { return "gate"; }

  void WaitStarted(int n) const {
    while (started_.load() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  int started() const { return started_.load(); }
  void Release() const { release_.store(true); }

 private:
  mutable std::atomic<int> started_{0};
  mutable std::atomic<bool> release_{false};
};

Polygon UnitTriangle() {
  return Polygon({{0.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}});
}

TEST(EngineShutdownTest, SubmitAfterStopThrowsTypedError) {
  const GateQuery gate;
  QueryEngine engine({.num_threads = 1, .queue_capacity = 4});
  const int method = engine.RegisterMethod(&gate);
  gate.Release();  // Nothing should ever block in this test.
  engine.Stop();
  engine.Stop();  // Idempotent.
  EXPECT_THROW(engine.Submit(UnitTriangle(), method), EngineStoppedError);
  EXPECT_THROW(engine.SubmitWith(&gate, UnitTriangle()),
               EngineStoppedError);
}

TEST(EngineShutdownTest, QueuedWorkDrainsOnStop) {
  // Close-then-drain: everything accepted before Stop() resolves.
  Rng rng(99);
  const PointDatabase db(GenerateUniformPoints(500, kUnit, &rng));
  const BruteForceAreaQuery brute(&db);
  QueryEngine engine({.num_threads = 2, .queue_capacity = 32});
  const int method = engine.RegisterMethod(&brute);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(engine.Submit(UnitTriangle(), method));
  }
  engine.Stop();
  for (std::future<QueryResult>& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
}

TEST(EngineShutdownTest, SubmitDuringShutdownRaceIsTypedOrServed) {
  // The race regression (run under TSan in CI): threads hammering Submit
  // while the engine stops. Every call must either return a future that
  // resolves, or throw EngineStoppedError — never hang, never strand a
  // future, never crash.
  Rng rng(100);
  const PointDatabase db(GenerateUniformPoints(200, kUnit, &rng));
  const BruteForceAreaQuery brute(&db);
  for (int round = 0; round < 8; ++round) {
    QueryEngine engine({.num_threads = 2, .queue_capacity = 8});
    const int method = engine.RegisterMethod(&brute);
    std::atomic<bool> go{false};
    std::atomic<int> served{0}, refused{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 32; ++i) {
          try {
            std::future<QueryResult> f =
                engine.Submit(UnitTriangle(), method);
            f.get();  // Accepted => must resolve even mid-shutdown.
            served.fetch_add(1);
          } catch (const EngineStoppedError&) {
            refused.fetch_add(1);
          }
        }
      });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    engine.Stop();
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(served.load() + refused.load(), 4 * 32);
  }
}

TEST(EngineOverloadTest, ShedModeThrowsOverloadedWhenQueueFull) {
  const GateQuery gate;
  QueryEngine engine(
      {.num_threads = 1, .queue_capacity = 1, .shed_on_full = true});
  const int method = engine.RegisterMethod(&gate);
  // Worker busy on q1, q2 fills the queue, q3 must be shed.
  std::future<QueryResult> q1 = engine.Submit(UnitTriangle(), method);
  gate.WaitStarted(1);
  std::future<QueryResult> q2 = engine.Submit(UnitTriangle(), method);
  try {
    engine.Submit(UnitTriangle(), method);
    FAIL() << "expected EngineOverloadedError";
  } catch (const EngineOverloadedError& e) {
    EXPECT_EQ(e.capacity(), 1u);
  }
  gate.Release();
  EXPECT_NO_THROW(q1.get());
  EXPECT_NO_THROW(q2.get());
}

TEST(EngineDeadlineTest, QueuedQueryPastDeadlineFailsFastWithoutRunning) {
  const GateQuery gate;
  const GateQuery queued_gate;  // Separate started_ counter.
  QueryEngine engine({.num_threads = 1, .queue_capacity = 4});
  engine.RegisterMethod(&gate);
  const int queued_method = engine.RegisterMethod(&queued_gate);
  std::future<QueryResult> blocker = engine.Submit(UnitTriangle(), 0);
  gate.WaitStarted(1);
  // Deadline burns down while the task sits in the queue behind the
  // blocker; by release time it is long dead.
  SubmitOptions doomed_opts;
  doomed_opts.deadline_ms = 5.0;
  std::future<QueryResult> doomed =
      engine.Submit(UnitTriangle(), queued_method, doomed_opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Release();
  queued_gate.Release();
  try {
    doomed.get();
    FAIL() << "expected QueryAbortedError";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), QueryAbortedError::Reason::kDeadline);
  }
  EXPECT_NO_THROW(blocker.get());
  // The fast path never entered the doomed query's Run.
  EXPECT_EQ(queued_gate.started(), 0);
}

TEST(EngineDeadlineTest, RunningQueryObservesDeadlineMidFlight) {
  const GateQuery gate;  // Never released: only the deadline can end it.
  QueryEngine engine({.num_threads = 1});
  const int method = engine.RegisterMethod(&gate);
  SubmitOptions deadline_opts;
  deadline_opts.deadline_ms = 20.0;
  std::future<QueryResult> f =
      engine.Submit(UnitTriangle(), method, deadline_opts);
  try {
    f.get();
    FAIL() << "expected QueryAbortedError";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), QueryAbortedError::Reason::kDeadline);
  }
}

TEST(EngineCancelTest, ExternalTokenCancelsRunningQuery) {
  const GateQuery gate;  // Never released: only Cancel() can end it.
  QueryEngine engine({.num_threads = 1});
  const int method = engine.RegisterMethod(&gate);
  auto token = std::make_shared<CancelToken>();
  std::future<QueryResult> f =
      engine.Submit(UnitTriangle(), method, {.cancel = token});
  gate.WaitStarted(1);
  token->Cancel();
  try {
    f.get();
    FAIL() << "expected QueryAbortedError";
  } catch (const QueryAbortedError& e) {
    EXPECT_EQ(e.reason(), QueryAbortedError::Reason::kCancelled);
  }
}

TEST(EngineCancelTest, KernelsPollTokenAtBlockBoundaries) {
  // Direct (engine-free) check of the O(block) abort bound: a
  // pre-expired token must abort each method's refine/scan loop.
  Rng rng(7);
  const PointDatabase db(GenerateUniformPoints(3000, kUnit, &rng));
  const BruteForceAreaQuery brute(&db);
  CancelToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.set_cancel(&token);
  EXPECT_THROW(brute.Run(UnitTriangle(), ctx), QueryAbortedError);
  ctx.set_cancel(nullptr);
  EXPECT_NO_THROW(brute.Run(UnitTriangle(), ctx));
}

// ---------------------------------------------------------------------------
// VAQ_FAULT_SPEC environment plumbing
// ---------------------------------------------------------------------------

TEST(FaultEnvTest, EnvSpecArmsPagedDatabases) {
  Rng rng(55);
  std::vector<Point> points = GenerateUniformPoints(1500, kUnit, &rng);
  ASSERT_EQ(::setenv("VAQ_FAULT_SPEC", "seed=1,read_error=1,retries=0", 1),
            0);
  PointDatabase::Options options;
  options.storage.backend = StorageBackend::kMmap;
  options.storage.cache_pages = 4;
  options.storage.page_size_bytes = 512;
  const PointDatabase db(points, options);
  ::unsetenv("VAQ_FAULT_SPEC");
  ASSERT_EQ(db.storage_backend(), StorageBackend::kMmap);
  // Every read attempt faults and the budget is zero: the very first
  // fetch must surface the typed error — proof the env spec reached the
  // store without any code-level configuration.
  QueryStats stats;
  EXPECT_THROW(db.FetchPoint(0, &stats), PageReadError);

  // And with the variable unset, the same construction is fault-free.
  const PointDatabase clean_db(points, options);
  EXPECT_NO_THROW(clean_db.FetchPoint(0, &stats));
}

// ---------------------------------------------------------------------------
// Sharded degraded partial-result mode
// ---------------------------------------------------------------------------

class ShardDegradedTest : public ::testing::Test {
 protected:
  ShardDegradedTest() {
    Rng rng(321);
    points_ = GenerateUniformPoints(2400, kUnit, &rng);
    oracle_ = std::make_unique<PointDatabase>(points_);
    PolygonSpec spec;
    spec.query_size_fraction = 0.25;
    area_ = GenerateQueryPolygon(spec, kUnit, &rng);
  }

  ShardedDatabase::Options FaultyShardOptions(const FaultSpec& fault) const {
    ShardedDatabase::Options options;
    options.num_shards = 8;
    options.shard.base.storage.backend = StorageBackend::kMmap;
    options.shard.base.storage.cache_pages = 2;
    options.shard.base.storage.page_size_bytes = 256;
    options.shard.base.storage.fault = fault;
    return options;
  }

  std::vector<PointId> OracleIds(QueryContext& ctx) const {
    const BruteForceAreaQuery brute(oracle_.get());
    std::vector<PointId> out;
    for (const PointId internal : brute.Run(area_, ctx)) {
      out.push_back(oracle_->OriginalId(internal));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Point> points_;
  std::unique_ptr<PointDatabase> oracle_;
  Polygon area_;
};

TEST_F(ShardDegradedTest, AllLegsFailingStrictThrowsPartialReturnsFlagged) {
  FaultSpec fault;
  fault.enabled = true;
  fault.seed = 2;
  fault.read_error_rate = 1.0;  // Every page read of every shard fails.
  fault.max_read_retries = 1;
  const ShardedDatabase sharded(points_, FaultyShardOptions(fault));
  QueryContext ctx;

  // Strict (default): typed error, never a silent partial answer.
  const ShardedAreaQuery strict(&sharded, DynamicMethod::kBruteForce);
  EXPECT_THROW(strict.Run(area_, ctx), PageReadError);

  // Partial: empty result (every leg lost), loudly flagged.
  ShardPolicy policy;
  policy.allow_partial = true;
  const ShardedAreaQuery partial(&sharded, DynamicMethod::kBruteForce,
                                 nullptr, policy);
  const std::vector<PointId> got = partial.Run(area_, ctx);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(ctx.stats.degraded, 1u);
  EXPECT_GT(ctx.stats.shards_failed, 0u);
  EXPECT_EQ(ctx.stats.shards_hit + ctx.stats.shards_pruned +
                ctx.stats.shards_failed,
            8u);
}

TEST_F(ShardDegradedTest, PartialResultsAreOracleSubsetWithFlags) {
  // A corrupt rate calibrated so *some* shards lose a page and others
  // stay clean (each shard streams ~19 pages, so at 2% per attempt a
  // shard fails with p ~ 0.3; which ones is deterministic in the seed).
  FaultSpec fault;
  fault.enabled = true;
  fault.seed = 11;
  fault.corrupt_rate = 0.02;
  fault.max_read_retries = 0;
  const ShardedDatabase sharded(points_, FaultyShardOptions(fault));
  QueryContext ctx;
  const std::vector<PointId> truth = OracleIds(ctx);

  ShardPolicy policy;
  policy.allow_partial = true;
  for (const DynamicMethod method :
       {DynamicMethod::kBruteForce, DynamicMethod::kTraditional}) {
    const ShardedAreaQuery query(&sharded, method, nullptr, policy);
    const std::vector<PointId> got = query.Run(area_, ctx);
    // Sorted subset of the oracle: degraded mode may lose shards, it may
    // never invent or duplicate ids.
    EXPECT_TRUE(std::includes(truth.begin(), truth.end(), got.begin(),
                              got.end()));
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(ctx.stats.shards_hit + ctx.stats.shards_pruned +
                  ctx.stats.shards_failed,
              8u);
    // The flag and the counter move together.
    EXPECT_EQ(ctx.stats.degraded == 1, ctx.stats.shards_failed > 0);
    if (ctx.stats.shards_failed == 0) {
      EXPECT_EQ(got, truth);  // No losses => exact, flag clear.
    }
  }
}

TEST_F(ShardDegradedTest, LegTimeoutRetriesRecoverViaWarmedCache) {
  // Every page is slow (10 ms per miss): a cold leg blows its 60 ms
  // budget long before its shard's ~19 pages are in, and aborts at the
  // next block boundary. But the pages it did load stay cached, so each
  // retry starts warmer and pays for fewer misses — the retry budget
  // converts a hard per-leg deadline into progress instead of a livelock.
  // (Injected read errors could never be rescued this way: the injector
  // is a pure hash of (page, attempt), so a page that fails its storage
  // attempts fails them identically on every leg retry — by design, for
  // replayability. Cache warming is the one genuinely transient axis.)
  FaultSpec fault;
  fault.enabled = true;
  fault.seed = 77;
  fault.slow_page_rate = 1.0;
  fault.spike_ms = 10.0;
  ShardedDatabase::Options options = FaultyShardOptions(fault);
  options.shard.base.storage.cache_pages = 64;  // Hold a whole shard.
  const ShardedDatabase sharded(points_, options);
  QueryContext ctx;
  const std::vector<PointId> truth = OracleIds(ctx);

  ShardPolicy policy;
  policy.leg_timeout_ms = 60.0;
  policy.max_leg_retries = 8;
  const ShardedAreaQuery query(&sharded, DynamicMethod::kBruteForce,
                               nullptr, policy);
  const std::vector<PointId> got = query.Run(area_, ctx);
  EXPECT_EQ(got, truth);
  EXPECT_EQ(ctx.stats.degraded, 0u);
  EXPECT_EQ(ctx.stats.shards_failed, 0u);

  // Same budget, no retries, strict: the cold legs' timeouts surface as
  // the typed abort. (Caches are warm now, so rerun against a fresh
  // database.)
  const ShardedDatabase cold(points_, options);
  const ShardedAreaQuery no_retries(&cold, DynamicMethod::kBruteForce,
                                    nullptr, ShardPolicy{60.0, 0, false});
  EXPECT_THROW(no_retries.Run(area_, ctx), QueryAbortedError);
}

TEST_F(ShardDegradedTest, ParentCancellationAbortsWholeQueryEvenPartial) {
  const ShardedDatabase sharded(points_, FaultyShardOptions(FaultSpec{}));
  ShardPolicy policy;
  policy.allow_partial = true;
  const ShardedAreaQuery query(&sharded, DynamicMethod::kBruteForce,
                               nullptr, policy);
  CancelToken token;
  token.Cancel();
  QueryContext ctx;
  ctx.set_cancel(&token);
  // A cancelled parent is an abort, not a "every shard failed" degraded
  // answer — partial mode must not swallow it.
  EXPECT_THROW(query.Run(area_, ctx), QueryAbortedError);
  ctx.set_cancel(nullptr);
}

}  // namespace
}  // namespace vaq
