#include "planner/query_planner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "planner/cost_model.h"
#include "planner/query_plan.h"

namespace vaq {
namespace {

PlanFeatures MemoryFeatures() {
  PlanFeatures f;
  f.n = 100000;
  f.mbr_share = 0.1;
  f.poly_share = 0.08;
  f.io_ns_per_load = 0.0;
  f.paged = false;
  return f;
}

PlanFeatures IoFeatures() {
  PlanFeatures f = MemoryFeatures();
  f.io_ns_per_load = 1000.0;  // The crossover study's smallest latency.
  return f;
}

TEST(SelectivityBucketTest, MapsSharesToLog2Buckets) {
  // Bucket b covers (2^-(b+1), 2^-b].
  EXPECT_EQ(QueryPlanner::SelectivityBucket(1.0), 0);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.6), 0);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.5), 1);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.3), 1);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.25), 2);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.01), 6);
}

TEST(SelectivityBucketTest, ClampsDegenerateShares) {
  EXPECT_EQ(QueryPlanner::SelectivityBucket(0.0), kNumSelectivityBuckets - 1);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(-0.5),
            kNumSelectivityBuckets - 1);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(1e-9),
            kNumSelectivityBuckets - 1);
  EXPECT_EQ(QueryPlanner::SelectivityBucket(2.0), 0);
}

TEST(QueryPlannerTest, SeedModelPicksTraditionalInMemory) {
  // Raw in-memory timing: per-candidate CPU dominates and the window
  // filter's cheap per-candidate cost wins — the paper's Table I regime.
  const QueryPlanner planner;
  const QueryPlan plan = planner.Plan(MemoryFeatures(), PlanHints{});
  EXPECT_EQ(plan.method, DynamicMethod::kTraditional);
  EXPECT_FALSE(plan.io_bound);
  EXPECT_TRUE(plan.reason & plan_reason::kSeedModel);
  EXPECT_FALSE(plan.reason & plan_reason::kLearnedModel);
  EXPECT_FALSE(plan.reason & plan_reason::kIoBound);
  EXPECT_GT(plan.predicted_cost_ns, 0.0);
  EXPECT_GT(plan.predicted_candidates, 0.0);
}

TEST(QueryPlannerTest, SeedModelPicksVoronoiUnderIo) {
  // Simulated disk: every candidate costs a fetch, so the Voronoi
  // method's smaller candidate set wins — the paper's crossover.
  const QueryPlanner planner;
  const QueryPlan plan = planner.Plan(IoFeatures(), PlanHints{});
  EXPECT_EQ(plan.method, DynamicMethod::kVoronoi);
  EXPECT_TRUE(plan.io_bound);
  EXPECT_TRUE(plan.reason & plan_reason::kIoBound);
}

TEST(QueryPlannerTest, TinyDataFallsBackToBruteForce) {
  PlanFeatures f = MemoryFeatures();
  f.n = 100;  // Fixed index/prepare overheads dwarf 100 * 3.5ns.
  const QueryPlanner planner;
  const QueryPlan plan = planner.Plan(f, PlanHints{});
  EXPECT_EQ(plan.method, DynamicMethod::kBruteForce);
  EXPECT_TRUE(plan.reason & plan_reason::kTinyData);
}

TEST(QueryPlannerTest, ForcedMethodShortCircuitsTheModel) {
  PlanHints hints;
  hints.force_method = DynamicMethod::kGridSweep;
  const QueryPlanner planner;
  const QueryPlan plan = planner.Plan(IoFeatures(), hints);
  EXPECT_EQ(plan.method, DynamicMethod::kGridSweep);
  EXPECT_TRUE(plan.reason & plan_reason::kForced);
  // Forcing still yields honest predictions for the forced method.
  EXPECT_GT(plan.predicted_cost_ns, 0.0);
  // Forcing brute must not masquerade as a tiny-data decision.
  hints.force_method = DynamicMethod::kBruteForce;
  const QueryPlan forced_brute = planner.Plan(MemoryFeatures(), hints);
  EXPECT_FALSE(forced_brute.reason & plan_reason::kTinyData);
}

TEST(QueryPlannerTest, ExpectedTestsTracksPredictionClampedToN) {
  const QueryPlanner planner;
  PlanFeatures f = MemoryFeatures();
  const QueryPlan plan = planner.Plan(f, PlanHints{});
  EXPECT_EQ(plan.expected_tests,
            static_cast<std::size_t>(plan.predicted_candidates));
  PlanHints brute;
  brute.force_method = DynamicMethod::kBruteForce;
  const QueryPlan all = planner.Plan(f, brute);
  EXPECT_LE(all.expected_tests, f.n);
}

TEST(QueryPlannerTest, ObserveLearnsAndFlipsTheChoice) {
  // Feed the planner evidence that traditional is 8x slower than the
  // seed claims in this (memory, bucket) slot; after a few EWMA steps it
  // must switch to the runner-up and report the choice as learned.
  QueryPlanner planner;
  const PlanFeatures f = MemoryFeatures();
  QueryPlan plan = planner.Plan(f, PlanHints{});
  ASSERT_EQ(plan.method, DynamicMethod::kTraditional);
  for (int i = 0; i < 6; ++i) {
    plan = planner.Plan(f, PlanHints{});
    if (plan.method != DynamicMethod::kTraditional) break;
    QueryStats stats;
    stats.candidates =
        static_cast<std::uint64_t>(plan.predicted_candidates);
    stats.elapsed_ms = plan.predicted_cost_ns * 8.0 / 1e6;
    planner.Observe(plan, f, stats);
  }
  const QueryPlan after = planner.Plan(f, PlanHints{});
  EXPECT_NE(after.method, DynamicMethod::kTraditional);
  EXPECT_GT(planner.TimeFactor(DynamicMethod::kTraditional, plan.bucket,
                               /*io_bound=*/false),
            1.5);
  EXPECT_GT(planner.observations(), 0u);
}

TEST(QueryPlannerTest, FirstObservationSeedsLaterOnesDecay) {
  QueryPlanner planner;
  const PlanFeatures f = MemoryFeatures();
  const QueryPlan plan = planner.Plan(f, PlanHints{});
  QueryStats stats;
  stats.candidates = static_cast<std::uint64_t>(plan.predicted_candidates);
  stats.elapsed_ms = plan.predicted_cost_ns * 2.0 / 1e6;
  planner.Observe(plan, f, stats);
  // First observation seeds the factor outright (no decay from 1.0).
  EXPECT_NEAR(planner.TimeFactor(plan.method, plan.bucket, false), 2.0,
              1e-9);
  // A second, perfectly-predicted query decays it back toward 1 by alpha.
  // Force the method: the inflated factor may have flipped the unforced
  // choice, and the test must keep observing the same slot.
  PlanHints pin;
  pin.force_method = plan.method;
  const QueryPlan plan2 = planner.Plan(f, pin);
  QueryStats exact;
  exact.candidates =
      static_cast<std::uint64_t>(plan2.predicted_candidates);
  // plan2's prediction already includes the 2.0 factor; measured equal to
  // raw-model cost means ratio 1.
  exact.elapsed_ms = plan2.predicted_cost_ns / 2.0 / 1e6;
  planner.Observe(plan2, f, exact);
  EXPECT_NEAR(planner.TimeFactor(plan2.method, plan2.bucket, false),
              2.0 + 0.25 * (1.0 - 2.0), 1e-9);
}

TEST(QueryPlannerTest, FactorsClampAgainstOutliers) {
  QueryPlanner planner;
  const PlanFeatures f = MemoryFeatures();
  for (int i = 0; i < 20; ++i) {
    PlanHints pin;
    pin.force_method = DynamicMethod::kTraditional;
    const QueryPlan plan = planner.Plan(f, pin);
    QueryStats stats;
    stats.candidates =
        static_cast<std::uint64_t>(plan.predicted_candidates * 1000.0);
    stats.elapsed_ms = plan.predicted_cost_ns * 1000.0 / 1e6;
    planner.Observe(plan, f, stats);
  }
  EXPECT_LE(planner.TimeFactor(DynamicMethod::kTraditional,
                               QueryPlanner::SelectivityBucket(f.mbr_share),
                               false),
            8.0);
  EXPECT_LE(planner.CandFactor(DynamicMethod::kTraditional,
                               QueryPlanner::SelectivityBucket(f.mbr_share),
                               false),
            8.0);
}

TEST(QueryPlannerTest, LearnedSlotsAreKeyedPerIoClassAndBucket) {
  // Poisoning the memory slot must not leak into the IO slot or into a
  // different selectivity bucket.
  QueryPlanner planner;
  const PlanFeatures f = MemoryFeatures();
  const QueryPlan plan = planner.Plan(f, PlanHints{});
  QueryStats stats;
  stats.candidates = static_cast<std::uint64_t>(plan.predicted_candidates);
  stats.elapsed_ms = plan.predicted_cost_ns * 4.0 / 1e6;
  planner.Observe(plan, f, stats);
  EXPECT_NEAR(planner.TimeFactor(plan.method, plan.bucket, true), 1.0,
              1e-12);
  EXPECT_NEAR(
      planner.TimeFactor(plan.method, (plan.bucket + 1) % 8, false), 1.0,
      1e-12);
}

TEST(QueryPlannerTest, ScatterOnlyWhenLegsAmortiseTheOverhead) {
  // Large sharded database, broad query: plenty of surviving shards and
  // leg cost far above the submit overhead -> scatter.
  PlanFeatures f = IoFeatures();
  f.n = 1000000;
  f.num_shards = 8;
  f.mbr_share = 0.5;
  f.poly_share = 0.4;
  const QueryPlanner planner;
  const QueryPlan fan = planner.Plan(f, PlanHints{});
  EXPECT_TRUE(fan.scatter);
  EXPECT_TRUE(fan.reason & plan_reason::kScatter);
  EXPECT_FALSE(fan.reason & plan_reason::kInline);

  // Tiny selective query: at most one shard survives the MBR prune, so
  // fanning out cannot win.
  PlanFeatures narrow = f;
  narrow.mbr_share = 0.01;
  narrow.poly_share = 0.008;
  const QueryPlan inl = planner.Plan(narrow, PlanHints{});
  EXPECT_FALSE(inl.scatter);
  EXPECT_TRUE(inl.reason & plan_reason::kInline);

  // The caller's opt-out pins the plan inline regardless of cost.
  PlanHints no_fan;
  no_fan.allow_scatter = false;
  const QueryPlan pinned = planner.Plan(f, no_fan);
  EXPECT_FALSE(pinned.scatter);
  EXPECT_TRUE(pinned.reason & plan_reason::kInline);

  // Unsharded plans carry neither fanout bit.
  const QueryPlan flat = planner.Plan(MemoryFeatures(), PlanHints{});
  EXPECT_FALSE(flat.reason &
               (plan_reason::kScatter | plan_reason::kInline));
}

TEST(CostModelTest, CandidateEstimatesMatchTheClosedForms) {
  const CostModel model;
  const PlanFeatures f = MemoryFeatures();
  EXPECT_DOUBLE_EQ(
      model.ExpectedCandidates(DynamicMethod::kTraditional, f),
      static_cast<double>(f.n) * f.mbr_share);
  EXPECT_DOUBLE_EQ(model.ExpectedCandidates(DynamicMethod::kGridSweep, f),
                   static_cast<double>(f.n) * f.mbr_share);
  EXPECT_DOUBLE_EQ(model.ExpectedCandidates(DynamicMethod::kBruteForce, f),
                   static_cast<double>(f.n));
  const double interior = static_cast<double>(f.n) * f.poly_share;
  EXPECT_DOUBLE_EQ(model.ExpectedCandidates(DynamicMethod::kVoronoi, f),
                   interior + model.shell_coeff * std::sqrt(interior));
}

TEST(CostModelTest, IoPerLoadReflectsBackendConfiguration) {
  const CostModel model;
  PlanFeatures f = MemoryFeatures();
  EXPECT_DOUBLE_EQ(model.IoNsPerLoad(f), 0.0);
  f.paged = true;
  EXPECT_DOUBLE_EQ(model.IoNsPerLoad(f), model.paged_load_ns);
  f.io_ns_per_load = 1000.0;
  EXPECT_GE(model.IoNsPerLoad(f), 1000.0);
}

}  // namespace
}  // namespace vaq
