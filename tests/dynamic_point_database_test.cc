#include "core/dynamic_point_database.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_area_query.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

const DynamicMethod kAllMethods[] = {
    DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
    DynamicMethod::kGridSweep, DynamicMethod::kBruteForce};

/// Ground truth over the dynamic database's own live set: brute force on
/// the snapshot, in stable ids.
std::vector<PointId> LiveBruteForce(const DynamicPointDatabase& db,
                                    const Polygon& area) {
  std::vector<PointId> expected;
  db.snapshot()->ForEachLive([&](PointId id, const Point& p) {
    if (area.Contains(p)) expected.push_back(id);
  });
  std::sort(expected.begin(), expected.end());
  return expected;
}

Polygon TestArea(std::uint64_t seed = 7, double size = 0.1) {
  Rng qrng(seed);
  PolygonSpec spec;
  spec.query_size_fraction = size;
  return GenerateQueryPolygon(spec, kUnit, &qrng);
}

TEST(DynamicPointDatabaseTest, InitialPointsKeepInputIds) {
  const std::vector<Point> points{{0.1, 0.2}, {0.8, 0.9}, {0.4, 0.5}};
  DynamicPointDatabase db(points);
  EXPECT_EQ(db.Size(), 3u);
  for (PointId id = 0; id < points.size(); ++id) {
    EXPECT_EQ(db.Find(id), std::optional<Point>(points[id]));
  }
  EXPECT_EQ(db.Find(3), std::nullopt);
}

TEST(DynamicPointDatabaseTest, InsertEraseSizeAccounting) {
  Rng rng(21);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(100, kUnit, &rng), options);

  const auto id = db.Insert({0.123, 0.456});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 100u);  // Stable ids continue past the initial vector.
  EXPECT_EQ(db.Size(), 101u);
  EXPECT_EQ(db.DeltaSize(), 1u);
  EXPECT_EQ(db.Find(*id), std::optional<Point>(Point{0.123, 0.456}));

  // Erase a base point -> tombstone; erase the delta point -> buffer
  // shrinks, no tombstone.
  EXPECT_TRUE(db.Erase(42));
  EXPECT_EQ(db.Size(), 100u);
  EXPECT_EQ(db.TombstoneCount(), 1u);
  EXPECT_EQ(db.Find(42), std::nullopt);
  EXPECT_TRUE(db.Erase(*id));
  EXPECT_EQ(db.DeltaSize(), 0u);
  EXPECT_EQ(db.TombstoneCount(), 1u);

  // Double/unknown erases are rejected.
  EXPECT_FALSE(db.Erase(42));
  EXPECT_FALSE(db.Erase(*id));
  EXPECT_FALSE(db.Erase(9999));
}

TEST(DynamicPointDatabaseTest, InsertRejectsLiveDuplicates) {
  DynamicPointDatabase db(
      std::vector<Point>{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}});
  // Equal to a base point: rejected.
  EXPECT_EQ(db.Insert({0.5, 0.5}), std::nullopt);
  // Equal to a delta point: rejected too.
  ASSERT_TRUE(db.Insert({0.2, 0.3}).has_value());
  EXPECT_EQ(db.Insert({0.2, 0.3}), std::nullopt);
  EXPECT_EQ(db.Size(), 4u);
}

TEST(DynamicPointDatabaseTest, InsertRejectsNonFiniteCoordinates) {
  DynamicPointDatabase db(std::vector<Point>{{0.1, 0.1}, {0.9, 0.9}});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(db.Insert({nan, 0.5}), std::nullopt);
  EXPECT_EQ(db.Insert({0.5, -inf}), std::nullopt);
  EXPECT_EQ(db.Size(), 2u);
}

TEST(DynamicPointDatabaseTest, ErasedPointCanBeReinserted) {
  DynamicPointDatabase db(
      std::vector<Point>{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}});
  EXPECT_TRUE(db.Erase(1));
  const auto id = db.Insert({0.5, 0.5});  // Same coordinates, fresh id.
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 3u);
  EXPECT_EQ(db.Size(), 3u);
  EXPECT_EQ(db.Find(1), std::nullopt);
  EXPECT_EQ(db.Find(*id), std::optional<Point>(Point{0.5, 0.5}));
}

TEST(DynamicPointDatabaseTest, DuplicateInInitialVectorThrows) {
  EXPECT_THROW(DynamicPointDatabase db(std::vector<Point>{
                   {0.1, 0.1}, {0.5, 0.5}, {0.1, 0.1}}),
               DuplicatePointError);
}

TEST(DynamicPointDatabaseTest, AllMethodsAnswerOverBaseDeltaTombstones) {
  Rng rng(33);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(3000, kUnit, &rng),
                          options);
  // Mutate: inserts everywhere, deletes of a spread of base ids.
  for (int i = 0; i < 500; ++i) {
    db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (PointId id = 0; id < 3000; id += 7) db.Erase(id);

  const Polygon area = TestArea();
  const std::vector<PointId> expected = LiveBruteForce(db, area);
  ASSERT_FALSE(expected.empty());
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_EQ(query.Run(area, ctx), expected)
        << "method: " << query.Name();
  }
}

TEST(DynamicPointDatabaseTest, DeltaSpansMultipleChunksWithErases) {
  // Push the delta buffer well past one chunk (capacity 1024) with
  // interleaved delta deletes, so appends after swap-removes land in
  // part-empty trailing chunks and every chunk-indexing path runs.
  Rng rng(123);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(500, kUnit, &rng),
                          options);
  std::vector<PointId> mine;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 600; ++i) {
      const auto id = db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
      if (id.has_value()) mine.push_back(*id);
    }
    for (int i = 0; i < 100 && !mine.empty(); ++i) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mine.size()) - 1));
      EXPECT_TRUE(db.Erase(mine[at]));
      mine[at] = mine.back();
      mine.pop_back();
    }
  }
  EXPECT_EQ(db.DeltaSize(), 5u * 500u);
  EXPECT_GT(db.DeltaSize(), 2u * 1024u);

  const Polygon area = TestArea(17, 0.2);
  const std::vector<PointId> expected = LiveBruteForce(db, area);
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_EQ(query.Run(area, ctx), expected)
        << "method: " << query.Name();
  }
  db.Compact();
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_EQ(query.Run(area, ctx), expected)
        << "method: " << query.Name();
  }
}

TEST(DynamicPointDatabaseTest, CompactPreservesIdsAndResults) {
  Rng rng(44);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(2000, kUnit, &rng),
                          options);
  std::vector<PointId> inserted;
  for (int i = 0; i < 300; ++i) {
    const auto id = db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    if (id.has_value()) inserted.push_back(*id);
  }
  for (PointId id = 100; id < 200; ++id) db.Erase(id);

  const Polygon area = TestArea(11, 0.15);
  const std::vector<PointId> before = LiveBruteForce(db, area);
  const DynamicAreaQuery query(&db, DynamicMethod::kVoronoi);
  QueryContext ctx;
  EXPECT_EQ(query.Run(area, ctx), before);
  EXPECT_GT(ctx.stats.delta_candidates, 0u);

  db.Compact();
  EXPECT_EQ(db.Compactions(), 1u);
  EXPECT_EQ(db.DeltaSize(), 0u);
  EXPECT_EQ(db.TombstoneCount(), 0u);
  EXPECT_EQ(db.Size(), 2000u + inserted.size() - 100u);

  // Same stable ids before and after the rebuild, and the delta share of
  // the candidates is gone.
  EXPECT_EQ(query.Run(area, ctx), before);
  EXPECT_EQ(ctx.stats.delta_candidates, 0u);
  EXPECT_EQ(db.Find(inserted.front()).has_value(), true);
  EXPECT_EQ(db.Find(150), std::nullopt);  // Tombstone stayed dead.
}

TEST(DynamicPointDatabaseTest, AutoCompactionTriggersAtThreshold) {
  Rng rng(55);
  DynamicPointDatabase::Options options;
  options.compact_threshold = 64;
  DynamicPointDatabase db(GenerateUniformPoints(500, kUnit, &rng), options);
  for (int i = 0; i < 200; ++i) {
    db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  EXPECT_GE(db.Compactions(), 2u);
  EXPECT_LT(db.DeltaSize(), 64u);
  EXPECT_EQ(db.Size(), 700u);
}

TEST(DynamicPointDatabaseTest, EmptyInitialDatabaseGrowsFromDelta) {
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(std::vector<Point>{}, options);
  EXPECT_EQ(db.Size(), 0u);

  const Polygon area = TestArea(3, 0.3);
  // Queries on a fully empty database return nothing and fill stats.
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_TRUE(query.Run(area, ctx).empty());
    EXPECT_GT(ctx.stats.elapsed_ms, 0.0);
  }

  Rng rng(66);
  for (int i = 0; i < 40; ++i) {
    db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const std::vector<PointId> expected = LiveBruteForce(db, area);
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_EQ(query.Run(area, ctx), expected)
        << "method: " << query.Name();
  }

  // Folding a delta into an empty base exercises the smallest rebuilds.
  db.Compact();
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    EXPECT_EQ(query.Run(area, ctx), expected)
        << "method: " << query.Name();
  }
}

TEST(DynamicPointDatabaseTest, SnapshotIsImmuneToLaterMutations) {
  Rng rng(88);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(500, kUnit, &rng), options);
  const auto snap = db.snapshot();
  const std::size_t live_before = snap->live_size();

  for (int i = 0; i < 50; ++i) {
    db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (PointId id = 0; id < 100; ++id) db.Erase(id);
  db.Compact();

  // The pinned version still describes the pre-mutation state.
  EXPECT_EQ(snap->live_size(), live_before);
  std::size_t seen = 0;
  snap->ForEachLive([&](PointId, const Point&) { ++seen; });
  EXPECT_EQ(seen, live_before);
  EXPECT_EQ(db.Size(), live_before + 50 - 100);
}

TEST(DynamicPointDatabaseTest, StatsKeepCandidateInvariant) {
  Rng rng(99);
  DynamicPointDatabase::Options options;
  options.auto_compact = false;
  DynamicPointDatabase db(GenerateUniformPoints(2000, kUnit, &rng),
                          options);
  for (int i = 0; i < 400; ++i) {
    db.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (PointId id = 0; id < 400; id += 3) db.Erase(id);

  const Polygon area = TestArea(13, 0.1);
  for (const DynamicMethod method : kAllMethods) {
    const DynamicAreaQuery query(&db, method);
    QueryContext ctx;
    const auto result = query.Run(area, ctx);
    EXPECT_EQ(ctx.stats.results, result.size());
    EXPECT_EQ(ctx.stats.delta_candidates, db.DeltaSize());
    EXPECT_EQ(ctx.stats.candidates,
              ctx.stats.candidate_hits + ctx.stats.visited_rejected)
        << "method: " << query.Name();
    // Tombstoned hits are validated candidates but not results; every
    // result is either a validated hit or a bulk accept (grid-sweep).
    EXPECT_GE(ctx.stats.candidate_hits + ctx.stats.bulk_accepted,
              ctx.stats.results);
  }
}

}  // namespace
}  // namespace vaq
