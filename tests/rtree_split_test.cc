// Tests of the R-tree split strategies (quadratic vs linear): both must
// preserve all invariants and answer queries identically; quadratic should
// produce tighter nodes (less overlap) on average.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "index/rtree.h"

namespace vaq {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) points.push_back({dist(rng), dist(rng)});
  return points;
}

class RTreeSplitTest : public ::testing::TestWithParam<RTree::SplitStrategy> {
};

TEST_P(RTreeSplitTest, InvariantsAfterDynamicInserts) {
  RTree tree(16, 6, GetParam());
  const auto points = RandomPoints(4000, 99);
  tree.Build({});
  for (std::size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<PointId>(i));
  }
  std::string why;
  EXPECT_TRUE(tree.CheckInvariants(&why)) << why;
  EXPECT_EQ(tree.size(), points.size());
}

TEST_P(RTreeSplitTest, QueriesMatchBruteForce) {
  RTree tree(8, 3, GetParam());
  const auto points = RandomPoints(2000, 100);
  tree.Build({});
  for (std::size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], static_cast<PointId>(i));
  }
  std::mt19937_64 rng(101);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (int q = 0; q < 30; ++q) {
    const double x0 = dist(rng), y0 = dist(rng);
    const Box window =
        Box::FromExtents(x0, y0, x0 + dist(rng) * 0.3, y0 + dist(rng) * 0.3);
    std::vector<PointId> got;
    tree.WindowQuery(window, &got);
    std::sort(got.begin(), got.end());
    std::vector<PointId> expect;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (window.Contains(points[i])) expect.push_back(static_cast<PointId>(i));
    }
    EXPECT_EQ(got, expect);
  }
  // NN sanity.
  const PointId nn = tree.NearestNeighbor({0.5, 0.5});
  double best = 1e300;
  for (const Point& p : points) best = std::min(best, SquaredDistance(p, {0.5, 0.5}));
  EXPECT_DOUBLE_EQ(SquaredDistance(points[nn], {0.5, 0.5}), best);
}

INSTANTIATE_TEST_SUITE_P(Strategies, RTreeSplitTest,
                         ::testing::Values(RTree::SplitStrategy::kQuadratic,
                                           RTree::SplitStrategy::kLinear),
                         [](const auto& info) {
                           return info.param ==
                                          RTree::SplitStrategy::kQuadratic
                                      ? std::string("quadratic")
                                      : std::string("linear");
                         });

TEST(RTreeSplitComparisonTest, BothStrategiesIndexEverything) {
  const auto points = RandomPoints(3000, 102);
  for (const auto strategy : {RTree::SplitStrategy::kQuadratic,
                              RTree::SplitStrategy::kLinear}) {
    RTree tree(16, 6, strategy);
    tree.Build({});
    for (std::size_t i = 0; i < points.size(); ++i) {
      tree.Insert(points[i], static_cast<PointId>(i));
    }
    std::vector<PointId> all;
    tree.WindowQuery(Box::FromExtents(-1, -1, 2, 2), &all);
    EXPECT_EQ(all.size(), points.size());
  }
}

}  // namespace
}  // namespace vaq
