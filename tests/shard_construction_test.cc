// Malformed- and boundary-input corpus for sharded construction: the
// sharded layer must enforce the same input contract as the monolithic
// database — including the case only it can get wrong, a duplicate pair
// whose two occurrences would be partitioned into different shards.

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_area_query.h"
#include "core/point_database.h"
#include "shard/sharded_area_query.h"
#include "shard/sharded_database.h"
#include "workload/point_generator.h"
#include "workload/polygon_generator.h"
#include "workload/rng.h"

namespace vaq {
namespace {

constexpr Box kUnit = Box{{0.0, 0.0}, {1.0, 1.0}};

ShardedDatabase::Options ShardOptions(std::size_t k) {
  ShardedDatabase::Options options;
  options.num_shards = k;
  return options;
}

TEST(ShardConstructionTest, ZeroShardsIsRejected) {
  Rng rng(1);
  std::vector<Point> points = GenerateUniformPoints(16, kUnit, &rng);
  EXPECT_THROW(ShardedDatabase(points, ShardOptions(0)),
               std::invalid_argument);
}

TEST(ShardConstructionTest, MoreShardsThanPointsWorks) {
  // K > n: the surplus shards start empty, queries stay exact, and
  // inserts routed into empty key ranges land and are queryable.
  Rng rng(2);
  const std::vector<Point> points = GenerateUniformPoints(5, kUnit, &rng);
  ShardedDatabase sharded(points, ShardOptions(16));
  EXPECT_EQ(sharded.num_shards(), 16u);
  EXPECT_EQ(sharded.Size(), 5u);

  QueryContext ctx;
  const Polygon everything = Polygon(std::vector<Point>{
      {-1.0, -1.0}, {2.0, -1.0}, {2.0, 2.0}, {-1.0, 2.0}});
  for (const DynamicMethod method :
       {DynamicMethod::kVoronoi, DynamicMethod::kTraditional,
        DynamicMethod::kGridSweep, DynamicMethod::kBruteForce}) {
    const ShardedAreaQuery query(&sharded, method);
    const std::vector<PointId> got = query.Run(everything, ctx);
    EXPECT_EQ(got, (std::vector<PointId>{0, 1, 2, 3, 4}))
        << "method=" << query.Name();
    EXPECT_EQ(ctx.stats.shards_hit + ctx.stats.shards_pruned, 16u);
  }

  Rng insert_rng(3);
  for (int i = 0; i < 64; ++i) {
    const std::optional<PointId> id = sharded.Insert(
        {insert_rng.Uniform(0, 1), insert_rng.Uniform(0, 1)});
    ASSERT_TRUE(id.has_value());
  }
  EXPECT_EQ(sharded.Size(), 69u);
  const ShardedAreaQuery brute(&sharded, DynamicMethod::kBruteForce);
  EXPECT_EQ(brute.Run(everything, ctx).size(), 69u);
}

TEST(ShardConstructionTest, EmptyInputWorks) {
  ShardedDatabase sharded(std::vector<Point>{}, ShardOptions(4));
  EXPECT_EQ(sharded.Size(), 0u);
  QueryContext ctx;
  const Polygon area = Polygon(
      std::vector<Point>{{0.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}});
  const ShardedAreaQuery query(&sharded, DynamicMethod::kVoronoi);
  EXPECT_TRUE(query.Run(area, ctx).empty());
  EXPECT_EQ(ctx.stats.shards_pruned, 4u);
  EXPECT_TRUE(sharded.Insert({0.5, 0.5}).has_value());
  EXPECT_EQ(query.Run(area, ctx).size(), 1u);

  // Routing over the empty-construction default domain is a real K-way
  // split, not a single-shard funnel: a spread of inserts must populate
  // every shard.
  Rng rng(7);
  for (int i = 0; i < 256; ++i) {
    sharded.Insert({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  std::vector<std::size_t> per_shard(4, 0);
  const auto snap = sharded.snapshot();
  for (std::size_t s = 0; s < 4; ++s) {
    per_shard[s] = snap->shards()[s].snap->live_size();
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(per_shard[s], 0u) << "shard " << s << " never received a point";
  }
}

TEST(ShardConstructionTest, DuplicateAcrossShardBoundaryStillThrows) {
  // The duplicate pair is placed at opposite ends of the input and at
  // opposite ends of the Hilbert curve relative to the rest, so an
  // index-partitioned build would scatter the two occurrences into
  // different shards; the global pre-partition check must still see the
  // pair and report it in input positions.
  Rng rng(4);
  std::vector<Point> points = GenerateUniformPoints(40, kUnit, &rng);
  points[3] = {0.125, 0.125};
  points[37] = {0.125, 0.125};
  try {
    const ShardedDatabase sharded(points, ShardOptions(8));
    FAIL() << "duplicate pair was not rejected";
  } catch (const DuplicatePointError& e) {
    EXPECT_EQ(e.first_index(), 3u);
    EXPECT_EQ(e.second_index(), 37u);
    EXPECT_EQ(e.point(), (Point{0.125, 0.125}));
  }
}

TEST(ShardConstructionTest, NonFiniteInputIsRejected) {
  Rng rng(5);
  std::vector<Point> points = GenerateUniformPoints(8, kUnit, &rng);
  points[2].y = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ShardedDatabase(points, ShardOptions(4)),
               std::invalid_argument);
}

TEST(ShardConstructionTest, InsertEnforcesLiveDistinctnessAcrossShards) {
  Rng rng(6);
  const std::vector<Point> points = GenerateUniformPoints(200, kUnit, &rng);
  ShardedDatabase sharded(points, ShardOptions(8));
  // Inserting any live point again is rejected, wherever it lives.
  for (std::size_t i = 0; i < points.size(); i += 17) {
    EXPECT_FALSE(sharded.Insert(points[i]).has_value());
  }
  // Non-finite inserts are rejected at the routing boundary (a NaN key
  // must not pick a shard).
  EXPECT_FALSE(
      sharded.Insert({std::numeric_limits<double>::infinity(), 0.5})
          .has_value());
  // Erase, then re-insert: allowed, with a fresh id.
  ASSERT_TRUE(sharded.Erase(10));
  EXPECT_FALSE(sharded.Erase(10));
  const std::optional<PointId> again = sharded.Insert(points[10]);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, 200u);
  EXPECT_EQ(sharded.Size(), 200u);
}

}  // namespace
}  // namespace vaq
